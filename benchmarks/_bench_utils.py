"""Shared helpers for the benchmark harness (imported by bench files)."""

from __future__ import annotations

import os

#: Engines a figure benchmark can be routed through.
ENGINE_CHOICES = ("scalar", "batch", "fused")


def resolve_engine(option: str | None = None) -> str:
    """The simulation engine figure benchmarks should use.

    Priority: explicit ``--engine`` flag (passed in as ``option``), then
    the ``REPRO_BENCH_ENGINE`` environment variable, then ``"fused"`` —
    the fastest engine; cells it cannot fuse (contention policies,
    stateful channels/processes) fall back automatically inside the
    runner, so "fused by default" is always safe.
    """
    value = option or os.environ.get("REPRO_BENCH_ENGINE", "").strip() or "fused"
    if value not in ENGINE_CHOICES:
        raise ValueError(
            f"engine must be one of {ENGINE_CHOICES}, got {value!r}"
        )
    return value


def bench_intervals(paper_default: int, minimum: int = 200) -> int:
    """Paper horizon scaled by REPRO_BENCH_SCALE (default 0.15)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "0.15")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_BENCH_SCALE must be a float, got {raw!r}") from exc
    if scale <= 0:
        raise ValueError(f"REPRO_BENCH_SCALE must be positive, got {scale}")
    return max(minimum, int(round(paper_default * scale)))


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
