"""Ablation: oracle channel knowledge vs online learning of p_n.

Section II-A: "p_n can be obtained by either probing or learning from the
empirical results of past transmissions."  This ablation runs DB-DP with
the true reliabilities against :class:`EstimatedDBDPPolicy`, which learns
them from its own attempt/delivery counts.  Expected shape: the learning
variant converges to oracle-level deficiency (the bias enters Eq. (14)
only logarithmically, so moderate estimation error is benign).
"""

from __future__ import annotations

from _bench_utils import bench_intervals, run_once

from repro import (
    BernoulliChannel,
    DBDPPolicy,
    EstimatedDBDPPolicy,
    NetworkSpec,
    run_simulation,
    video_timing,
)
from repro.experiments.configs import VIDEO_INTERVALS
from repro.experiments.figures import FigureResult
from repro.traffic.arrivals import BurstyVideoArrivals


def sweep(num_intervals: int) -> FigureResult:
    # Heterogeneous reliabilities make the estimation problem non-trivial.
    reliabilities = tuple(0.5 + 0.4 * (i % 5) / 4 for i in range(20))
    spec = NetworkSpec.from_delivery_ratios(
        arrivals=BurstyVideoArrivals.symmetric(20, 0.5),
        channel=BernoulliChannel(success_probs=reliabilities),
        timing=video_timing(),
        delivery_ratios=0.9,
    )
    result = FigureResult(
        figure_id="ablation-estimation",
        title="DB-DP with oracle vs learned channel reliabilities",
        x_label="seed",
        x_values=[0.0, 1.0],
    )
    for label, factory in [
        ("oracle", DBDPPolicy),
        ("learned", EstimatedDBDPPolicy),
    ]:
        result.series[label] = [
            run_simulation(spec, factory(), num_intervals, seed=seed).total_deficiency()
            for seed in (0, 1)
        ]
    return result


def test_ablation_reliability_estimation(benchmark, report):
    intervals = bench_intervals(VIDEO_INTERVALS, minimum=1200)
    result = run_once(benchmark, sweep, intervals)
    report(result)
    for oracle, learned in zip(result.series["oracle"], result.series["learned"]):
        # Learning costs at most a small additive deficiency.
        assert learned <= oracle + 0.6
