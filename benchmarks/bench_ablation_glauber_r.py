"""Ablation: the Glauber constant ``R`` of Eq. (14).

``R`` sets the baseline reluctance to claim priority: ``mu_n = e^E/(R+e^E)``
with ``E = f(d^+) p``.  Proposition 3 shows the *stationary* distribution is
independent of ``R`` (the factors cancel), so the long-run deficiency should
be insensitive to it — what changes is the transient (larger R means
debt-free links yield more readily, which speeds the sorting).  The paper
uses R = 10.
"""

from __future__ import annotations

from _bench_utils import bench_intervals, run_once

from repro import DBDPPolicy, run_simulation
from repro.experiments.configs import VIDEO_INTERVALS, video_symmetric_spec
from repro.experiments.figures import FigureResult

R_VALUES = (1.0, 10.0, 100.0)


def sweep(num_intervals: int) -> FigureResult:
    spec = video_symmetric_spec(0.55, delivery_ratio=0.9)
    result = FigureResult(
        figure_id="ablation-glauber-r",
        title="DB-DP deficiency vs Glauber constant R (alpha* = 0.55)",
        x_label="R",
        x_values=list(R_VALUES),
    )
    result.series["deficiency"] = [
        run_simulation(
            spec, DBDPPolicy(glauber_r=r), num_intervals, seed=0
        ).total_deficiency()
        for r in R_VALUES
    ]
    return result


def test_ablation_glauber_r(benchmark, report):
    intervals = bench_intervals(VIDEO_INTERVALS, minimum=1200)
    result = run_once(benchmark, sweep, intervals)
    report(result)
    series = result.series["deficiency"]
    # All values of R sustain the feasible operating point within a finite
    # transient; no R makes the algorithm diverge.
    for r, value in zip(R_VALUES, series):
        assert value < 3.0, (r, value)
    # The stationary insensitivity shows as same-order deficiencies.
    assert max(series) <= 6 * max(min(series), 0.15)
