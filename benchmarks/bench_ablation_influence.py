"""Ablation: the debt influence function ``f`` in DB-DP (Eq. (14)).

The paper motivates ``f ~ log`` via two-time-scale separation ([13, 17, 18]
discussion in Section V-A).  This ablation compares the paper's
``log(max(1, 100(x+1)))`` against linear, quadratic, and plain-log
influence functions at the video operating point.  Expected shape: every
valid influence function fulfills the feasible requirement (feasibility
optimality does not hinge on the choice); the differences are transient /
convergence effects.
"""

from __future__ import annotations

from _bench_utils import bench_intervals, run_once

from repro import (
    DBDPPolicy,
    LinearInfluence,
    LogInfluence,
    PaperLogInfluence,
    PowerInfluence,
    run_simulation,
)
from repro.experiments.configs import VIDEO_INTERVALS, video_symmetric_spec
from repro.experiments.figures import FigureResult

INFLUENCES = {
    "paper-log": PaperLogInfluence(),
    "log": LogInfluence(),
    "linear": LinearInfluence(),
    "quadratic": PowerInfluence(exponent=2),
}


def sweep(num_intervals: int) -> FigureResult:
    spec = video_symmetric_spec(0.5, delivery_ratio=0.9)
    result = FigureResult(
        figure_id="ablation-influence",
        title="DB-DP deficiency by debt influence function (alpha* = 0.5)",
        x_label="seed",
        x_values=[0.0, 1.0],
    )
    for label, influence in INFLUENCES.items():
        result.series[label] = [
            run_simulation(
                spec,
                DBDPPolicy(influence=influence),
                num_intervals,
                seed=seed,
            ).total_deficiency()
            for seed in (0, 1)
        ]
    return result


def test_ablation_influence_function(benchmark, report):
    intervals = bench_intervals(VIDEO_INTERVALS, minimum=1200)
    result = run_once(benchmark, sweep, intervals)
    report(result)
    # Every influence function sustains the feasible operating point.
    for label, series in result.series.items():
        for value in series:
            assert value < 1.0, (label, value)
