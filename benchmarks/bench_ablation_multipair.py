"""Ablation: multiple swap pairs per interval (Remark 6).

More candidate pairs mean more adjacent transpositions per interval — a
faster-mixing priority chain at slightly higher backoff overhead (the
maximum backoff grows by 2 per extra pair).  Expected shape: deficiency at
a stressed feasible load decreases (or at worst stays flat) as pairs are
added, because the chain tracks the debt ordering more closely.
"""

from __future__ import annotations

from _bench_utils import bench_intervals, run_once

from repro import DBDPPolicy, run_simulation
from repro.experiments.configs import VIDEO_INTERVALS, video_symmetric_spec
from repro.experiments.figures import FigureResult

PAIR_COUNTS = (1, 3, 6)


def sweep(num_intervals: int) -> FigureResult:
    spec = video_symmetric_spec(0.58, delivery_ratio=0.9)
    result = FigureResult(
        figure_id="ablation-multipair",
        title="DB-DP deficiency vs swap pairs per interval (alpha* = 0.58)",
        x_label="num_pairs",
        x_values=[float(p) for p in PAIR_COUNTS],
    )
    result.series["deficiency"] = [
        run_simulation(
            spec, DBDPPolicy(num_pairs=pairs), num_intervals, seed=0
        ).total_deficiency()
        for pairs in PAIR_COUNTS
    ]
    return result


def test_ablation_multipair(benchmark, report):
    intervals = bench_intervals(VIDEO_INTERVALS, minimum=1200)
    result = run_once(benchmark, sweep, intervals)
    report(result)
    series = result.series["deficiency"]
    # Faster mixing helps (or at minimum does not hurt) at this load.
    assert series[-1] <= series[0] + 0.15
    # And the multi-pair variant clearly beats single-pair's transient.
    assert min(series[1:]) < series[0] + 1e-9 or series[0] < 0.1
