"""Ablation: backoff slot duration (Section IV-C overhead discussion).

The paper quantifies the DP protocol's overhead as at most ``N + 1`` backoff
slots plus two empty packets per interval and cites WiFi-Nano ([36]) for
sub-microsecond slots.  This ablation sweeps the slot duration (9 us
standard, 0.8 us WiFi-Nano, 0 idealized) at a stressed load and checks that
(i) measured overhead scales accordingly and (ii) the deficiency penalty of
the 9 us slot is small — the "quantifiably small overhead" claim.
"""

from __future__ import annotations

import dataclasses

from _bench_utils import bench_intervals, run_once

from repro import DBDPPolicy, NetworkSpec, run_simulation
from repro.experiments.configs import VIDEO_INTERVALS, video_symmetric_spec
from repro.experiments.figures import FigureResult

SLOTS_US = (9.0, 0.8, 0.0)


def sweep(num_intervals: int) -> FigureResult:
    base = video_symmetric_spec(0.6, delivery_ratio=0.9)
    result = FigureResult(
        figure_id="ablation-slot-time",
        title="DB-DP vs backoff slot duration (alpha* = 0.6)",
        x_label="slot_us",
        x_values=list(SLOTS_US),
        y_label="total deficiency / mean overhead (us)",
    )
    deficiencies, overheads = [], []
    for slot in SLOTS_US:
        spec = NetworkSpec(
            arrivals=base.arrivals,
            channel=base.channel,
            timing=base.timing.with_slot_time(slot),
            requirements=base.requirements,
        )
        run = run_simulation(spec, DBDPPolicy(), num_intervals, seed=0)
        deficiencies.append(run.total_deficiency())
        overheads.append(float(run.overhead_time_us.mean()))
    result.series["deficiency"] = deficiencies
    result.series["overhead_us"] = overheads
    return result


def test_ablation_slot_time(benchmark, report):
    intervals = bench_intervals(VIDEO_INTERVALS, minimum=1000)
    result = run_once(benchmark, sweep, intervals)
    report(result)

    overhead = result.series["overhead_us"]
    deficiency = result.series["deficiency"]
    # Overhead shrinks with the slot duration.
    assert overhead[0] > overhead[1] > overhead[2] >= 0.0
    # 9 us slots cost at most ~(N + 1) slots + 2 empty packets per interval.
    assert overhead[0] <= 21 * 9.0 + 2 * 70.0 + 1e-6
    # The deficiency penalty of standard slots vs idealized is small.
    assert deficiency[0] <= deficiency[2] + 0.8
