"""Ablation: warm-starting DB-DP's priority chain.

EXPERIMENTS.md attributes DB-DP's finite-horizon deficiency gap to chain
warm-up (the identity permutation must sort itself by single adjacent
swaps).  If that interpretation is right, initializing ``sigma(0)`` at the
ELDF ordering — e.g. carried over from a previous session, or assigned
once at network bring-up — should erase most of the gap at stressed loads.
This bench measures exactly that.
"""

from __future__ import annotations

from _bench_utils import bench_intervals, run_once

from repro import DBDPPolicy, LDFPolicy, run_simulation
from repro.experiments.configs import VIDEO_INTERVALS, video_symmetric_spec
from repro.experiments.figures import FigureResult

ALPHAS = (0.55, 0.6)


def sweep(num_intervals: int) -> FigureResult:
    result = FigureResult(
        figure_id="ablation-warmstart",
        title="DB-DP cold vs warm-started priority chain",
        x_label="alpha*",
        x_values=list(ALPHAS),
    )
    cold, warm, ldf = [], [], []
    for alpha in ALPHAS:
        spec = video_symmetric_spec(alpha, delivery_ratio=0.9)
        cold.append(
            run_simulation(spec, DBDPPolicy(), num_intervals, seed=0)
            .total_deficiency()
        )
        # Symmetric network: any ordering is "the" ELDF ordering at t = 0;
        # the warm start that matters in steady state is a *rotated* chain,
        # approximated here by randomizing the start so no link pays the
        # full bottom-of-the-stack debt from interval 0.
        import numpy as np

        start = tuple(
            int(v) for v in np.random.default_rng(1).permutation(20) + 1
        )
        warm.append(
            run_simulation(
                spec,
                DBDPPolicy(initial_priorities=start, num_pairs=3),
                num_intervals,
                seed=0,
            ).total_deficiency()
        )
        ldf.append(
            run_simulation(spec, LDFPolicy(), num_intervals, seed=0)
            .total_deficiency()
        )
    result.series["DB-DP cold (1 pair)"] = cold
    result.series["DB-DP warm (3 pairs)"] = warm
    result.series["LDF"] = ldf
    return result


def test_ablation_warmstart(benchmark, report):
    intervals = bench_intervals(VIDEO_INTERVALS, minimum=1500)
    result = run_once(benchmark, sweep, intervals)
    report(result)
    for cold, warm, ldf in zip(
        result.series["DB-DP cold (1 pair)"],
        result.series["DB-DP warm (3 pairs)"],
        result.series["LDF"],
    ):
        # The faster-mixing variant closes most of the cold-start gap.
        assert warm <= cold + 0.05
        assert warm <= ldf + max(1.0, 0.5 * cold)
