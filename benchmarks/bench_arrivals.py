"""MMPP fused-free sweeps vs the scalar engine on the traffic
robustness grid.

Before the batchable arrival-state layer, Markov-modulated specs forced
the scalar engine (or ``sync_rng``'s scalar-speed clones): every
(burstiness, policy, seed) cell paid a Python per-interval loop.  The
fused engine now evolves the per-(seed, link) modulating chains
vectorized across all rows under ``rng="free"``, so the whole grid
costs one interval loop per policy family (plus one for the Bernoulli
reference group at ``burstiness = 0``).  This benchmark times both on
the ``ext-correlated-traffic`` grid, re-runs the fused sweep against a
warm on-disk cache (cache keys must be stable cold -> warm), and
asserts statistical agreement between the engines.  Results land in
``BENCH_ARRIVALS.json`` (path overridable via
``REPRO_BENCH_ARRIVALS_JSON``).

Timing is manual (``perf_counter``) so the numbers exist even under
``pytest --benchmark-disable``; the committed full-scale measurement is
produced with ``REPRO_BENCH_SCALE=1``.
"""

from __future__ import annotations

import functools
import gc
import json
import os
import time
from pathlib import Path

from repro.experiments.cache import SweepCache
from repro.experiments.extensions import MMPP_GRID, _mmpp_spec
from repro.experiments.runner import run_sweep

from _bench_utils import bench_intervals

#: The extension study's horizon (the paper's video horizon); scaled by
#: REPRO_BENCH_SCALE.
PAPER_INTERVALS = 5000
NUM_SEEDS = 16
MEAN_RATE = 0.5
POLICIES = ("DB-DP", "LDF")
#: Smoke floor: the committed full-scale measurement shows >=5x; tiny CI
#: scales amortize the fused interval loop less, so assert conservatively.
MIN_SPEEDUP = 2.5


def _output_path() -> Path:
    return Path(
        os.environ.get("REPRO_BENCH_ARRIVALS_JSON", "BENCH_ARRIVALS.json")
    )


def test_mmpp_fused_vs_scalar(tmp_path):
    intervals = bench_intervals(PAPER_INTERVALS)
    seeds = tuple(range(NUM_SEEDS))
    builder = functools.partial(_mmpp_spec, MEAN_RATE)
    cells = len(MMPP_GRID) * len(POLICIES)
    kw = dict(
        parameter_name="burstiness",
        values=MMPP_GRID,
        spec_builder=builder,
        policies=POLICIES,
        num_intervals=intervals,
        seeds=seeds,
    )

    t0 = time.perf_counter()
    scalar = run_sweep(**kw, engine="scalar")
    scalar_s = time.perf_counter() - t0
    gc.collect()

    cache = SweepCache(tmp_path / "sweeps")
    t0 = time.perf_counter()
    fused = run_sweep(**kw, engine="fused", rng="free", cache=cache)
    fused_s = time.perf_counter() - t0
    gc.collect()

    t0 = time.perf_counter()
    warm = run_sweep(**kw, engine="fused", rng="free", cache=cache)
    warm_s = time.perf_counter() - t0

    speedup = scalar_s / fused_s
    report = {
        "workload": {
            "sweep": "ext-correlated-traffic grid: MMPP at fixed mean "
            "load 0.5, burstiness swept (x = 0 is the i.i.d. "
            "Bernoulli reference)",
            "values": list(MMPP_GRID),
            "policies": list(POLICIES),
            "num_intervals": intervals,
            "num_seeds": NUM_SEEDS,
            "cells": cells,
        },
        "scalar_seconds": round(scalar_s, 3),
        "fused_free_seconds": round(fused_s, 3),
        "warm_cache_seconds": round(warm_s, 4),
        "speedup_fused_vs_scalar": round(speedup, 2),
        "cache": {"hits": cache.hits, "stores": cache.stores},
        "series": {
            name: [round(v, 4) for v in fused.series(name)]
            for name in POLICIES
        },
    }
    path = _output_path()
    path.write_text(json.dumps(report, indent=2) + "\n")

    # Fused free-draw cells are fresh samples of the scalar estimator;
    # the per-cell means must track (loose bound — the CI-tight version
    # lives in tests/integration/test_arrival_state.py).
    for name in POLICIES:
        for a, b in zip(fused.series(name), scalar.series(name)):
            assert abs(a - b) < max(0.3, 0.5 * b + 0.1), (name, a, b)

    # Cold -> warm cache keys must be stable: every cell stored cold is
    # served warm, and the warm replay is bit-identical.
    assert cache.stores == cells and cache.hits == cells
    assert warm.points == fused.points

    assert speedup > MIN_SPEEDUP, (
        f"fused MMPP sweep only {speedup:.1f}x faster than scalar "
        f"(scalar {scalar_s:.2f}s, fused {fused_s:.2f}s)"
    )
