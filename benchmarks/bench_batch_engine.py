"""Scalar-loop vs batch-engine throughput on the Fig. 3 workload.

The batch engine's reason to exist is multi-seed experiments: S scalar
runs cost S times the scalar per-interval overhead, while the batch engine
advances all S replications per interval in vectorized kernel code.  This
benchmark measures both on the same 20-seed stack and records the result
in ``BENCH_batch.json`` (path overridable via ``REPRO_BENCH_BATCH_JSON``)
so CI keeps a throughput trail.

Timing is manual (``perf_counter``) so the numbers exist even under
``pytest --benchmark-disable``; the committed full-scale measurement is
produced with ``REPRO_BENCH_SCALE=1``.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import DBDPPolicy, LDFPolicy, run_simulation, run_simulation_batch
from repro.experiments.configs import video_symmetric_spec

from _bench_utils import bench_intervals

#: The paper's Fig. 3 horizon; scaled by REPRO_BENCH_SCALE.
PAPER_INTERVALS = 5000
NUM_SEEDS = 20
#: Smoke floor: the full-scale committed measurement shows >=10x; tiny CI
#: scales amortize the batch chunking less, so assert a conservative bound.
MIN_SPEEDUP = 2.0

POLICIES = {"DB-DP": DBDPPolicy, "LDF": LDFPolicy}


def _output_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_BATCH_JSON", "BENCH_batch.json"))


@pytest.fixture(scope="module")
def spec():
    return video_symmetric_spec(0.6, delivery_ratio=0.9)


def test_batch_vs_scalar_throughput(spec):
    intervals = bench_intervals(PAPER_INTERVALS)
    seeds = list(range(NUM_SEEDS))
    report = {
        "workload": {
            "spec": "video_symmetric_spec(0.6, delivery_ratio=0.9)",
            "num_links": spec.num_links,
            "num_intervals": intervals,
            "num_seeds": NUM_SEEDS,
        },
        "policies": {},
    }

    for name, factory in POLICIES.items():
        t0 = time.perf_counter()
        scalar_results = [
            run_simulation(spec, factory(), intervals, seed=s, validate=False)
            for s in seeds
        ]
        scalar_s = time.perf_counter() - t0
        scalar_def = float(
            np.mean([r.total_deficiency() for r in scalar_results])
        )
        # Release the 20 retained scalar traces before timing the batch
        # phase: keeping millions of their small objects alive makes every
        # collector pass during the batch run traverse them, inflating the
        # batch time ~3x with costs that are not the engine's.
        del scalar_results
        gc.collect()

        t0 = time.perf_counter()
        batch_result = run_simulation_batch(
            spec, factory(), intervals, seeds, validate=False
        )
        batch_s = time.perf_counter() - t0

        batch_def = float(batch_result.total_deficiency().mean())
        speedup = scalar_s / batch_s
        report["policies"][name] = {
            "scalar_seconds": round(scalar_s, 3),
            "batch_seconds": round(batch_s, 3),
            # Throughput counts simulated intervals across all seeds.
            "scalar_intervals_per_s": round(intervals * NUM_SEEDS / scalar_s, 1),
            "batch_intervals_per_s": round(intervals * NUM_SEEDS / batch_s, 1),
            "speedup": round(speedup, 2),
            "scalar_mean_total_deficiency": round(scalar_def, 4),
            "batch_mean_total_deficiency": round(batch_def, 4),
        }

        # The engines must agree on the physics, not just the clock.
        assert batch_result.num_intervals == intervals
        assert abs(batch_def - scalar_def) < max(0.15, 0.25 * scalar_def + 0.05)
        assert speedup > MIN_SPEEDUP, (
            f"{name}: batch engine only {speedup:.1f}x faster "
            f"(scalar {scalar_s:.2f}s, batch {batch_s:.2f}s)"
        )

    path = _output_path()
    path.write_text(json.dumps(report, indent=2) + "\n")
