"""Engine micro-benchmarks: interval engine vs microsecond event engine.

Not a paper figure — measures the cost of the two simulation fidelities on
the same scenario so users can pick.  The interval engine should be several
times faster while matching the event engine's delivery statistics (the
agreement itself is asserted in tests/integration/test_cross_engine.py).
"""

from __future__ import annotations

import pytest

from repro import DBDPPolicy, run_simulation
from repro.experiments.configs import video_symmetric_spec
from repro.sim.event_sim import EventDrivenDPSimulator

INTERVALS = 300


@pytest.fixture(scope="module")
def spec():
    return video_symmetric_spec(0.55, delivery_ratio=0.9)


def test_interval_engine_throughput(benchmark, spec):
    # validate=False: measure the engine, not the per-step sanity assert.
    result = benchmark.pedantic(
        lambda: run_simulation(spec, DBDPPolicy(), INTERVALS, seed=0, validate=False),
        rounds=3,
        iterations=1,
    )
    assert result.num_intervals == INTERVALS


def test_event_engine_throughput(benchmark, spec):
    result = benchmark.pedantic(
        lambda: EventDrivenDPSimulator(spec, seed=0).run(INTERVALS),
        rounds=3,
        iterations=1,
    )
    assert result.num_intervals == INTERVALS
