"""Extension bench: the full baseline panorama on one stressed scenario.

Not a paper figure — positions every implemented MAC (debt-based,
contention-based, TDMA, frame-scheduled) on the same axis.  Expected
shape: debt-based collision-free policies lead; DCF/FCSMA pay for
collisions; frame CSMA pays for non-adaptive blocks; round-robin pays for
debt-obliviousness.
"""

from __future__ import annotations

from _bench_utils import bench_intervals, run_once

from repro.experiments.configs import VIDEO_INTERVALS
from repro.experiments.extensions import baseline_panorama


def test_ext_baseline_panorama(benchmark, report, engine):
    intervals = bench_intervals(VIDEO_INTERVALS, minimum=800)
    result = run_once(
        benchmark,
        baseline_panorama,
        num_intervals=intervals,
        alpha=0.55,
        engine=engine,
    )
    report(result)

    deficiency = {label: series[0] for label, series in result.series.items()}
    collisions = {label: series[1] for label, series in result.series.items()}

    # Collision-freedom split.
    for label in ("LDF", "DB-DP", "FrameCSMA", "RoundRobin"):
        assert collisions[label] == 0.0
    for label in ("FCSMA", "DCF"):
        assert collisions[label] > 0.0

    # The debt-based policies beat the contention-based ones.
    assert deficiency["LDF"] < deficiency["FCSMA"]
    assert deficiency["DB-DP"] < deficiency["FCSMA"]
    assert deficiency["LDF"] < deficiency["DCF"]
    assert deficiency["DB-DP"] < deficiency["DCF"]
