"""Extension bench: convergence-time scaling with network size.

Quantifies the technical-report topic the paper defers: the bottom link's
settling time under single-pair DB-DP grows quickly with N (the chain moves
one adjacent swap per interval), LDF's stays flat, and Remark 6's
multi-pair variant recovers most of the gap.
"""

from __future__ import annotations

from _bench_utils import bench_intervals, run_once

from repro.experiments.configs import VIDEO_INTERVALS
from repro.experiments.convergence_study import convergence_vs_network_size


def test_ext_convergence_scaling(benchmark, report, engine):
    intervals = bench_intervals(VIDEO_INTERVALS, minimum=2500)
    result = run_once(
        benchmark,
        convergence_vs_network_size,
        sizes=(8, 20),
        num_intervals=intervals,
        engine=engine,
    )
    report(result)

    ldf = result.series["LDF"]
    single = result.series["DB-DP (1 pair)"]
    multi = result.series["DB-DP (max pairs)"]

    # At the paper's 20-link size: LDF settles fast; single-pair DB-DP
    # pays a visible warm-up; multi-pair recovers most of it.
    assert ldf[-1] <= 0.2 * intervals
    assert single[-1] > 2 * ldf[-1]
    assert multi[-1] < single[-1]
    # Warm-up grows with N for the single-pair chain.
    assert single[-1] >= single[0]
