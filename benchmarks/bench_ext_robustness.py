"""Extension bench: robustness outside the analyzed model.

Runs DB-DP (and LDF) under bursty Gilbert-Elliott losses and under
correlated traffic — both beyond the paper's i.i.d. assumptions — and
checks the algorithm degrades gracefully rather than collapsing.
"""

from __future__ import annotations

from _bench_utils import bench_intervals, run_once

from repro.experiments.configs import VIDEO_INTERVALS
from repro.experiments.extensions import (
    burst_loss_robustness,
    correlated_traffic_robustness,
)


def test_ext_burst_loss_robustness(benchmark, report, engine):
    intervals = bench_intervals(VIDEO_INTERVALS, minimum=1500)
    result = run_once(
        benchmark, burst_loss_robustness, num_intervals=intervals, engine=engine
    )
    report(result)
    for label, series in result.series.items():
        # Graceful degradation across the whole burstiness grid: bounded
        # extra deficiency over the x = 0 i.i.d. reference, no collapse.
        iid = series[0]
        for bursty in series[1:]:
            assert bursty < iid + 2.0, label
    # DB-DP stays in LDF's neighborhood on the unmodeled channel.
    for dbdp, ldf in zip(result.series["DB-DP"][1:], result.series["LDF"][1:]):
        assert dbdp <= ldf + 1.0


def test_ext_correlated_traffic(benchmark, report, engine):
    intervals = bench_intervals(VIDEO_INTERVALS, minimum=1500)
    result = run_once(
        benchmark, correlated_traffic_robustness, num_intervals=intervals, engine=engine
    )
    report(result)
    assert result.series["iid"][0] < 0.5
    for label, series in result.series.items():
        assert series[0] < 3.0, label  # graceful under every structure
