"""Figure 10: 10-link ultra-low-latency network at lambda* = 0.78, total
deficiency vs the required delivery ratio.

Paper shape: DB-DP sustains delivery ratios up to 99% like LDF (despite
losing 1-2 of the 16 transmission opportunities to backoff and empty
packets); FCSMA carries a large deficiency across the range.
"""

from __future__ import annotations

from _bench_utils import bench_intervals, run_once

from repro.experiments.configs import LOW_LATENCY_INTERVALS
from repro.experiments.figures import fig10

RATIOS = (0.80, 0.92, 0.99)


def test_fig10_lowlatency_ratio_sweep(benchmark, report, engine):
    intervals = bench_intervals(LOW_LATENCY_INTERVALS, minimum=2000)
    result = run_once(
        benchmark, fig10, num_intervals=intervals, ratios=RATIOS, engine=engine
    )
    report(result)

    ldf = result.series["LDF"]
    dbdp = result.series["DB-DP"]
    fcsma = result.series["FCSMA"]

    # Priority policies sustain even the 99% requirement at lambda* = 0.78.
    assert ldf[-1] < 0.3
    assert dbdp[-1] < 0.5
    # FCSMA gives out as the requirement tightens (the lowest grid point is
    # feasible even for FCSMA; the high end is not).
    for ratio, l, d, f in zip(RATIOS, ldf, dbdp, fcsma):
        if ratio >= 0.9:
            assert f > 3 * max(d, 0.05)
            assert f > 3 * max(l, 0.05)
    # FCSMA's deficiency grows with the requirement.
    assert fcsma[-1] >= fcsma[0]
    assert fcsma[-1] > 0.5
