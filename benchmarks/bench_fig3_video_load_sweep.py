"""Figure 3: symmetric 20-link video network, total deficiency vs alpha*.

Paper shape: DB-DP hugs LDF across the sweep; LDF's admissible boundary is
near alpha* ~ 0.62; FCSMA supports only ~70% of the admissible load and its
deficiency dwarfs both priority policies at every stressed point.
"""

from __future__ import annotations

from _bench_utils import bench_intervals, run_once

from repro.experiments.configs import VIDEO_INTERVALS
from repro.experiments.figures import fig3

ALPHAS = (0.40, 0.50, 0.55, 0.62, 0.70)


def test_fig3_video_load_sweep(benchmark, report, engine):
    intervals = bench_intervals(VIDEO_INTERVALS)
    result = run_once(
        benchmark, fig3, num_intervals=intervals, alphas=ALPHAS, engine=engine
    )
    report(result)

    ldf = result.series["LDF"]
    dbdp = result.series["DB-DP"]
    fcsma = result.series["FCSMA"]

    # Light load: both priority policies essentially fulfill q.
    assert ldf[0] < 0.5 and dbdp[0] < 0.8
    # Stressed points: FCSMA is far worse than both priority policies.
    for i, alpha in enumerate(ALPHAS):
        if alpha >= 0.5:
            assert fcsma[i] > 2 * max(dbdp[i], 0.2)
    # DB-DP tracks LDF: bounded gap everywhere on the sweep (at reduced
    # horizons the decentralized chain's warm-up transient inflates the
    # gap; at the paper's 5000 intervals it shrinks to ~1.25x).
    for l, d, f in zip(ldf, dbdp, fcsma):
        assert d <= 2.0 * l + 3.5
        # ... and is always far closer to LDF than FCSMA is at stressed
        # points (the gap that actually separates the algorithm classes).
        if f > 2.0:
            assert (d - l) < 0.5 * (f - l)
    # Deficiency grows with load for every algorithm (allowing noise).
    for series in (ldf, dbdp, fcsma):
        assert series[-1] >= series[0]
