"""Figure 4: symmetric video network at alpha* = 0.55, deficiency vs the
required delivery ratio.

Paper shape: DB-DP and LDF sustain ratios deep into the 90s; FCSMA's
deficiency is large across the whole range and grows with the requirement.
"""

from __future__ import annotations

from _bench_utils import bench_intervals, run_once

from repro.experiments.configs import VIDEO_INTERVALS
from repro.experiments.figures import fig4

RATIOS = (0.80, 0.88, 0.93, 0.99)


def test_fig4_video_ratio_sweep(benchmark, report, engine):
    intervals = bench_intervals(VIDEO_INTERVALS)
    result = run_once(
        benchmark, fig4, num_intervals=intervals, ratios=RATIOS, engine=engine
    )
    report(result)

    ldf = result.series["LDF"]
    dbdp = result.series["DB-DP"]
    fcsma = result.series["FCSMA"]

    # FCSMA is the clear loser once the requirement is demanding (its
    # effective capacity at alpha* = 0.55 gives out in the high 80s; the
    # lowest ratio on the grid is feasible even for FCSMA).
    for ratio, l, d, f in zip(RATIOS, ldf, dbdp, fcsma):
        if ratio >= 0.9:
            assert f > d and f > l
    assert fcsma[-1] > 2.0  # strongly deficient at the 99% requirement
    # Deficiency is (noise-tolerantly) nondecreasing in the required ratio.
    assert fcsma[-1] >= fcsma[0]
    assert dbdp[-1] >= dbdp[0] - 0.1
    # The priority policies hold the 99% requirement far better than FCSMA.
    assert ldf[-1] < 0.5 * fcsma[-1]
    assert dbdp[-1] < 0.75 * fcsma[-1]
