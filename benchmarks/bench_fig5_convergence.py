"""Figure 5: convergence of the lowest-initial-priority link's running
timely-throughput (alpha* = 0.55, 93% delivery ratio).

Paper shape: LDF converges quickly; DB-DP reaches a comparable neighborhood
of the requirement despite starting the watched link at priority 20.
"""

from __future__ import annotations

from _bench_utils import bench_intervals, run_once

from repro.experiments.configs import VIDEO_INTERVALS
from repro.experiments.figures import fig5


def test_fig5_convergence(benchmark, report, engine):
    # Convergence needs the paper-scale horizon to be meaningful: the
    # watched link starts at priority 20 and the chain moves one adjacent
    # swap per interval at most.
    intervals = bench_intervals(VIDEO_INTERVALS, minimum=3000)
    result = run_once(
        benchmark,
        fig5,
        num_intervals=intervals,
        sample_every=max(intervals // 40, 10),
        engine=engine,
    )
    report(result)

    # The note records the requirement; recover it for the shape checks.
    target = float(result.notes.split("=")[1].split()[0])
    xs = result.x_values

    def last_third_rate(series):
        """Mean delivery rate over the final third of the run (the running
        mean still carries the warm-up transient; the instantaneous rate is
        what converges)."""
        cut = 2 * len(xs) // 3
        total_end = series[-1] * xs[-1]
        total_cut = series[cut] * xs[cut]
        return (total_end - total_cut) / (xs[-1] - xs[cut])

    # LDF converges quickly: its running mean reaches the requirement.
    assert result.series["LDF"][-1] >= 0.95 * target

    # DB-DP: the bottom link escapes starvation and its late-run delivery
    # rate reaches the requirement neighborhood (the paper's convergence
    # claim); the running mean is still closing the warm-up gap.
    dbdp = result.series["DB-DP"]
    assert dbdp[-1] >= 0.6 * target
    assert last_third_rate(dbdp) >= 0.9 * target
    # ... and the trace is improving, not stuck.
    assert dbdp[-1] >= dbdp[len(xs) // 3]
