"""Figure 6: per-link average timely-throughput under a fixed priority
ordering (alpha* = 0.6).

Paper shape: timely-throughput decreases with the priority index (small
variations from random arrivals allowed) and the lowest-priority link still
receives non-zero timely-throughput — the structural no-starvation property
that distinguishes priority rotation from conventional CSMA locking.
"""

from __future__ import annotations

import numpy as np

from _bench_utils import bench_intervals, run_once

from repro.experiments.configs import VIDEO_INTERVALS
from repro.experiments.figures import fig6


def test_fig6_fixed_priority(benchmark, report, engine):
    intervals = bench_intervals(VIDEO_INTERVALS, minimum=1000)
    result = run_once(benchmark, fig6, num_intervals=intervals, engine=engine)
    report(result)

    series = np.asarray(result.series["StaticPriority"])
    assert series.shape == (20,)

    # No starvation at the bottom.
    assert series[-1] > 0.05
    # Clear decreasing trend: top quartile >> bottom quartile.
    assert series[:5].mean() > 1.3 * series[-5:].mean()
    # The top links are essentially fully served (lambda = 2.1).
    assert series[:5].mean() > 1.9
    # Monotone after smoothing (pairwise trend over a 5-link window).
    smoothed = np.convolve(series, np.ones(5) / 5, mode="valid")
    assert all(b <= a + 0.12 for a, b in zip(smoothed, smoothed[1:]))
