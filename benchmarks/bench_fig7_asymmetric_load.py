"""Figure 7: asymmetric two-group network, group-wide deficiency vs alpha*
under a 90% delivery ratio.

Paper shape: DB-DP matches LDF per group across the load sweep; under
FCSMA the weak group (group 1: p = 0.5) suffers a much larger deficiency
than the strong group once its debts saturate the contention-window map.
"""

from __future__ import annotations

from _bench_utils import bench_intervals, run_once

from repro.experiments.configs import VIDEO_INTERVALS
from repro.experiments.figures import fig7

ALPHAS = (0.45, 0.65, 0.75)


def test_fig7_asymmetric_load_sweep(benchmark, report, engine):
    intervals = bench_intervals(VIDEO_INTERVALS)
    result = run_once(
        benchmark, fig7, num_intervals=intervals, alphas=ALPHAS, engine=engine
    )
    report(result)

    for group in (1, 2):
        ldf = result.series[f"LDF (group {group})"]
        dbdp = result.series[f"DB-DP (group {group})"]
        fcsma = result.series[f"FCSMA (group {group})"]
        # FCSMA dominates the deficiency at the stressed points.
        assert fcsma[-1] > dbdp[-1]
        assert fcsma[-1] > ldf[-1]
        # DB-DP stays within a bounded gap of LDF per group.
        for l, d in zip(ldf, dbdp):
            assert d <= 2.0 * l + 2.5

    # FCSMA's weak group is hit much harder than its strong group at load.
    weak = result.series["FCSMA (group 1)"]
    assert weak[-1] > 1.0
