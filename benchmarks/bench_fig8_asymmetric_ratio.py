"""Figure 8: asymmetric two-group network at alpha* = 0.7, group-wide
deficiency vs the required delivery ratio.

Paper shape: DB-DP ~ LDF per group over the whole requirement range; FCSMA
exhibits a large group-1 deficiency that grows with the requirement (its
saturated window map cannot respond to the weak group's mounting debt).
"""

from __future__ import annotations

from _bench_utils import bench_intervals, run_once

from repro.experiments.configs import VIDEO_INTERVALS
from repro.experiments.figures import fig8

RATIOS = (0.80, 0.90, 0.99)


def test_fig8_asymmetric_ratio_sweep(benchmark, report, engine):
    intervals = bench_intervals(VIDEO_INTERVALS)
    result = run_once(
        benchmark, fig8, num_intervals=intervals, ratios=RATIOS, engine=engine
    )
    report(result)

    for group in (1, 2):
        fcsma = result.series[f"FCSMA (group {group})"]
        dbdp = result.series[f"DB-DP (group {group})"]
        ldf = result.series[f"LDF (group {group})"]
        # FCSMA worst at the top of the requirement range, in both groups.
        assert fcsma[-1] >= dbdp[-1]
        assert fcsma[-1] >= ldf[-1]
        # FCSMA deficiency grows with the requirement.
        assert fcsma[-1] >= fcsma[0]

    # Group-1 starvation under FCSMA is pronounced at high requirements.
    assert result.series["FCSMA (group 1)"][-1] > 1.0
    # DB-DP keeps the weak group close to what LDF achieves.
    for l, d in zip(
        result.series["LDF (group 1)"], result.series["DB-DP (group 1)"]
    ):
        assert d <= 2.0 * l + 2.5
