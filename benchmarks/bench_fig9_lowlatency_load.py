"""Figure 9: 10-link ultra-low-latency network (2 ms deadline), total
deficiency vs arrival rate at a 99% delivery ratio.

Paper shape: DB-DP achieves timely-throughput close to LDF even with the
2 ms deadline (where its 1-2 transmission overhead is proportionally
largest); FCSMA lifts off at a much smaller lambda*.
"""

from __future__ import annotations

from _bench_utils import bench_intervals, run_once

from repro.experiments.configs import LOW_LATENCY_INTERVALS
from repro.experiments.figures import fig9

LAMBDAS = (0.60, 0.78, 0.90, 0.96)


def test_fig9_lowlatency_load_sweep(benchmark, report, engine):
    intervals = bench_intervals(LOW_LATENCY_INTERVALS, minimum=2000)
    result = run_once(
        benchmark, fig9, num_intervals=intervals, lambdas=LAMBDAS, engine=engine
    )
    report(result)

    ldf = result.series["LDF"]
    dbdp = result.series["DB-DP"]
    fcsma = result.series["FCSMA"]

    # Light load: the priority policies fulfill the 99% requirement.
    assert ldf[0] < 0.1
    assert dbdp[0] < 0.2
    # FCSMA is already deficient by the paper's operating point 0.78.
    assert fcsma[1] > 5 * max(dbdp[1], 0.02)
    # DB-DP tracks LDF across the sweep.
    for l, d in zip(ldf, dbdp):
        assert d <= 2.0 * l + 0.6
    # Everyone's deficiency is nondecreasing in load (noise-tolerant).
    for series in (ldf, dbdp, fcsma):
        assert series[-1] >= series[0] - 0.02
