"""Per-cell batch sweeps vs the grid-fused engine on a Fig. 3-style grid.

``run_sweep(engine="batch")`` vectorizes each (parameter value, policy)
cell across seeds but still pays one Python per-interval loop per cell; a
full figure grid is V x P of those.  ``run_sweep_fused`` collapses every
fusable (value, seed) cell of a policy family into one mega-batch, so the
whole sweep costs one interval loop per policy family.  This benchmark
times both on a full Fig. 3-style sweep at 0.02 alpha resolution (16
alpha values x 20 seeds x DB-DP + LDF), then re-runs the fused sweep
against a warm on-disk cache and asserts the replay is bit-identical.
Results land in ``BENCH_sweep.json`` (path overridable via
``REPRO_BENCH_SWEEP_JSON``).

Timing is manual (``perf_counter``) so the numbers exist even under
``pytest --benchmark-disable``; the committed full-scale measurement is
produced with ``REPRO_BENCH_SCALE=1``.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

import pytest

from repro import DBDPPolicy, LDFPolicy
from repro.experiments.cache import SweepCache
from repro.experiments.grid import run_sweep_fused
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.runner import run_sweep

from _bench_utils import bench_intervals

#: The paper's Fig. 3 horizon; scaled by REPRO_BENCH_SCALE.
PAPER_INTERVALS = 5000
NUM_SEEDS = 20
ALPHAS = tuple(round(0.40 + 0.02 * i, 2) for i in range(16))
#: Smoke floor: the full-scale committed measurement shows >=3x; tiny CI
#: scales amortize the fused interval loop less, so assert conservatively.
MIN_SPEEDUP = 2.0

POLICIES = {"DB-DP": DBDPPolicy, "LDF": LDFPolicy}


def _output_path() -> Path:
    return Path(os.environ.get("REPRO_BENCH_SWEEP_JSON", "BENCH_sweep.json"))


def _spec_builder(alpha: float):
    return video_symmetric_spec(alpha, delivery_ratio=0.9)


def test_fused_vs_per_cell_sweep(tmp_path):
    intervals = bench_intervals(PAPER_INTERVALS)
    seeds = tuple(range(NUM_SEEDS))
    cells = len(ALPHAS) * len(POLICIES)

    t0 = time.perf_counter()
    per_cell = run_sweep(
        "alpha*", ALPHAS, _spec_builder, POLICIES, intervals, seeds,
        engine="batch",
    )
    per_cell_s = time.perf_counter() - t0
    gc.collect()

    cache = SweepCache(tmp_path / "sweeps")
    t0 = time.perf_counter()
    fused = run_sweep_fused(
        "alpha*", ALPHAS, _spec_builder, POLICIES, intervals, seeds,
        cache=cache, validate=False,
    )
    fused_s = time.perf_counter() - t0
    gc.collect()

    t0 = time.perf_counter()
    warm = run_sweep_fused(
        "alpha*", ALPHAS, _spec_builder, POLICIES, intervals, seeds,
        cache=cache, validate=False,
    )
    warm_s = time.perf_counter() - t0

    speedup = per_cell_s / fused_s
    report = {
        "workload": {
            "sweep": "video_symmetric_spec(alpha, delivery_ratio=0.9)",
            "values": list(ALPHAS),
            "policies": list(POLICIES),
            "num_intervals": intervals,
            "num_seeds": NUM_SEEDS,
            "cells": cells,
        },
        "per_cell_batch_seconds": round(per_cell_s, 3),
        "fused_seconds": round(fused_s, 3),
        "warm_cache_seconds": round(warm_s, 4),
        "speedup_fused_vs_per_cell": round(speedup, 2),
        "speedup_warm_vs_per_cell": round(per_cell_s / warm_s, 1),
        "cache": {"hits": cache.hits, "stores": cache.stores},
        "series": {
            name: [round(v, 4) for v in fused.series(name)]
            for name in POLICIES
        },
    }
    path = _output_path()
    path.write_text(json.dumps(report, indent=2) + "\n")

    # The engines must agree on the physics, not just the clock: fused
    # cells are fresh samples of the same estimator, so means stay close.
    for name in POLICIES:
        for a, b in zip(fused.series(name), per_cell.series(name)):
            assert abs(a - b) < max(0.2, 0.25 * b + 0.05), (name, a, b)

    # Warm cache must replay the cold fused sweep bit-for-bit.
    assert cache.stores == cells and cache.hits == cells
    assert warm.points == fused.points

    assert speedup > MIN_SPEEDUP, (
        f"fused sweep only {speedup:.1f}x faster than per-cell batch "
        f"(per-cell {per_cell_s:.2f}s, fused {fused_s:.2f}s)"
    )
