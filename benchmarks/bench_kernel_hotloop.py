"""Workspace kernel backends vs the legacy fused engine on the Fig. 3 grid.

The workspace refactor (:mod:`repro.sim.batch_kernels`) rebinds every
kernel to preallocated buffers and replaces the legacy per-interval
allocations with ``out=`` ufunc passes, closed-form single-pair priority
updates, and matmul prefix sums; ``backend="jit"`` additionally compiles
the two sequential inner loops with Numba (``prange`` over batch rows)
where it is installed, and ``rng="free"`` drops the lockstep draw
contract so kernels generate only the randomness they consume.  The
batch-discipline backends consume identical RNG streams and are
bit-identical in output; the free leg is a statistically equivalent
fresh sample (asserted within a CI bound by
``tests/integration/test_free_rng.py``).

This benchmark times each backend on the paper's Fig. 3 sweep (16 alpha
values x 20 seeds x DB-DP + LDF), times the free-draw discipline on the
benchmarked default backend (jit where numba is importable), and records
a perf-counter decomposition of the workspace run so the speedup is
attributable stage by stage.  When jit is expected but numba is not
importable, the run warns loudly and the report carries
``jit_skipped: true`` so a dashboard never mistakes a numpy fallback for
a compiled measurement.  Results land in ``BENCH_kernels.json`` (path
overridable via ``REPRO_BENCH_KERNELS_JSON``); each full-scale run
appends its headline numbers to the report's ``trajectory`` list so the
speedup history stays in the artifact.

Timing is manual (``perf_counter``, interleaved best-of-3) so the numbers
exist even under ``pytest --benchmark-disable``; the committed full-scale
measurement is produced with ``REPRO_BENCH_SCALE=1``.
"""

from __future__ import annotations

import gc
import json
import os
import time
import warnings
from pathlib import Path

from repro import DBDPPolicy, LDFPolicy
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.grid import run_sweep_fused
from repro.sim import jit_kernels, perf

from _bench_utils import bench_intervals

#: The paper's Fig. 3 horizon; scaled by REPRO_BENCH_SCALE.
PAPER_INTERVALS = 5000
NUM_SEEDS = 20
ALPHAS = tuple(round(0.40 + 0.02 * i, 2) for i in range(16))
REPS = 3
#: Smoke floor for the workspace path.  The committed full-scale run on a
#: single-core container shows ~1.7x end-to-end (see BENCH_kernels.json;
#: the shared RNG draw generation — identical across backends by the
#: bit-identity contract — bounds the reachable ratio); assert well below
#: that so noisy CI boxes don't flake.
MIN_SPEEDUP = 1.25
#: Loose floor for the free-draw leg vs the batch-discipline numpy leg:
#: free must never be a catastrophic regression, even on noisy smoke
#: scales where its draw savings are partly warm-up.
MIN_FREE_RATIO = 0.75

POLICIES = {"DB-DP": DBDPPolicy, "LDF": LDFPolicy}


def _output_path() -> Path:
    return Path(
        os.environ.get("REPRO_BENCH_KERNELS_JSON", "BENCH_kernels.json")
    )


def _spec_builder(alpha: float):
    return video_symmetric_spec(alpha, delivery_ratio=0.9)


def _run(backend: str, intervals: int, seeds, rng=None, shards=None):
    return run_sweep_fused(
        "alpha*", ALPHAS, _spec_builder, POLICIES, intervals, seeds,
        validate=False, backend=backend, rng=rng, shards=shards,
    )


def _prior_trajectory(path: Path):
    """The trajectory recorded by previous runs of this benchmark."""
    try:
        return list(json.loads(path.read_text()).get("trajectory", []))
    except (OSError, ValueError):
        return []


def test_kernel_backends_hotloop():
    intervals = bench_intervals(PAPER_INTERVALS)
    seeds = tuple(range(NUM_SEEDS))

    backends = ["legacy", "numpy"]
    # The JIT leg is only a distinct measurement when numba is actually
    # installed; forced-Python mode exists for semantics tests and would
    # just time the interpreter.
    jit_compiled = jit_kernels.HAS_NUMBA and not jit_kernels.force_python
    jit_skipped = not jit_compiled
    if jit_compiled:
        backends.append("jit")
    else:
        warnings.warn(
            "jit backend requested by the benchmark but numba is not "
            "importable: the jit leg is SKIPPED and every headline number "
            "below is a numpy-backend measurement (the report carries "
            "jit_skipped: true)",
            RuntimeWarning,
            stacklevel=1,
        )
    #: The benchmarked default: what resolve_backend(None) picks here.
    default_backend = "jit" if jit_compiled else "numpy"

    # Bit-identity first (also warms every code path before timing).
    results = {b: _run(b, intervals, seeds) for b in backends}
    reference = results["legacy"]
    for backend in backends[1:]:
        assert results[backend].points == reference.points, (
            f"backend {backend!r} diverged from the legacy engine"
        )
    # Warm the free leg too (first call pays chunk-buffer setup).
    _run(default_backend, intervals, seeds, rng="free")

    legs = [(b, None) for b in backends] + [(default_backend, "free")]
    best = {}
    for _ in range(REPS):
        for backend, rng in legs:  # interleaved: noise hits all equally
            key = f"{backend}+free" if rng else backend
            gc.collect()
            t0 = time.perf_counter()
            _run(backend, intervals, seeds, rng=rng)
            best[key] = min(
                best.get(key, float("inf")), time.perf_counter() - t0
            )

    # One instrumented workspace run for the stage decomposition.
    was_enabled = perf.counters.enabled
    perf.reset()
    perf.enable()
    try:
        _run("numpy", intervals, seeds)
        stages = perf.counters.snapshot()
    finally:
        perf.counters.enabled = was_enabled
        perf.reset()

    free_key = f"{default_backend}+free"
    speedup = best["legacy"] / best["numpy"]
    free_speedup = best["legacy"] / best[free_key]
    report = {
        "workload": {
            "sweep": "video_symmetric_spec(alpha, delivery_ratio=0.9)",
            "values": list(ALPHAS),
            "policies": list(POLICIES),
            "num_intervals": intervals,
            "num_seeds": NUM_SEEDS,
        },
        "bit_identical_backends": backends,
        "numba_available": jit_kernels.HAS_NUMBA,
        "jit_skipped": jit_skipped,
        "config": {"rng": "free", "backend": default_backend},
        "best_seconds": {k: round(v, 3) for k, v in best.items()},
        "speedup_numpy_vs_legacy": round(speedup, 2),
        "speedup_free_vs_legacy": round(free_speedup, 2),
        "speedup_free_vs_numpy_batch": round(
            best["numpy"] / best[free_key], 2
        ),
        "numpy_stage_seconds": {
            name: round(stat["seconds"], 4) for name, stat in stages.items()
        },
        "numpy_stage_allocs": {
            name: int(stat["allocs"])
            for name, stat in stages.items()
            if stat["allocs"]
        },
    }
    if jit_compiled:
        report["speedup_jit_vs_legacy"] = round(
            best["legacy"] / best["jit"], 2
        )
        # One instrumented jit run: per-stage decomposition (so
        # tools/check_jit_wins.py can verify the compiled loops beat the
        # numpy closed forms stage by stage) plus the first-call
        # compilation cost, which the warm-compile cache amortizes at
        # kernel bind and which is reported separately so steady-state
        # timings stay clean.
        perf.reset()
        perf.enable()
        try:
            jit_kernels._warmed.clear()
            _run("jit", intervals, seeds)
            jit_stages = perf.counters.snapshot()
            report["jit_stage_seconds"] = {
                name: round(stat["seconds"], 4)
                for name, stat in jit_stages.items()
                if name != "jit.warmup"
            }
            report["jit_warmup_seconds"] = round(
                perf.counters.seconds("jit.warmup"), 4
            )
        finally:
            perf.counters.enabled = was_enabled
            perf.reset()

    path = _output_path()
    trajectory = _prior_trajectory(path)
    trajectory.append(
        {
            "num_intervals": intervals,
            "num_seeds": NUM_SEEDS,
            "backend": default_backend,
            "jit_skipped": jit_skipped,
            "legacy_seconds": round(best["legacy"], 3),
            "numpy_seconds": round(best["numpy"], 3),
            "free_seconds": round(best[free_key], 3),
            "speedup_free_vs_legacy": round(free_speedup, 2),
        }
    )
    report["trajectory"] = trajectory[-12:]  # bounded history
    path.write_text(json.dumps(report, indent=2) + "\n")

    assert speedup > MIN_SPEEDUP, (
        f"workspace backend only {speedup:.2f}x faster than legacy "
        f"(legacy {best['legacy']:.2f}s, numpy {best['numpy']:.2f}s)"
    )
    assert best["numpy"] / best[free_key] > MIN_FREE_RATIO, (
        f"free-draw discipline regressed: {best[free_key]:.2f}s vs numpy "
        f"batch {best['numpy']:.2f}s"
    )
