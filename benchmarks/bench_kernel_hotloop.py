"""Workspace kernel backends vs the legacy fused engine on the Fig. 3 grid.

The workspace refactor (:mod:`repro.sim.batch_kernels`) rebinds every
kernel to preallocated buffers and replaces the legacy per-interval
allocations with ``out=`` ufunc passes, closed-form single-pair priority
updates, and matmul prefix sums; ``backend="jit"`` additionally compiles
the two sequential inner loops with Numba where it is installed.  All
backends consume identical RNG streams and are bit-identical in output —
this benchmark asserts that on the full grid, times each backend on the
paper's Fig. 3 sweep (16 alpha values x 20 seeds x DB-DP + LDF), and
records a perf-counter decomposition of the workspace run so the speedup
is attributable stage by stage.  Results land in ``BENCH_kernels.json``
(path overridable via ``REPRO_BENCH_KERNELS_JSON``).

Timing is manual (``perf_counter``, interleaved best-of-3) so the numbers
exist even under ``pytest --benchmark-disable``; the committed full-scale
measurement is produced with ``REPRO_BENCH_SCALE=1``.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from repro import DBDPPolicy, LDFPolicy
from repro.experiments.configs import video_symmetric_spec
from repro.experiments.grid import run_sweep_fused
from repro.sim import jit_kernels, perf

from _bench_utils import bench_intervals

#: The paper's Fig. 3 horizon; scaled by REPRO_BENCH_SCALE.
PAPER_INTERVALS = 5000
NUM_SEEDS = 20
ALPHAS = tuple(round(0.40 + 0.02 * i, 2) for i in range(16))
REPS = 3
#: Smoke floor for the workspace path.  The committed full-scale run on a
#: single-core container shows ~1.7x end-to-end (see BENCH_kernels.json;
#: the shared RNG draw generation — identical across backends by the
#: bit-identity contract — bounds the reachable ratio); assert well below
#: that so noisy CI boxes don't flake.
MIN_SPEEDUP = 1.25

POLICIES = {"DB-DP": DBDPPolicy, "LDF": LDFPolicy}


def _output_path() -> Path:
    return Path(
        os.environ.get("REPRO_BENCH_KERNELS_JSON", "BENCH_kernels.json")
    )


def _spec_builder(alpha: float):
    return video_symmetric_spec(alpha, delivery_ratio=0.9)


def _run(backend: str, intervals: int, seeds):
    return run_sweep_fused(
        "alpha*", ALPHAS, _spec_builder, POLICIES, intervals, seeds,
        validate=False, backend=backend,
    )


def test_kernel_backends_hotloop():
    intervals = bench_intervals(PAPER_INTERVALS)
    seeds = tuple(range(NUM_SEEDS))

    backends = ["legacy", "numpy"]
    # The JIT leg is only a distinct measurement when numba is actually
    # installed; forced-Python mode exists for semantics tests and would
    # just time the interpreter.
    jit_compiled = jit_kernels.HAS_NUMBA and not jit_kernels.force_python
    if jit_compiled:
        backends.append("jit")

    # Bit-identity first (also warms every code path before timing).
    results = {b: _run(b, intervals, seeds) for b in backends}
    reference = results["legacy"]
    for backend in backends[1:]:
        assert results[backend].points == reference.points, (
            f"backend {backend!r} diverged from the legacy engine"
        )

    best = {b: float("inf") for b in backends}
    for _ in range(REPS):
        for backend in backends:  # interleaved: noise hits all equally
            gc.collect()
            t0 = time.perf_counter()
            _run(backend, intervals, seeds)
            best[backend] = min(best[backend], time.perf_counter() - t0)

    # One instrumented workspace run for the stage decomposition.
    was_enabled = perf.counters.enabled
    perf.reset()
    perf.enable()
    try:
        _run("numpy", intervals, seeds)
        stages = perf.counters.snapshot()
    finally:
        perf.counters.enabled = was_enabled
        perf.reset()

    speedup = best["legacy"] / best["numpy"]
    report = {
        "workload": {
            "sweep": "video_symmetric_spec(alpha, delivery_ratio=0.9)",
            "values": list(ALPHAS),
            "policies": list(POLICIES),
            "num_intervals": intervals,
            "num_seeds": NUM_SEEDS,
        },
        "bit_identical_backends": backends,
        "numba_available": jit_kernels.HAS_NUMBA,
        "best_seconds": {b: round(best[b], 3) for b in backends},
        "speedup_numpy_vs_legacy": round(speedup, 2),
        "numpy_stage_seconds": {
            name: round(stat["seconds"], 4) for name, stat in stages.items()
        },
        "numpy_stage_allocs": {
            name: int(stat["allocs"])
            for name, stat in stages.items()
            if stat["allocs"]
        },
    }
    if jit_compiled:
        report["speedup_jit_vs_legacy"] = round(
            best["legacy"] / best["jit"], 2
        )
    path = _output_path()
    path.write_text(json.dumps(report, indent=2) + "\n")

    assert speedup > MIN_SPEEDUP, (
        f"workspace backend only {speedup:.2f}x faster than legacy "
        f"(legacy {best['legacy']:.2f}s, numpy {best['numpy']:.2f}s)"
    )
