"""Large-N scaling of the DP kernel: dense vs incremental priority state.

The dense workspace DP kernel re-derives the full service order and
solves an ``(S, N)``-plane timeline (with ``(N, N)`` exclusion matmuls)
every interval, so its per-interval cost grows as O(S*N^2) even though a
single interval can only change the priority permutation by one adjacent
swap and only ``K = min(N, max_transmissions + 1)`` links can possibly
transmit.  ``dp_state="incremental"`` keeps the inverse permutation and
serve-order tables alive in the workspace across intervals, applies
accepted swaps in O(commits), and solves the timeline on the ``(S, K)``
backlogged serve set only — bit-identical by construction (asserted here
and in ``tests/sim/test_incremental_dp.py``) and asymptotically flat in
N outside the O(S*N) candidate/selection scans.

This benchmark sweeps N over {20, 100, 500, 2000, 10000} on the video
workload, asserts bit-identity per N, times both paths interleaved
(best-of), and records a per-stage ``kernel.dp.*`` decomposition so the
win is attributable.  The dense leg stops at N=2000: its ``(N, N)``
exclusion buffer alone is ~800 MB of int64 at N=10000, which is exactly
the wall the incremental path removes — the N=10000 row therefore
reports the incremental path's absolute throughput with
``dense_seconds: null``.  Results land in ``BENCH_LARGE_N.json`` (path
overridable via ``REPRO_BENCH_LARGE_N_JSON``); the committed full-scale
measurement is produced with ``REPRO_BENCH_SCALE=1``.

Comparing the paths means comparing the *sum* of their ``kernel.dp.*``
stages (the incremental path reports its state upkeep under
``kernel.dp.incremental``, which the dense path does not have); see
``repro.sim.perf.KNOWN_STAGES``.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

import numpy as np

from repro import DBDPPolicy
from repro.experiments.configs import video_symmetric_spec
from repro.sim import perf
from repro.sim.batch_sim import BatchIntervalSimulator

from _bench_utils import bench_intervals

#: Paper-scale horizon per N (scaled by REPRO_BENCH_SCALE; the committed
#: artifact uses scale 1).  Short relative to the figure benchmarks
#: because each interval is timed N_GRID x 2 paths x REPS times.
PAPER_INTERVALS = 600
NUM_SEEDS = 8
N_GRID = (20, 100, 500, 2000, 10000)
#: Largest N the dense path runs at; beyond this its O(N^2) buffers and
#: matmuls are the point being demonstrated, not a practical baseline.
DENSE_N_MAX = 2000
REPS = 2
ALPHA = 0.55
#: Smoke floor for the combined kernel.dp.* stage ratio at N >= 2000.
#: The committed full-scale run shows ~10x (see BENCH_LARGE_N.json);
#: assert well below that so noisy CI boxes don't flake.  The issue's
#: acceptance bar (>= 5x at N=2000) is checked against the committed
#: artifact by tools/check_incremental_wins.py.
MIN_DP_STAGE_RATIO_2000 = 3.0
#: Identity-check horizon per N (unscaled; cheap and exercised fully).
IDENTITY_INTERVALS = 40


def _output_path() -> Path:
    return Path(
        os.environ.get("REPRO_BENCH_LARGE_N_JSON", "BENCH_LARGE_N.json")
    )


def _build(n: int, dp_state: str) -> BatchIntervalSimulator:
    spec = video_symmetric_spec(ALPHA, num_links=n)
    return BatchIntervalSimulator(
        spec,
        DBDPPolicy(),
        seeds=range(NUM_SEEDS),
        record_traces=False,  # stats-only: O(S*N) memory at N=10000
        validate=False,
        dp_state=dp_state,
    )


def _assert_identical(n: int) -> None:
    """Dense and incremental must produce bit-identical streaming stats."""
    stats = {}
    for mode in ("dense", "incremental"):
        sim = _build(n, mode)
        assert sim.dp_state == mode
        stats[mode] = sim.run(IDENTITY_INTERVALS)
    d, i = stats["dense"], stats["incremental"]
    assert np.array_equal(d.delivery_sums, i.delivery_sums), (
        f"N={n}: delivery sums diverged between dense and incremental"
    )
    assert np.array_equal(d.collision_sums, i.collision_sums)
    assert np.array_equal(
        np.asarray(d._overhead_rows), np.asarray(i._overhead_rows)
    ), f"N={n}: overhead traces diverged between dense and incremental"


def _time_run(n: int, mode: str, intervals: int) -> float:
    sim = _build(n, mode)  # bind (and any warm-compile) outside the timer
    gc.collect()
    t0 = time.perf_counter()
    sim.run(intervals)
    return time.perf_counter() - t0


def _stage_run(n: int, mode: str, intervals: int) -> dict:
    """One instrumented run; returns the perf-stage snapshot."""
    was_enabled = perf.counters.enabled
    sim = _build(n, mode)
    perf.reset()
    perf.enable()
    try:
        sim.run(intervals)
        return perf.counters.snapshot()
    finally:
        perf.counters.enabled = was_enabled
        perf.reset()


def _dp_seconds(stages: dict) -> float:
    return sum(
        stat["seconds"]
        for name, stat in stages.items()
        if name.startswith("kernel.dp.")
    )


def _prior_trajectory(path: Path):
    try:
        return list(json.loads(path.read_text()).get("trajectory", []))
    except (OSError, ValueError):
        return []


def test_large_n_scaling():
    intervals = bench_intervals(PAPER_INTERVALS, minimum=60)
    entries = []
    for n in N_GRID:
        dense_leg = n <= DENSE_N_MAX
        if dense_leg:
            _assert_identical(n)
        best = {"dense": float("inf"), "incremental": float("inf")}
        legs = (
            ("dense", "incremental") if dense_leg else ("incremental",)
        )
        for _ in range(REPS):
            for mode in legs:  # interleaved: noise hits both equally
                best[mode] = min(best[mode], _time_run(n, mode, intervals))

        inc_stages = _stage_run(n, "incremental", intervals)
        inc_dp = _dp_seconds(inc_stages)
        entry = {
            "num_links": n,
            "num_intervals": intervals,
            "num_seeds": NUM_SEEDS,
            "alpha": ALPHA,
            "incremental_seconds": round(best["incremental"], 3),
            "incremental_dp_stage_seconds": round(inc_dp, 4),
            "incremental_stages": {
                name: round(stat["seconds"], 4)
                for name, stat in inc_stages.items()
                if name.startswith("kernel.dp.")
            },
            "intervals_per_second_incremental": round(
                intervals / best["incremental"], 1
            ),
        }
        if dense_leg:
            dense_stages = _stage_run(n, "dense", intervals)
            dense_dp = _dp_seconds(dense_stages)
            entry.update(
                {
                    "dense_seconds": round(best["dense"], 3),
                    "dense_dp_stage_seconds": round(dense_dp, 4),
                    "dense_stages": {
                        name: round(stat["seconds"], 4)
                        for name, stat in dense_stages.items()
                        if name.startswith("kernel.dp.")
                    },
                    "wall_speedup": round(
                        best["dense"] / best["incremental"], 2
                    ),
                    "dp_stage_speedup": round(dense_dp / inc_dp, 2),
                }
            )
        else:
            entry["dense_seconds"] = None
            # Explicit nulls (not absent keys): consumers iterate the
            # entries list and read the speedup field unconditionally.
            entry["dp_stage_speedup"] = None
            entry["dense_skipped_reason"] = (
                f"dense path needs O(N^2) buffers (~{8 * n * n / 1e9:.1f} "
                "GB of int64 exclusion matrix alone at this N)"
            )
        entries.append(entry)
        print(
            f"N={n}: inc {best['incremental']:.3f}s"
            + (
                f" dense {best['dense']:.3f}s "
                f"(wall x{entry['wall_speedup']}, "
                f"dp-stages x{entry['dp_stage_speedup']})"
                if dense_leg
                else " (dense leg skipped)"
            )
        )

    report = {
        "workload": {
            "spec": f"video_symmetric_spec({ALPHA}, num_links=N)",
            "policy": "DB-DP",
            "num_intervals": intervals,
            "num_seeds": NUM_SEEDS,
            "record_traces": False,
        },
        "n_grid": list(N_GRID),
        "dense_n_max": DENSE_N_MAX,
        "entries": entries,
    }
    path = _output_path()
    trajectory = _prior_trajectory(path)
    by_n = {e["num_links"]: e for e in entries}
    head = by_n.get(2000, entries[-1])
    trajectory.append(
        {
            "num_intervals": intervals,
            "num_links": head["num_links"],
            "dp_stage_speedup": head.get("dp_stage_speedup"),
            "wall_speedup": head.get("wall_speedup"),
            "incremental_seconds": head["incremental_seconds"],
        }
    )
    report["trajectory"] = trajectory[-12:]  # bounded history
    path.write_text(json.dumps(report, indent=2) + "\n")

    big = by_n.get(2000)
    assert big is not None and big["dp_stage_speedup"] >= MIN_DP_STAGE_RATIO_2000, (
        "incremental dp-stage speedup at N=2000 below smoke floor: "
        f"{big and big.get('dp_stage_speedup')} < {MIN_DP_STAGE_RATIO_2000}"
    )
    # Every dense-comparable N must have passed bit-identity above; make
    # the scaling claim explicit too: the incremental path must not get
    # slower per interval as N grows from 500 to 2000 anywhere near the
    # dense path's quadratic blowup.
    if 500 in by_n and 2000 in by_n and by_n[500].get("dense_seconds"):
        inc_growth = (
            by_n[2000]["incremental_seconds"] / by_n[500]["incremental_seconds"]
        )
        dense_growth = (
            by_n[2000]["dense_seconds"] / by_n[500]["dense_seconds"]
        )
        assert inc_growth < dense_growth, (
            f"incremental path scaled worse than dense from N=500 to "
            f"N=2000 ({inc_growth:.2f}x vs {dense_growth:.2f}x)"
        )


if __name__ == "__main__":
    test_large_n_scaling()
