"""Multi-cell topology layer throughput: 10k links as cell-parallel rows.

The single-domain DP engine has a structural wall at large N: even with
``dp_state="incremental"`` every interval still scans all N links, and
the committed BENCH_LARGE_N.json baseline manages ~106 intervals/sec at
N=10000.  The topology layer (``repro.topology``) removes the wall by
partitioning the 10,000 links into 400 interference cells of 25 links
and simulating each (seed, cell) pair as an independent row — the
compiled cell kernel (``repro.topology.cellsim``) walks those rows at
thousands of intervals/sec on one core.

This benchmark records, in ``BENCH_TOPOLOGY.json``:

* the compiled engine on the disconnected 400x25 topology (the
  acceptance shape; same video workload, seeds and horizon family as
  ``bench_large_n.py``),
* the compiled engine with cross-cell boundary links (every border
  promoted, per-interval owner resolution),
* the numpy topology lowering (same semantics via the batch engine;
  measured at a shorter horizon — it is the portable fallback, not the
  headline),
* a same-box re-measurement of the single-domain incremental baseline,
  alongside the *pinned* committed baseline (106.1 int/s) the >= 10x
  acceptance ratio is defined against.

Intervals/sec counts topology intervals: one interval advances every
(seed, cell) row once, i.e. the whole 10,000-link network by one frame.
The committed artifact is produced with ``REPRO_BENCH_SCALE=1``; the
in-test assertion uses a smoke floor well below the acceptance bar so
noisy CI boxes don't flake.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from repro import DBDPPolicy
from repro.experiments.configs import video_symmetric_spec
from repro.sim.batch_sim import BatchIntervalSimulator
from repro.topology import grid_cells, run_topology_batch
from repro.topology import cellsim

from _bench_utils import bench_intervals

PAPER_INTERVALS = 600
NUM_SEEDS = 8
NUM_LINKS = 10000
NUM_CELLS = 400
ALPHA = 0.55
REPS = 2
#: Horizon for the numpy lowering leg (context only; ~2 orders of
#: magnitude slower than the compiled kernel at this shape).
NUMPY_INTERVALS = 40
#: The committed single-domain incremental baseline the acceptance
#: criterion pins (BENCH_LARGE_N.json, N=10000, this workload shape).
PINNED_BASELINE_INT_PER_SEC = 106.1
#: Smoke floor for compiled/pinned on scaled-down CI runs; the
#: committed full-scale artifact must show >= 10x.
MIN_COMPILED_RATIO = 3.0


def _output_path() -> Path:
    return Path(
        os.environ.get("REPRO_BENCH_TOPOLOGY_JSON", "BENCH_TOPOLOGY.json")
    )


def _time_compiled(topology, spec, intervals: int) -> float:
    best = float("inf")
    for _ in range(REPS):
        gc.collect()
        t0 = time.perf_counter()
        cellsim.run_topology_compiled(
            spec, DBDPPolicy(), range(NUM_SEEDS), topology, intervals
        )
        best = min(best, time.perf_counter() - t0)
    return best


def test_topology_scaling():
    intervals = bench_intervals(PAPER_INTERVALS, minimum=60)
    spec = video_symmetric_spec(ALPHA, num_links=NUM_LINKS)
    flat = grid_cells(NUM_LINKS, NUM_CELLS, cross_cell_fraction=0.0)
    crossed = grid_cells(NUM_LINKS, NUM_CELLS, cross_cell_fraction=0.04)
    assert len(crossed.boundary_links) == NUM_CELLS

    compiled_ok = cellsim.compiled_available()
    entry: dict = {
        "num_links": NUM_LINKS,
        "num_cells": NUM_CELLS,
        "links_per_cell": NUM_LINKS // NUM_CELLS,
        "num_seeds": NUM_SEEDS,
        "alpha": ALPHA,
        "num_intervals": intervals,
        "compiled_available": compiled_ok,
        "compile_error": cellsim.compile_error(),
    }

    if compiled_ok:
        flat_s = _time_compiled(flat, spec, intervals)
        cross_s = _time_compiled(crossed, spec, intervals)
        entry["compiled_seconds"] = round(flat_s, 3)
        entry["intervals_per_second_compiled"] = round(intervals / flat_s, 1)
        entry["compiled_cross_cell_seconds"] = round(cross_s, 3)
        entry["intervals_per_second_compiled_cross_cell"] = round(
            intervals / cross_s, 1
        )
        entry["num_boundary_links_cross_cell"] = len(crossed.boundary_links)
    else:
        entry["compiled_seconds"] = None
        entry["intervals_per_second_compiled"] = None

    # Numpy lowering, short horizon: the portable path's throughput is
    # context for the compiled speedup, not the acceptance number.
    np_intervals = max(10, bench_intervals(NUMPY_INTERVALS, minimum=10))
    gc.collect()
    t0 = time.perf_counter()
    run_topology_batch(
        spec, DBDPPolicy(), range(NUM_SEEDS), flat, np_intervals, rng="free"
    )
    np_s = time.perf_counter() - t0
    entry["numpy_intervals"] = np_intervals
    entry["numpy_seconds"] = round(np_s, 3)
    entry["intervals_per_second_numpy"] = round(np_intervals / np_s, 2)

    # Same-box single-domain baseline (one rep: context, not the pin).
    sim = BatchIntervalSimulator(
        spec,
        DBDPPolicy(),
        seeds=range(NUM_SEEDS),
        record_traces=False,
        validate=False,
        dp_state="incremental",
    )
    gc.collect()
    t0 = time.perf_counter()
    sim.run(intervals)
    base_s = time.perf_counter() - t0
    entry["single_domain_incremental_seconds"] = round(base_s, 3)
    entry["intervals_per_second_single_domain"] = round(
        intervals / base_s, 1
    )

    report = {
        "workload": {
            "spec": f"video_symmetric_spec({ALPHA}, num_links={NUM_LINKS})",
            "policy": "DB-DP",
            "topology": f"grid_cells({NUM_LINKS}, {NUM_CELLS})",
            "num_seeds": NUM_SEEDS,
        },
        "pinned_baseline_intervals_per_second": PINNED_BASELINE_INT_PER_SEC,
        "entry": entry,
    }
    if compiled_ok:
        ratio_pinned = (
            entry["intervals_per_second_compiled"]
            / PINNED_BASELINE_INT_PER_SEC
        )
        report["compiled_speedup_vs_pinned_baseline"] = round(ratio_pinned, 2)
        report["compiled_speedup_vs_same_box_baseline"] = round(
            entry["intervals_per_second_compiled"]
            / entry["intervals_per_second_single_domain"],
            2,
        )
    path = _output_path()
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    if compiled_ok:
        assert ratio_pinned >= MIN_COMPILED_RATIO, (
            f"compiled topology engine at {entry['intervals_per_second_compiled']}"
            f" int/s is below the {MIN_COMPILED_RATIO}x smoke floor over the "
            f"pinned {PINNED_BASELINE_INT_PER_SEC} int/s baseline"
        )


if __name__ == "__main__":
    test_topology_scaling()
