"""Benchmark-suite fixtures.

Each benchmark regenerates one figure of the paper (or an ablation) and
asserts its qualitative shape.  Horizons default to a reduced,
shape-preserving fraction of the paper's (``REPRO_BENCH_SCALE``, default
0.15); set ``REPRO_BENCH_SCALE=1`` to run the full evaluation.  Results are
printed so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
figure-regeneration harness.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--engine",
        action="store",
        default=None,
        choices=("scalar", "batch", "fused"),
        help=(
            "Simulation engine for figure benchmarks (default: "
            "REPRO_BENCH_ENGINE or 'fused'; unsupported cells fall back "
            "automatically)"
        ),
    )


@pytest.fixture
def engine(request) -> str:
    """Resolved engine for this run: --engine, REPRO_BENCH_ENGINE, 'fused'."""
    from _bench_utils import resolve_engine

    return resolve_engine(request.config.getoption("--engine"))


@pytest.fixture
def report():
    """Print a figure table after the benchmark (visible with -s)."""
    from repro.experiments.reporting import format_figure

    def _print(result):
        print()
        print(format_figure(result))
        return result

    return _print
