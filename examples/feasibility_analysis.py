"""Feasibility analysis workflow: decide whether a requirement is servable
*before* deploying, then verify by simulation.

Walks the repository's analysis toolchain on a small industrial network:

1. the necessary workload bound (``sum q_n / p_n`` vs transmission
   opportunities),
2. subset workload inequalities (Monte-Carlo certificates of infeasibility),
3. the exact LP membership test in the hull of priority policies
   (one-packet-per-interval networks),
4. the one-interval Lyapunov drift of DB-DP at a large-debt state
   (negative drift = the Lemma 2 mechanism that pulls debts back),
5. empirical confirmation with both LDF and DB-DP.

Run with::

    python examples/feasibility_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BernoulliChannel,
    ConstantArrivals,
    DBDPPolicy,
    LDFPolicy,
    NetworkSpec,
    idealized_timing,
    run_simulation,
)
from repro.analysis.drift import estimate_one_interval_drift
from repro.analysis.feasibility import (
    infeasible_by_workload,
    priority_hull_contains,
    workload_utilization,
)

SLOTS = 8
RELIABILITIES = (0.55, 0.7, 0.85, 0.95)


def build(delivery_ratio: float) -> NetworkSpec:
    return NetworkSpec.from_delivery_ratios(
        arrivals=ConstantArrivals.symmetric(4, 1),
        channel=BernoulliChannel(success_probs=RELIABILITIES),
        timing=idealized_timing(SLOTS),
        delivery_ratios=delivery_ratio,
    )


def analyze(delivery_ratio: float) -> None:
    spec = build(delivery_ratio)
    print(f"--- required delivery ratio {delivery_ratio:.2f} ---")
    utilization = workload_utilization(spec)
    print(f"workload utilization (necessary < 1): {utilization:.3f}")

    certificate = infeasible_by_workload(spec, num_samples=1500)
    if certificate is not None:
        print(f"INFEASIBLE: subset {certificate} violates its workload bound")
    else:
        print("no workload certificate of infeasibility")

    exact = priority_hull_contains(
        spec.requirement_vector, RELIABILITIES, SLOTS
    )
    print(f"exact hull membership (one-packet case): {exact}")

    drift = estimate_one_interval_drift(
        spec, DBDPPolicy, debts=[25.0] * 4, num_samples=200
    )
    print(
        f"DB-DP Lyapunov drift at debt 25: {drift.mean_drift:+.2f} "
        f"(+-{2 * drift.std_error:.2f})"
    )

    for policy in (LDFPolicy(), DBDPPolicy()):
        result = run_simulation(spec, policy, 3000, seed=1)
        print(
            f"{policy.name:>6s} simulated deficiency: "
            f"{result.total_deficiency():.4f}"
        )
    print()


def main() -> None:
    print(
        f"network: 4 links, p = {RELIABILITIES}, {SLOTS} transmission "
        "opportunities per interval, one packet per link per interval\n"
    )
    # A comfortably feasible requirement, then an impossible one.
    analyze(0.80)
    analyze(0.99)
    print(
        "The 0.80 requirement passes every test and both policies fulfill "
        "it; at 0.99 the weak links' workload certificate, the LP, the "
        "positive drift, and the persistent simulated deficiency all agree "
        "it is infeasible."
    )


if __name__ == "__main__":
    main()
