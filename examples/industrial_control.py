"""Ultra-low-latency control loops in a factory cell (Section VI-B).

Ten sensor/actuator links exchange 100 B control messages with a hard 2 ms
deadline and a 99% delivery-ratio requirement over a lossy channel
(p = 0.7).  This example runs the *event-driven* microsecond simulator —
the repository's ns-3 substitute — so the protocol is exercised through
genuine carrier sensing and backoff countdown, then verifies the fast
interval engine agrees.

Run with::

    python examples/industrial_control.py
"""

from __future__ import annotations

import numpy as np

from repro import DBDPPolicy, run_simulation
from repro.experiments.configs import low_latency_spec
from repro.sim.event_sim import EventDrivenDPSimulator

INTERVALS = 2000
SEED = 23


def main() -> None:
    spec = low_latency_spec(arrival_rate=0.78, delivery_ratio=0.99)
    print(
        f"control scenario: {spec.num_links} links, 2 ms deadline, "
        f"{spec.timing.max_transmissions} transmissions per interval, "
        f"q = {spec.requirements[0]:.3f} packets/interval per link\n"
    )

    event_sim = EventDrivenDPSimulator(spec, seed=SEED)
    event_result = event_sim.run(INTERVALS)
    event_summary = event_result.summary()
    print(
        f"event-driven engine ({INTERVALS} intervals = "
        f"{INTERVALS * 2 / 1000:.0f} s of airtime):"
    )
    print(f"  total deficiency      {event_summary.total_deficiency:.4f}")
    print(f"  mean busy airtime     {event_summary.mean_busy_us:.0f} us / 2000 us")
    print(f"  per-link throughput   {event_summary.timely_throughput.round(3)}")

    interval_result = run_simulation(spec, DBDPPolicy(), INTERVALS, seed=SEED)
    gap = abs(
        interval_result.deliveries.mean()
        - event_result.deliveries.mean()
    )
    print("\nfast interval engine on the same scenario:")
    print(f"  total deficiency      {interval_result.total_deficiency():.4f}")
    print(f"  per-interval delivery gap between engines: {gap:.4f} packets")

    ratios = event_result.deliveries.sum(axis=0) / np.maximum(
        event_result.arrivals.sum(axis=0), 1
    )
    print(f"\nachieved delivery ratios: {ratios.round(4)} (target 0.99)")


if __name__ == "__main__":
    main()
