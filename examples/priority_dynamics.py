"""Inside the DP protocol: watch priorities move (Fig. 2's toy example).

A four-link network with perfect channels and one packet per interval —
small enough to print every interval's candidate pair, coin flips, backoff
timers, and the resulting priority exchange, exactly as in the paper's
Example 2 / Figure 2.  The second half verifies the long-run behaviour: the
empirical distribution over orderings matches the closed-form stationary
distribution of Proposition 2.

Run with::

    python examples/priority_dynamics.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import (
    BernoulliChannel,
    ConstantArrivals,
    DPProtocol,
    IntervalSimulator,
    NetworkSpec,
    PerLinkSwapBias,
    idealized_timing,
)
from repro.analysis.stationary import stationary_distribution

MUS = (0.85, 0.65, 0.45, 0.25)


def build_network() -> NetworkSpec:
    return NetworkSpec.from_delivery_ratios(
        arrivals=ConstantArrivals.symmetric(4, 1),
        channel=BernoulliChannel.symmetric(4, 1.0),
        timing=idealized_timing(8),
        delivery_ratios=1.0,
    )


def narrate(num_intervals: int = 12) -> None:
    """Print the handshake details for the first few intervals."""
    spec = build_network()
    policy = DPProtocol(bias=PerLinkSwapBias(MUS))
    from repro.sim.rng import RngBundle

    rng = RngBundle(2024)
    policy.bind(spec)
    from repro.core.debt import DebtLedger

    ledger = DebtLedger(spec.requirements)
    print("interval | sigma(k-1)   | C | xi(down,up) | backoffs     | committed")
    print("-" * 72)
    for k in range(num_intervals):
        sigma_before = policy.priorities
        arrivals = spec.arrivals.sample(rng.arrivals)
        outcome = policy.run_interval(k, arrivals, ledger.positive_debts, rng)
        ledger.record_interval(outcome.deliveries)
        (decision,) = outcome.info["swaps"]
        backoffs = outcome.info["backoffs"]
        print(
            f"{k:8d} | {list(sigma_before)} | {decision.candidate_priority} |"
            f" ({decision.xi_down:+d},{decision.xi_up:+d})      |"
            f" {[backoffs[i] for i in range(4)]} | {decision.committed}"
        )


def long_run_distribution(num_intervals: int = 40000) -> None:
    """Empirical ordering frequencies vs Proposition 2's closed form."""
    spec = build_network()
    policy = DPProtocol(bias=PerLinkSwapBias(MUS))
    sim = IntervalSimulator(spec, policy, seed=5)
    counts: Counter = Counter()
    for _ in range(num_intervals):
        sim.step()
        counts[policy.priorities] += 1
    theory = stationary_distribution(MUS)
    print("\ntop orderings (link -> priority), empirical vs Proposition 2:")
    for sigma, prob in sorted(theory.items(), key=lambda kv: -kv[1])[:6]:
        print(
            f"  {list(sigma)}: empirical {counts[sigma] / num_intervals:.4f}  "
            f"theory {prob:.4f}"
        )


def main() -> None:
    narrate()
    long_run_distribution()
    print(
        "\nHigh-mu links (mu = "
        + ", ".join(f"{m:g}" for m in MUS)
        + ") dominate the high-priority slots, exactly as the product-form "
        "stationary distribution predicts."
    )


if __name__ == "__main__":
    main()
