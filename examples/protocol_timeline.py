"""Visualize the DP protocol on the air: ASCII channel timelines.

Runs the microsecond event-driven simulator with tracing enabled and prints
the channel occupancy of the first few intervals — one row per link, time
left to right.  You can watch the collision-free staircase of
priority-ordered transmissions, retries after losses (``x`` then more
``X``), the candidates' empty priority-claiming packets (``o``), and the
priority vector changing between intervals when a swap commits.

Run with::

    python examples/protocol_timeline.py
"""

from __future__ import annotations

from repro.experiments.configs import low_latency_spec
from repro.sim.event_sim import EventDrivenDPSimulator
from repro.sim.timeline import render_intervals
from repro.sim.tracing import TraceRecorder

INTERVALS_TO_SHOW = 6


def main() -> None:
    spec = low_latency_spec(arrival_rate=0.7, delivery_ratio=0.95)
    recorder = TraceRecorder()
    simulator = EventDrivenDPSimulator(spec, seed=3, trace=recorder)
    simulator.run(INTERVALS_TO_SHOW)

    print(
        f"{spec.num_links} links, 2 ms intervals, "
        f"{spec.timing.data_airtime_us:.0f} us per data exchange, "
        f"{spec.timing.backoff_slot_us:.0f} us backoff slots\n"
        "legend: X airtime, + delivered, x lost (will retry), "
        "o empty priority-claiming packet, . idle\n"
    )
    print(
        render_intervals(
            recorder,
            list(range(INTERVALS_TO_SHOW)),
            spec.timing.interval_us,
            spec.num_links,
        )
    )

    committed = recorder.swaps(committed_only=True)
    print(
        f"\n{len(committed)} priority swaps committed in "
        f"{INTERVALS_TO_SHOW} intervals:"
    )
    for swap in committed:
        print(
            f"  interval {swap.interval}: links {swap.down_link} and "
            f"{swap.up_link} exchanged priorities "
            f"{swap.candidate_priority} <-> {swap.candidate_priority + 1}"
        )
    recorder.verify_no_overlap()
    print("\ncollision-freedom audit passed: no overlapping transmissions.")


if __name__ == "__main__":
    main()
