"""Quickstart: build a deadline-constrained wireless network, run DB-DP,
and compare it with the centralized LDF optimum.

The scenario is a small industrial cell: 8 links sharing one channel, one
control packet per link per interval with probability 0.8, per-attempt
success probability 0.7, a 2 ms deadline, and a 95% required delivery
ratio.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BernoulliArrivals,
    BernoulliChannel,
    DBDPPolicy,
    LDFPolicy,
    NetworkSpec,
    low_latency_timing,
    run_simulation,
)

NUM_LINKS = 8
INTERVALS = 3000
SEED = 7


def build_network() -> NetworkSpec:
    """The network tuple (N, A, T, p) plus requirements q."""
    return NetworkSpec.from_delivery_ratios(
        arrivals=BernoulliArrivals.symmetric(NUM_LINKS, rate=0.8),
        channel=BernoulliChannel.symmetric(NUM_LINKS, p=0.7),
        timing=low_latency_timing(),  # 2 ms deadline, 802.11a airtimes
        delivery_ratios=0.95,
    )


def main() -> None:
    spec = build_network()
    print(
        f"network: {spec.num_links} links, "
        f"{spec.timing.max_transmissions} transmission opportunities per "
        f"{spec.timing.interval_us / 1000:.1f} ms interval, "
        f"workload utilization {spec.workload_bound_utilization():.2f}"
    )

    for policy in (DBDPPolicy(), LDFPolicy()):
        result = run_simulation(spec, policy, INTERVALS, seed=SEED)
        summary = result.summary()
        print(
            f"{policy.name:>6s}: total deficiency "
            f"{summary.total_deficiency:.4f}  "
            f"(per-link timely-throughput "
            f"{summary.timely_throughput.round(3)} vs "
            f"requirement {spec.requirements[0]:.3f})"
        )
    print(
        "Both deficiencies should be ~0: the requirement vector is strictly "
        "feasible, DB-DP fulfills it without any central controller."
    )


if __name__ == "__main__":
    main()
