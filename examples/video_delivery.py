"""Real-time video delivery over a shared wireless cell (Section VI-A).

Twenty camera links stream bursty video (1500 B packets, 20 ms per-packet
deadline) through a fully-interfering channel with 70% per-attempt
reliability and a 90% required delivery ratio.  The script sweeps the load
parameter ``alpha*`` and prints the total timely-throughput deficiency of
the decentralized DB-DP algorithm next to the centralized LDF optimum and
the FCSMA baseline — a miniature of the paper's Figure 3.

Run with::

    python examples/video_delivery.py            # quick sweep
    REPRO_SCALE=1.0 python examples/video_delivery.py  # paper horizon
"""

from __future__ import annotations

from repro.experiments.configs import scaled_intervals, video_symmetric_spec
from repro.experiments.figures import fig3
from repro.experiments.reporting import format_figure

QUICK_ALPHAS = (0.45, 0.55, 0.62, 0.70)


def main() -> None:
    intervals = scaled_intervals(5000)
    spec = video_symmetric_spec(0.55)
    print(
        f"video scenario: {spec.num_links} links, "
        f"{spec.timing.data_airtime_us:.0f} us per packet exchange, "
        f"{spec.timing.max_transmissions} transmissions per 20 ms interval\n"
    )
    result = fig3(num_intervals=intervals, alphas=QUICK_ALPHAS)
    print(format_figure(result))
    lift_off = 0.1 * max(result.series["LDF"])
    admissible = max(
        (
            a
            for a, d in zip(result.x_values, result.series["LDF"])
            if d <= lift_off
        ),
        default=result.x_values[0],
    )
    print(
        f"LDF sustains alpha* up to ~{admissible:g}; DB-DP tracks it without "
        "any controller, while FCSMA's contention losses bite much earlier."
    )


if __name__ == "__main__":
    main()
