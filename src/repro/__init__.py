"""repro — reproduction of Hsieh & Hou, "A Decentralized Medium Access
Protocol for Real-Time Wireless Ad Hoc Networks With Unreliable
Transmissions" (ICDCS 2018).

Public API quick map
--------------------
Core algorithms
    :class:`~repro.core.dbdp.DBDPPolicy` — the paper's DB-DP algorithm.
    :class:`~repro.core.dp_protocol.DPProtocol` — generic Algorithm 2.
    :class:`~repro.core.eldf.ELDFPolicy` / :class:`~repro.core.eldf.LDFPolicy`
    — centralized feasibility-optimal baselines (Algorithm 1).
    :class:`~repro.core.fcsma.FCSMAPolicy`, :class:`~repro.core.dcf.DCFPolicy`
    — contention-based baselines.
Model building blocks
    :class:`~repro.core.requirements.NetworkSpec`, arrival processes in
    :mod:`repro.traffic.arrivals`, channels in :mod:`repro.phy.channel`,
    timing in :mod:`repro.phy.timing`.
Simulation
    :func:`~repro.sim.interval_sim.run_simulation` (fast interval engine),
    :func:`~repro.sim.batch_sim.run_simulation_batch` (vectorized
    all-seeds-at-once engine), :mod:`repro.sim.event_sim` (microsecond
    event-driven engine).
Analysis
    :mod:`repro.analysis` — exact priority-chain analysis, feasibility
    bounds, metrics.
Experiments
    :mod:`repro.experiments.figures` — ``fig3()`` ... ``fig10()``.
Policy registry
    :mod:`repro.core.registry` — one :class:`~repro.core.registry.\
PolicyDescriptor` per policy family (name, config round-trip, batch
    kernel, capability flags); every engine, the sweep cache, and the
    CLI dispatch through it.  ``registry.available()`` lists the names.
"""

from .core import registry
from .core.dbdp import DBDPPolicy, GlauberDebtBias, PAPER_R
from .core.debt import DebtLedger
from .core.dcf import DCFPolicy
from .core.dp_protocol import (
    ConstantSwapBias,
    DPProtocol,
    PerLinkSwapBias,
    SwapBias,
)
from .core.eldf import ELDFPolicy, LDFPolicy
from .core.estimation import EstimatedDBDPPolicy, ReliabilityEstimator
from .core.fcsma import DebtWindowMap, FCSMAPolicy
from .core.frame_csma import FrameCSMAPolicy
from .core.round_robin import RoundRobinPolicy
from .core.influence import (
    DebtInfluenceFunction,
    LinearInfluence,
    LogInfluence,
    PaperLogInfluence,
    PowerInfluence,
)
from .core.policies import IntervalMac, IntervalOutcome
from .core.registry import PolicyCapabilities, PolicyDescriptor
from .core.requirements import NetworkSpec
from .core.static_priority import StaticPriorityPolicy
from .phy.channel import (
    BernoulliChannel,
    GilbertElliottChannel,
    TimeVaryingReliability,
    channel_from_spec,
)
from .phy.timing import (
    Dot11aPhy,
    IntervalTiming,
    idealized_timing,
    low_latency_timing,
    video_timing,
)
from .sim.batch_sim import (
    BatchIntervalSimulator,
    BatchSimulationResult,
    run_simulation_batch,
    supports_batch_engine,
)
from .sim.interval_sim import IntervalSimulator, run_simulation
from .sim.results import SimulationResult, SimulationSummary
from .sim.rng import BatchRngBundle, RngBundle
from .traffic.arrivals import (
    ArrivalProcess,
    BernoulliArrivals,
    BurstyVideoArrivals,
    ConstantArrivals,
    CorrelatedBurstArrivals,
    TruncatedPoissonArrivals,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # algorithms
    "DBDPPolicy",
    "DPProtocol",
    "ELDFPolicy",
    "LDFPolicy",
    "FCSMAPolicy",
    "DCFPolicy",
    "FrameCSMAPolicy",
    "RoundRobinPolicy",
    "EstimatedDBDPPolicy",
    "ReliabilityEstimator",
    "StaticPriorityPolicy",
    # protocol pieces
    "SwapBias",
    "ConstantSwapBias",
    "PerLinkSwapBias",
    "GlauberDebtBias",
    "PAPER_R",
    "DebtWindowMap",
    # influence functions
    "DebtInfluenceFunction",
    "LinearInfluence",
    "LogInfluence",
    "PaperLogInfluence",
    "PowerInfluence",
    # model
    "NetworkSpec",
    "DebtLedger",
    "BernoulliChannel",
    "GilbertElliottChannel",
    "TimeVaryingReliability",
    "channel_from_spec",
    "Dot11aPhy",
    "IntervalTiming",
    "video_timing",
    "low_latency_timing",
    "idealized_timing",
    "ArrivalProcess",
    "BernoulliArrivals",
    "BurstyVideoArrivals",
    "ConstantArrivals",
    "CorrelatedBurstArrivals",
    "TruncatedPoissonArrivals",
    # simulation
    "IntervalMac",
    "IntervalOutcome",
    "IntervalSimulator",
    "run_simulation",
    "BatchIntervalSimulator",
    "BatchSimulationResult",
    "run_simulation_batch",
    "supports_batch_engine",
    "SimulationResult",
    "SimulationSummary",
    "RngBundle",
    "BatchRngBundle",
    # policy registry
    "registry",
    "PolicyDescriptor",
    "PolicyCapabilities",
]
