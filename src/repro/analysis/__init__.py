"""Analysis tools: exact priority-chain Markov analysis, feasibility
bounds, finite-horizon optimality checks, and metric helpers."""
