"""Capacity estimation: the admissible boundary of a policy.

The paper's Figures 3/7/9 are read through their lift-off points — the
largest load a policy sustains with (near-)zero deficiency.  This module
estimates that boundary by bisection over a scenario's load parameter,
which is how EXPERIMENTS.md quantifies "FCSMA supports only about 70% of
the maximum admissible alpha*".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.requirements import NetworkSpec
from ..sim.interval_sim import run_simulation
from .metrics import total_deficiency

__all__ = ["CapacityEstimate", "admissible_boundary", "relative_capacity"]


@dataclass(frozen=True)
class CapacityEstimate:
    """Result of a bisection search for the admissible boundary."""

    boundary: float
    lower: float  # largest load confirmed sustained
    upper: float  # smallest load confirmed deficient
    iterations: int
    threshold: float


def admissible_boundary(
    spec_builder: Callable[[float], NetworkSpec],
    policy_factory: Callable[[], object],
    low: float,
    high: float,
    num_intervals: int = 2000,
    seeds: Sequence[int] = (0,),
    threshold: float = 0.25,
    tolerance: float = 0.01,
    max_iterations: int = 12,
) -> CapacityEstimate:
    """Bisect the load parameter for the policy's lift-off point.

    ``spec_builder(load)`` must produce harder instances as ``load`` grows.
    A load is "sustained" when the seed-averaged total deficiency stays
    below ``threshold`` after ``num_intervals`` intervals.  ``low`` must be
    sustained and ``high`` deficient, or the search degenerates to the
    given endpoint.
    """
    if not low < high:
        raise ValueError(f"need low < high, got {low}, {high}")
    if threshold <= 0 or tolerance <= 0:
        raise ValueError("threshold and tolerance must be positive")

    def sustained(load: float) -> bool:
        totals = []
        for seed in seeds:
            spec = spec_builder(load)
            result = run_simulation(
                spec, policy_factory(), num_intervals, seed=seed
            )
            totals.append(
                total_deficiency(result.deliveries, spec.requirement_vector)
            )
        return sum(totals) / len(totals) < threshold

    if not sustained(low):
        return CapacityEstimate(low, low, low, 0, threshold)
    if sustained(high):
        return CapacityEstimate(high, high, high, 0, threshold)

    iterations = 0
    while high - low > tolerance and iterations < max_iterations:
        mid = (low + high) / 2.0
        if sustained(mid):
            low = mid
        else:
            high = mid
        iterations += 1
    return CapacityEstimate(
        boundary=(low + high) / 2.0,
        lower=low,
        upper=high,
        iterations=iterations,
        threshold=threshold,
    )


def relative_capacity(
    estimate: CapacityEstimate, reference: CapacityEstimate
) -> float:
    """Boundary ratio (e.g. FCSMA / LDF — the paper's ~0.7)."""
    if reference.boundary <= 0:
        raise ValueError("reference boundary must be positive")
    return estimate.boundary / reference.boundary
