"""Convergence-time analysis (the Fig. 5 study).

The paper measures how fast the running timely-throughput of the link that
*starts* at the lowest priority approaches its requirement — LDF converges
quickly by construction, and DB-DP's priority chain is shown to reach a
comparable neighborhood.  These helpers turn delivery traces into
convergence times.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "running_mean",
    "time_to_neighborhood",
    "relative_convergence_time",
]


def running_mean(series: Sequence[float]) -> np.ndarray:
    """Cumulative mean of a per-interval series."""
    x = np.asarray(series, dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise ValueError("series must be a non-empty 1-D sequence")
    return np.cumsum(x) / np.arange(1, x.size + 1)


def time_to_neighborhood(
    series: Sequence[float],
    target: float,
    relative_tolerance: float = 0.01,
) -> Optional[int]:
    """First interval after which the running mean *stays* near ``target``.

    "Near" means within ``relative_tolerance * target`` (the paper's "1%
    neighborhood of the timely-throughput requirement"); "stays" means every
    later interval of the trace also qualifies.  Returns the 0-based
    interval index, or ``None`` if the trace never settles.
    """
    if target <= 0:
        raise ValueError(f"target must be positive, got {target}")
    if relative_tolerance <= 0:
        raise ValueError(
            f"relative tolerance must be positive, got {relative_tolerance}"
        )
    mean = running_mean(series)
    inside = np.abs(mean - target) <= relative_tolerance * target
    # The settle point is right after the last outside sample.
    outside = np.flatnonzero(~inside)
    if outside.size == 0:
        return 0
    settle = int(outside[-1]) + 1
    if settle >= mean.size:
        return None
    return settle


def relative_convergence_time(
    series_a: Sequence[float],
    series_b: Sequence[float],
    target: float,
    relative_tolerance: float = 0.01,
) -> Optional[float]:
    """Ratio of the two traces' convergence times (a / b).

    Returns ``None`` when either trace fails to settle.  Used to quantify
    "DB-DP achieves a convergence time comparable to LDF".
    """
    time_a = time_to_neighborhood(series_a, target, relative_tolerance)
    time_b = time_to_neighborhood(series_b, target, relative_tolerance)
    if time_a is None or time_b is None:
        return None
    if time_b == 0:
        return float("inf") if time_a > 0 else 1.0
    return time_a / time_b
