"""Numerical Lyapunov-drift analysis (the machinery behind Lemma 2).

Lemma 2 proves feasibility optimality through a one-interval drift argument
on the quadratic-type Lyapunov function built from the debt influence
function:

    V(d) = sum_n F(d_n^+),   F(x) = integral_0^x f(u) du,

whose one-interval drift satisfies
``E[V(d(k+1)) - V(d(k)) | d(k)] <= sum_n f(d_n^+)(q_n - E[S_n]) + const``.
A policy that (near-)maximizes ``E[sum f(d_n^+) S_n]`` therefore gets
negative drift outside a ball whenever ``q`` is strictly feasible — positive
recurrence of ``{d(k)}``.

This module measures that drift empirically: it plants the ledger at chosen
debt states, simulates many independent one-interval transitions, and
reports the estimated drift.  The test-suite uses it to exhibit Lemma 2's
conclusion on concrete networks (negative drift for LDF/DB-DP at large
debts; non-negative drift for a deliberately bad policy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.influence import DebtInfluenceFunction, LinearInfluence
from ..core.policies import IntervalMac
from ..core.requirements import NetworkSpec
from ..sim.rng import RngBundle

__all__ = ["DriftEstimate", "lyapunov_value", "estimate_one_interval_drift"]


def lyapunov_value(
    debts: Sequence[float],
    influence: DebtInfluenceFunction | None = None,
    grid_points: int = 256,
) -> float:
    """``V(d) = sum_n F(d_n^+)`` with ``F`` the antiderivative of ``f``.

    For the linear influence this is the classical ``sum (d_n^+)^2 / 2``;
    for general ``f`` the integral is evaluated by the trapezoid rule on a
    fixed grid (f is continuous and nondecreasing per Definition 6, so the
    error is second order).
    """
    influence = influence or LinearInfluence()
    total = 0.0
    for debt in debts:
        x = max(0.0, float(debt))
        if x == 0.0:
            continue
        grid = np.linspace(0.0, x, grid_points)
        values = np.array([influence(u) for u in grid])
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        total += float(trapezoid(values, grid))
    return total


@dataclass(frozen=True)
class DriftEstimate:
    """Monte-Carlo estimate of the one-interval Lyapunov drift at a state."""

    state: tuple
    mean_drift: float
    std_error: float
    samples: int

    @property
    def is_negative(self) -> bool:
        """True when the drift is negative beyond two standard errors."""
        return self.mean_drift + 2 * self.std_error < 0.0


def estimate_one_interval_drift(
    spec: NetworkSpec,
    policy_factory: Callable[[], IntervalMac],
    debts: Sequence[float],
    influence: DebtInfluenceFunction | None = None,
    num_samples: int = 400,
    seed: int = 0,
) -> DriftEstimate:
    """Estimate ``E[V(d(k+1)) - V(d(k)) | d(k) = debts]`` under the policy.

    Each sample draws fresh arrivals and channel outcomes, runs exactly one
    interval from the planted debt state, and evaluates the Lyapunov
    difference.  The policy is rebuilt per sample so stateful policies (the
    DP family's priority vector) start from their canonical state; for
    priority policies this measures the drift of the *worst-case fresh
    chain*, a conservative reading of the quasi-stationary argument.
    """
    influence = influence or LinearInfluence()
    debts = np.asarray(debts, dtype=float)
    if debts.shape != (spec.num_links,):
        raise ValueError(
            f"expected {spec.num_links} debts, got shape {debts.shape}"
        )
    if num_samples < 2:
        raise ValueError(f"need at least 2 samples, got {num_samples}")

    v_before = lyapunov_value(debts, influence)
    q = spec.requirement_vector
    positive = np.maximum(debts, 0.0)
    diffs = np.empty(num_samples)
    for i in range(num_samples):
        rng = RngBundle(seed * 1_000_003 + i)
        policy = policy_factory()
        policy.bind(spec)
        arrivals = spec.arrivals.sample(rng.arrivals)
        outcome = policy.run_interval(0, arrivals, positive, rng)
        after = debts + q - outcome.deliveries
        diffs[i] = lyapunov_value(after, influence) - v_before
    return DriftEstimate(
        state=tuple(float(d) for d in debts),
        mean_drift=float(diffs.mean()),
        std_error=float(diffs.std(ddof=1) / np.sqrt(num_samples)),
        samples=num_samples,
    )
