"""Empirical estimation of the priority chain from simulation traces.

Bridges the exact theory (:mod:`repro.analysis.markov`) and the running
protocol: estimate the transition matrix and occupancy distribution of
``{sigma(k)}`` from a recorded trace and compare against Eq. (9) /
Proposition 2.  Used by tests to confirm the *simulated* protocol realizes
the *analyzed* chain, and available to users for diagnosing configurations
(e.g. quantifying how much condition-C1 saturation slows the chain).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.permutations import enumerate_priority_vectors

__all__ = [
    "EmpiricalChain",
    "estimate_chain",
    "occupancy_distribution",
    "total_variation_distance",
]

Sigma = Tuple[int, ...]


@dataclass(frozen=True)
class EmpiricalChain:
    """Transition counts and relative frequencies from a priority trace."""

    states: Tuple[Sigma, ...]
    counts: np.ndarray  # (S, S) transition counts
    visits: np.ndarray  # (S,) state visit counts (as transition sources)

    def transition_probability(self, source: Sigma, target: Sigma) -> float:
        i = self.states.index(source)
        j = self.states.index(target)
        if self.visits[i] == 0:
            return float("nan")
        return float(self.counts[i, j] / self.visits[i])

    @property
    def matrix(self) -> np.ndarray:
        """Row-normalized transition estimates (nan rows for unvisited)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return self.counts / self.visits[:, None]


def estimate_chain(priorities: Sequence[Sigma]) -> EmpiricalChain:
    """Estimate the chain from a trace of priority vectors.

    The trace is the ``priorities`` list of a
    :class:`~repro.sim.results.SimulationResult` recorded with
    ``record_priorities=True``.  State space is the full symmetric group of
    the trace's dimension — keep ``N`` small (``N!`` states).
    """
    trace = [tuple(int(v) for v in sigma) for sigma in priorities]
    if len(trace) < 2:
        raise ValueError("need at least two intervals to estimate transitions")
    n = len(trace[0])
    if n > 6:
        raise ValueError(
            f"empirical chain estimation supports at most 6 links, got {n}"
        )
    states = tuple(enumerate_priority_vectors(n))
    index = {sigma: i for i, sigma in enumerate(states)}
    size = len(states)
    counts = np.zeros((size, size))
    visits = np.zeros(size)
    for source, target in zip(trace, trace[1:]):
        i, j = index[source], index[target]
        counts[i, j] += 1
        visits[i] += 1
    return EmpiricalChain(states=states, counts=counts, visits=visits)


def occupancy_distribution(priorities: Sequence[Sigma]) -> Dict[Sigma, float]:
    """Relative frequency of each visited ordering."""
    trace = [tuple(int(v) for v in sigma) for sigma in priorities]
    if not trace:
        raise ValueError("empty trace")
    counter = Counter(trace)
    total = len(trace)
    return {sigma: count / total for sigma, count in counter.items()}


def total_variation_distance(
    empirical: Dict[Sigma, float], theoretical: Dict[Sigma, float]
) -> float:
    """``0.5 * sum |p - q|`` over the union of supports."""
    support = set(empirical) | set(theoretical)
    return 0.5 * sum(
        abs(empirical.get(sigma, 0.0) - theoretical.get(sigma, 0.0))
        for sigma in support
    )
