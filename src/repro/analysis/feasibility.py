"""Feasibility analysis of timely-throughput requirement vectors (Section II-C).

Three complementary tools:

* **Workload outer bounds** (necessary conditions): every delivery by link
  ``n`` costs ``1 / p_n`` attempts in expectation, the interval offers at
  most ``T`` attempts, and a subset ``S`` of links can usefully absorb at
  most ``E[min(drain_S, T)]`` attempts where ``drain_S`` is the attempt
  count needed to clear all of ``S``'s arrivals.  Violating any subset
  inequality certifies ``q`` infeasible.
* **Exact hull membership** for one-packet-per-interval networks: priority
  policies are the extreme points of the achievable region, each ordering's
  expected delivery vector is computed in closed form, and an LP decides
  whether ``q`` is dominated by a convex combination — exact (up to the
  ordering enumeration limit) for the classical Hou-Borkar-Kumar setting.
* **Empirical feasibility**: run the feasibility-optimal ELDF policy and
  check the deficiency converges — the practical oracle for large networks.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from ..core.eldf import LDFPolicy
from ..core.requirements import NetworkSpec
from ..sim.interval_sim import run_simulation

__all__ = [
    "workload_utilization",
    "subset_workload_slack",
    "infeasible_by_workload",
    "one_packet_delivery_vector",
    "priority_hull_contains",
    "empirical_feasibility",
    "FeasibilityVerdict",
]


def workload_utilization(spec: NetworkSpec) -> float:
    """``sum_n q_n / p_n`` over the interval's transmission opportunities.

    Above 1 certifies infeasibility; below 1 is necessary, not sufficient.
    """
    return spec.workload_bound_utilization()


def subset_workload_slack(
    spec: NetworkSpec,
    subset: Sequence[int],
    num_samples: int = 2000,
    seed: int = 0,
) -> float:
    """Monte-Carlo slack of the subset workload inequality.

    Estimates ``E[min(drain_S, T)] - sum_{n in S} q_n / p_n`` where
    ``drain_S = sum_{n in S} sum over arrivals of Geometric(p_n)`` is the
    attempt count needed to deliver every arrival of the subset.  Negative
    slack (beyond MC noise) certifies infeasibility.
    """
    subset = tuple(sorted(set(int(i) for i in subset)))
    if not subset:
        raise ValueError("subset must be non-empty")
    n = spec.num_links
    if subset[0] < 0 or subset[-1] >= n:
        raise ValueError(f"subset {subset} out of range for {n} links")
    rng = np.random.default_rng(seed)
    slots = spec.timing.max_transmissions
    p = spec.reliabilities
    total = 0.0
    for _ in range(num_samples):
        arrivals = spec.arrivals.sample(rng)
        drain = 0
        for link in subset:
            count = int(arrivals[link])
            if count:
                drain += int(rng.geometric(p[link], size=count).sum())
            if drain >= slots:
                drain = slots
                break
        total += min(drain, slots)
    capacity = total / num_samples
    demand = float(
        sum(spec.requirement_vector[link] / p[link] for link in subset)
    )
    return capacity - demand


def infeasible_by_workload(
    spec: NetworkSpec,
    max_subset_size: Optional[int] = None,
    num_samples: int = 2000,
    seed: int = 0,
    noise_margin: float = 0.0,
) -> Optional[Tuple[int, ...]]:
    """Search subsets for a violated workload inequality.

    Returns the first violating subset (a certificate of infeasibility) or
    ``None`` if no inequality is violated.  Checks the full-set inequality
    first, then subsets up to ``max_subset_size`` (default: min(N, 4) to
    bound the combinatorics).
    """
    n = spec.num_links
    if workload_utilization(spec) > 1.0:
        return tuple(range(n))
    limit = min(n, 4) if max_subset_size is None else min(n, max_subset_size)
    for size in range(1, limit + 1):
        for subset in itertools.combinations(range(n), size):
            slack = subset_workload_slack(
                spec, subset, num_samples=num_samples, seed=seed
            )
            if slack < -abs(noise_margin):
                return subset
    return None


def one_packet_delivery_vector(
    order: Sequence[int],
    reliabilities: Sequence[float],
    slots: int,
) -> np.ndarray:
    """Exact expected deliveries per link under a fixed priority ordering.

    One packet per link per interval; the head link retries until success
    or interval end (LDF semantics).  Computed by propagating the exact
    distribution of slots remaining when each position starts:

    * delivered within ``t`` slots w.p. ``1 - (1-p)^t``;
    * consumes ``a`` slots w.p. ``p (1-p)^(a-1)`` on success at attempt
      ``a``, or all ``t`` slots on failure.
    """
    n = len(reliabilities)
    if sorted(order) != list(range(n)):
        raise ValueError(f"{order!r} is not an ordering of links 0..{n - 1}")
    if slots < 0:
        raise ValueError(f"slots must be nonnegative, got {slots}")
    deliveries = np.zeros(n)
    # dist[t] = probability the current position starts with t slots left.
    dist = np.zeros(slots + 1)
    dist[slots] = 1.0
    for link in order:
        p = float(reliabilities[link])
        if not 0.0 < p <= 1.0:
            raise ValueError(f"reliabilities must lie in (0, 1], got {p}")
        next_dist = np.zeros(slots + 1)
        delivered = 0.0
        # t = 0: nothing happens, the interval is over.
        next_dist[0] += dist[0]
        for t in range(1, slots + 1):
            mass = dist[t]
            if mass == 0.0:
                continue
            # Success at attempt a consumes a slots (a = 1..t).
            for a in range(1, t + 1):
                prob = p * (1.0 - p) ** (a - 1)
                delivered += mass * prob
                next_dist[t - a] += mass * prob
            # Failure for all t attempts consumes everything.
            next_dist[0] += mass * (1.0 - p) ** t
        deliveries[link] = delivered
        dist = next_dist
    return deliveries


def priority_hull_contains(
    requirements: Sequence[float],
    reliabilities: Sequence[float],
    slots: int,
    tolerance: float = 1e-9,
) -> bool:
    """Is ``q`` dominated by a convex combination of priority orderings?

    Exact feasibility test for the one-packet-per-interval network: solves
    the LP ``exists theta >= 0, sum theta = 1, sum_o theta_o E_o >= q``.
    Enumerates all ``N!`` orderings — intended for ``N <= 6``.
    """
    n = len(reliabilities)
    if n > 7:
        raise ValueError(f"ordering enumeration supports at most 7 links, got {n}")
    q = np.asarray(requirements, dtype=float)
    if q.shape != (n,):
        raise ValueError(f"expected {n} requirements, got shape {q.shape}")

    vectors = [
        one_packet_delivery_vector(order, reliabilities, slots)
        for order in itertools.permutations(range(n))
    ]
    matrix = np.column_stack(vectors)  # (n, n!)
    num_vars = matrix.shape[1]
    # linprog: minimize 0 subject to -E theta <= -q (i.e. E theta >= q),
    # sum theta = 1, theta >= 0.
    result = linprog(
        c=np.zeros(num_vars),
        A_ub=-matrix,
        b_ub=-(q - tolerance),
        A_eq=np.ones((1, num_vars)),
        b_eq=np.array([1.0]),
        bounds=[(0.0, None)] * num_vars,
        method="highs",
    )
    return bool(result.success)


@dataclass(frozen=True)
class FeasibilityVerdict:
    """Outcome of an empirical feasibility run."""

    fulfilled: bool
    total_deficiency: float
    num_intervals: int
    tolerance: float


def empirical_feasibility(
    spec: NetworkSpec,
    num_intervals: int = 5000,
    seed: int = 0,
    tolerance: float = 0.05,
) -> FeasibilityVerdict:
    """Run the feasibility-optimal LDF policy and judge the deficiency.

    ``q`` strictly inside the feasible region drives the deficiency to 0
    (Proposition 1); a residual above ``tolerance`` after ``num_intervals``
    intervals is evidence (not proof) of infeasibility.
    """
    result = run_simulation(spec, LDFPolicy(), num_intervals, seed=seed)
    total = result.total_deficiency()
    return FeasibilityVerdict(
        fulfilled=total <= tolerance,
        total_deficiency=total,
        num_intervals=num_intervals,
        tolerance=tolerance,
    )
