"""Exact analysis of the priority chain ``{sigma(k)}`` (Section IV-D).

For fixed swap biases ``mu_n`` the priority vector evolves as a Markov chain
on the symmetric group ``S_N`` with transition probabilities (Eq. (9))

    X[sigma, sigma'] = (1 - mu_i) mu_j / (N - 1) * P{R_i + R_j >= 1}

whenever ``sigma'`` is ``sigma`` with an adjacent priority pair exchanged
(``i`` the link moving down, ``j`` the link moving up), and 0 for any other
off-diagonal entry.  This module builds the full ``N! x N!`` matrix for
small ``N`` and checks the paper's structural claims: irreducibility and
aperiodicity (Lemma 4), time-reversibility and the product-form stationary
distribution (Proposition 2), plus spectral-gap/mixing-time diagnostics used
in the convergence study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..core.permutations import enumerate_priority_vectors

__all__ = [
    "SigmaChain",
    "build_sigma_chain",
    "stationary_from_matrix",
    "detailed_balance_residual",
    "spectral_gap",
    "mixing_time_upper_bound",
]

#: Type of the optional handshake-success model: maps (sigma, candidate c)
#: to P{R_i + R_j >= 1}, the probability that the swap handshake is
#: observable on the channel.  The default (1.0 everywhere) models condition
#: C1 with ample spare airtime.
HandshakeModel = Callable[[Tuple[int, ...], int], float]

MAX_EXACT_LINKS = 7  # 7! = 5040 states; beyond this the matrix is impractical.


@dataclass(frozen=True)
class SigmaChain:
    """The exact chain: ordered state list and transition matrix."""

    states: Tuple[Tuple[int, ...], ...]
    matrix: np.ndarray
    mus: Tuple[float, ...]

    @property
    def num_states(self) -> int:
        return len(self.states)

    def index(self, sigma: Sequence[int]) -> int:
        return self.states.index(tuple(sigma))

    def is_irreducible(self) -> bool:
        """Lemma 4 (first half): one communicating class."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.num_states))
        rows, cols = np.nonzero(self.matrix > 0)
        graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
        return nx.is_strongly_connected(graph)

    def is_aperiodic(self) -> bool:
        """Lemma 4 (second half).

        Sufficient check: an irreducible chain with any positive self-loop
        is aperiodic, and the sigma-chain always has self-loops (a swap
        attempt fails with positive probability since ``mu in (0, 1)``).
        """
        return bool(np.any(np.diag(self.matrix) > 0))

    def stationary(self) -> np.ndarray:
        return stationary_from_matrix(self.matrix)


def build_sigma_chain(
    mus: Sequence[float],
    handshake: Optional[HandshakeModel] = None,
) -> SigmaChain:
    """Construct the exact transition matrix of Eq. (9).

    Parameters
    ----------
    mus:
        Per-link swap biases ``mu_n in (0, 1)`` (fixed, i.e. the
        quasi-stationary regime of Section V-A).
    handshake:
        Optional ``P{R_i + R_j >= 1}`` model; defaults to 1.
    """
    n = len(mus)
    if n < 2:
        raise ValueError(f"the sigma chain needs at least 2 links, got {n}")
    if n > MAX_EXACT_LINKS:
        raise ValueError(
            f"exact analysis supports at most {MAX_EXACT_LINKS} links "
            f"({MAX_EXACT_LINKS}! states), got {n}"
        )
    for mu in mus:
        if not 0.0 < mu < 1.0:
            raise ValueError(f"each mu must lie in (0, 1), got {mu}")

    states = tuple(enumerate_priority_vectors(n))
    index = {sigma: s for s, sigma in enumerate(states)}
    size = len(states)
    matrix = np.zeros((size, size))

    for s, sigma in enumerate(states):
        row_total = 0.0
        for c in range(1, n):  # candidate priority index C(k)
            link_down = sigma.index(c)
            link_up = sigma.index(c + 1)
            success = 1.0 if handshake is None else handshake(sigma, c)
            if not 0.0 <= success <= 1.0:
                raise ValueError(
                    f"handshake model returned {success} outside [0, 1]"
                )
            prob = (
                (1.0 - mus[link_down]) * mus[link_up] / (n - 1) * success
            )
            if prob == 0.0:
                continue
            swapped = list(sigma)
            swapped[link_down], swapped[link_up] = (
                swapped[link_up],
                swapped[link_down],
            )
            matrix[s, index[tuple(swapped)]] = prob
            row_total += prob
        matrix[s, s] = 1.0 - row_total

    return SigmaChain(states=states, matrix=matrix, mus=tuple(mus))


def stationary_from_matrix(matrix: np.ndarray) -> np.ndarray:
    """Solve ``pi X = pi`` by linear algebra (unique for irreducible X)."""
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    # (X^T - I) pi = 0 with sum(pi) = 1: replace one equation by the
    # normalization to get a nonsingular system.
    a = matrix.T - np.eye(size)
    a[-1, :] = 1.0
    b = np.zeros(size)
    b[-1] = 1.0
    pi = np.linalg.solve(a, b)
    if np.any(pi < -1e-9):
        raise ArithmeticError(
            "stationary solve produced negative mass; chain may be reducible"
        )
    pi = np.clip(pi, 0.0, None)
    return pi / pi.sum()


def detailed_balance_residual(chain: SigmaChain, pi: np.ndarray) -> float:
    """Max ``|pi_s X_st - pi_t X_ts|`` — 0 iff the chain is reversible."""
    flows = pi[:, None] * chain.matrix
    return float(np.abs(flows - flows.T).max())


def spectral_gap(matrix: np.ndarray) -> float:
    """``1 - |lambda_2|`` for the transition matrix (eigen decomposition)."""
    eigenvalues = np.linalg.eigvals(matrix)
    magnitudes = np.sort(np.abs(eigenvalues))[::-1]
    # The leading eigenvalue of a stochastic matrix is 1.
    second = magnitudes[1] if magnitudes.size > 1 else 0.0
    return float(1.0 - second)


def mixing_time_upper_bound(chain: SigmaChain, epsilon: float = 0.01) -> float:
    """Standard reversible-chain bound on the eps-mixing time (in intervals).

    ``t_mix(eps) <= log(1 / (eps * pi_min)) / gap``.  Interpreted loosely —
    it is a diagnostic for the convergence experiments, not a tight result.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    pi = chain.stationary()
    gap = spectral_gap(chain.matrix)
    if gap <= 0:
        return float("inf")
    pi_min = float(pi[pi > 0].min())
    return float(np.log(1.0 / (epsilon * pi_min)) / gap)
