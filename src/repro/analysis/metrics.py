"""Standalone metric helpers (Definition 1 and friends).

These operate on raw delivery matrices so they can be applied to traces
from either simulator (or imported traces), independent of
:class:`~repro.sim.results.SimulationResult`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "per_link_deficiency",
    "total_deficiency",
    "deficiency_series",
    "group_deficiency",
    "empirical_delivery_ratio",
    "jains_fairness_index",
]


def _as_matrix(deliveries: np.ndarray) -> np.ndarray:
    m = np.asarray(deliveries, dtype=float)
    if m.ndim != 2:
        raise ValueError(f"deliveries must be (K, N), got shape {m.shape}")
    return m


def per_link_deficiency(
    deliveries: np.ndarray, requirements: Sequence[float]
) -> np.ndarray:
    """``(q_n - mean_k S_n(k))^+`` per link (Definition 1)."""
    m = _as_matrix(deliveries)
    q = np.asarray(requirements, dtype=float)
    if q.shape != (m.shape[1],):
        raise ValueError(
            f"expected {m.shape[1]} requirements, got shape {q.shape}"
        )
    if m.shape[0] == 0:
        return q.copy()
    return np.maximum(q - m.mean(axis=0), 0.0)


def total_deficiency(
    deliveries: np.ndarray, requirements: Sequence[float]
) -> float:
    """Total timely-throughput deficiency (Definition 1, second part)."""
    return float(per_link_deficiency(deliveries, requirements).sum())


def deficiency_series(
    deliveries: np.ndarray, requirements: Sequence[float]
) -> np.ndarray:
    """Total deficiency after each interval — the convergence curve."""
    m = _as_matrix(deliveries)
    q = np.asarray(requirements, dtype=float)
    cumulative = np.cumsum(m, axis=0)
    ks = np.arange(1, m.shape[0] + 1)[:, None]
    return np.maximum(q[None, :] - cumulative / ks, 0.0).sum(axis=1)


def group_deficiency(
    deliveries: np.ndarray,
    requirements: Sequence[float],
    groups: Sequence[int],
) -> np.ndarray:
    """Per-group sums of per-link deficiency (Figs. 7-8 report these).

    ``groups[n]`` is the 0-based group id of link ``n``; the result has one
    entry per group id in ``0..max(groups)``.
    """
    link_deficiency = per_link_deficiency(deliveries, requirements)
    group_ids = np.asarray(groups, dtype=int)
    if group_ids.shape != link_deficiency.shape:
        raise ValueError("groups must have one id per link")
    num_groups = int(group_ids.max()) + 1
    out = np.zeros(num_groups)
    for gid in range(num_groups):
        out[gid] = link_deficiency[group_ids == gid].sum()
    return out


def empirical_delivery_ratio(
    deliveries: np.ndarray, arrivals: np.ndarray
) -> np.ndarray:
    """Delivered / arrived per link over the whole trace (0 if no arrivals)."""
    d = _as_matrix(deliveries).sum(axis=0)
    a = _as_matrix(arrivals).sum(axis=0)
    out = np.zeros_like(d)
    nonzero = a > 0
    out[nonzero] = d[nonzero] / a[nonzero]
    return out


def jains_fairness_index(values: Sequence[float]) -> float:
    """Jain's index ``(sum x)^2 / (n sum x^2)`` in ``(0, 1]``.

    Used to quantify the starvation-mitigation claim (Section I): under a
    fixed priority ordering, DP-style service keeps the index well above the
    ``1/n`` floor of a fully starving allocation.
    """
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        raise ValueError("need at least one value")
    if np.any(x < 0):
        raise ValueError(f"values must be nonnegative, got {x}")
    denom = x.size * float(np.square(x).sum())
    if denom == 0:
        return 1.0  # all-zero allocation is (vacuously) perfectly fair
    return float(np.square(x.sum()) / denom)
