"""Exact analysis of the multi-pair reordering chain (Remark 6).

The paper generalizes the DP protocol to several non-consecutive candidate
indices per interval and defers the analysis to its technical report.  This
module builds the exact transition matrix of that generalized chain so the
claim implicit in Remark 6 — the product-form stationary distribution of
Proposition 2 survives the extension — can be *verified* numerically:

* Candidate sets: all size-``P`` subsets of ``{1, .., N-1}`` with pairwise
  gaps >= 2, drawn uniformly (matching
  :func:`repro.core.dp_protocol.draw_candidate_indices`).
* Given a candidate set, each pair independently commits with probability
  ``(1 - mu_down) mu_up`` (both coins aligned; handshake assumed to
  complete, i.e. ample spare airtime).
* A transition applies the commits of *all* committed pairs — the pairs
  act on disjoint priority slots, so the swaps commute.

The chain remains reversible w.r.t. Proposition 2's product form: each
committed pair contributes exactly the single-pair detailed-balance factor,
and the factors multiply.  ``tests/analysis/test_multipair.py`` checks this
by brute force for several ``(N, P)``.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.permutations import enumerate_priority_vectors
from .markov import SigmaChain

__all__ = ["non_consecutive_candidate_sets", "build_multipair_chain"]


def non_consecutive_candidate_sets(
    num_links: int, num_pairs: int
) -> List[Tuple[int, ...]]:
    """All admissible candidate sets: size-P, gaps >= 2, within [1, N-1]."""
    if num_links < 2:
        return []
    if num_pairs < 1:
        raise ValueError(f"num_pairs must be >= 1, got {num_pairs}")
    sets = [
        combo
        for combo in itertools.combinations(range(1, num_links), num_pairs)
        if all(b - a >= 2 for a, b in zip(combo, combo[1:]))
    ]
    if not sets:
        raise ValueError(
            f"{num_pairs} non-consecutive pairs do not fit in a "
            f"{num_links}-link priority range"
        )
    return sets


def build_multipair_chain(
    mus: Sequence[float], num_pairs: int
) -> SigmaChain:
    """Exact transition matrix of the Remark-6 chain (small N only).

    With ``num_pairs = 1`` this reduces to
    :func:`repro.analysis.markov.build_sigma_chain` with handshake
    probability 1 (verified in tests).
    """
    n = len(mus)
    if n < 2:
        raise ValueError(f"need at least 2 links, got {n}")
    if n > 6:
        raise ValueError(f"exact multi-pair analysis supports N <= 6, got {n}")
    for mu in mus:
        if not 0.0 < mu < 1.0:
            raise ValueError(f"each mu must lie in (0, 1), got {mu}")

    candidate_sets = non_consecutive_candidate_sets(n, num_pairs)
    set_probability = 1.0 / len(candidate_sets)

    states = tuple(enumerate_priority_vectors(n))
    index = {sigma: s for s, sigma in enumerate(states)}
    size = len(states)
    matrix = np.zeros((size, size))

    for s, sigma in enumerate(states):
        for candidates in candidate_sets:
            # Each pair commits independently; enumerate every commit mask.
            pair_links = []
            pair_probs = []
            for c in candidates:
                down = sigma.index(c)
                up = sigma.index(c + 1)
                pair_links.append((down, up))
                pair_probs.append((1.0 - mus[down]) * mus[up])
            for mask in itertools.product((False, True), repeat=num_pairs):
                probability = set_probability
                target = list(sigma)
                for commit, (down, up), p_commit in zip(
                    mask, pair_links, pair_probs
                ):
                    probability *= p_commit if commit else (1.0 - p_commit)
                    if commit:
                        target[down], target[up] = target[up], target[down]
                if probability == 0.0:
                    continue
                matrix[s, index[tuple(target)]] += probability

    return SigmaChain(states=states, matrix=matrix, mus=tuple(mus))
