"""Finite-horizon optimal control of one interval (Lemma 3 verification).

Within one interval the scheduling problem is a finite-horizon MDP: the
state is (remaining packets per link, transmission slots left), the action
is which link transmits next, the reward of delivering a packet of link
``n`` is the fixed weight ``w_n = f(d_n^+) `` (the channel success
probability enters through the dynamics).  Lemma 3 asserts the ELDF
priority ordering — serve links by ``w_n p_n`` descending, exhaustively —
maximizes the expected weighted deliveries ``E[sum_n w_n S_n]`` among *all*
policies.

This module computes both the true optimum (value iteration over the exact
state space) and the value of any fixed priority ordering, so the test
suite can verify the equality on enumerable instances and exhibit the
strict gap of *bad* orderings.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "max_expected_weighted_deliveries",
    "priority_order_value",
    "eldf_order",
]


def _validate(
    weights: Sequence[float],
    packets: Sequence[int],
    reliabilities: Sequence[float],
    slots: int,
) -> Tuple[Tuple[float, ...], Tuple[int, ...], Tuple[float, ...]]:
    if not len(weights) == len(packets) == len(reliabilities):
        raise ValueError("weights, packets, reliabilities must align")
    if slots < 0:
        raise ValueError(f"slots must be nonnegative, got {slots}")
    w = tuple(float(x) for x in weights)
    a = tuple(int(x) for x in packets)
    p = tuple(float(x) for x in reliabilities)
    if any(x < 0 for x in w):
        raise ValueError(f"weights must be nonnegative, got {w}")
    if any(x < 0 for x in a):
        raise ValueError(f"packet counts must be nonnegative, got {a}")
    if any(not 0.0 < x <= 1.0 for x in p):
        raise ValueError(f"reliabilities must lie in (0, 1], got {p}")
    return w, a, p


def max_expected_weighted_deliveries(
    weights: Sequence[float],
    packets: Sequence[int],
    reliabilities: Sequence[float],
    slots: int,
) -> float:
    """Optimal ``E[sum w_n S_n]`` over all within-interval policies.

    Exact value iteration; the state space is ``prod (A_n + 1) * slots``, so
    keep instances small (intended for <= ~6 links with small bursts).
    """
    w, a0, p = _validate(weights, packets, reliabilities, slots)
    n = len(w)

    @lru_cache(maxsize=None)
    def value(remaining: Tuple[int, ...], t: int) -> float:
        if t == 0 or all(r == 0 for r in remaining):
            return 0.0
        best = 0.0  # idling is always admissible (and never better)
        for link in range(n):
            if remaining[link] == 0:
                continue
            after = list(remaining)
            after[link] -= 1
            gain = p[link] * (w[link] + value(tuple(after), t - 1))
            gain += (1.0 - p[link]) * value(remaining, t - 1)
            best = max(best, gain)
        return best

    result = value(a0, slots)
    value.cache_clear()
    return result


def priority_order_value(
    order: Sequence[int],
    weights: Sequence[float],
    packets: Sequence[int],
    reliabilities: Sequence[float],
    slots: int,
) -> float:
    """``E[sum w_n S_n]`` of a fixed priority ordering.

    ``order`` lists links highest-priority first; each link transmits
    back-to-back (retrying losses) until its buffer empties, then hands the
    channel to the next link (Algorithm 1 semantics).
    """
    w, a0, p = _validate(weights, packets, reliabilities, slots)
    if sorted(order) != list(range(len(w))):
        raise ValueError(f"{order!r} is not an ordering of links 0..{len(w) - 1}")
    order = tuple(int(link) for link in order)

    @lru_cache(maxsize=None)
    def value(position: int, remaining: int, t: int) -> float:
        """Expected weighted deliveries from ``position`` onward.

        ``remaining`` is the current position's outstanding packet count and
        ``t`` the slots left.
        """
        if t == 0:
            return 0.0
        if remaining == 0:
            next_position = position + 1
            while next_position < len(order) and a0[order[next_position]] == 0:
                next_position += 1
            if next_position >= len(order):
                return 0.0
            return value(next_position, a0[order[next_position]], t)
        link = order[position]
        success = p[link] * (w[link] + value(position, remaining - 1, t - 1))
        failure = (1.0 - p[link]) * value(position, remaining, t - 1)
        return success + failure

    start = 0
    while start < len(order) and a0[order[start]] == 0:
        start += 1
    if start >= len(order):
        return 0.0
    result = value(start, a0[order[start]], slots)
    value.cache_clear()
    return result


def eldf_order(
    weights: Sequence[float], reliabilities: Sequence[float]
) -> Tuple[int, ...]:
    """Links sorted by ``w_n p_n`` descending (Eq. (4)'s ordering)."""
    if len(weights) != len(reliabilities):
        raise ValueError("weights and reliabilities must align")
    scores = np.asarray(weights, dtype=float) * np.asarray(
        reliabilities, dtype=float
    )
    return tuple(int(i) for i in np.argsort(-scores, kind="stable"))
