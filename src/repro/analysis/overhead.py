"""Contention-overhead model for the DP protocol (Section IV-C).

The paper quantifies DP's overhead as (i) at most ``N + 1`` backoff slots
and (ii) at most two empty packets per interval.  This module computes the
*expected* overhead — tighter than the worst case — by sampling only the
protocol-level randomness (arrivals, candidate pair, coins), with no
channel or debt simulation needed:

* idle backoff time = (largest backoff among links that transmit) x slot;
* empty packets = candidates without arrivals.

The estimate assumes every transmission fits in the interval (light/medium
load), which upper-bounds the true overhead: saturated intervals cut the
backoff tail.  ``tests/analysis/test_overhead.py`` validates the model
against full simulations and the paper's bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.dp_protocol import compute_backoffs, draw_candidate_indices
from ..core.requirements import NetworkSpec

__all__ = ["OverheadModel", "expected_dp_overhead"]


@dataclass(frozen=True)
class OverheadModel:
    """Expected per-interval DP contention overhead."""

    mean_idle_slots: float
    mean_empty_packets: float
    mean_overhead_us: float
    worst_case_us: float  # the paper's (N+1) slots + 2 empty packets bound
    samples: int

    @property
    def lost_transmissions(self) -> float:
        """Overhead expressed in equivalent data transmissions (needs the
        caller to divide by airtime); kept raw here for clarity."""
        return self.mean_overhead_us


def expected_dp_overhead(
    spec: NetworkSpec,
    mu: float = 0.5,
    num_pairs: int = 1,
    num_samples: int = 4000,
    seed: int = 0,
) -> OverheadModel:
    """Monte-Carlo expectation of DP's per-interval overhead.

    ``mu`` is the (assumed common) coin bias — overhead is insensitive to
    it, since it only shifts which band slot a candidate occupies.
    Priorities are drawn uniformly (the long-run behaviour under symmetric
    biases); heterogeneous-bias stationary weighting would change which
    *link* sits where but not the backoff geometry, so the estimate applies
    broadly.
    """
    if not 0.0 < mu < 1.0:
        raise ValueError(f"mu must lie in (0, 1), got {mu}")
    if num_samples < 1:
        raise ValueError(f"need at least one sample, got {num_samples}")
    n = spec.num_links
    timing = spec.timing
    rng = np.random.default_rng(seed)

    idle_slots = np.empty(num_samples)
    empty_packets = np.empty(num_samples)
    for i in range(num_samples):
        arrivals = spec.arrivals.sample(rng)
        sigma = tuple(int(v) for v in rng.permutation(n) + 1)
        if n >= 2:
            candidates = draw_candidate_indices(n, num_pairs, rng)
        else:
            candidates = ()
        xi = {}
        candidate_links = set()
        for c in candidates:
            for link in (sigma.index(c), sigma.index(c + 1)):
                xi[link] = 1 if rng.random() < mu else -1
                candidate_links.add(link)
        backoffs = (
            compute_backoffs(sigma, candidates, xi)
            if candidates
            else {link: sigma[link] - 1 for link in range(n)}
        )
        transmitters = [
            link
            for link in range(n)
            if arrivals[link] > 0 or link in candidate_links
        ]
        idle_slots[i] = max(
            (backoffs[link] for link in transmitters), default=0
        )
        empty_packets[i] = sum(
            1 for link in candidate_links if arrivals[link] == 0
        )

    mean_idle = float(idle_slots.mean())
    mean_empty = float(empty_packets.mean())
    mean_overhead = (
        mean_idle * timing.backoff_slot_us
        + mean_empty * timing.empty_airtime_us
    )
    worst = (
        (n + 2 * num_pairs - 1) * timing.backoff_slot_us
        + 2 * num_pairs * timing.empty_airtime_us
    )
    return OverheadModel(
        mean_idle_slots=mean_idle,
        mean_empty_packets=mean_empty,
        mean_overhead_us=mean_overhead,
        worst_case_us=worst,
        samples=num_samples,
    )
