"""Exact timely-throughput region exploration (Definitions 3-5).

For one-packet-per-interval networks the achievable region ``Q`` is the
convex hull (plus free disposal) of the priority orderings' expected
delivery vectors; this module exposes the region through its support
function and implements the paper's feasibility taxonomy:

* :func:`support_point` — the delivery vector maximizing ``<w, E[S]>``,
  computed exactly (Lemma 3 makes a priority ordering optimal for any
  nonnegative weights, so the maximizer is the ``w p``-sorted ordering).
* :func:`region_vertices` — expected delivery vectors of all ``N!``
  orderings (the extreme candidates).
* :func:`is_feasible` / :func:`is_strictly_feasible` — Definitions 3's two
  notions: hull membership, and hull membership of ``(1 + alpha) q``.
* :func:`feasibility_margin` — the largest ``alpha`` with
  ``(1 + alpha) q`` feasible (bisection), quantifying how deep inside
  ``Q*`` a requirement sits — the quantity the Lyapunov drift scales with.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

import numpy as np

from .feasibility import one_packet_delivery_vector, priority_hull_contains
from .optimal_value import eldf_order

__all__ = [
    "support_point",
    "region_vertices",
    "is_feasible",
    "is_strictly_feasible",
    "feasibility_margin",
]


def support_point(
    weights: Sequence[float],
    reliabilities: Sequence[float],
    slots: int,
) -> np.ndarray:
    """The achievable delivery vector maximizing ``<weights, E[S]>``.

    Lemma 3: the maximizer over *all* policies is the priority ordering
    sorted by ``w_n p_n`` descending, so the support function of the region
    is computed exactly from one ordering evaluation.
    """
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0):
        raise ValueError(f"weights must be nonnegative, got {w}")
    order = eldf_order(w, reliabilities)
    return one_packet_delivery_vector(order, reliabilities, slots)


def region_vertices(
    reliabilities: Sequence[float], slots: int
) -> List[Tuple[Tuple[int, ...], np.ndarray]]:
    """(ordering, expected deliveries) for every priority ordering."""
    n = len(reliabilities)
    if n > 7:
        raise ValueError(f"vertex enumeration supports at most 7 links, got {n}")
    return [
        (order, one_packet_delivery_vector(order, reliabilities, slots))
        for order in itertools.permutations(range(n))
    ]


def is_feasible(
    q: Sequence[float],
    reliabilities: Sequence[float],
    slots: int,
) -> bool:
    """Definition 3 (first part): ``q`` is dominated by a hull point."""
    return priority_hull_contains(q, reliabilities, slots)


def is_strictly_feasible(
    q: Sequence[float],
    reliabilities: Sequence[float],
    slots: int,
    alpha: float = 0.01,
) -> bool:
    """Definition 3 (second part): ``q > 0`` and ``(1 + alpha) q`` feasible."""
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    q = np.asarray(q, dtype=float)
    if np.any(q <= 0):
        return False
    return priority_hull_contains((1.0 + alpha) * q, reliabilities, slots)


def feasibility_margin(
    q: Sequence[float],
    reliabilities: Sequence[float],
    slots: int,
    upper: float = 4.0,
    tolerance: float = 1e-3,
) -> float:
    """Largest ``alpha`` such that ``(1 + alpha) q`` remains feasible.

    Returns -1 if ``q`` itself is infeasible (outside the region), 0 if it
    sits exactly on the boundary (within tolerance).
    """
    q = np.asarray(q, dtype=float)
    if not priority_hull_contains(q, reliabilities, slots):
        return -1.0
    low, high = 0.0, upper
    if priority_hull_contains((1.0 + high) * q, reliabilities, slots):
        return high
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if priority_hull_contains((1.0 + mid) * q, reliabilities, slots):
            low = mid
        else:
            high = mid
    return low
