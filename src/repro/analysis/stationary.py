"""Closed-form stationary distributions (Propositions 2 and 3).

Proposition 2: for fixed biases ``mu_n`` the sigma-chain is reversible with

    pi*(sigma) = prod_n (mu_n / (1 - mu_n)) ** g(sigma_n) / Z,
    g(j) = N - j for 1 <= j <= N.

Proposition 3 (DB-DP, quasi-stationary regime): substituting Eq. (14),

    pi*(sigma; k) = exp( sum_n g(sigma_n) f(d_n^+(k)) p_n ) / Z(d(k))
                    -- when the Glauber constant R = 1.

Note the ``R = 1`` caveat: with ``mu = e^E / (R + e^E)`` the odds ratio is
``mu / (1 - mu) = e^E / R``, so the generic product form picks up a factor
``R^{-g(sigma_n)}`` per link.  Since ``sum_n g(sigma_n) = N (N - 1) / 2`` is
permutation-invariant, the factor cancels in the normalization and Eq. (15)
holds *verbatim for every R* — a small fact the paper leaves implicit, which
:func:`dbdp_stationary` exploits and the test-suite verifies.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

import numpy as np

from ..core.influence import DebtInfluenceFunction
from ..core.permutations import enumerate_priority_vectors

__all__ = [
    "priority_weight_exponent",
    "stationary_distribution",
    "dbdp_stationary",
    "most_probable_ordering",
    "ordering_probability",
]


def priority_weight_exponent(priority_index: int, num_links: int) -> int:
    """The exponent ``g(j) = N - j`` of Eqs. (12)/(17) (0 outside 1..N)."""
    if 1 <= priority_index <= num_links:
        return num_links - priority_index
    return 0


def stationary_distribution(
    mus: Sequence[float],
) -> Dict[Tuple[int, ...], float]:
    """Proposition 2's product form over all of ``S_N``.

    Only for small ``N`` (the distribution has ``N!`` atoms).
    """
    n = len(mus)
    if n < 1:
        raise ValueError("need at least one link")
    for mu in mus:
        if not 0.0 < mu < 1.0:
            raise ValueError(f"each mu must lie in (0, 1), got {mu}")
    log_odds = [math.log(mu / (1.0 - mu)) for mu in mus]
    log_weights = {}
    for sigma in enumerate_priority_vectors(n):
        log_weights[sigma] = sum(
            priority_weight_exponent(s, n) * lo for s, lo in zip(sigma, log_odds)
        )
    # Normalize in log space for numerical robustness.
    max_log = max(log_weights.values())
    weights = {s: math.exp(lw - max_log) for s, lw in log_weights.items()}
    z = sum(weights.values())
    return {s: w / z for s, w in weights.items()}


def dbdp_stationary(
    positive_debts: Sequence[float],
    reliabilities: Sequence[float],
    influence: DebtInfluenceFunction,
) -> Dict[Tuple[int, ...], float]:
    """Proposition 3's quasi-stationary distribution, Eq. (15).

    ``pi*(sigma) = exp(sum_n g(sigma_n) f(d_n^+) p_n) / Z(d)``.  Valid for
    any Glauber constant ``R`` (see the module docstring).
    """
    if len(positive_debts) != len(reliabilities):
        raise ValueError("debts and reliabilities must have equal length")
    n = len(positive_debts)
    energies = [
        influence(float(d)) * float(p)
        for d, p in zip(positive_debts, reliabilities)
    ]
    log_weights = {}
    for sigma in enumerate_priority_vectors(n):
        log_weights[sigma] = sum(
            priority_weight_exponent(s, n) * e for s, e in zip(sigma, energies)
        )
    max_log = max(log_weights.values())
    weights = {s: math.exp(lw - max_log) for s, lw in log_weights.items()}
    z = sum(weights.values())
    return {s: w / z for s, w in weights.items()}


def most_probable_ordering(
    positive_debts: Sequence[float],
    reliabilities: Sequence[float],
    influence: DebtInfluenceFunction,
) -> Tuple[int, ...]:
    """The mode of Eq. (15): links sorted by ``f(d^+) p`` descending.

    This is exactly the ELDF ordering (Algorithm 1) — the structural link
    between the decentralized stationary distribution and the centralized
    optimum that drives the proof of Proposition 4.  Ties broken by link
    index, mirroring :meth:`repro.core.eldf.ELDFPolicy.priority_order`.
    """
    energies = np.array(
        [
            influence(float(d)) * float(p)
            for d, p in zip(positive_debts, reliabilities)
        ]
    )
    order = np.argsort(-energies, kind="stable")
    sigma = [0] * len(energies)
    for position, link in enumerate(order):
        sigma[int(link)] = position + 1
    return tuple(sigma)


def ordering_probability(
    sigma: Sequence[int],
    positive_debts: Sequence[float],
    reliabilities: Sequence[float],
    influence: DebtInfluenceFunction,
) -> float:
    """``pi*(sigma)`` under Eq. (15) for one specific ordering."""
    distribution = dbdp_stationary(positive_debts, reliabilities, influence)
    return distribution[tuple(sigma)]
