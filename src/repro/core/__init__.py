"""Core algorithms: debt bookkeeping, influence functions, the DP/DB-DP
protocol, and the centralized / contention-based baseline policies."""
