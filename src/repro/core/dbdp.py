"""DB-DP: the Debt-Based Decentralized Priority algorithm (Section V).

DB-DP is Algorithm 2 with the Glauber-dynamics swap bias of Eq. (14):

    mu_n(k) = exp(f(d_n^+(k)) p_n) / (R + exp(f(d_n^+(k)) p_n)),

where ``f`` is a debt influence function and ``R > 0`` a constant.  Links in
debt bias their coin toward claiming higher priority; under two-time-scale
separation the induced priority chain concentrates near the ELDF ordering
and the algorithm is feasibility-optimal (Theorem 1).

The paper's evaluation uses ``f(x) = log(max(1, 100 (x + 1)))`` and
``R = 10`` — the defaults here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .dp_protocol import DPProtocol, RowStackedConstantBias, SwapBias
from .influence import DebtInfluenceFunction, PaperLogInfluence

__all__ = [
    "GlauberDebtBias",
    "RowStackedGlauberBias",
    "stack_swap_biases",
    "DBDPPolicy",
    "PAPER_R",
]

#: The Glauber constant used in the paper's NS-3 evaluation.
PAPER_R: float = 10.0


@dataclass(frozen=True)
class GlauberDebtBias(SwapBias):
    """Eq. (14): ``mu_n = exp(f(d^+) p) / (R + exp(f(d^+) p))``.

    Computed as ``1 / (1 + R * exp(-f(d^+) p))`` for numerical stability
    with large debts, then clipped infinitesimally inside ``(0, 1)`` because
    Algorithm 2 requires a non-degenerate coin.
    """

    influence: DebtInfluenceFunction
    glauber_r: float = PAPER_R

    def __post_init__(self) -> None:
        if self.glauber_r <= 0:
            raise ValueError(f"R must be positive, got {self.glauber_r}")

    def mu(self, link: int, positive_debt: float, reliability: float) -> float:
        energy = self.influence(positive_debt) * reliability
        # 1 / (1 + R e^{-energy}) == e^{energy} / (R + e^{energy}).
        mu = 1.0 / (1.0 + self.glauber_r * math.exp(-min(energy, 700.0)))
        epsilon = 1e-12
        return min(max(mu, epsilon), 1.0 - epsilon)

    def mu_batch(
        self,
        links: np.ndarray,
        positive_debts: np.ndarray,
        reliabilities: np.ndarray,
    ) -> np.ndarray:
        # In-place chain over one buffer — this runs once per simulated
        # interval in the batch kernels, so the ~10 temporaries of the
        # naive expression are worth avoiding.  Same operations in the
        # same order as the scalar :meth:`mu`, so values are identical.
        energy = self.influence.value_array(
            np.asarray(positive_debts, dtype=float)
        )
        energy = energy * np.asarray(reliabilities, dtype=float)
        np.minimum(energy, 700.0, out=energy)
        np.negative(energy, out=energy)
        np.exp(energy, out=energy)
        energy *= self.glauber_r
        energy += 1.0
        np.divide(1.0, energy, out=energy)
        epsilon = 1e-12
        np.maximum(energy, epsilon, out=energy)
        np.minimum(energy, 1.0 - epsilon, out=energy)
        return energy


@dataclass(frozen=True)
class RowStackedGlauberBias(SwapBias):
    """Eq. (14) with one Glauber constant ``R`` per batch-stack row.

    Lets a fused batch stack mix DB-DP rows that differ in ``R`` (an
    ablation axis) while sharing one kernel pass.  Batch-only, like
    :class:`~repro.core.dp_protocol.RowStackedConstantBias`: arrays handed
    to :meth:`mu_batch` must have the stack row as their leading axis.
    """

    influence: DebtInfluenceFunction
    glauber_rs: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.glauber_rs:
            raise ValueError("need at least one row")
        for r in self.glauber_rs:
            if r <= 0:
                raise ValueError(f"R must be positive, got {r}")

    def mu(self, link: int, positive_debt: float, reliability: float) -> float:
        raise TypeError(
            "RowStackedGlauberBias is defined per batch row; it cannot "
            "serve a scalar (row-less) protocol"
        )

    def mu_batch(
        self,
        links: np.ndarray,
        positive_debts: np.ndarray,
        reliabilities: np.ndarray,
    ) -> np.ndarray:
        shape = np.shape(links)
        rs = np.asarray(self.glauber_rs, dtype=float)
        if len(shape) != 2 or shape[0] != rs.size:
            raise ValueError(
                f"expected (S, P) arrays with S = {rs.size} rows, got "
                f"shape {shape}"
            )
        energy = self.influence.value_array(
            np.asarray(positive_debts, dtype=float)
        ) * np.asarray(reliabilities, dtype=float)
        mu = 1.0 / (1.0 + rs[:, None] * np.exp(-np.minimum(energy, 700.0)))
        epsilon = 1e-12
        return np.clip(mu, epsilon, 1.0 - epsilon)


def stack_swap_biases(biases: Sequence[SwapBias]) -> SwapBias:
    """Collapse one swap bias per stack row into a single batch bias.

    Used by :class:`~repro.sim.batch_kernels.BatchDPKernel` when a fused
    stack supplies per-row policies: identical biases collapse to the
    shared instance; Glauber biases differing only in ``R`` become a
    :class:`RowStackedGlauberBias`; constant biases differing in ``mu``
    become a :class:`~repro.core.dp_protocol.RowStackedConstantBias`.
    Anything else raises ``TypeError`` so callers fall back to per-cell
    simulation rather than silently mis-batching.
    """
    biases = list(biases)
    if not biases:
        raise ValueError("need at least one bias")
    first = biases[0]
    if all(b == first for b in biases[1:]):
        return first
    from .dp_protocol import ConstantSwapBias

    if all(isinstance(b, GlauberDebtBias) for b in biases):
        influence = biases[0].influence
        if all(b.influence == influence for b in biases):
            return RowStackedGlauberBias(
                influence=influence,
                glauber_rs=tuple(b.glauber_r for b in biases),
            )
        raise TypeError(
            "cannot stack GlauberDebtBias rows with different influence "
            "functions; run those cells separately"
        )
    if all(isinstance(b, ConstantSwapBias) for b in biases):
        return RowStackedConstantBias(values=tuple(b.value for b in biases))
    raise TypeError(
        "cannot stack heterogeneous swap biases of types "
        f"{sorted({type(b).__name__ for b in biases})}; run those cells "
        "separately"
    )


class DBDPPolicy(DPProtocol):
    """The paper's decentralized algorithm with its evaluation defaults.

    Parameters
    ----------
    influence:
        Debt influence function ``f``; defaults to the paper's
        ``log(max(1, 100 (x + 1)))``.
    glauber_r:
        The constant ``R`` of Eq. (14); the paper uses 10.
    num_pairs:
        Swap pairs per interval (1 reproduces the paper; >1 is Remark 6).
    initial_priorities:
        Starting permutation; identity by default.
    """

    name = "DB-DP"

    def __init__(
        self,
        influence: DebtInfluenceFunction | None = None,
        glauber_r: float = PAPER_R,
        num_pairs: int = 1,
        initial_priorities: Optional[Sequence[int]] = None,
    ):
        influence = influence or PaperLogInfluence()
        super().__init__(
            bias=GlauberDebtBias(influence=influence, glauber_r=glauber_r),
            num_pairs=num_pairs,
            initial_priorities=initial_priorities,
        )
        self.influence = influence
        self.glauber_r = glauber_r


# ----------------------------------------------------------------------
# Registry descriptor (repro.core.registry).  DB-DP shares the DP
# family's config encoding and kernel; subclasses without their own
# descriptor (EstimatedDBDPPolicy) resolve here via the MRO.
# ----------------------------------------------------------------------
from . import registry as _registry  # noqa: E402  (self-registration)
from .dp_protocol import DP_FAMILY_CAPABILITIES, dp_family_config  # noqa: E402


def _dbdp_from_config(config: dict) -> "DBDPPolicy":
    bias = _registry.decode_config_value(config["bias"])
    return DBDPPolicy(
        influence=bias.influence,
        glauber_r=bias.glauber_r,
        num_pairs=int(config["num_pairs"]),
        initial_priorities=_registry.decode_config_value(config["initial"]),
    )


_registry.register(
    _registry.PolicyDescriptor(
        name="DB-DP",
        policy_class=DBDPPolicy,
        to_config=dp_family_config,
        from_config=_dbdp_from_config,
        batch_kernel="repro.sim.batch_kernels:BatchDPKernel",
        capabilities=DP_FAMILY_CAPABILITIES,
    )
)
