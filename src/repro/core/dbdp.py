"""DB-DP: the Debt-Based Decentralized Priority algorithm (Section V).

DB-DP is Algorithm 2 with the Glauber-dynamics swap bias of Eq. (14):

    mu_n(k) = exp(f(d_n^+(k)) p_n) / (R + exp(f(d_n^+(k)) p_n)),

where ``f`` is a debt influence function and ``R > 0`` a constant.  Links in
debt bias their coin toward claiming higher priority; under two-time-scale
separation the induced priority chain concentrates near the ELDF ordering
and the algorithm is feasibility-optimal (Theorem 1).

The paper's evaluation uses ``f(x) = log(max(1, 100 (x + 1)))`` and
``R = 10`` — the defaults here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .dp_protocol import DPProtocol, SwapBias
from .influence import DebtInfluenceFunction, PaperLogInfluence

__all__ = ["GlauberDebtBias", "DBDPPolicy", "PAPER_R"]

#: The Glauber constant used in the paper's NS-3 evaluation.
PAPER_R: float = 10.0


@dataclass(frozen=True)
class GlauberDebtBias(SwapBias):
    """Eq. (14): ``mu_n = exp(f(d^+) p) / (R + exp(f(d^+) p))``.

    Computed as ``1 / (1 + R * exp(-f(d^+) p))`` for numerical stability
    with large debts, then clipped infinitesimally inside ``(0, 1)`` because
    Algorithm 2 requires a non-degenerate coin.
    """

    influence: DebtInfluenceFunction
    glauber_r: float = PAPER_R

    def __post_init__(self) -> None:
        if self.glauber_r <= 0:
            raise ValueError(f"R must be positive, got {self.glauber_r}")

    def mu(self, link: int, positive_debt: float, reliability: float) -> float:
        energy = self.influence(positive_debt) * reliability
        # 1 / (1 + R e^{-energy}) == e^{energy} / (R + e^{energy}).
        mu = 1.0 / (1.0 + self.glauber_r * math.exp(-min(energy, 700.0)))
        epsilon = 1e-12
        return min(max(mu, epsilon), 1.0 - epsilon)

    def mu_batch(
        self,
        links: np.ndarray,
        positive_debts: np.ndarray,
        reliabilities: np.ndarray,
    ) -> np.ndarray:
        energy = self.influence.value_array(
            np.asarray(positive_debts, dtype=float)
        ) * np.asarray(reliabilities, dtype=float)
        mu = 1.0 / (1.0 + self.glauber_r * np.exp(-np.minimum(energy, 700.0)))
        epsilon = 1e-12
        return np.clip(mu, epsilon, 1.0 - epsilon)


class DBDPPolicy(DPProtocol):
    """The paper's decentralized algorithm with its evaluation defaults.

    Parameters
    ----------
    influence:
        Debt influence function ``f``; defaults to the paper's
        ``log(max(1, 100 (x + 1)))``.
    glauber_r:
        The constant ``R`` of Eq. (14); the paper uses 10.
    num_pairs:
        Swap pairs per interval (1 reproduces the paper; >1 is Remark 6).
    initial_priorities:
        Starting permutation; identity by default.
    """

    name = "DB-DP"

    def __init__(
        self,
        influence: DebtInfluenceFunction | None = None,
        glauber_r: float = PAPER_R,
        num_pairs: int = 1,
        initial_priorities: Optional[Sequence[int]] = None,
    ):
        influence = influence or PaperLogInfluence()
        super().__init__(
            bias=GlauberDebtBias(influence=influence, glauber_r=glauber_r),
            num_pairs=num_pairs,
            initial_priorities=initial_priorities,
        )
        self.influence = influence
        self.glauber_r = glauber_r
