"""802.11 DCF-style baseline: binary exponential backoff (reference [24]).

Not part of the paper's head-to-head evaluation, but the paper leans on
Bianchi's analysis of DCF (reference [24]) to motivate why random backoff
with collisions loses significant capacity even at moderate network sizes.
This baseline makes that argument reproducible: each backlogged link draws a
uniform backoff from its current contention window; the minimum wins, ties
collide; a link doubles its window (up to ``cw_max``) after a collision and
resets to ``cw_min`` after any outcome-decided transmission.

Deadline awareness is minimal (packets still flush at interval boundaries);
debt is ignored — DCF is the "deadline-and-debt-oblivious" reference point.
"""

from __future__ import annotations

import numpy as np

from ..sim.rng import RngBundle
from .policies import IntervalMac, IntervalOutcome

__all__ = ["DCFPolicy"]


class DCFPolicy(IntervalMac):
    """Binary-exponential-backoff CSMA/CA over the interval structure."""

    name = "DCF"

    def __init__(self, cw_min: int = 16, cw_max: int = 1024):
        super().__init__()
        if cw_min < 1 or cw_max < cw_min:
            raise ValueError(
                f"need 1 <= cw_min <= cw_max, got {cw_min}, {cw_max}"
            )
        self.cw_min = cw_min
        self.cw_max = cw_max
        self._cw: np.ndarray | None = None

    def _on_bind(self) -> None:
        self._cw = np.full(self.spec.num_links, self.cw_min, dtype=np.int64)

    def run_interval(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: RngBundle,
    ) -> IntervalOutcome:
        spec = self.spec
        timing = spec.timing
        n = spec.num_links
        assert self._cw is not None

        backlog = arrivals.astype(np.int64).copy()
        deliveries = np.zeros(n, dtype=np.int64)
        attempts = np.zeros(n, dtype=np.int64)
        collisions = 0
        elapsed_us = 0.0
        backoff_us = 0.0
        collision_us = 0.0

        while True:
            contenders = np.flatnonzero(backlog > 0)
            if contenders.size == 0:
                break
            draws = rng.policy.integers(0, self._cw[contenders])
            b_min = int(draws.min())
            start = elapsed_us + b_min * timing.backoff_slot_us
            if start + timing.data_airtime_us > timing.interval_us:
                break
            backoff_us += b_min * timing.backoff_slot_us
            elapsed_us = start + timing.data_airtime_us
            winners = contenders[draws == b_min]
            if winners.size == 1:
                link = int(winners[0])
                attempts[link] += 1
                # A decided (non-collided) transmission resets the window,
                # whether or not the unreliable channel delivered it.
                self._cw[link] = self.cw_min
                if spec.channel.attempt(link, rng.channel):
                    deliveries[link] += 1
                    backlog[link] -= 1
            else:
                collisions += 1
                collision_us += timing.data_airtime_us
                for link in winners:
                    link = int(link)
                    attempts[link] += 1
                    self._cw[link] = min(self._cw[link] * 2, self.cw_max)

        return IntervalOutcome(
            deliveries=deliveries,
            attempts=attempts,
            busy_time_us=elapsed_us - backoff_us,
            overhead_time_us=backoff_us + collision_us,
            collisions=collisions,
            priorities=None,
        )


# ----------------------------------------------------------------------
# Registry descriptor (repro.core.registry).  Scalar-only, like FCSMA.
# ----------------------------------------------------------------------
from . import registry as _registry  # noqa: E402  (self-registration)

_registry.register(
    _registry.PolicyDescriptor(
        name="DCF",
        policy_class=DCFPolicy,
        to_config=lambda policy: {
            "cw_min": int(policy.cw_min),
            "cw_max": int(policy.cw_max),
        },
        from_config=lambda config: DCFPolicy(
            cw_min=int(config["cw_min"]), cw_max=int(config["cw_max"])
        ),
    )
)
