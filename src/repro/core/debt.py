"""Delivery debt bookkeeping (Section III-A, Eq. (1)) and deficiency metrics.

The *delivery debt* of link ``n`` at the beginning of interval ``k`` is

    d_n(k + 1) = d_n(k) - S_n(k) + q_n,        d_n(0) = 0,

equivalently ``d_n(k) = k * q_n - sum_{j<k} S_n(j)``.  The positive part
``d_n^+`` feeds both the centralized ELDF weights (Algorithm 1) and the
decentralized swap bias ``mu_n`` (Eq. 14).

The *timely-throughput deficiency* up to interval ``K`` (Definition 1) is

    (q_n - (sum_{k<K} S_n(k)) / K)^+   per link, summed for the total.

Note ``deficiency_n(K) == max(0, d_n(K)) / K`` — the ledger exposes both
views and the identity is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["DebtLedger", "DebtSnapshot"]


@dataclass(frozen=True)
class DebtSnapshot:
    """Immutable view of ledger state at the start of one interval."""

    interval: int
    debts: np.ndarray
    delivered_totals: np.ndarray

    @property
    def positive_debts(self) -> np.ndarray:
        return np.maximum(self.debts, 0.0)


class DebtLedger:
    """Tracks per-link delivery debt and cumulative deliveries.

    Parameters
    ----------
    requirements:
        Per-link timely-throughput requirements ``q_n`` (packets/interval).
    """

    def __init__(self, requirements: Sequence[float]):
        q = np.asarray(requirements, dtype=float)
        if q.ndim != 1 or q.size == 0:
            raise ValueError("requirements must be a non-empty 1-D sequence")
        if np.any(q < 0):
            raise ValueError(f"requirements must be nonnegative, got {q}")
        self._q = q
        self._debts = np.zeros_like(q)
        self._delivered = np.zeros_like(q)
        self._interval = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        return self._q.size

    @property
    def requirements(self) -> np.ndarray:
        return self._q.copy()

    @property
    def interval(self) -> int:
        """Index of the interval about to run (number of completed updates)."""
        return self._interval

    @property
    def debts(self) -> np.ndarray:
        """Current debt vector ``d(k)`` (copy)."""
        return self._debts.copy()

    @property
    def positive_debts(self) -> np.ndarray:
        """``d^+(k) = max(d(k), 0)`` element-wise (copy)."""
        return np.maximum(self._debts, 0.0)

    @property
    def delivered_totals(self) -> np.ndarray:
        """Cumulative on-time deliveries per link (copy)."""
        return self._delivered.copy()

    def snapshot(self) -> DebtSnapshot:
        return DebtSnapshot(
            interval=self._interval,
            debts=self._debts.copy(),
            delivered_totals=self._delivered.copy(),
        )

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def record_interval(self, deliveries: Sequence[int]) -> None:
        """Apply Eq. (1) for one completed interval.

        ``deliveries[n]`` is ``S_n(k)``, the count of packets link ``n``
        delivered before the deadline in the interval that just ended.
        """
        s = np.asarray(deliveries, dtype=float)
        if s.shape != self._q.shape:
            raise ValueError(
                f"expected {self._q.size} delivery counts, got shape {s.shape}"
            )
        if np.any(s < 0):
            raise ValueError(f"deliveries must be nonnegative, got {s}")
        self._debts += self._q - s
        self._delivered += s
        self._interval += 1

    # ------------------------------------------------------------------
    # Metrics (Definition 1)
    # ------------------------------------------------------------------
    def per_link_deficiency(self) -> np.ndarray:
        """``(q_n - delivered_n / K)^+`` for the K intervals recorded so far."""
        if self._interval == 0:
            return self._q.copy()
        empirical = self._delivered / self._interval
        return np.maximum(self._q - empirical, 0.0)

    def total_deficiency(self) -> float:
        """Total timely-throughput deficiency up to the current interval."""
        return float(self.per_link_deficiency().sum())

    def empirical_timely_throughput(self) -> np.ndarray:
        """Average deliveries per interval per link so far."""
        if self._interval == 0:
            return np.zeros_like(self._q)
        return self._delivered / self._interval

    def reset(self) -> None:
        """Zero all debts and delivery counts (fresh run, same q)."""
        self._debts[:] = 0.0
        self._delivered[:] = 0.0
        self._interval = 0
