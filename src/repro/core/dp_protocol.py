"""The generic Decentralized Priority (DP) protocol — Algorithm 2.

Every link holds a unique 1-based priority index; the permutation
``sigma(k)`` evolves by adjacent transpositions negotiated *without any
control messages*, purely through carrier sensing and collision-free backoff
timers:

1. A shared random seed yields the candidate priority pair
   ``(C(k), C(k)+1)`` each interval (Step 1).  The multi-pair extension of
   Remark 6 draws several non-consecutive candidate indices.
2. Candidate links with no real arrivals enqueue one *empty* packet so their
   intent is observable on the channel (Step 2).
3. Each candidate flips a local coin ``xi_n`` with bias ``mu_n`` (Step 3) and
   derives its backoff ``beta_n = sigma_n - xi_n`` (Step 4); non-candidates
   use ``sigma_n - 1`` below the pair and ``sigma_n + 1`` above it, so all
   backoff values are distinct — the protocol is collision-free by
   construction.
4. Backoff counters decrement only while the channel is idle, so the link
   holding backoff ``beta`` begins transmitting after exactly ``beta`` idle
   slots; the swap handshake is read off the channel state at the instant a
   candidate's counter reaches 1 (Step 5, Eqs. (7)-(8)).
5. A link whose counter hits 0 transmits back-to-back until its buffer
   empties or the interval ends (Step 6); all buffers flush at the interval
   boundary (Step 7).

Swap-commit rule (see DESIGN.md "Implementation clarifications"): the pair
``(c, c+1)`` exchanges priorities iff the link at ``c`` drew ``xi = -1``, the
link at ``c+1`` drew ``xi = +1``, *and* the up-mover actually begins its
transmission within the interval — exactly the ``P{R_i + R_j >= 1}`` factor
of Eq. (9), and the only reading of Eqs. (7)-(8) under which ``sigma``
provably remains a permutation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.rng import RngBundle
from .permutations import (
    apply_swap_to_order,
    priority_to_link_order,
    validate_priority_vector,
)
from .policies import IntervalMac, IntervalOutcome, serve_link_attempts

__all__ = [
    "SwapBias",
    "max_swap_pairs",
    "ConstantSwapBias",
    "PerLinkSwapBias",
    "RowStackedConstantBias",
    "SwapDecision",
    "compute_backoffs",
    "draw_candidate_indices",
    "DPProtocol",
]


class SwapBias(ABC):
    """The coin-flip bias ``mu_n`` of Step 3.

    ``mu_n`` is the probability that link ``n`` draws ``xi_n = +1`` (the
    "keep / claim high priority" outcome).  DB-DP supplies a debt-dependent
    bias (Eq. 14); the generic protocol accepts any bias in ``(0, 1)``.
    """

    @abstractmethod
    def mu(self, link: int, positive_debt: float, reliability: float) -> float:
        """Return ``mu_n in (0, 1)`` for this interval."""

    def mu_batch(
        self,
        links: np.ndarray,
        positive_debts: np.ndarray,
        reliabilities: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`mu` over aligned arrays of any shape.

        The generic implementation loops over elements; biases used in hot
        paths (Glauber, constant, per-link) override it with array
        arithmetic for the batch simulation engine.
        """
        links = np.asarray(links)
        debts = np.asarray(positive_debts, dtype=float)
        rel = np.asarray(reliabilities, dtype=float)
        flat = np.array(
            [
                self.mu(int(l), float(d), float(p))
                for l, d, p in zip(links.ravel(), debts.ravel(), rel.ravel())
            ],
            dtype=float,
        )
        return flat.reshape(links.shape)


@dataclass(frozen=True)
class ConstantSwapBias(SwapBias):
    """The same ``mu`` for every link — the unbiased reordering baseline."""

    value: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.value < 1.0:
            raise ValueError(f"mu must lie in (0, 1), got {self.value}")

    def mu(self, link: int, positive_debt: float, reliability: float) -> float:
        return self.value

    def mu_batch(
        self,
        links: np.ndarray,
        positive_debts: np.ndarray,
        reliabilities: np.ndarray,
    ) -> np.ndarray:
        return np.full(np.shape(links), self.value)


@dataclass(frozen=True)
class PerLinkSwapBias(SwapBias):
    """Fixed per-link biases — used to verify Proposition 2's closed form."""

    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        for v in self.values:
            if not 0.0 < v < 1.0:
                raise ValueError(f"each mu must lie in (0, 1), got {v}")

    def mu(self, link: int, positive_debt: float, reliability: float) -> float:
        return self.values[link]

    def mu_batch(
        self,
        links: np.ndarray,
        positive_debts: np.ndarray,
        reliabilities: np.ndarray,
    ) -> np.ndarray:
        return np.asarray(self.values, dtype=float)[np.asarray(links)]


@dataclass(frozen=True)
class RowStackedConstantBias(SwapBias):
    """One constant ``mu`` per *replication row* of a fused batch stack.

    Batch-only: the scalar protocol has no row identity, so :meth:`mu`
    refuses.  :meth:`mu_batch` expects arrays whose leading axis indexes
    the stack rows (the batch kernels' ``(S, P)`` candidate layout).
    """

    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("need at least one row")
        for v in self.values:
            if not 0.0 < v < 1.0:
                raise ValueError(f"each mu must lie in (0, 1), got {v}")

    def mu(self, link: int, positive_debt: float, reliability: float) -> float:
        raise TypeError(
            "RowStackedConstantBias is defined per batch row; it cannot "
            "serve a scalar (row-less) protocol"
        )

    def mu_batch(
        self,
        links: np.ndarray,
        positive_debts: np.ndarray,
        reliabilities: np.ndarray,
    ) -> np.ndarray:
        shape = np.shape(links)
        rows = np.asarray(self.values, dtype=float)
        if len(shape) != 2 or shape[0] != rows.size:
            raise ValueError(
                f"expected (S, P) arrays with S = {rows.size} rows, got "
                f"shape {shape}"
            )
        return np.broadcast_to(rows[:, None], shape)


@dataclass(frozen=True)
class SwapDecision:
    """Record of one candidate pair's handshake in one interval."""

    candidate_priority: int  # C(k): the higher-priority slot of the pair
    down_link: int  # link holding priority C(k) (0-based)
    up_link: int  # link holding priority C(k) + 1
    xi_down: int  # +1 or -1
    xi_up: int
    committed: bool  # True iff the pair exchanged priorities


def max_swap_pairs(n: int) -> int:
    """Largest pair count that keeps the Remark-6 chain irreducible.

    Every candidate index ``c in {1, .., n-1}`` must belong to *some*
    admissible (non-consecutive) size-``P`` set, or the adjacent
    transposition at ``c`` becomes unreachable and the priority chain is
    reducible (e.g. ``n = 4, P = 2`` forces the set {1, 3} every interval,
    so priorities 2 and 3 can never swap).  The middle index is the
    binding one, giving ``P <= (n - 1) // 2`` (and at least 1 pair fits for
    any ``n >= 2``).  Verified exhaustively in
    ``tests/analysis/test_multipair.py``.
    """
    if n < 2:
        return 0
    return max(1, (n - 1) // 2)


def draw_candidate_indices(
    n: int, num_pairs: int, shared_rng: np.random.Generator
) -> Tuple[int, ...]:
    """Draw the candidate priority indices ``C(k)`` from the shared stream.

    Returns a sorted tuple of ``num_pairs`` non-consecutive integers in
    ``[1, n - 1]`` (Remark 6); with ``num_pairs = 1`` this is Step 1 of
    Algorithm 2 exactly.

    Uniform sampling over the admissible sets uses the classical gap
    bijection: sorted ``P``-subsets of ``[1, M]`` with pairwise gaps >= 2
    correspond one-to-one to plain ``P``-subsets of ``[1, M - P + 1]`` via
    ``c_i = y_i + (i - 1)``, so one sorted uniform combination suffices —
    no rejection loop (which is hopeless for large pair counts: 9 pairs on
    20 links accept only ~0.06% of plain draws).
    """
    if n < 2:
        return ()
    max_pairs = max_swap_pairs(n)
    if not 1 <= num_pairs <= max_pairs:
        raise ValueError(
            f"num_pairs must lie in [1, {max_pairs}] for {n} links "
            f"(irreducibility bound, see max_swap_pairs), got {num_pairs}"
        )
    if num_pairs == 1:
        return (int(shared_rng.integers(1, n)),)
    compressed_max = (n - 1) - (num_pairs - 1)  # M - P + 1 with M = n - 1
    draw = shared_rng.choice(
        np.arange(1, compressed_max + 1), size=num_pairs, replace=False
    )
    draw.sort()
    return tuple(int(y) + i for i, y in enumerate(draw))


def compute_backoffs(
    sigma: Sequence[int],
    candidates: Sequence[int],
    xi: Dict[int, int],
) -> Dict[int, int]:
    """Backoff timers for the interval (Step 4, extended per Remark 6).

    Parameters
    ----------
    sigma:
        Priority vector from the previous interval (``sigma(k-1)``).
    candidates:
        Sorted non-consecutive candidate priority indices.
    xi:
        Coin flips, keyed by (0-based) link, for every candidate link.

    Returns a map link -> backoff.  Each candidate pair ``i`` (0-based among
    the sorted candidates) operates in a backoff band shifted by ``2 i``;
    non-candidates shift by ``2 *`` (number of pairs entirely below their
    priority).  The returned values are always distinct (collision-free),
    which the test-suite asserts exhaustively for small ``N``.
    """
    sig = validate_priority_vector(sigma)
    cand_set = {}
    for pair_index, c in enumerate(candidates):
        cand_set[c] = pair_index
        cand_set[c + 1] = pair_index

    backoffs: Dict[int, int] = {}
    for link, s in enumerate(sig):
        if s in cand_set:
            offset = 2 * cand_set[s]
            backoffs[link] = s - xi[link] + offset
        else:
            pairs_below = sum(1 for c in candidates if c + 1 < s)
            backoffs[link] = s - 1 + 2 * pairs_below
    return backoffs


class DPProtocol(IntervalMac):
    """Algorithm 2 with pluggable swap bias and optional multi-pair swaps.

    Parameters
    ----------
    bias:
        The coin-flip bias ``mu_n`` (Step 3).  Use
        :class:`~repro.core.dbdp.GlauberDebtBias` for DB-DP.
    num_pairs:
        Candidate pairs per interval (1 = Algorithm 2; >1 = Remark 6).
    initial_priorities:
        Starting permutation ``sigma(0)``; identity by default.
    """

    name = "DP"

    def __init__(
        self,
        bias: SwapBias,
        num_pairs: int = 1,
        initial_priorities: Optional[Sequence[int]] = None,
    ):
        super().__init__()
        self.bias = bias
        if num_pairs < 1:
            raise ValueError(f"num_pairs must be >= 1, got {num_pairs}")
        self.num_pairs = num_pairs
        self._initial = (
            validate_priority_vector(initial_priorities)
            if initial_priorities is not None
            else None
        )
        self._sigma: Tuple[int, ...] = ()
        # Priority -> link view of sigma, maintained incrementally: each
        # committed adjacent swap touches two entries, so candidate-link
        # lookup is O(1) per pair instead of sigma.index's O(N) scan.
        self._order: List[int] = []

    # ------------------------------------------------------------------
    def _on_bind(self) -> None:
        n = self.spec.num_links
        if self._initial is not None:
            if len(self._initial) != n:
                raise ValueError(
                    f"initial priorities cover {len(self._initial)} links, "
                    f"network has {n}"
                )
            self._sigma = self._initial
        else:
            self._sigma = tuple(range(1, n + 1))
        self._order = list(priority_to_link_order(self._sigma))
        if n >= 2 and self.num_pairs > max_swap_pairs(n):
            raise ValueError(
                f"{self.num_pairs} pairs would make the priority chain "
                f"reducible on {n} links; the bound is "
                f"{max_swap_pairs(n)} (see max_swap_pairs)"
            )

    @property
    def priorities(self) -> Tuple[int, ...]:
        """Current priority vector ``sigma`` (1-based indices per link)."""
        return self._sigma

    def set_priorities(self, sigma: Sequence[int]) -> None:
        """Force the protocol state (used by tests and warm-started runs)."""
        sig = validate_priority_vector(sigma)
        if self._spec is not None and len(sig) != self.spec.num_links:
            raise ValueError("priority vector length mismatch")
        self._sigma = sig
        self._order = list(priority_to_link_order(sig))

    # ------------------------------------------------------------------
    def run_interval(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: RngBundle,
    ) -> IntervalOutcome:
        spec = self.spec
        timing = spec.timing
        n = spec.num_links
        sigma = self._sigma

        # Step 1: shared randomness -> candidate priority indices.
        if n >= 2:
            candidates = draw_candidate_indices(n, self.num_pairs, rng.shared)
        else:
            candidates = ()

        # Steps 2-3: identify candidate links, flip their local coins.
        candidate_links: Dict[int, Tuple[int, int]] = {}  # c -> (down, up)
        xi: Dict[int, int] = {}
        reliabilities = spec.reliabilities
        order = self._order
        for c in candidates:
            down = order[c - 1]
            up = order[c]
            candidate_links[c] = (down, up)
            for link in (down, up):
                mu = self.bias.mu(link, float(positive_debts[link]), float(reliabilities[link]))
                if not 0.0 < mu < 1.0:
                    raise ValueError(
                        f"swap bias returned mu={mu} for link {link}; "
                        "Algorithm 2 requires mu in (0, 1)"
                    )
                xi[link] = 1 if rng.policy.random() < mu else -1

        # Step 2: candidates without arrivals claim priority with an empty
        # packet.
        has_empty = {
            link
            for pair in candidate_links.values()
            for link in pair
            if arrivals[link] == 0
        }

        # Step 4: collision-free backoff timers.
        backoffs = compute_backoffs(sigma, candidates, xi) if candidates else {
            link: sigma[link] - 1 for link in range(n)
        }

        # Steps 5-6: run the interval timeline.  The link with backoff beta
        # starts after exactly beta idle slots (counters freeze while the
        # channel is busy), i.e. at busy_time + beta * slot.
        deliveries = np.zeros(n, dtype=np.int64)
        attempts = np.zeros(n, dtype=np.int64)
        transmitted = [False] * n
        service_start = [float("inf")] * n
        busy_us = 0.0
        empty_us = 0.0
        idle_slots_used = 0

        for link in sorted(range(n), key=lambda l: backoffs[l]):
            backlog = int(arrivals[link])
            wants_empty = link in has_empty
            if backlog == 0 and not wants_empty:
                continue
            start = busy_us + empty_us + backoffs[link] * timing.backoff_slot_us
            if backlog > 0:
                budget = int((timing.interval_us - start) // timing.data_airtime_us)
                if budget <= 0:
                    continue  # Remark 4: cannot fit a packet; stay idle.
                served, used = serve_link_attempts(
                    link, backlog, budget, spec.channel, rng.channel
                )
                deliveries[link] = served
                attempts[link] = used
                busy_us += used * timing.data_airtime_us
                transmitted[link] = used > 0
                if used > 0:
                    service_start[link] = start
                    idle_slots_used = max(idle_slots_used, backoffs[link])
            else:
                # Empty priority-claiming packet.
                if timing.empty_airtime_us > 0:
                    fits = start + timing.empty_airtime_us <= timing.interval_us
                else:
                    # Idealized mode: a zero-length claim still needs a live
                    # instant on the channel (condition C1's spare capacity).
                    fits = start < timing.interval_us
                if fits:
                    empty_us += timing.empty_airtime_us
                    transmitted[link] = True
                    service_start[link] = start
                    idle_slots_used = max(idle_slots_used, backoffs[link])

        # Step 5 / Eqs. (7)-(8): commit swaps detected via carrier sensing.
        decisions: List[SwapDecision] = []
        new_sigma = list(sigma)
        for c in candidates:
            down, up = candidate_links[c]
            # Commit rule (DESIGN.md, "swap atomicity"): the handshake
            # instant — the up-mover's transmission start, which is also the
            # moment the down-mover's counter reads 1 — must leave at least
            # one data airtime before the deadline.  Both sides can evaluate
            # this locally (they know the time and the deadline), and it
            # removes the false-yield corner where the down-mover was merely
            # unable to fit its packet (Remark 4), keeping sigma a
            # permutation in all cases.
            committed = (
                xi[down] == -1
                and xi[up] == 1
                and transmitted[up]
                and service_start[up] + timing.data_airtime_us
                <= timing.interval_us
            )
            decisions.append(
                SwapDecision(
                    candidate_priority=c,
                    down_link=down,
                    up_link=up,
                    xi_down=xi[down],
                    xi_up=xi[up],
                    committed=committed,
                )
            )
            if committed:
                new_sigma[down], new_sigma[up] = new_sigma[up], new_sigma[down]
                # Candidate indices are non-consecutive (Remark 6), so the
                # order-view swaps are disjoint and commute.
                apply_swap_to_order(order, c)
        self._sigma = tuple(new_sigma)

        overhead = idle_slots_used * timing.backoff_slot_us + empty_us
        return IntervalOutcome(
            deliveries=deliveries,
            attempts=attempts,
            busy_time_us=busy_us + empty_us,
            overhead_time_us=overhead,
            collisions=0,
            priorities=sigma,
            info={
                "candidates": candidates,
                "swaps": decisions,
                "backoffs": backoffs,
                "next_priorities": self._sigma,
            },
        )


# ----------------------------------------------------------------------
# Registry descriptor (repro.core.registry): the generic DP protocol.
# ----------------------------------------------------------------------
from . import registry as _registry  # noqa: E402  (self-registration)


def dp_family_config(policy: DPProtocol) -> dict:
    """Behaviour config shared by the whole DP family (DB-DP included)."""
    return {
        "bias": _registry.encode_config_value(policy.bias),
        "num_pairs": int(policy.num_pairs),
        "initial": _registry.encode_config_value(policy._initial),
    }


#: One capability set for every DP-family descriptor: vectorized, grid
#: fusable, sync-RNG capable, per-row swap-bias parameters
#: (``stack_swap_biases``), incremental priority-state maintenance
#: (``dp_state="incremental"``), Numba-compilable timeline stages.
DP_FAMILY_CAPABILITIES = _registry.PolicyCapabilities(
    batchable=True,
    fusable=True,
    supports_sync_rng=True,
    supports_per_row_params=True,
    supports_free_rng=True,
    supports_incremental_dp=True,
    supports_topology=True,
    supports_markov_channel=True,
    jit_stages=("dp_timeline_rows", "dp_incremental_rows"),
)

_registry.register(
    _registry.PolicyDescriptor(
        name="DP",
        policy_class=DPProtocol,
        to_config=dp_family_config,
        from_config=lambda config: DPProtocol(
            bias=_registry.decode_config_value(config["bias"]),
            num_pairs=int(config["num_pairs"]),
            initial_priorities=_registry.decode_config_value(
                config["initial"]
            ),
        ),
        factory=None,  # the generic protocol needs an explicit bias
        batch_kernel="repro.sim.batch_kernels:BatchDPKernel",
        capabilities=DP_FAMILY_CAPABILITIES,
    )
)
