"""Centralized (E)LDF scheduling (Algorithm 1, Section III-C).

At the start of interval ``k`` the controller sorts links by
``f(d_n^+(k)) * p_n`` (descending) and serves them in that strict priority
order: the head link transmits back-to-back (retrying losses) until its
buffer empties, then the next link, until the interval ends.  With
``f(x) = x`` this is exactly the classical Largest-Debt-First policy
(Remark 2).

ELDF is feasibility-optimal (Proposition 1) and serves as the centralized
gold standard in every experiment.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..sim.rng import RngBundle
from .influence import DebtInfluenceFunction, LinearInfluence
from .permutations import link_order_to_priorities
from .policies import IntervalMac, IntervalOutcome, serve_link_attempts

__all__ = ["ELDFPolicy", "LDFPolicy"]


class ELDFPolicy(IntervalMac):
    """Extended Largest-Debt-First (Algorithm 1).

    Parameters
    ----------
    influence:
        Debt influence function ``f``; defaults to linear (= LDF).
    """

    name = "ELDF"

    def __init__(self, influence: DebtInfluenceFunction | None = None):
        super().__init__()
        self.influence = influence or LinearInfluence()

    def priority_order(self, positive_debts: np.ndarray) -> Tuple[int, ...]:
        """Links sorted by ``f(d^+) p`` descending (ties: lowest link first).

        The stable, index-based tie-break makes runs reproducible; any fixed
        tie-break preserves the optimality argument since tied links
        contribute equal weight.
        """
        weights = np.array(
            [self.influence(d) for d in positive_debts], dtype=float
        ) * self.spec.reliabilities
        # argsort of -weights is stable, so equal weights keep index order.
        return tuple(int(i) for i in np.argsort(-weights, kind="stable"))

    def run_interval(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: RngBundle,
    ) -> IntervalOutcome:
        spec = self.spec
        timing = spec.timing
        order = self.priority_order(positive_debts)

        deliveries = np.zeros(spec.num_links, dtype=np.int64)
        attempts = np.zeros(spec.num_links, dtype=np.int64)
        elapsed_us = 0.0
        for link in order:
            backlog = int(arrivals[link])
            if backlog == 0:
                continue
            budget = int((timing.interval_us - elapsed_us) // timing.data_airtime_us)
            if budget <= 0:
                break
            served, used = serve_link_attempts(
                link, backlog, budget, spec.channel, rng.channel
            )
            deliveries[link] = served
            attempts[link] = used
            elapsed_us += used * timing.data_airtime_us

        return IntervalOutcome(
            deliveries=deliveries,
            attempts=attempts,
            busy_time_us=elapsed_us,
            overhead_time_us=0.0,
            collisions=0,
            priorities=link_order_to_priorities(order),
        )


class LDFPolicy(ELDFPolicy):
    """Largest-Debt-First — ELDF with the linear influence function.

    This is the centralized baseline plotted in every figure of the paper.
    """

    name = "LDF"

    def __init__(self) -> None:
        super().__init__(influence=LinearInfluence())


# ----------------------------------------------------------------------
# Registry descriptors (repro.core.registry).  ELDF and LDF are distinct
# registry names sharing one config encoding and one batch kernel.
# ----------------------------------------------------------------------
from . import registry as _registry  # noqa: E402  (self-registration)

#: Ordered-service kernels (ELDF/LDF, round-robin, static priority) are
#: vectorized and fusable but take no per-row policy parameters: fused
#: rows must share one configuration (the kernel enforces it at bind).
ORDERED_SERVICE_CAPABILITIES = _registry.PolicyCapabilities(
    batchable=True,
    fusable=True,
    supports_sync_rng=True,
    supports_per_row_params=False,
    supports_free_rng=True,
    supports_topology=True,
    supports_markov_channel=True,
    jit_stages=("serve_rows",),
)


def _eldf_config(policy: ELDFPolicy) -> dict:
    return {"influence": _registry.encode_config_value(policy.influence)}


_registry.register(
    _registry.PolicyDescriptor(
        name="ELDF",
        policy_class=ELDFPolicy,
        to_config=_eldf_config,
        from_config=lambda config: ELDFPolicy(
            influence=_registry.decode_config_value(config["influence"])
        ),
        batch_kernel="repro.sim.batch_kernels:BatchELDFKernel",
        capabilities=ORDERED_SERVICE_CAPABILITIES,
    )
)

_registry.register(
    _registry.PolicyDescriptor(
        name="LDF",
        policy_class=LDFPolicy,
        to_config=_eldf_config,
        from_config=lambda config: LDFPolicy(),  # influence is fixed linear
        batch_kernel="repro.sim.batch_kernels:BatchELDFKernel",
        capabilities=ORDERED_SERVICE_CAPABILITIES,
    )
)
