"""Online channel-reliability estimation (Section II-A's prescription).

The paper assumes each transmitter knows its ``p_n``, "obtained by either
probing or learning from the empirical results of past transmissions".
This module supplies that learning loop:

* :class:`ReliabilityEstimator` — per-link estimators fed by each
  interval's (attempts, deliveries) counts.  Two estimator styles:
  exponentially-weighted moving average (tracks slow drift) and cumulative
  Beta-posterior mean (converges to the true ``p_n`` for static channels).
* :class:`EstimatedDBDPPolicy` — DB-DP computing the Eq. (14) bias from
  the *estimated* reliabilities, exactly as a deployment without a priori
  channel knowledge would run.  With the Beta estimator the estimates
  converge and the policy's behaviour approaches oracle DB-DP; tested in
  ``tests/core/test_estimation.py``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..sim.rng import RngBundle
from .dbdp import DBDPPolicy, GlauberDebtBias, PAPER_R
from .influence import DebtInfluenceFunction, PaperLogInfluence
from .policies import IntervalOutcome

__all__ = ["ReliabilityEstimator", "EstimatedDBDPPolicy"]


class ReliabilityEstimator:
    """Per-link estimate of per-attempt success probability.

    Parameters
    ----------
    num_links:
        Number of links tracked.
    mode:
        ``"beta"`` — cumulative Beta(successes + a, failures + b) posterior
        mean; consistent for static channels.
        ``"ewma"`` — exponentially weighted per-interval success rate;
        tracks drifting channels at the cost of steady-state variance.
    prior_mean:
        Initial estimate before any observation (the Beta prior mean; also
        the EWMA's starting point).
    prior_strength:
        Pseudo-counts behind the prior (Beta ``a + b``).
    ewma_alpha:
        Smoothing factor for the EWMA mode.
    """

    def __init__(
        self,
        num_links: int,
        mode: str = "beta",
        prior_mean: float = 0.5,
        prior_strength: float = 2.0,
        ewma_alpha: float = 0.05,
    ):
        if num_links < 1:
            raise ValueError(f"need at least one link, got {num_links}")
        if mode not in ("beta", "ewma"):
            raise ValueError(f"mode must be 'beta' or 'ewma', got {mode!r}")
        if not 0.0 < prior_mean < 1.0:
            raise ValueError(f"prior mean must lie in (0, 1), got {prior_mean}")
        if prior_strength <= 0:
            raise ValueError(
                f"prior strength must be positive, got {prior_strength}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must lie in (0, 1], got {ewma_alpha}")
        self.mode = mode
        self.ewma_alpha = ewma_alpha
        self._successes = np.full(num_links, prior_mean * prior_strength)
        self._failures = np.full(num_links, (1 - prior_mean) * prior_strength)
        self._ewma = np.full(num_links, prior_mean)
        self._observed_attempts = np.zeros(num_links, dtype=np.int64)

    @property
    def num_links(self) -> int:
        return self._ewma.size

    @property
    def observed_attempts(self) -> np.ndarray:
        return self._observed_attempts.copy()

    def update(self, attempts: Sequence[int], deliveries: Sequence[int]) -> None:
        """Fold in one interval's per-link attempt/delivery counts."""
        attempts = np.asarray(attempts, dtype=np.int64)
        deliveries = np.asarray(deliveries, dtype=np.int64)
        if attempts.shape != (self.num_links,) or deliveries.shape != (
            self.num_links,
        ):
            raise ValueError("attempts/deliveries must have one entry per link")
        if np.any(deliveries > attempts) or np.any(attempts < 0):
            raise ValueError("need 0 <= deliveries <= attempts")
        self._successes += deliveries
        self._failures += attempts - deliveries
        self._observed_attempts += attempts
        touched = attempts > 0
        if np.any(touched):
            rate = np.zeros(self.num_links)
            rate[touched] = deliveries[touched] / attempts[touched]
            self._ewma[touched] = (
                (1 - self.ewma_alpha) * self._ewma[touched]
                + self.ewma_alpha * rate[touched]
            )

    def estimates(self) -> np.ndarray:
        """Current per-link reliability estimates, clipped inside (0, 1)."""
        if self.mode == "beta":
            raw = self._successes / (self._successes + self._failures)
        else:
            raw = self._ewma
        return np.clip(raw, 1e-6, 1.0 - 1e-6)


class EstimatedDBDPPolicy(DBDPPolicy):
    """DB-DP that learns ``p_n`` from its own transmission outcomes.

    The Eq. (14) swap bias is evaluated with the running estimate instead of
    the spec's true reliability — the only place DB-DP consumes ``p_n``.
    The underlying channel still uses the true probabilities, of course.
    """

    name = "DB-DP(est)"

    def __init__(
        self,
        influence: Optional[DebtInfluenceFunction] = None,
        glauber_r: float = PAPER_R,
        estimator_mode: str = "beta",
        num_pairs: int = 1,
    ):
        super().__init__(
            influence=influence, glauber_r=glauber_r, num_pairs=num_pairs
        )
        self._estimator_mode = estimator_mode
        self._estimator: Optional[ReliabilityEstimator] = None

    def _on_bind(self) -> None:
        super()._on_bind()
        self._estimator = ReliabilityEstimator(
            self.spec.num_links, mode=self._estimator_mode
        )

    @property
    def estimator(self) -> ReliabilityEstimator:
        if self._estimator is None:
            raise RuntimeError("policy is not bound to a network")
        return self._estimator

    def run_interval(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: RngBundle,
    ) -> IntervalOutcome:
        estimates = self.estimator.estimates()

        class _EstimatedBias(GlauberDebtBias):
            """The configured bias, fed estimated reliabilities."""

            def mu(self, link, positive_debt, reliability):  # noqa: ANN001
                return super().mu(link, positive_debt, float(estimates[link]))

        original_bias = self.bias
        self.bias = _EstimatedBias(
            influence=self.influence, glauber_r=self.glauber_r
        )
        try:
            outcome = super().run_interval(k, arrivals, positive_debts, rng)
        finally:
            self.bias = original_bias
        self.estimator.update(outcome.attempts, outcome.deliveries)
        outcome.info["reliability_estimates"] = estimates
        return outcome
