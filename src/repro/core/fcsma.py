"""Discretized FCSMA baseline (Li & Eryilmaz 2013, reference [22]).

FCSMA is a CSMA-style distributed implementation of debt-based scheduling
for fully-connected networks: backlogged links contend for every
transmission opportunity with an aggressiveness that grows with their
delivery debt.  The paper compares against FCSMA's *discretized* variant, in
which "the range of delivery debt is divided into a finite number of
sections and each section is mapped to one of the predetermined sizes of the
contention window" (Section VI).

Our implementation (documented substitution — [22]'s exact constants are not
reproduced in this paper):

* Per transmission round, every backlogged link draws a backoff uniformly
  from ``{0, ..., W_n - 1}`` where ``W_n`` comes from a saturating
  debt-to-window map (:class:`DebtWindowMap`).
* The minimum draw wins after that many idle slots elapse; ties are
  *collisions* that waste a full data airtime for everyone involved (all
  transmissions fail — the fully-interfering model of Section II-A).
* Debt (and hence windows) refresh per interval, as debts evolve per
  interval.

This reproduces the two failure modes the paper attributes to FCSMA:
capacity loss from backoff overhead plus collisions (it supports only
~70% of the admissible load in Fig. 3), and debt-obliviousness once debts
exceed the saturation threshold of the window map (the Group-1 starvation
in Figs. 7-8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..sim.rng import RngBundle
from .policies import IntervalMac, IntervalOutcome

__all__ = ["DebtWindowMap", "FCSMAPolicy"]


@dataclass(frozen=True)
class DebtWindowMap:
    """Map a delivery debt to a contention-window size, saturating.

    The debt axis is cut into ``len(windows)`` sections of width
    ``section_width``; section ``i`` (debts in ``[i w, (i+1) w)``) uses
    ``windows[i]``, and every debt at or beyond the last boundary uses the
    final (smallest) window — the saturation the paper highlights.
    """

    windows: Tuple[int, ...] = (64, 48, 32, 24, 16)
    section_width: float = 1.0

    def __post_init__(self) -> None:
        if not self.windows:
            raise ValueError("need at least one window size")
        for w in self.windows:
            if w < 1:
                raise ValueError(f"window sizes must be >= 1, got {w}")
        if any(later > earlier for earlier, later in zip(self.windows, self.windows[1:])):
            raise ValueError(
                "windows must be non-increasing in debt (more debt => more "
                f"aggressive contention), got {self.windows}"
            )
        if self.section_width <= 0:
            raise ValueError(
                f"section width must be positive, got {self.section_width}"
            )

    def window(self, positive_debt: float) -> int:
        """Contention window for a link with debt ``positive_debt >= 0``."""
        if positive_debt < 0:
            raise ValueError(f"debt must be nonnegative, got {positive_debt}")
        section = int(positive_debt // self.section_width)
        return self.windows[min(section, len(self.windows) - 1)]

    @property
    def saturation_debt(self) -> float:
        """Debt beyond which the map stops responding (paper's criticism)."""
        return (len(self.windows) - 1) * self.section_width


class FCSMAPolicy(IntervalMac):
    """Discretized FCSMA with per-round contention and real collisions."""

    name = "FCSMA"

    def __init__(self, window_map: DebtWindowMap | None = None):
        super().__init__()
        self.window_map = window_map or DebtWindowMap()

    def run_interval(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: RngBundle,
    ) -> IntervalOutcome:
        spec = self.spec
        timing = spec.timing
        n = spec.num_links

        backlog = arrivals.astype(np.int64).copy()
        windows = np.array(
            [self.window_map.window(float(d)) for d in positive_debts],
            dtype=np.int64,
        )
        deliveries = np.zeros(n, dtype=np.int64)
        attempts = np.zeros(n, dtype=np.int64)
        collisions = 0
        elapsed_us = 0.0
        backoff_us = 0.0
        collision_us = 0.0
        policy_rng = rng.policy
        channel_rng = rng.channel

        while True:
            contenders = np.flatnonzero(backlog > 0)
            if contenders.size == 0:
                break
            draws = policy_rng.integers(0, windows[contenders])
            b_min = int(draws.min())
            start = elapsed_us + b_min * timing.backoff_slot_us
            if start + timing.data_airtime_us > timing.interval_us:
                break
            backoff_us += b_min * timing.backoff_slot_us
            elapsed_us = start + timing.data_airtime_us
            winners = contenders[draws == b_min]
            if winners.size == 1:
                link = int(winners[0])
                attempts[link] += 1
                if spec.channel.attempt(link, channel_rng):
                    deliveries[link] += 1
                    backlog[link] -= 1
            else:
                # Simultaneous transmissions in the fully-interfering
                # network: everyone fails, the airtime is lost.
                collisions += 1
                collision_us += timing.data_airtime_us
                for link in winners:
                    attempts[int(link)] += 1

        return IntervalOutcome(
            deliveries=deliveries,
            attempts=attempts,
            busy_time_us=elapsed_us - backoff_us,
            overhead_time_us=backoff_us + collision_us,
            collisions=collisions,
            priorities=None,
            info={"windows": windows},
        )


# ----------------------------------------------------------------------
# Registry descriptor (repro.core.registry).  Scalar-only: FCSMA's
# per-round contention has no vectorized kernel, so every engine falls
# back to the scalar interval simulator — declared here instead of being
# the implicit `else` branch of the engine dispatch switches.
# ----------------------------------------------------------------------
from . import registry as _registry  # noqa: E402  (self-registration)

_registry.register(
    _registry.PolicyDescriptor(
        name="FCSMA",
        policy_class=FCSMAPolicy,
        to_config=lambda policy: {
            "window_map": _registry.encode_config_value(policy.window_map)
        },
        from_config=lambda config: FCSMAPolicy(
            window_map=_registry.decode_config_value(config["window_map"])
        ),
    )
)
