"""Frame-based CSMA baseline (Lu, Li, Srikant & Ying 2016 — reference [23]).

The frame-based CSMA algorithm generates a transmission *schedule* for each
frame (= interval) distributedly, using a short control phase at the frame
start, and then executes the schedule verbatim.  The paper's Section I
points out why this is sub-optimal over **unreliable** channels: the
schedule fixes each link's slot allocation before the channel outcomes are
known, so slots reserved for a link that finishes early (or has nothing
left worth retrying) cannot be reassigned within the frame — unlike the DP
protocol, whose priority-ordered service adapts to losses automatically.

Implementation (documented substitution — [23]'s exact control-phase
encoding is orthogonal to the capacity argument):

* A control phase of ``control_slots`` backoff slots at the frame start
  models the contention for schedule positions; it consumes airtime but
  carries no data.
* The schedule orders links by debt (the same weight the other debt-based
  policies use) and pre-allocates each backlogged link a contiguous block
  of ``ceil(backlog / p_n)`` transmission slots — its expected need —
  truncated to the frame budget.
* Within its block a link retries losses; **unused slots in a block are
  idle** (the non-adaptivity the paper criticizes).  With perfect channels
  blocks are sized exactly and the policy matches ELDF; with unreliable
  channels the variance of the geometric service time wastes capacity.
"""

from __future__ import annotations

import math

import numpy as np

from ..sim.rng import RngBundle
from .policies import IntervalMac, IntervalOutcome, serve_link_attempts

__all__ = ["FrameCSMAPolicy"]


class FrameCSMAPolicy(IntervalMac):
    """Frame-based scheduling with per-frame fixed slot blocks.

    Parameters
    ----------
    control_slots:
        Backoff slots consumed by the control phase at each frame start
        (models [23]'s control packets / control slot; 0 disables).
    headroom:
        Multiplier on each link's expected attempt need when sizing its
        block.  1.0 sizes to the mean; larger values trade idle slack for
        fewer truncated services.
    """

    name = "FrameCSMA"

    def __init__(self, control_slots: int = 16, headroom: float = 1.0):
        super().__init__()
        if control_slots < 0:
            raise ValueError(f"control_slots must be >= 0, got {control_slots}")
        if headroom <= 0:
            raise ValueError(f"headroom must be positive, got {headroom}")
        self.control_slots = control_slots
        self.headroom = headroom

    def run_interval(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: RngBundle,
    ) -> IntervalOutcome:
        spec = self.spec
        timing = spec.timing
        n = spec.num_links

        control_us = self.control_slots * timing.backoff_slot_us
        budget_slots = int(
            (timing.interval_us - control_us) // timing.data_airtime_us
        )
        deliveries = np.zeros(n, dtype=np.int64)
        attempts = np.zeros(n, dtype=np.int64)
        if budget_slots <= 0:
            return IntervalOutcome(
                deliveries=deliveries,
                attempts=attempts,
                busy_time_us=0.0,
                overhead_time_us=control_us,
                collisions=0,
            )

        # Schedule: debt order (descending), block sizes fixed up front.
        reliabilities = spec.reliabilities
        order = np.argsort(-positive_debts * reliabilities, kind="stable")
        blocks = {}
        remaining = budget_slots
        for link in order:
            link = int(link)
            backlog = int(arrivals[link])
            if backlog == 0 or remaining == 0:
                continue
            need = math.ceil(self.headroom * backlog / reliabilities[link])
            blocks[link] = min(need, remaining)
            remaining -= blocks[link]

        # Execute: each link confined to its block; unused slack is idle.
        busy_slots = 0
        idle_slots = 0
        for link, block in blocks.items():
            served, used = serve_link_attempts(
                link, int(arrivals[link]), block, spec.channel, rng.channel
            )
            deliveries[link] = served
            attempts[link] = used
            busy_slots += used
            idle_slots += block - used

        return IntervalOutcome(
            deliveries=deliveries,
            attempts=attempts,
            busy_time_us=busy_slots * timing.data_airtime_us,
            overhead_time_us=control_us
            + idle_slots * timing.data_airtime_us,
            collisions=0,
            info={"blocks": blocks, "unused_slots": idle_slots},
        )


# ----------------------------------------------------------------------
# Registry descriptor (repro.core.registry).  Scalar-only, like FCSMA.
# ----------------------------------------------------------------------
from . import registry as _registry  # noqa: E402  (self-registration)

_registry.register(
    _registry.PolicyDescriptor(
        name="FrameCSMA",
        policy_class=FrameCSMAPolicy,
        to_config=lambda policy: {
            "control_slots": int(policy.control_slots),
            "headroom": float(policy.headroom),
        },
        from_config=lambda config: FrameCSMAPolicy(
            control_slots=int(config["control_slots"]),
            headroom=float(config["headroom"]),
        ),
    )
)
