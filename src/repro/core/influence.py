"""Debt influence functions (Definition 6 of the paper).

A *debt influence function* ``f`` maps a nonnegative delivery debt to a
nonnegative scheduling weight.  Definition 6 requires:

1. ``f`` is nondecreasing, continuous, Riemann integrable, and
   ``f(x) -> inf`` as ``x -> inf``.
2. For any finite shift ``c``, ``f(x + c) / f(x) -> 1`` as ``x -> inf``
   (sub-exponential growth; ``a**x`` violates this, ``x**m`` and ``log`` obey
   it).

This module provides the influence functions used in the paper and in the
evaluation (``f(x) = log(max(1, 100 (x + 1)))`` with the paper's constants),
plus a numerical validity checker used by the test-suite to confirm the
membership examples given after Definition 6.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "DebtInfluenceFunction",
    "LinearInfluence",
    "PowerInfluence",
    "LogInfluence",
    "PaperLogInfluence",
    "ScaledInfluence",
    "CallableInfluence",
    "ExponentialInfluence",
    "check_influence_properties",
    "InfluenceCheckReport",
]


class DebtInfluenceFunction(ABC):
    """Abstract debt influence function ``f: R>=0 -> R>=0``.

    Instances are callables; subclasses implement :meth:`value`.  All provided
    implementations are stateless and hashable so policies can use them as
    configuration values.
    """

    @abstractmethod
    def value(self, x: float) -> float:
        """Return ``f(x)`` for a nonnegative debt ``x``."""

    def __call__(self, x: float) -> float:
        if x < 0:
            raise ValueError(f"debt influence functions are defined on x >= 0, got {x}")
        result = self.value(x)
        if result < 0:
            raise ValueError(
                f"{type(self).__name__} produced a negative weight {result} at x={x}"
            )
        return result

    def value_array(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Vectorized ``f`` over an array of nonnegative debts.

        The generic implementation loops; the influence functions used in
        hot paths (linear, power, log families) override it with true array
        arithmetic so the batch simulation engine can evaluate ``f`` for
        all seeds and links in one call.  ``out``, when given, receives
        the result (the hot-path overrides compute directly into it, so a
        workspace kernel evaluates ``f`` every interval without
        allocating); the return value is ``out`` itself.
        """
        x = np.asarray(x, dtype=float)
        if np.any(x < 0):
            raise ValueError("debt influence functions are defined on x >= 0")
        flat = np.array([self.value(float(v)) for v in x.ravel()], dtype=float)
        result = flat.reshape(x.shape)
        if out is None:
            return result
        np.copyto(out, result)
        return out

    def describe(self) -> str:
        """Human-readable formula, used in experiment reports."""
        return type(self).__name__


@dataclass(frozen=True)
class LinearInfluence(DebtInfluenceFunction):
    """``f(x) = scale * x``.

    With ``scale = 1`` this turns ELDF into the classical LDF policy
    (Remark 2) and recovers Theorem 2 of Hou (2014) from Lemma 2 (Remark 1).
    """

    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def value(self, x: float) -> float:
        return self.scale * x

    def value_array(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return np.multiply(np.asarray(x, dtype=float), self.scale, out=out)

    def describe(self) -> str:
        return f"f(x) = {self.scale:g} * x"


@dataclass(frozen=True)
class PowerInfluence(DebtInfluenceFunction):
    """``f(x) = x ** m`` with ``m >= 0`` (valid per the paper's examples)."""

    exponent: float = 2.0

    def __post_init__(self) -> None:
        if self.exponent < 0:
            raise ValueError(f"exponent must be nonnegative, got {self.exponent}")

    def value(self, x: float) -> float:
        return x**self.exponent

    def value_array(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return np.power(np.asarray(x, dtype=float), self.exponent, out=out)

    def describe(self) -> str:
        return f"f(x) = x**{self.exponent:g}"


@dataclass(frozen=True)
class LogInfluence(DebtInfluenceFunction):
    """``f(x) = log_base(1 + scale * x)``.

    The paper's examples list ``log_a(x)`` with ``a > 1`` as a valid influence
    function; we shift by one so that the function is finite and nonnegative
    at ``x = 0`` (the raw logarithm is negative below ``x = 1``, which is fine
    mathematically once clipped but awkward as a scheduling weight).
    """

    base: float = math.e
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.base <= 1:
            raise ValueError(f"base must exceed 1, got {self.base}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def value(self, x: float) -> float:
        return math.log1p(self.scale * x) / math.log(self.base)

    def value_array(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        res = np.multiply(np.asarray(x, dtype=float), self.scale, out=out)
        np.log1p(res, out=res)
        return np.divide(res, math.log(self.base), out=res)

    def describe(self) -> str:
        return f"f(x) = log_{self.base:g}(1 + {self.scale:g} x)"


@dataclass(frozen=True)
class PaperLogInfluence(DebtInfluenceFunction):
    """``f(x) = log(max(1, coefficient * (x + 1)))``.

    This is the exact influence function used throughout the paper's NS-3
    evaluation (Section VI) with ``coefficient = 100``.
    """

    coefficient: float = 100.0

    def __post_init__(self) -> None:
        if self.coefficient <= 0:
            raise ValueError(f"coefficient must be positive, got {self.coefficient}")

    def value(self, x: float) -> float:
        return math.log(max(1.0, self.coefficient * (x + 1.0)))

    def value_array(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        res = np.add(np.asarray(x, dtype=float), 1.0, out=out)
        np.multiply(res, self.coefficient, out=res)
        np.maximum(res, 1.0, out=res)
        return np.log(res, out=res)

    def describe(self) -> str:
        return f"f(x) = log(max(1, {self.coefficient:g}(x+1)))"


@dataclass(frozen=True)
class ScaledInfluence(DebtInfluenceFunction):
    """``f(x) = scale * inner(x)`` — positive scaling preserves Definition 6."""

    inner: DebtInfluenceFunction
    scale: float

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    def value(self, x: float) -> float:
        return self.scale * self.inner.value(x)

    def value_array(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        res = self.inner.value_array(x, out=out)
        return np.multiply(res, self.scale, out=res)

    def describe(self) -> str:
        return f"{self.scale:g} * [{self.inner.describe()}]"


@dataclass(frozen=True)
class ExponentialInfluence(DebtInfluenceFunction):
    """``f(x) = base ** x`` — deliberately **invalid** per Definition 6.

    Included so tests (and users) can confirm the validity checker rejects
    exponential growth, mirroring the paper's counterexample ``a**x``.
    """

    base: float = 2.0

    def __post_init__(self) -> None:
        if self.base <= 1:
            raise ValueError(f"base must exceed 1, got {self.base}")

    def value(self, x: float) -> float:
        return self.base**x

    def describe(self) -> str:
        return f"f(x) = {self.base:g}**x"


class CallableInfluence(DebtInfluenceFunction):
    """Wrap an arbitrary callable as an influence function.

    Useful for ad-hoc experimentation; the callable is trusted to satisfy
    Definition 6 (use :func:`check_influence_properties` to sanity-check it).
    """

    def __init__(self, func: Callable[[float], float], description: str = "custom"):
        self._func = func
        self._description = description

    def value(self, x: float) -> float:
        return float(self._func(x))

    def describe(self) -> str:
        return self._description


@dataclass(frozen=True)
class InfluenceCheckReport:
    """Outcome of a numerical Definition 6 check.

    The check is necessarily finite-sample: it evaluates ``f`` on a grid and
    verifies monotonicity, nonnegativity, divergence trend, and the
    asymptotic-ratio property ``f(x + c)/f(x) -> 1``.
    """

    nondecreasing: bool
    nonnegative: bool
    diverges: bool
    ratio_property: bool
    worst_ratio_gap: float

    @property
    def is_valid(self) -> bool:
        return (
            self.nondecreasing
            and self.nonnegative
            and self.diverges
            and self.ratio_property
        )


def check_influence_properties(
    func: DebtInfluenceFunction,
    *,
    grid: Sequence[float] | None = None,
    shifts: Iterable[float] = (1.0, 10.0, -5.0),
    ratio_tolerance: float = 0.05,
    probe_points: Sequence[float] = (1e4, 1e6, 1e8),
) -> InfluenceCheckReport:
    """Numerically vet ``func`` against Definition 6.

    Parameters
    ----------
    func:
        Candidate influence function.
    grid:
        Points used for the monotonicity / nonnegativity scan. Defaults to a
        mixed linear + geometric grid over ``[0, 1e6]``.
    shifts:
        Finite shifts ``c`` for the ratio property. Negative shifts are
        clipped so arguments stay nonnegative.
    ratio_tolerance:
        Maximum allowed ``|f(x+c)/f(x) - 1|`` at the largest probe point.
    probe_points:
        Increasingly large arguments at which the ratio property and
        divergence trend are probed.
    """
    if grid is None:
        linear = [i * 0.5 for i in range(200)]
        geometric = [10.0**e for e in range(7)]
        grid = sorted(set(linear + geometric))

    def evaluate(x: float) -> float:
        # Fast-growing candidates (the very functions the check should
        # reject) can overflow float; treat overflow as +inf so the scan
        # completes and the ratio property fails as it should.
        try:
            return func(x)
        except OverflowError:
            return float("inf")

    values = [evaluate(x) for x in grid]
    nonnegative = all(v >= 0 for v in values)
    nondecreasing = all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    # Divergence trend: f at the largest probe must dominate f at the
    # smallest probe by a clear margin (log(1e8/1e4) ~ 9.2 even for slow
    # logarithmic growth, so a factor-of-1.5 margin is safe for valid f).
    low, high = evaluate(probe_points[0]), evaluate(probe_points[-1])
    diverges = high > max(1.5 * low, low + 1.0)

    worst_gap = 0.0
    for c in shifts:
        for x in probe_points:
            arg = max(0.0, x + c)
            fx = evaluate(x)
            if fx == 0:
                continue
            ratio = evaluate(arg) / fx
            gap = abs(ratio - 1.0) if ratio == ratio else float("inf")
            # The property is asymptotic: only the largest probe point is
            # binding, earlier probes must merely not blow up.
            if x == probe_points[-1]:
                worst_gap = max(worst_gap, gap)
    ratio_property = worst_gap <= ratio_tolerance

    return InfluenceCheckReport(
        nondecreasing=nondecreasing,
        nonnegative=nonnegative,
        diverges=diverges,
        ratio_property=ratio_property,
        worst_ratio_gap=worst_gap,
    )
