"""Permutations and priority vectors (Definitions 7-9).

The paper represents transmission priorities by a permutation
``sigma = [sigma_1, ..., sigma_N]`` where ``sigma_n`` is the priority *index*
of link ``n`` (1 = highest priority).  This module provides the permutation
algebra the protocol and the Markov-chain analysis rely on:

* validity checks and conversions between "link -> priority" and
  "priority -> link" views,
* adjacent transpositions (Definition 8) — the only moves the DP protocol's
  swap handshake can make,
* symmetric difference (Definition 9),
* enumeration of the symmetric group for the exact chain analysis.

Priorities are 1-based to match the paper; link identifiers are 0-based
Python indices.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = [
    "is_priority_vector",
    "validate_priority_vector",
    "identity_priorities",
    "priority_to_link_order",
    "link_order_to_priorities",
    "symmetric_difference",
    "apply_adjacent_swap",
    "adjacent_swap_partners",
    "apply_swap_to_order",
    "is_adjacent_transposition",
    "enumerate_priority_vectors",
    "random_priority_vector",
    "inversions",
]


def is_priority_vector(sigma: Sequence[int]) -> bool:
    """True iff ``sigma`` is a permutation of ``{1, ..., N}``."""
    n = len(sigma)
    return n > 0 and sorted(sigma) == list(range(1, n + 1))


def validate_priority_vector(sigma: Sequence[int]) -> Tuple[int, ...]:
    """Return ``sigma`` as a tuple, raising ``ValueError`` if invalid."""
    sig = tuple(int(s) for s in sigma)
    if not is_priority_vector(sig):
        raise ValueError(f"{sigma!r} is not a permutation of 1..{len(sig)}")
    return sig


def identity_priorities(n: int) -> Tuple[int, ...]:
    """Priority vector where link ``i`` holds priority ``i + 1``."""
    if n <= 0:
        raise ValueError(f"need at least one link, got n={n}")
    return tuple(range(1, n + 1))


def priority_to_link_order(sigma: Sequence[int]) -> Tuple[int, ...]:
    """Map a priority vector to the transmission order of links.

    Returns a tuple ``order`` where ``order[j]`` is the (0-based) link that
    holds priority ``j + 1``; i.e. ``order[0]`` transmits first.
    """
    sig = validate_priority_vector(sigma)
    order = [0] * len(sig)
    for link, priority in enumerate(sig):
        order[priority - 1] = link
    return tuple(order)


def link_order_to_priorities(order: Sequence[int]) -> Tuple[int, ...]:
    """Inverse of :func:`priority_to_link_order`.

    ``order`` lists links from highest to lowest priority; the result maps
    each link to its 1-based priority index.
    """
    n = len(order)
    if sorted(order) != list(range(n)):
        raise ValueError(f"{order!r} is not an ordering of links 0..{n - 1}")
    sigma = [0] * n
    for position, link in enumerate(order):
        sigma[link] = position + 1
    return tuple(sigma)


def symmetric_difference(
    sigma: Sequence[int], sigma_prime: Sequence[int]
) -> Tuple[int, ...]:
    """Links (0-based) whose priority differs between the two vectors.

    This is Definition 9's ``sigma (triangle) sigma'`` expressed over link
    indices.
    """
    if len(sigma) != len(sigma_prime):
        raise ValueError("permutations must have equal length")
    return tuple(i for i, (a, b) in enumerate(zip(sigma, sigma_prime)) if a != b)


def is_adjacent_transposition(
    sigma: Sequence[int], sigma_prime: Sequence[int]
) -> bool:
    """True iff the two vectors differ by one adjacent transposition.

    Per Definition 8, an *adjacent* transposition exchanges two entries whose
    priority values differ by exactly 1.
    """
    diff = symmetric_difference(sigma, sigma_prime)
    if len(diff) != 2:
        return False
    i, j = diff
    return (
        sigma[i] == sigma_prime[j]
        and sigma[j] == sigma_prime[i]
        and abs(sigma[i] - sigma[j]) == 1
    )


def adjacent_swap_partners(sigma: Sequence[int], c: int) -> Tuple[int, int]:
    """Links currently holding priorities ``c`` and ``c + 1``.

    ``c`` is the candidate index ``C(k)`` from Step 1 of Algorithm 2,
    ``1 <= c <= N - 1``.  Returns (0-based) link indices
    ``(link_at_c, link_at_c_plus_1)``.
    """
    sig = validate_priority_vector(sigma)
    if not 1 <= c <= len(sig) - 1:
        raise ValueError(f"candidate index must be in [1, {len(sig) - 1}], got {c}")
    link_down = sig.index(c)
    link_up = sig.index(c + 1)
    return link_down, link_up


def apply_adjacent_swap(sigma: Sequence[int], c: int) -> Tuple[int, ...]:
    """Return the permutation with priorities ``c`` and ``c + 1`` exchanged."""
    link_down, link_up = adjacent_swap_partners(sigma, c)
    out = list(validate_priority_vector(sigma))
    out[link_down], out[link_up] = out[link_up], out[link_down]
    return tuple(out)


def apply_swap_to_order(order: List[int], c: int) -> Tuple[int, int]:
    """Apply the adjacent swap at candidate ``c`` to a mutable link order.

    ``order`` is the priority->link view (``order[j]`` holds priority
    ``j + 1``, as produced by :func:`priority_to_link_order`, but as a
    mutable list).  Exchanges the links at priorities ``c`` and ``c + 1``
    in place and returns ``(link_down, link_up)`` — the links that held
    priorities ``c`` and ``c + 1`` *before* the swap.

    This is the O(1) incremental counterpart of
    :func:`apply_adjacent_swap`: engines that maintain the order view
    across intervals (scalar :class:`~repro.core.dp_protocol.DPProtocol`,
    the batch kernel's ``dp_state="incremental"`` path) apply each
    accepted swap here instead of re-deriving the order from ``sigma``.
    """
    if not 1 <= c <= len(order) - 1:
        raise ValueError(
            f"candidate index must be in [1, {len(order) - 1}], got {c}"
        )
    link_down = order[c - 1]
    link_up = order[c]
    order[c - 1] = link_up
    order[c] = link_down
    return link_down, link_up


def enumerate_priority_vectors(n: int) -> Iterator[Tuple[int, ...]]:
    """Yield every permutation of ``{1, ..., n}`` (the state space S_N).

    Only intended for small ``n`` (the chain analysis caps at ``n! = 5040``
    states by default).
    """
    if n <= 0:
        raise ValueError(f"need at least one link, got n={n}")
    return itertools.permutations(range(1, n + 1))


def random_priority_vector(n: int, rng) -> Tuple[int, ...]:
    """Uniformly random priority vector drawn from ``rng`` (numpy Generator)."""
    perm = rng.permutation(n) + 1
    return tuple(int(v) for v in perm)


def inversions(sigma: Sequence[int]) -> int:
    """Number of inversions — distance to identity in adjacent swaps.

    Used by convergence analyses: each DP interval performs at most one
    adjacent transposition, so reaching a target ordering from ``sigma``
    takes at least ``inversions`` relative to that target.
    """
    sig = validate_priority_vector(sigma)
    count = 0
    for a, b in itertools.combinations(range(len(sig)), 2):
        if (a < b) and (sig[a] > sig[b]):
            count += 1
    return count
