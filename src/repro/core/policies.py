"""Policy framework: the interface every MAC policy implements.

A *policy* (transmission policy, Section II-C) decides which link transmits
at each instant of an interval.  All policies in this library operate on the
interval timeline abstraction provided by :class:`~repro.phy.timing.IntervalTiming`
and report an :class:`IntervalOutcome` per interval; the simulator owns the
debt ledger and metric collection.

The module also provides the shared service primitive
:func:`serve_link_attempts` — "link ``n`` holds the channel and keeps
(re)transmitting until its buffer empties or its attempt budget runs out"
(Step 6 of Algorithm 2 / Step 2 of Algorithm 1) — with a fast geometric
path for i.i.d. Bernoulli channels and a faithful per-attempt path for
stateful channel models.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..phy.channel import ChannelModel
from ..sim.rng import RngBundle
from .requirements import NetworkSpec

__all__ = ["IntervalOutcome", "IntervalMac", "serve_link_attempts"]


@dataclass
class IntervalOutcome:
    """What happened during one interval.

    Attributes
    ----------
    deliveries:
        ``S_n(k)`` per link — on-time packet deliveries.
    attempts:
        Transmission attempts per link (data packets only; excludes empty
        priority-claiming packets).
    busy_time_us:
        Channel time occupied by transmissions (data + empty + collisions).
    overhead_time_us:
        Channel time lost to contention: backoff slots, empty packets, and
        collided airtime.
    collisions:
        Number of collision events (0 for collision-free policies).
    priorities:
        The 1-based priority vector in force during the interval, for
        priority-based policies; ``None`` otherwise.
    info:
        Policy-specific extras (swap decisions, candidate pair, ...).
    """

    deliveries: np.ndarray
    attempts: np.ndarray
    busy_time_us: float = 0.0
    overhead_time_us: float = 0.0
    collisions: int = 0
    priorities: Optional[Tuple[int, ...]] = None
    info: Dict[str, object] = field(default_factory=dict)


class IntervalMac(ABC):
    """Base class for interval-structured MAC policies.

    Lifecycle: the simulator calls :meth:`bind` once with the network spec,
    then :meth:`run_interval` for ``k = 0, 1, 2, ...``.  Policies must not
    mutate the spec and must draw randomness only from the provided streams
    (``rng.shared`` for network-wide coordination, ``rng.policy`` for local
    decisions, ``rng.channel`` for transmission outcomes) so runs are
    reproducible and decentralization is auditable.
    """

    #: Human-readable policy name used in reports.
    name: str = "abstract"

    def __init__(self) -> None:
        self._spec: Optional[NetworkSpec] = None

    @property
    def spec(self) -> NetworkSpec:
        if self._spec is None:
            raise RuntimeError(
                f"{type(self).__name__} is not bound to a network; call bind()"
            )
        return self._spec

    def bind(self, spec: NetworkSpec) -> None:
        """Attach the policy to a network and reset internal state."""
        self._spec = spec
        self._on_bind()

    def _on_bind(self) -> None:
        """Hook for subclasses to (re)initialize per-network state."""

    @abstractmethod
    def run_interval(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: RngBundle,
    ) -> IntervalOutcome:
        """Simulate one interval and return its outcome.

        Parameters
        ----------
        k:
            Interval index (0-based).
        arrivals:
            ``A_n(k)`` per link.
        positive_debts:
            ``d_n^+(k)`` per link at the interval start.
        rng:
            The simulation's random streams.
        """


def serve_link_attempts(
    link: int,
    num_packets: int,
    max_attempts: int,
    channel: ChannelModel,
    rng: np.random.Generator,
) -> Tuple[int, int]:
    """Serve ``link`` holding the channel: retry until done or out of budget.

    Each attempt transmits the head-of-line packet and succeeds per the
    channel model.  Returns ``(delivered, attempts_used)``.

    For channels whose attempts are i.i.d. within one interval (the
    ``iid_within_interval`` capability: Bernoulli, and the per-interval
    state models at their current state's probability) the attempt count
    per delivery is geometric, so the whole run is sampled in one
    vectorized draw; channels with per-attempt memory fall back to
    attempt-by-attempt sampling.
    """
    if num_packets <= 0 or max_attempts <= 0:
        return 0, 0

    if channel.iid_within_interval:
        p = channel.success_prob(link)
        if p >= 1.0:
            delivered = min(num_packets, max_attempts)
            return delivered, delivered
        # Attempts needed per packet ~ Geometric(p) (support 1, 2, ...).
        needed = rng.geometric(p, size=num_packets)
        cumulative = np.cumsum(needed)
        delivered = int(np.searchsorted(cumulative, max_attempts, side="right"))
        if delivered == num_packets:
            attempts = int(cumulative[-1])
        else:
            attempts = max_attempts
        return delivered, attempts

    delivered = 0
    attempts = 0
    while delivered < num_packets and attempts < max_attempts:
        attempts += 1
        if channel.attempt(link, rng):
            delivered += 1
    return delivered, attempts
