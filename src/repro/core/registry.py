"""Policy registry: one declarative descriptor per MAC policy family.

Three performance layers (the per-cell batch engine, the grid-fused sweep
engine, and the kernel backends) plus the sweep cache all need to answer
the same questions about a policy: *does it have a vectorized kernel?*,
*can its cells join a fused mega-batch?*, *what configuration determines
its behaviour?*, *how do I build one by name?*.  Historically each layer
answered with its own ``isinstance`` chain, so adding a policy meant
editing four files in sync.  This module replaces every one of those
switches with a single source of truth: each policy family registers one
:class:`PolicyDescriptor` carrying

* its unique registry ``name`` (enforced at registration),
* the policy class served (dispatch walks the MRO, so subclasses resolve
  to the nearest registered ancestor — ``EstimatedDBDPPolicy`` rides on
  ``DB-DP``'s descriptor, for example),
* a config round-trip (:meth:`PolicyDescriptor.config_of` /
  :meth:`PolicyDescriptor.build`) used for cache fingerprints and
  by-name construction,
* an optional batch-kernel factory (a lazy ``"module:Class"`` reference,
  so policy modules never import the simulation engine), and
* declarative :class:`PolicyCapabilities` flags consumed by the engine
  dispatch sites (``batchable``, ``fusable``, ``supports_sync_rng``,
  ``supports_per_row_params``, ``jit_stages``).

Adding a new policy is now a one-file change::

    from repro.core import registry
    from repro.core.policies import IntervalMac

    class MyPolicy(IntervalMac):
        name = "MyPolicy"
        def __init__(self, knob=1.0): ...
        def run_interval(self, k, arrivals, positive_debts, rng): ...

    registry.register(registry.PolicyDescriptor(
        name="MyPolicy",
        policy_class=MyPolicy,
        to_config=lambda p: {"knob": float(p.knob)},
        from_config=lambda c: MyPolicy(knob=c["knob"]),
    ))

With no capability flags the policy is scalar-only: every engine
(``engine="batch"``/``"fused"`` included) transparently falls back to the
scalar interval simulator for it, and its sweep cells are cacheable with
no further code.  Declaring ``capabilities`` + ``batch_kernel`` later
upgrades it to the vectorized paths without touching any dispatch site.

This module deliberately owns the only ``isinstance``-on-policy logic in
the package (a CI lint enforces that it stays that way).
"""

from __future__ import annotations

import dataclasses
import importlib
import threading
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "PolicyCapabilities",
    "PolicyDescriptor",
    "register",
    "unregister",
    "available",
    "get",
    "descriptor_for",
    "create",
    "policy_config",
    "policy_label",
    "has_kernel",
    "make_kernel",
    "same_kernel_family",
    "resolve_policies",
    "encode_config_value",
    "decode_config_value",
    "register_config_component",
]

#: Modules whose frozen-dataclass components (swap biases, influence
#: functions, window maps) the config codec can decode by qualname.
_BUILTIN_COMPONENT_MODULES = (
    "repro.core.influence",
    "repro.core.dp_protocol",
    "repro.core.dbdp",
    "repro.core.fcsma",
    "repro.phy.channel",
    "repro.traffic.arrivals",
)

#: Policy modules that self-register at import time.  Lookups import them
#: lazily so the registry is complete regardless of import order.
_BUILTIN_POLICY_MODULES = (
    "repro.core.dp_protocol",
    "repro.core.dbdp",
    "repro.core.eldf",
    "repro.core.fcsma",
    "repro.core.frame_csma",
    "repro.core.dcf",
    "repro.core.round_robin",
    "repro.core.static_priority",
)


@dataclass(frozen=True)
class PolicyCapabilities:
    """What the performance layers may do with a policy family.

    Attributes
    ----------
    batchable:
        The family has a vectorized batch kernel
        (``PolicyDescriptor.batch_kernel``); ``engine="batch"`` runs all
        seeds of a cell at once instead of falling back to scalar runs.
    fusable:
        Cells of this family may join a grid-fused mega-batch
        (:func:`repro.experiments.grid.run_sweep_fused`).  Requires
        ``batchable``; kernels may still reject a *particular* stack at
        bind time (heterogeneous timings, unstackable parameters), which
        degrades to per-cell simulation.
    supports_sync_rng:
        The kernel's ``sync_rng=True`` mode (scalar-identical streams,
        bit-exact against the scalar engine) is available.
    supports_per_row_params:
        Fused rows may carry per-row policy parameters (e.g. the DP
        kernel's per-row Glauber constants); families without it require
        every fused row to share one configuration.
    supports_free_rng:
        The kernel honors the ``rng="free"`` draw discipline (demand-sized
        blocks from independent free substreams; statistical equivalence
        instead of bit-identity — see :mod:`repro.sim.rng`).  Families
        without it degrade to the lockstep batch discipline (the fused
        runner warns once per sweep).
    supports_incremental_dp:
        The batch kernel maintains its priority state incrementally
        (``dp_state="incremental"``): the permutation, its inverse and
        the serve-order tables persist in the workspace across intervals
        and only accepted adjacent swaps are applied, so the per-interval
        cost tracks the protocol's O(num_pairs) moves instead of N.
        Bit-identical to the dense recompute; families without it always
        run dense.
    supports_topology:
        The family can run under the multi-cell interference-graph layer
        (:mod:`repro.topology`): its batch kernel draws every random
        input through the swappable chunked draw objects, so the
        topology engine can key each cell's randomness to the cell's own
        streams.  Families without it degrade to single-domain runs (the
        runner warns once per sweep).  Requires ``batchable``.
    supports_markov_channel:
        The family's batch kernel consumes channel randomness exclusively
        through the chunked channel-draw object, so a stateful channel's
        per-interval state (Gilbert-Elliott Markov evolution, time-varying
        schedules) can be threaded in as dynamic per-chunk probability
        planes.  Families without it degrade to the scalar engine for
        stateful channels (the runner warns once per sweep).  Requires
        ``batchable``.
    jit_stages:
        Names of the kernel's Numba-compilable stages
        (:mod:`repro.sim.jit_kernels`); empty for pure-NumPy kernels.
    """

    batchable: bool = False
    fusable: bool = False
    supports_sync_rng: bool = True
    supports_per_row_params: bool = False
    supports_free_rng: bool = False
    supports_incremental_dp: bool = False
    supports_topology: bool = False
    supports_markov_channel: bool = False
    jit_stages: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.fusable and not self.batchable:
            raise ValueError("a fusable policy family must be batchable")
        if self.supports_topology and not self.batchable:
            raise ValueError(
                "a topology-capable policy family must be batchable"
            )
        if self.supports_markov_channel and not self.batchable:
            raise ValueError(
                "a markov-channel-capable policy family must be batchable"
            )


#: Scalar-only capability set (the default): every engine falls back to
#: the scalar interval simulator.
SCALAR_ONLY = PolicyCapabilities()

#: Sentinel distinguishing "factory omitted" (defaults to the policy
#: class) from an explicit ``factory=None`` (no default construction).
_FACTORY_UNSET: Any = object()


@dataclass(frozen=True)
class PolicyDescriptor:
    """Everything the engines and the cache need to know about a family.

    Parameters
    ----------
    name:
        Unique registry name; by convention the policy class's ``name``
        attribute ("DB-DP", "LDF", ...).
    policy_class:
        The family's class.  Subclasses without their own descriptor
        resolve to this one via the MRO.
    to_config:
        Maps a policy instance to a JSON-ready dict of exactly the
        configuration that determines its behaviour (used in cache
        fingerprints — changing the encoding invalidates stored cells).
    from_config:
        Inverse of ``to_config``: rebuild an equivalent policy instance.
    factory:
        Zero-argument constructor for by-name creation (defaults to
        ``policy_class``; ``None`` marks families that need explicit
        arguments, like the generic ``DP`` protocol).
    batch_kernel:
        Lazy ``"module:ClassName"`` reference to the family's
        :class:`~repro.sim.batch_kernels.BatchPolicyKernel`, or a
        callable ``policy -> kernel``; ``None`` for scalar-only families.
    capabilities:
        Declarative capability flags; see :class:`PolicyCapabilities`.
    """

    name: str
    policy_class: type
    to_config: Callable[[Any], dict]
    from_config: Callable[[dict], Any]
    factory: Optional[Callable[[], Any]] = _FACTORY_UNSET
    batch_kernel: Union[None, str, Callable[[Any], Any]] = None
    capabilities: PolicyCapabilities = field(default=SCALAR_ONLY)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("descriptor needs a non-empty name")
        if self.factory is _FACTORY_UNSET:
            object.__setattr__(self, "factory", self.policy_class)
        if self.capabilities.batchable and self.batch_kernel is None:
            raise ValueError(
                f"descriptor {self.name!r} declares batchable=True but "
                "supplies no batch_kernel"
            )
        if self.batch_kernel is not None and not self.capabilities.batchable:
            raise ValueError(
                f"descriptor {self.name!r} supplies a batch_kernel but "
                "declares batchable=False"
            )

    # -- construction --------------------------------------------------
    def build(self, config: Optional[Mapping[str, Any]] = None) -> Any:
        """A policy instance from a config dict (default config if None)."""
        if config is None:
            if self.factory is None:
                raise TypeError(
                    f"policy family {self.name!r} has no default factory; "
                    "pass a config"
                )
            return self.factory()
        return self.from_config(dict(config))

    def config_of(self, policy: Any) -> dict:
        """The behaviour-determining config of ``policy`` (JSON-ready)."""
        return self.to_config(policy)

    # -- kernels -------------------------------------------------------
    def kernel_factory(self) -> Optional[Callable[[Any], Any]]:
        """Resolve ``batch_kernel`` to a callable (imports lazily)."""
        ref = self.batch_kernel
        if ref is None or callable(ref):
            return ref
        module_name, _, attr = ref.partition(":")
        if not attr:
            raise ValueError(
                f"batch_kernel reference {ref!r} of {self.name!r} is not "
                "of the form 'module:ClassName'"
            )
        return getattr(importlib.import_module(module_name), attr)

    def kernel_family(self) -> Optional[object]:
        """Identity token of the kernel this family binds (or ``None``).

        Two descriptors sharing one token (e.g. ``DP`` and ``DB-DP``,
        both served by ``BatchDPKernel``) may mix rows in one batch
        stack, subject to the kernel's own bind-time parameter checks.
        """
        ref = self.batch_kernel
        return ref if ref is not None else None


# ----------------------------------------------------------------------
# The registry proper
# ----------------------------------------------------------------------
_lock = threading.RLock()
_by_name: Dict[str, PolicyDescriptor] = {}
_by_class: Dict[type, PolicyDescriptor] = {}
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the built-in policy modules so they self-register."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    with _lock:
        if _builtins_loaded:
            return
        # Mark first: the imports below re-enter register().
        _builtins_loaded = True
        for module in _BUILTIN_POLICY_MODULES:
            importlib.import_module(module)


def register(descriptor: PolicyDescriptor) -> PolicyDescriptor:
    """Add a descriptor; unique names and classes are enforced.

    Re-registering the *same* (name, class) pair is a no-op returning the
    existing descriptor (so module reloads are harmless); a name or class
    collision with a different family raises ``ValueError``.
    """
    with _lock:
        existing = _by_name.get(descriptor.name)
        if existing is not None:
            if existing.policy_class is descriptor.policy_class:
                return existing
            raise ValueError(
                f"policy name {descriptor.name!r} is already registered "
                f"for {existing.policy_class.__qualname__}; names must be "
                "unique"
            )
        bound = _by_class.get(descriptor.policy_class)
        if bound is not None:
            raise ValueError(
                f"class {descriptor.policy_class.__qualname__} is already "
                f"registered as {bound.name!r}"
            )
        _by_name[descriptor.name] = descriptor
        _by_class[descriptor.policy_class] = descriptor
        return descriptor


def unregister(name: str) -> None:
    """Remove a descriptor by name (primarily for tests)."""
    with _lock:
        descriptor = _by_name.pop(name, None)
        if descriptor is not None:
            _by_class.pop(descriptor.policy_class, None)


def available() -> Tuple[str, ...]:
    """Sorted names of every registered policy family."""
    _ensure_builtins()
    with _lock:
        return tuple(sorted(_by_name))


def get(name: str) -> PolicyDescriptor:
    """The descriptor registered under ``name`` (``KeyError`` otherwise)."""
    _ensure_builtins()
    with _lock:
        try:
            return _by_name[name]
        except KeyError:
            raise KeyError(
                f"no policy registered under {name!r}; available: "
                f"{', '.join(sorted(_by_name))}"
            ) from None


def descriptor_for(policy: Any) -> Optional[PolicyDescriptor]:
    """The nearest registered descriptor for a policy instance or class.

    Walks the MRO, so subclasses resolve to their closest registered
    ancestor; returns ``None`` for unregistered (third-party) policies.
    """
    _ensure_builtins()
    cls = policy if isinstance(policy, type) else type(policy)
    with _lock:
        for ancestor in cls.__mro__:
            descriptor = _by_class.get(ancestor)
            if descriptor is not None:
                return descriptor
    return None


def create(name: str, config: Optional[Mapping[str, Any]] = None) -> Any:
    """Build a policy by registry name (default config unless given)."""
    return get(name).build(config)


def policy_label(policy: Any) -> str:
    """Reporting label for a policy instance.

    The registered name when the instance's class is exactly the
    registered family class (unique by construction); the instance's own
    ``name`` attribute for subclass variants and unregistered policies.
    """
    descriptor = descriptor_for(policy)
    if descriptor is not None and type(policy) is descriptor.policy_class:
        return descriptor.name
    return str(getattr(policy, "name", type(policy).__name__))


def policy_config(policy: Any) -> Optional[dict]:
    """The full fingerprint dict of ``policy``, or ``None``.

    ``None`` means "unregistered or unencodable policy": callers (the
    sweep cache) treat the policy as uncacheable rather than risking a
    key collision.  The dict tags the instance's concrete class, its
    ``name``, and the descriptor's behaviour config.
    """
    descriptor = descriptor_for(policy)
    if descriptor is None:
        return None
    try:
        config = descriptor.config_of(policy)
    except TypeError:
        return None
    return {
        "class": type(policy).__qualname__,
        "name": policy.name,
        **config,
    }


# -- kernel dispatch ---------------------------------------------------
def has_kernel(policy: Any) -> bool:
    """Whether ``policy`` resolves to a family with a batch kernel."""
    descriptor = descriptor_for(policy)
    return descriptor is not None and descriptor.capabilities.batchable


def make_kernel(policy: Any) -> Any:
    """Instantiate the batch kernel serving ``policy``.

    Raises ``TypeError`` for scalar-only and unregistered families,
    naming the batchable families, so engine callers can fall back.
    """
    descriptor = descriptor_for(policy)
    if descriptor is None or not descriptor.capabilities.batchable:
        batchable = [
            n for n in available() if get(n).capabilities.batchable
        ]
        raise TypeError(
            f"no batch kernel for policy {type(policy).__name__!r}; "
            f"batchable families: {', '.join(batchable)}"
        )
    factory = descriptor.kernel_factory()
    assert factory is not None  # batchable guarantees a kernel reference
    return factory(policy)


def same_kernel_family(a: Any, b: Any) -> bool:
    """Whether two policies bind the same batch kernel.

    True when both resolve to registered descriptors sharing one
    ``batch_kernel`` reference (``DP`` and ``DB-DP`` rows may share a
    stack, for instance); the kernel still vets per-row parameters at
    bind time.
    """
    da, db = descriptor_for(a), descriptor_for(b)
    if da is None or db is None:
        return False
    fam_a, fam_b = da.kernel_family(), db.kernel_family()
    return fam_a is not None and fam_a == fam_b


# -- by-name sweep construction ----------------------------------------
def resolve_policies(
    policies: Union[Mapping[str, Any], Sequence[str]],
) -> Dict[str, Callable[[], Any]]:
    """Normalize a sweep's ``policies`` argument to ``{label: factory}``.

    Accepts the classic ``{label: factory}`` mapping (passed through,
    with string values looked up by registry name) or a plain sequence
    of registry names, so ``run_sweep(..., policies=("DB-DP", "LDF"))``
    works.  Registry factories are the policy classes themselves, so the
    result stays picklable for the process-parallel runner.
    """
    if isinstance(policies, Mapping):
        items: Iterable[Tuple[str, Any]] = policies.items()
    else:
        items = ((name, name) for name in policies)
    resolved: Dict[str, Callable[[], Any]] = {}
    for label, factory in items:
        if isinstance(factory, str):
            descriptor = get(factory)
            if descriptor.factory is None:
                raise TypeError(
                    f"policy family {factory!r} has no default factory; "
                    "pass a callable instead of its name"
                )
            factory = descriptor.factory
        resolved[str(label)] = factory
    return resolved


# ----------------------------------------------------------------------
# Config value codec (shared with the sweep cache)
# ----------------------------------------------------------------------
_component_classes: Dict[str, type] = {}
_components_loaded = False


def _codec_capable(obj: Any) -> bool:
    """A class the codec can round-trip: a dataclass, or a plain class
    carrying its own ``to_config``/``from_config`` pair (e.g. stateful
    arrival processes whose abstract properties preclude dataclass
    fields)."""
    if not isinstance(obj, type):
        return False
    if dataclasses.is_dataclass(obj):
        return True
    return callable(getattr(obj, "to_config", None)) and callable(
        getattr(obj, "from_config", None)
    )


def _component_table() -> Dict[str, type]:
    """Qualname -> class for every decodable config component."""
    global _components_loaded
    if not _components_loaded:
        with _lock:
            if not _components_loaded:
                for module_name in _BUILTIN_COMPONENT_MODULES:
                    module = importlib.import_module(module_name)
                    for obj in vars(module).values():
                        if (
                            _codec_capable(obj)
                            and obj.__qualname__ not in _component_classes
                        ):
                            _component_classes[obj.__qualname__] = obj
                _components_loaded = True
    return _component_classes


def register_config_component(cls: type) -> type:
    """Make a component class decodable by the config codec.

    Built-in biases, influence functions and window maps are picked up
    automatically; third-party policies whose configs embed their own
    dataclass (or ``to_config``/``from_config``-bearing) components
    register them here (usable as a decorator).
    """
    if not _codec_capable(cls):
        raise TypeError(
            f"{cls!r} is not a dataclass type and does not define a "
            "to_config/from_config pair"
        )
    with _lock:
        _component_table()[cls.__qualname__] = cls
    return cls


def encode_config_value(obj: Any) -> Any:
    """A JSON-serializable, content-complete encoding of ``obj``.

    Frozen dataclasses (biases, influence functions, channels, arrival
    processes, timings) encode recursively as tagged dicts; primitives
    and containers pass through.  Raises ``TypeError`` for anything else
    so callers can treat the object as uncacheable.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        encoded: dict = {"__class__": type(obj).__qualname__}
        for f in dataclasses.fields(obj):
            encoded[f.name] = encode_config_value(getattr(obj, f.name))
        return encoded
    if not isinstance(obj, type) and callable(getattr(obj, "to_config", None)):
        # Non-dataclass components (e.g. MarkovModulatedArrivals) supply
        # their own parameter dict; mutable per-interval state stays out.
        encoded = {"__class__": type(obj).__qualname__}
        for key, val in obj.to_config().items():
            encoded[str(key)] = encode_config_value(val)
        return encoded
    if isinstance(obj, (list, tuple)):
        return [encode_config_value(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): encode_config_value(v) for k, v in obj.items()}
    if hasattr(obj, "item") and callable(obj.item) and getattr(obj, "ndim", None) == 0:
        return encode_config_value(obj.item())  # numpy scalar
    raise TypeError(f"cannot fingerprint {type(obj).__name__}")


def decode_config_value(value: Any) -> Any:
    """Inverse of :func:`encode_config_value`.

    Tagged dicts rebuild their dataclass (looked up in the component
    table); lists decode to tuples, matching the tuple-typed fields of
    every frozen component.  ``KeyError`` names unknown component tags.
    """
    if isinstance(value, Mapping):
        if "__class__" in value:
            qualname = value["__class__"]
            table = _component_table()
            try:
                cls = table[qualname]
            except KeyError:
                raise KeyError(
                    f"unknown config component {qualname!r}; register it "
                    "with repro.core.registry.register_config_component"
                ) from None
            kwargs = {
                str(k): decode_config_value(v)
                for k, v in value.items()
                if k != "__class__"
            }
            from_config = getattr(cls, "from_config", None)
            if not dataclasses.is_dataclass(cls) and callable(from_config):
                return from_config(kwargs)
            return cls(**kwargs)
        return {str(k): decode_config_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return tuple(decode_config_value(v) for v in value)
    return value
