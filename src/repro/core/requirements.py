"""Network specification: links, arrivals, channel, timing, requirements.

A network in the paper is the tuple ``(N, A, T, p)`` plus a timely-throughput
requirement vector ``q`` (equivalently per-link delivery ratios
``rho_n = q_n / lambda_n``, Section II-C).  :class:`NetworkSpec` bundles all
of it and validates cross-component consistency (same link count everywhere,
``q_n <= lambda_n`` since ``S_n(k) <= A_n(k)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..phy.channel import ChannelModel
from ..phy.timing import IntervalTiming
from ..traffic.arrivals import ArrivalProcess

__all__ = ["NetworkSpec"]


@dataclass(frozen=True)
class NetworkSpec:
    """Complete description of one simulated network.

    Parameters
    ----------
    arrivals:
        The arrival process ``A`` (defines the number of links).
    channel:
        The unreliable channel model ``p``.
    timing:
        Interval timing ``T`` plus airtime bookkeeping.
    requirements:
        Timely-throughput requirements ``q_n`` (packets per interval).
        Build from delivery ratios with :meth:`from_delivery_ratios`.
    """

    arrivals: ArrivalProcess
    channel: ChannelModel
    timing: IntervalTiming
    requirements: tuple

    def __post_init__(self) -> None:
        n = self.arrivals.num_links
        if self.channel.num_links != n:
            raise ValueError(
                f"channel covers {self.channel.num_links} links but arrivals "
                f"cover {n}"
            )
        q = tuple(float(v) for v in self.requirements)
        if len(q) != n:
            raise ValueError(f"expected {n} requirements, got {len(q)}")
        rates = self.arrivals.mean_rates
        for i, (qi, lam) in enumerate(zip(q, rates)):
            if qi < 0:
                raise ValueError(f"q_{i} must be nonnegative, got {qi}")
            if qi > lam + 1e-12:
                raise ValueError(
                    f"q_{i}={qi} exceeds arrival rate lambda_{i}={lam}; "
                    "S_n(k) <= A_n(k) makes this unfulfillable"
                )
        object.__setattr__(self, "requirements", q)

    # ------------------------------------------------------------------
    @classmethod
    def from_delivery_ratios(
        cls,
        arrivals: ArrivalProcess,
        channel: ChannelModel,
        timing: IntervalTiming,
        delivery_ratios: Sequence[float] | float,
    ) -> "NetworkSpec":
        """Build requirements as ``q_n = rho_n * lambda_n``."""
        rates = arrivals.mean_rates
        if np.isscalar(delivery_ratios):
            rhos = np.full(arrivals.num_links, float(delivery_ratios))
        else:
            rhos = np.asarray(delivery_ratios, dtype=float)
        if rhos.shape != rates.shape:
            raise ValueError(
                f"expected {rates.size} delivery ratios, got shape {rhos.shape}"
            )
        if np.any(rhos < 0) or np.any(rhos > 1):
            raise ValueError(f"delivery ratios must lie in [0, 1], got {rhos}")
        return cls(
            arrivals=arrivals,
            channel=channel,
            timing=timing,
            requirements=tuple(rhos * rates),
        )

    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        return self.arrivals.num_links

    @property
    def reliabilities(self) -> np.ndarray:
        return self.channel.reliabilities

    @property
    def mean_rates(self) -> np.ndarray:
        return self.arrivals.mean_rates

    @property
    def requirement_vector(self) -> np.ndarray:
        return np.asarray(self.requirements, dtype=float)

    @property
    def delivery_ratios(self) -> np.ndarray:
        """``rho_n = q_n / lambda_n`` (0 where ``lambda_n = 0``)."""
        rates = self.mean_rates
        out = np.zeros_like(rates)
        nonzero = rates > 0
        out[nonzero] = self.requirement_vector[nonzero] / rates[nonzero]
        return out

    def workload_bound_utilization(self) -> float:
        """``sum_n q_n / p_n`` divided by transmission opportunities.

        A value above 1 certifies infeasibility (each delivery by link ``n``
        costs ``1/p_n`` attempts in expectation and the interval offers at
        most ``T`` attempts); below 1 is necessary but not sufficient.
        """
        attempts_needed = float(
            np.sum(self.requirement_vector / self.reliabilities)
        )
        return attempts_needed / self.timing.max_transmissions
