"""Round-robin (TDMA-style) baseline.

Deadline- and debt-oblivious: the priority ordering rotates by one position
each interval, so every link periodically gets the head slot.  Perfectly
fair in the long run and collision-free, but it cannot react to debts —
links with unlucky channels or bursty arrivals fall behind exactly when
they need more service.  Included as the natural "fair but state-oblivious"
reference point next to DCF ("unfair and state-oblivious") and the
debt-based policies.
"""

from __future__ import annotations

import numpy as np

from ..sim.rng import RngBundle
from .policies import IntervalMac, IntervalOutcome, serve_link_attempts

__all__ = ["RoundRobinPolicy"]


class RoundRobinPolicy(IntervalMac):
    """Rotating strict-priority service."""

    name = "RoundRobin"

    def __init__(self) -> None:
        super().__init__()
        self._offset = 0

    def _on_bind(self) -> None:
        self._offset = 0

    def run_interval(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: RngBundle,
    ) -> IntervalOutcome:
        spec = self.spec
        timing = spec.timing
        n = spec.num_links
        order = [(self._offset + i) % n for i in range(n)]
        self._offset = (self._offset + 1) % n

        deliveries = np.zeros(n, dtype=np.int64)
        attempts = np.zeros(n, dtype=np.int64)
        elapsed_us = 0.0
        for link in order:
            backlog = int(arrivals[link])
            if backlog == 0:
                continue
            budget = int((timing.interval_us - elapsed_us) // timing.data_airtime_us)
            if budget <= 0:
                break
            served, used = serve_link_attempts(
                link, backlog, budget, spec.channel, rng.channel
            )
            deliveries[link] = served
            attempts[link] = used
            elapsed_us += used * timing.data_airtime_us

        priorities = [0] * n
        for position, link in enumerate(order):
            priorities[link] = position + 1
        return IntervalOutcome(
            deliveries=deliveries,
            attempts=attempts,
            busy_time_us=elapsed_us,
            overhead_time_us=0.0,
            collisions=0,
            priorities=tuple(priorities),
        )


# ----------------------------------------------------------------------
# Registry descriptor (repro.core.registry).
# ----------------------------------------------------------------------
from . import registry as _registry  # noqa: E402  (self-registration)
from .eldf import ORDERED_SERVICE_CAPABILITIES  # noqa: E402

_registry.register(
    _registry.PolicyDescriptor(
        name="RoundRobin",
        policy_class=RoundRobinPolicy,
        to_config=lambda policy: {},
        from_config=lambda config: RoundRobinPolicy(),
        batch_kernel="repro.sim.batch_kernels:BatchRoundRobinKernel",
        capabilities=ORDERED_SERVICE_CAPABILITIES,
    )
)
