"""Fixed-priority policy (the Fig. 6 setup).

Serves links in one unchanging priority order every interval, using the same
back-to-back service rule as ELDF.  The paper uses a fixed ordering to show
that the priority structure alone prevents starvation: average
timely-throughput decreases with priority index, but even the last link
receives non-zero service (because higher-priority links frequently finish
their buffers early).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..sim.rng import RngBundle
from .permutations import priority_to_link_order, validate_priority_vector
from .policies import IntervalMac, IntervalOutcome, serve_link_attempts

__all__ = ["StaticPriorityPolicy"]


class StaticPriorityPolicy(IntervalMac):
    """Always serve links in the given fixed priority order.

    Parameters
    ----------
    priorities:
        1-based priority vector ``sigma`` (``priorities[n]`` is link ``n``'s
        index, 1 = served first).  Defaults to the identity ordering.
    """

    name = "StaticPriority"

    def __init__(self, priorities: Sequence[int] | None = None):
        super().__init__()
        self._configured = (
            validate_priority_vector(priorities) if priorities is not None else None
        )
        self._order: Tuple[int, ...] = ()

    def _on_bind(self) -> None:
        n = self.spec.num_links
        if self._configured is None:
            sigma = tuple(range(1, n + 1))
        else:
            if len(self._configured) != n:
                raise ValueError(
                    f"priority vector covers {len(self._configured)} links, "
                    f"network has {n}"
                )
            sigma = self._configured
        self._sigma = sigma
        self._order = priority_to_link_order(sigma)

    def run_interval(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: RngBundle,
    ) -> IntervalOutcome:
        spec = self.spec
        timing = spec.timing
        deliveries = np.zeros(spec.num_links, dtype=np.int64)
        attempts = np.zeros(spec.num_links, dtype=np.int64)
        elapsed_us = 0.0
        for link in self._order:
            backlog = int(arrivals[link])
            if backlog == 0:
                continue
            budget = int((timing.interval_us - elapsed_us) // timing.data_airtime_us)
            if budget <= 0:
                break
            served, used = serve_link_attempts(
                link, backlog, budget, spec.channel, rng.channel
            )
            deliveries[link] = served
            attempts[link] = used
            elapsed_us += used * timing.data_airtime_us

        return IntervalOutcome(
            deliveries=deliveries,
            attempts=attempts,
            busy_time_us=elapsed_us,
            overhead_time_us=0.0,
            collisions=0,
            priorities=self._sigma,
        )


# ----------------------------------------------------------------------
# Registry descriptor (repro.core.registry).
# ----------------------------------------------------------------------
from . import registry as _registry  # noqa: E402  (self-registration)
from .eldf import ORDERED_SERVICE_CAPABILITIES  # noqa: E402

_registry.register(
    _registry.PolicyDescriptor(
        name="StaticPriority",
        policy_class=StaticPriorityPolicy,
        to_config=lambda policy: {
            "priorities": _registry.encode_config_value(policy._configured)
        },
        from_config=lambda config: StaticPriorityPolicy(
            priorities=_registry.decode_config_value(config["priorities"])
        ),
        batch_kernel="repro.sim.batch_kernels:BatchStaticPriorityKernel",
        capabilities=ORDERED_SERVICE_CAPABILITIES,
    )
)
