"""Reproduction experiments: one entry point per paper figure plus the
sweep runner and reporting helpers."""
