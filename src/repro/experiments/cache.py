"""Content-addressed on-disk cache for sweep cells.

A figure sweep is a grid of independent (parameter value, policy) cells,
each fully determined by its network spec, policy configuration, seed
list, horizon, and the simulation code itself.  This module caches each
cell's aggregated :class:`~repro.experiments.runner.SweepPoint` under a
SHA-256 key of exactly those inputs, so re-running a figure (or a sweep
sharing cells with a previous one) skips the simulation entirely.

Key properties:

* **Content-addressed** — the key hashes a canonical JSON encoding of the
  spec (recursively, through its frozen dataclass components), the policy
  configuration, the seed tuple, the interval count, the RNG discipline,
  the reporting groups, and :func:`engine_version` (a hash of the engine
  source files).  Changing any of these — a reliability, a Glauber
  constant, a seed, or the simulator code — changes the key, so stale
  hits are impossible by construction.
* **Exact** — cached floats round-trip through JSON bit-for-bit (Python
  serializes floats with shortest-roundtrip ``repr``), so a warm-cache
  sweep reproduces the cold run's :class:`SweepPoint` values exactly.
* **Conservative** — anything the fingerprinters do not recognize (a
  custom policy class, a spec carrying non-dataclass state) yields no
  key, and the cell is simply recomputed every time.

The default location is ``.repro_cache/sweeps`` under the current
directory; the ``REPRO_SWEEP_CACHE`` environment variable overrides it
(set it to ``off`` to disable caching even where code requests it).

One semantic caveat, inherited from the grid-fused engine
(:mod:`repro.experiments.grid`): in the default ``sync_rng=False`` mode a
cell's *sampled values* depend on the composition of the fused mega-batch
it ran in, so a cell recomputed inside a different sweep is a fresh
(statistically equivalent) sample rather than a bit-identical replay.
Warm hits of a previously stored cell are always bit-identical; only
cold recomputations in a new stack resample.  ``sync_rng=True`` cells
are bit-identical either way.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from ..core import registry
from .runner import SweepPoint

__all__ = [
    "DEFAULT_CACHE_DIR",
    "SweepCache",
    "engine_version",
    "fingerprint",
    "policy_fingerprint",
    "resolve_cache",
    "warn_uncacheable",
]

#: Bump when the stored payload layout changes.
_SCHEMA = 1

#: Environment variable overriding the cache directory ("off" disables).
ENV_VAR = "REPRO_SWEEP_CACHE"

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = Path(".repro_cache") / "sweeps"

#: Source files whose content defines the simulation semantics a cached
#: value depends on.  Paths are relative to the ``repro`` package root.
_ENGINE_SOURCES = (
    "core/dp_protocol.py",
    "core/dbdp.py",
    "core/eldf.py",
    "core/policies.py",
    "core/registry.py",
    "phy/channel.py",
    "traffic/arrivals.py",
    "sim/batch_kernels.py",
    "sim/batch_sim.py",
    "sim/interval_sim.py",
    "sim/rng.py",
    "sim/spec_stack.py",
    "experiments/grid.py",
    "experiments/runner.py",
    "experiments/cache.py",
)

_engine_version_cache: Optional[str] = None


def engine_version() -> str:
    """Hash of the engine source files (memoized per process).

    Editing any file in ``_ENGINE_SOURCES`` changes this value and hence
    every cache key, invalidating all previously stored cells.
    """
    global _engine_version_cache
    if _engine_version_cache is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for rel in _ENGINE_SOURCES:
            digest.update(rel.encode("utf-8"))
            digest.update((root / rel).read_bytes())
        _engine_version_cache = digest.hexdigest()[:16]
    return _engine_version_cache


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def fingerprint(obj: Any) -> Any:
    """A JSON-serializable, content-complete encoding of ``obj``.

    Frozen dataclasses (specs, channels, arrival processes, timings,
    biases, influence functions) encode recursively as tagged dicts;
    primitives and containers pass through.  Raises ``TypeError`` for
    anything else so callers can treat the object as uncacheable.

    This is :func:`repro.core.registry.encode_config_value` — the cache
    and the registry's policy config round-trip share one encoding, so a
    descriptor's ``to_config`` output is a cache fingerprint verbatim.
    """
    return registry.encode_config_value(obj)


def policy_fingerprint(policy: Any) -> Optional[dict]:
    """The configuration that determines a policy's behaviour, or ``None``.

    Delegates to the policy registry
    (:func:`repro.core.registry.policy_config`): the registered
    descriptor's ``to_config`` supplies the behaviour config, tagged
    with the instance's concrete class and name.  ``None`` means
    "unregistered policy" (or a config the encoder cannot serialize):
    the cell runs uncached rather than risking a collision between
    distinct configurations.
    """
    return registry.policy_config(policy)


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
class SweepCache:
    """Directory-backed store of per-cell :class:`SweepPoint` payloads.

    Entries live at ``<root>/<key[:2]>/<key>.json``; writes are atomic
    (temp file + ``os.replace``), so concurrent sweeps sharing one cache
    directory can only ever observe complete entries.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    # -- keys ----------------------------------------------------------
    def cell_key(
        self,
        *,
        spec: Any,
        policy: Any,
        seeds: Sequence[int],
        num_intervals: int,
        groups: Optional[Sequence[int]] = None,
        sync_rng: bool = False,
        engine: str = "fused",
        rng: Optional[str] = None,
        topology=None,
    ) -> Optional[str]:
        """Content key for one sweep cell, or ``None`` if uncacheable.

        ``rng`` names a non-default draw discipline (``"free"``); cells
        run under it are cacheable but keyed distinctly from the default
        lockstep-batch/sync cells.  ``None`` (the default discipline)
        omits the field entirely so every pre-existing key is preserved
        byte for byte.  Shard count is deliberately *not* part of the
        key: a warm hit replays the stored point no matter how the stack
        was split, and cold recomputation in a different stack is a fresh
        sample of the same estimator (the sharded runner re-runs whole
        shards to keep resume bit-identical at a fixed shard count).
        ``topology`` — a :class:`~repro.topology.graph.CellTopology` the
        cell actually runs under (``None``, the single-domain default,
        omits the field so pre-existing keys are preserved) — keys
        multi-cell points distinctly via the topology's canonical
        fingerprint.
        """
        policy_fp = policy_fingerprint(policy)
        if policy_fp is None:
            return None
        try:
            spec_fp = fingerprint(spec)
        except TypeError:
            return None
        payload = {
            "schema": _SCHEMA,
            "code": engine_version(),
            "engine": str(engine),
            "sync_rng": bool(sync_rng),
            "spec": spec_fp,
            "policy": policy_fp,
            "seeds": [int(s) for s in seeds],
            "num_intervals": int(num_intervals),
            "groups": None if groups is None else [int(g) for g in groups],
        }
        if rng is not None:
            payload["rng"] = str(rng)
        if topology is not None:
            payload["topology"] = topology.fingerprint()
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- reads / writes ------------------------------------------------
    def get(self, key: str) -> Optional[SweepPoint]:
        """The cached point for ``key`` (``parameter`` is NaN; the sweep
        assembler fills it), or ``None`` on a miss.

        A file that cannot decode into a valid payload — truncated or
        hand-edited JSON, a missing or ill-typed field from an old
        writer — is a *miss*, never an error: the entry is quarantined
        (renamed to ``<key>.corrupt``) with a single ``UserWarning`` so
        one bad byte on disk cannot kill a whole sweep, and the cell is
        simply recomputed and re-stored.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except OSError:
            self.misses += 1
            return None
        except json.JSONDecodeError as exc:
            self.misses += 1
            self._quarantine(path, f"not valid JSON ({exc})")
            return None
        try:
            point = self._decode(data)
        except (KeyError, TypeError, ValueError) as exc:
            self.misses += 1
            self._quarantine(path, f"invalid payload ({type(exc).__name__}: {exc})")
            return None
        if point is None:  # schema mismatch: an old/new writer, not corruption
            self.misses += 1
            return None
        self.hits += 1
        return point

    @staticmethod
    def _decode(data: Any) -> Optional[SweepPoint]:
        """Validate a raw payload into a :class:`SweepPoint`.

        Raises ``KeyError``/``TypeError``/``ValueError`` for anything
        that is not a complete, well-typed schema-``_SCHEMA`` payload;
        returns ``None`` for a clean schema mismatch.
        """
        if not isinstance(data, dict):
            raise TypeError("payload is not a JSON object")
        if data.get("schema") != _SCHEMA:
            return None
        policy = data["policy"]
        if not isinstance(policy, str):
            raise TypeError("'policy' must be a string")
        group = data["group_deficiency"]
        if group is not None:
            if isinstance(group, (str, bytes)) or not isinstance(group, list):
                raise TypeError("'group_deficiency' must be a list or null")
            group = tuple(float(g) for g in group)
        return SweepPoint(
            parameter=float("nan"),
            policy=policy,
            total_deficiency=float(data["total_deficiency"]),
            deficiency_std=float(data["deficiency_std"]),
            group_deficiency=group,
            collisions=float(data["collisions"]),
            mean_overhead_us=float(data["mean_overhead_us"]),
        )

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside so it never poisons another read."""
        quarantine = path.with_suffix(".corrupt")
        try:
            os.replace(path, quarantine)
        except OSError:
            return  # a concurrent reader already moved or removed it
        self.quarantined += 1
        warnings.warn(
            f"sweep cache entry {path.name} is corrupt — {reason}; "
            f"quarantined to {quarantine.name} and treated as a miss "
            "(the cell will be recomputed and re-stored)",
            UserWarning,
            stacklevel=3,
        )

    def put(self, key: str, point: SweepPoint) -> None:
        """Store ``point`` under ``key`` (atomically; last writer wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": _SCHEMA,
            "policy": point.policy,
            "total_deficiency": point.total_deficiency,
            "deficiency_std": point.deficiency_std,
            "group_deficiency": (
                None
                if point.group_deficiency is None
                else list(point.group_deficiency)
            ),
            "collisions": point.collisions,
            "mean_overhead_us": point.mean_overhead_us,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1


def resolve_cache(
    cache: Union[None, bool, str, Path, SweepCache],
) -> Optional[SweepCache]:
    """Normalize a user-facing ``cache`` argument to a store (or ``None``).

    ``None``/``False`` disable caching; a :class:`SweepCache` passes
    through; a path string/Path opens that directory; ``True`` uses
    ``REPRO_SWEEP_CACHE`` (``off``/``0``/``none`` disable) or the default
    directory.
    """
    if cache is None or cache is False:
        return None
    if isinstance(cache, SweepCache):
        return cache
    if cache is True:
        env = os.environ.get(ENV_VAR, "").strip()
        if env:
            if env.lower() in ("off", "0", "none", "disabled"):
                return None
            return SweepCache(env)
        return SweepCache(DEFAULT_CACHE_DIR)
    return SweepCache(cache)


def warn_uncacheable(labels: Sequence[str], stacklevel: int = 3) -> None:
    """One ``UserWarning`` per sweep naming policies that skip the cache.

    No-op for an empty ``labels``; shared by every sweep runner so the
    message (and its single-warning discipline) stays identical.
    """
    if not labels:
        return
    warnings.warn(
        f"skipping the sweep cache for {list(labels)}: the policy "
        "is not registered (or its spec/config cannot be "
        "fingerprinted), so these cells run uncached every time; "
        "register a PolicyDescriptor with repro.core.registry to "
        "make them cacheable",
        UserWarning,
        stacklevel=stacklevel,
    )
