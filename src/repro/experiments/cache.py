"""Content-addressed on-disk cache for sweep cells.

A figure sweep is a grid of independent (parameter value, policy) cells,
each fully determined by its network spec, policy configuration, seed
list, horizon, and the simulation code itself.  This module caches each
cell's aggregated :class:`~repro.experiments.runner.SweepPoint` under a
SHA-256 key of exactly those inputs, so re-running a figure (or a sweep
sharing cells with a previous one) skips the simulation entirely.

Key properties:

* **Content-addressed** — the key hashes a canonical JSON encoding of the
  spec (recursively, through its frozen dataclass components), the policy
  configuration, the seed tuple, the interval count, the RNG discipline,
  the reporting groups, and :func:`engine_version` (a hash of the engine
  source files).  Changing any of these — a reliability, a Glauber
  constant, a seed, or the simulator code — changes the key, so stale
  hits are impossible by construction.
* **Exact** — cached floats round-trip through JSON bit-for-bit (Python
  serializes floats with shortest-roundtrip ``repr``), so a warm-cache
  sweep reproduces the cold run's :class:`SweepPoint` values exactly.
* **Conservative** — anything the fingerprinters do not recognize (a
  custom policy class, a spec carrying non-dataclass state) yields no
  key, and the cell is simply recomputed every time.

The default location is ``.repro_cache/sweeps`` under the current
directory; the ``REPRO_SWEEP_CACHE`` environment variable overrides it
(set it to ``off`` to disable caching even where code requests it).

One semantic caveat, inherited from the grid-fused engine
(:mod:`repro.experiments.grid`): in the default ``sync_rng=False`` mode a
cell's *sampled values* depend on the composition of the fused mega-batch
it ran in, so a cell recomputed inside a different sweep is a fresh
(statistically equivalent) sample rather than a bit-identical replay.
Warm hits of a previously stored cell are always bit-identical; only
cold recomputations in a new stack resample.  ``sync_rng=True`` cells
are bit-identical either way.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from ..core import registry
from .runner import SweepPoint

__all__ = [
    "DEFAULT_CACHE_DIR",
    "SweepCache",
    "engine_version",
    "fingerprint",
    "policy_fingerprint",
    "resolve_cache",
]

#: Bump when the stored payload layout changes.
_SCHEMA = 1

#: Environment variable overriding the cache directory ("off" disables).
ENV_VAR = "REPRO_SWEEP_CACHE"

#: Default cache root, relative to the current working directory.
DEFAULT_CACHE_DIR = Path(".repro_cache") / "sweeps"

#: Source files whose content defines the simulation semantics a cached
#: value depends on.  Paths are relative to the ``repro`` package root.
_ENGINE_SOURCES = (
    "core/dp_protocol.py",
    "core/dbdp.py",
    "core/eldf.py",
    "core/policies.py",
    "core/registry.py",
    "sim/batch_kernels.py",
    "sim/batch_sim.py",
    "sim/interval_sim.py",
    "sim/rng.py",
    "sim/spec_stack.py",
    "experiments/grid.py",
    "experiments/runner.py",
    "experiments/cache.py",
)

_engine_version_cache: Optional[str] = None


def engine_version() -> str:
    """Hash of the engine source files (memoized per process).

    Editing any file in ``_ENGINE_SOURCES`` changes this value and hence
    every cache key, invalidating all previously stored cells.
    """
    global _engine_version_cache
    if _engine_version_cache is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for rel in _ENGINE_SOURCES:
            digest.update(rel.encode("utf-8"))
            digest.update((root / rel).read_bytes())
        _engine_version_cache = digest.hexdigest()[:16]
    return _engine_version_cache


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def fingerprint(obj: Any) -> Any:
    """A JSON-serializable, content-complete encoding of ``obj``.

    Frozen dataclasses (specs, channels, arrival processes, timings,
    biases, influence functions) encode recursively as tagged dicts;
    primitives and containers pass through.  Raises ``TypeError`` for
    anything else so callers can treat the object as uncacheable.

    This is :func:`repro.core.registry.encode_config_value` — the cache
    and the registry's policy config round-trip share one encoding, so a
    descriptor's ``to_config`` output is a cache fingerprint verbatim.
    """
    return registry.encode_config_value(obj)


def policy_fingerprint(policy: Any) -> Optional[dict]:
    """The configuration that determines a policy's behaviour, or ``None``.

    Delegates to the policy registry
    (:func:`repro.core.registry.policy_config`): the registered
    descriptor's ``to_config`` supplies the behaviour config, tagged
    with the instance's concrete class and name.  ``None`` means
    "unregistered policy" (or a config the encoder cannot serialize):
    the cell runs uncached rather than risking a collision between
    distinct configurations.
    """
    return registry.policy_config(policy)


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
class SweepCache:
    """Directory-backed store of per-cell :class:`SweepPoint` payloads.

    Entries live at ``<root>/<key[:2]>/<key>.json``; writes are atomic
    (temp file + ``os.replace``), so concurrent sweeps sharing one cache
    directory can only ever observe complete entries.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keys ----------------------------------------------------------
    def cell_key(
        self,
        *,
        spec: Any,
        policy: Any,
        seeds: Sequence[int],
        num_intervals: int,
        groups: Optional[Sequence[int]] = None,
        sync_rng: bool = False,
        engine: str = "fused",
    ) -> Optional[str]:
        """Content key for one sweep cell, or ``None`` if uncacheable."""
        policy_fp = policy_fingerprint(policy)
        if policy_fp is None:
            return None
        try:
            spec_fp = fingerprint(spec)
        except TypeError:
            return None
        payload = {
            "schema": _SCHEMA,
            "code": engine_version(),
            "engine": str(engine),
            "sync_rng": bool(sync_rng),
            "spec": spec_fp,
            "policy": policy_fp,
            "seeds": [int(s) for s in seeds],
            "num_intervals": int(num_intervals),
            "groups": None if groups is None else [int(g) for g in groups],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- reads / writes ------------------------------------------------
    def get(self, key: str) -> Optional[SweepPoint]:
        """The cached point for ``key`` (``parameter`` is NaN; the sweep
        assembler fills it), or ``None`` on a miss."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if data.get("schema") != _SCHEMA:
            self.misses += 1
            return None
        self.hits += 1
        group = data["group_deficiency"]
        return SweepPoint(
            parameter=float("nan"),
            policy=data["policy"],
            total_deficiency=data["total_deficiency"],
            deficiency_std=data["deficiency_std"],
            group_deficiency=None if group is None else tuple(group),
            collisions=data["collisions"],
            mean_overhead_us=data["mean_overhead_us"],
        )

    def put(self, key: str, point: SweepPoint) -> None:
        """Store ``point`` under ``key`` (atomically; last writer wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": _SCHEMA,
            "policy": point.policy,
            "total_deficiency": point.total_deficiency,
            "deficiency_std": point.deficiency_std,
            "group_deficiency": (
                None
                if point.group_deficiency is None
                else list(point.group_deficiency)
            ),
            "collisions": point.collisions,
            "mean_overhead_us": point.mean_overhead_us,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1


def resolve_cache(
    cache: Union[None, bool, str, Path, SweepCache],
) -> Optional[SweepCache]:
    """Normalize a user-facing ``cache`` argument to a store (or ``None``).

    ``None``/``False`` disable caching; a :class:`SweepCache` passes
    through; a path string/Path opens that directory; ``True`` uses
    ``REPRO_SWEEP_CACHE`` (``off``/``0``/``none`` disable) or the default
    directory.
    """
    if cache is None or cache is False:
        return None
    if isinstance(cache, SweepCache):
        return cache
    if cache is True:
        env = os.environ.get(ENV_VAR, "").strip()
        if env:
            if env.lower() in ("off", "0", "none", "disabled"):
                return None
            return SweepCache(env)
        return SweepCache(DEFAULT_CACHE_DIR)
    return SweepCache(cache)
