"""ASCII line charts for figure results.

The paper's figures are line plots; :func:`ascii_chart` renders a
:class:`~repro.experiments.figures.FigureResult` as a terminal plot so the
CLI can show the *shape* (lift-off points, crossovers) at a glance, not
just the numbers.  Pure text, no plotting dependency.
"""

from __future__ import annotations

import io
from typing import Dict, List

from .figures import FigureResult

__all__ = ["ascii_chart"]

#: Plot glyph per curve, cycled in series order.
GLYPHS = "ox+*#@%&"


def ascii_chart(
    result: FigureResult,
    width: int = 64,
    height: int = 16,
) -> str:
    """Render the figure's series on one shared-axis character grid."""
    if width < 16 or height < 6:
        raise ValueError(f"chart needs width >= 16, height >= 6, got {width}x{height}")
    if not result.series:
        raise ValueError("figure has no series to plot")
    xs = result.x_values
    if len(xs) < 2:
        raise ValueError("need at least two x values to draw a chart")

    y_max = max(max(s) for s in result.series.values())
    y_min = min(min(s) for s in result.series.values())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)

    grid = [[" " for _ in range(width)] for _ in range(height)]

    def cell(x: float, y: float):
        col = int(round((x - x_min) / (x_max - x_min) * (width - 1)))
        row = int(round((y - y_min) / (y_max - y_min) * (height - 1)))
        return height - 1 - row, col

    for index, (label, series) in enumerate(result.series.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        # Linear interpolation between consecutive points for a line feel.
        for (x0, y0), (x1, y1) in zip(zip(xs, series), zip(xs[1:], series[1:])):
            steps = max(
                abs(cell(x1, y1)[1] - cell(x0, y0)[1]),
                abs(cell(x1, y1)[0] - cell(x0, y0)[0]),
                1,
            )
            for step in range(steps + 1):
                t = step / steps
                row, col = cell(x0 + t * (x1 - x0), y0 + t * (y1 - y0))
                if grid[row][col] == " ":
                    grid[row][col] = glyph
        # Data points override interpolated cells.
        for x, y in zip(xs, series):
            row, col = cell(x, y)
            grid[row][col] = glyph

    out = io.StringIO()
    out.write(f"{result.figure_id}: {result.title}\n")
    label_width = 9
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{y_max:.3g}".rjust(label_width)
        elif r == height - 1:
            label = f"{y_min:.3g}".rjust(label_width)
        else:
            label = " " * label_width
        out.write(label + " |" + "".join(row) + "\n")
    out.write(" " * label_width + " +" + "-" * width + "\n")
    x_left = f"{x_min:g}"
    x_right = f"{x_max:g}"
    out.write(
        " " * (label_width + 2)
        + x_left
        + " " * max(1, width - len(x_left) - len(x_right))
        + x_right
        + "\n"
    )
    out.write(
        " " * (label_width + 2)
        + f"x: {result.x_label}   y: {result.y_label}\n"
    )
    legend = "   ".join(
        f"{GLYPHS[i % len(GLYPHS)]} {label}"
        for i, label in enumerate(result.series)
    )
    out.write(" " * (label_width + 2) + legend + "\n")
    return out.getvalue()
