"""Command-line entry point: regenerate any figure of the paper.

Usage::

    repro-experiments fig3 --seeds 0 1 2
    repro-experiments all --intervals 1000
    REPRO_SCALE=0.2 repro-experiments fig9
    repro-experiments fig3 --resume --retries 3 --best-effort

Prints each figure's series as a text table (see
:mod:`repro.experiments.reporting`).

Fault tolerance (sweep figures): ``--resume`` checkpoints finished cells
in the on-disk sweep cache and serves them warm on the next invocation,
so a killed run restarts from where it was; ``--retries`` /
``--cell-timeout`` / ``--best-effort`` configure the
:class:`~repro.experiments.faults.FaultPolicy` applied to failing cells.
"""

from __future__ import annotations

import argparse
import functools
import inspect
import os
import sys
import time
from typing import List, Optional

from ..core import registry
from .charts import ascii_chart
from .faults import MODE_BEST_EFFORT, FaultPolicy
from .convergence_study import convergence_vs_network_size
from .extensions import (
    baseline_panorama,
    burst_loss_robustness,
    correlated_traffic_robustness,
)
from .figures import ALL_FIGURES
from .reporting import figure_to_csv, format_figure
from .summary import evaluate_paper_claims, format_verdicts

#: Extension studies exposed next to the paper figures.
EXTENSIONS = {
    "ext-baselines": baseline_panorama,
    "ext-burst-loss": burst_loss_robustness,
    "ext-correlated-traffic": correlated_traffic_robustness,
    "ext-convergence": convergence_vs_network_size,
}

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the evaluation figures of Hsieh & Hou (ICDCS 2018)."
        ),
    )
    parser.add_argument(
        "figure",
        choices=sorted(ALL_FIGURES) + sorted(EXTENSIONS) + ["summary", "all"],
        help="which figure to regenerate ('all' runs every paper figure; "
        "ext-* targets run the extension studies; 'summary' re-measures "
        "the paper's headline claims and prints verdicts)",
    )
    parser.add_argument(
        "--intervals",
        type=int,
        default=None,
        help="override the number of intervals (default: paper horizon "
        "scaled by REPRO_SCALE)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[0],
        help="random seeds to average over (sweep figures only)",
    )
    parser.add_argument(
        "--policies",
        nargs="+",
        default=None,
        metavar="NAME",
        choices=registry.available(),
        help="compare these registered policies instead of the paper's "
        f"default set (sweep figures only; available: "
        f"{', '.join(registry.available())})",
    )
    parser.add_argument(
        "--engine",
        choices=["scalar", "batch", "fused"],
        default=None,
        help="simulation engine for sweep figures (default: scalar; "
        "'fused' mega-batches the whole grid and is the fastest)",
    )
    parser.add_argument(
        "--rng",
        choices=["sync", "batch", "free"],
        default=None,
        help="draw discipline for the batch/fused engines: 'sync' is "
        "bit-identical to the scalar engine (slow), 'batch' is the "
        "default lockstep-vectorized discipline, 'free' lets capable "
        "kernels draw only what they consume (statistically "
        "equivalent, fastest)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="split a fused sweep into K row-contiguous shards run in "
        "parallel worker processes (requires --engine fused; sweep "
        "figures only)",
    )
    parser.add_argument(
        "--backend",
        choices=["numpy", "jit", "legacy"],
        default=None,
        help="batch kernel backend (default: jit when numba is "
        "importable, else numpy; all backends are bit-identical)",
    )
    parser.add_argument(
        "--cells",
        type=int,
        default=None,
        metavar="C",
        help="simulate each sweep point as a multi-cell interference "
        "topology of C cells (grid_cells over the spec's links) instead "
        "of one collision domain; capable policy families run on the "
        "topology engine, others degrade with a warning (sweep figures "
        "only; implies --engine fused unless --engine is given)",
    )
    parser.add_argument(
        "--cross-cell-fraction",
        type=float,
        default=None,
        metavar="F",
        dest="cross_cell_fraction",
        help="fraction of links promoted to cross-cell boundary links "
        "(contending in two cells, resolved per interval); requires "
        "--cells (default 0: disconnected cells)",
    )
    parser.add_argument(
        "--channel",
        default=None,
        metavar="SPEC",
        help="replace the figures' default i.i.d. Bernoulli channel with "
        "another channel model: 'bernoulli:p', "
        "'ge:p_gb:p_bg[:p_good:p_bad]' (Gilbert-Elliott burst losses), or "
        "'tv:profile:period:amplitude[:base]' with profile one of "
        "drift/ramp/duty (deterministic time-varying reliability); "
        "Gilbert-Elliott state needs --rng free to stay vectorized "
        "(sweep figures only; implies --engine fused unless --engine is "
        "given)",
    )
    parser.add_argument(
        "--arrivals",
        default=None,
        metavar="SPEC",
        help="replace the figures' default arrival process with another "
        "model: 'bernoulli:rate', 'bursty:alpha[:burst_max]', "
        "'constant:count', 'mmpp:on[:off[:p_on[:p_off[:initial]]]]' "
        "(Markov-modulated ON/OFF), or 'pareto:start[:tail[:dur_max"
        "[:peak]]]' (heavy-tailed bursts); requirements are rebuilt from "
        "the figures' delivery ratios, and MMPP/Pareto state needs "
        "--rng free to stay vectorized (sweep figures only; implies "
        "--engine fused unless --engine is given)",
    )
    parser.add_argument(
        "--dp-state",
        choices=["dense", "incremental"],
        default=None,
        dest="dp_state",
        help="DP-family priority-state maintenance for the batch/fused "
        "engines: 'dense' rebuilds the service order every interval, "
        "'incremental' maintains it across intervals with O(swaps) "
        "updates and a serve-set timeline solve (bit-identical, much "
        "faster at large link counts; default: capability-resolved)",
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="emit CSV instead of aligned tables",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="append an ASCII line chart after each table",
    )
    parser.add_argument(
        "--outdir",
        default=None,
        help="also write each figure's CSV into this directory",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="checkpoint finished sweep cells in the on-disk cache and "
        "resume warm from a previous (possibly killed) run "
        "(REPRO_SWEEP_CACHE overrides the cache location; sweep figures "
        "only)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry each failing sweep cell up to N extra times with "
        "exponential backoff before declaring it permanently failed "
        "(sweep figures only)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for one sweep cell; a cell running "
        "longer counts as failed (enforced by the parallel "
        "orchestrator; sweep figures only)",
    )
    parser.add_argument(
        "--best-effort",
        action="store_true",
        help="fill permanently failed cells with NaN and report them in "
        "a failure summary instead of aborting the sweep (sweep "
        "figures only)",
    )
    return parser


#: Figures backed by a parameter sweep — the targets that accept the
#: fault-tolerance and resume flags (fig5/fig6 are single-trace runs).
SWEEP_FIGURES = ("fig3", "fig4", "fig7", "fig8", "fig9", "fig10")


def faults_from_args(args: argparse.Namespace):
    """The :class:`FaultPolicy` requested by the CLI flags, or ``None``.

    ``None`` (no fault flag given) keeps the historical fail-fast sweep
    behaviour; any of ``--retries``/``--cell-timeout``/``--best-effort``
    opts into fault-tolerant orchestration.
    """
    if (
        args.retries is None
        and args.cell_timeout is None
        and not args.best_effort
    ):
        return None
    defaults = FaultPolicy()
    return FaultPolicy(
        retries=args.retries if args.retries is not None else defaults.retries,
        cell_timeout=args.cell_timeout,
        mode=MODE_BEST_EFFORT if args.best_effort else defaults.mode,
    )


def _grid_topology(spec, num_cells: int, cross_cell_fraction: float):
    """Picklable per-spec topology builder for ``--cells`` (sharded
    fused sweeps send the builder to worker processes)."""
    from ..topology import grid_cells

    return grid_cells(spec.num_links, num_cells, cross_cell_fraction)


def _run_one(name: str, args: argparse.Namespace) -> str:
    kwargs = {}
    if args.intervals is not None:
        kwargs["num_intervals"] = args.intervals
    if name == "summary":
        verdicts = evaluate_paper_claims(seed=args.seeds[0], **kwargs)
        return format_verdicts(verdicts)
    if name in EXTENSIONS:
        func = EXTENSIONS[name]
        # Extensions have heterogeneous signatures (the burst-loss study
        # is a fused sweep, the others are scalar single-trace studies);
        # thread each flag only where the study accepts it.
        accepted = inspect.signature(func).parameters
        if "seeds" in accepted:
            kwargs["seeds"] = tuple(args.seeds)
        else:
            kwargs["seed"] = args.seeds[0]
        for flag in ("engine", "rng", "backend", "shards"):
            value = getattr(args, flag)
            if value is not None and flag in accepted:
                kwargs[flag] = value
        if args.resume and "cache" in accepted:
            kwargs["cache"] = True
    else:
        func = ALL_FIGURES[name]
        # fig5/fig6 are single-run figures and take a scalar seed.
        if name in ("fig5", "fig6"):
            kwargs["seed"] = args.seeds[0]
        else:
            kwargs["seeds"] = tuple(args.seeds)
            if args.policies is not None:
                # Registered names; the sweep runner resolves them to
                # default-config factories via the policy registry.
                kwargs["policies"] = tuple(args.policies)
            faults = faults_from_args(args)
            if faults is not None:
                kwargs["faults"] = faults
            if args.resume:
                kwargs["cache"] = True
            if args.engine is not None:
                kwargs["engine"] = args.engine
            elif (args.rng is not None or args.shards is not None
                  or args.backend is not None
                  or args.dp_state is not None
                  or args.cells is not None
                  or args.channel is not None
                  or args.arrivals is not None):
                # --rng/--shards/--backend/--dp-state/--cells/--channel/
                # --arrivals are sweep-engine features; land them on the
                # fused engine instead of erroring on the figures' scalar
                # default.
                kwargs["engine"] = "fused"
            if args.cells is not None:
                # functools.partial, not a lambda: sharded fused sweeps
                # pickle the builder into worker processes.
                kwargs["topology"] = functools.partial(
                    _grid_topology,
                    num_cells=args.cells,
                    cross_cell_fraction=args.cross_cell_fraction or 0.0,
                )
            if args.channel is not None:
                kwargs["channel"] = args.channel
            if args.arrivals is not None:
                kwargs["arrivals"] = args.arrivals
            if args.rng is not None:
                kwargs["rng"] = args.rng
            if args.shards is not None:
                kwargs["shards"] = args.shards
            if args.backend is not None:
                kwargs["backend"] = args.backend
            if args.dp_state is not None:
                kwargs["dp_state"] = args.dp_state
    result = func(**kwargs)
    if args.outdir is not None:
        os.makedirs(args.outdir, exist_ok=True)
        csv_path = os.path.join(args.outdir, f"{name}.csv")
        with open(csv_path, "w") as handle:
            handle.write(figure_to_csv(result))
    if args.csv:
        return figure_to_csv(result)
    text = format_figure(result)
    if args.chart and len(result.x_values) >= 2:
        text += "\n" + ascii_chart(result)
    failures = getattr(result, "failures", None)
    if failures:
        # Best-effort sweeps report their NaN-filled cells right under
        # the table instead of failing the whole figure.
        text += "\n" + failures.summary() + "\n"
    return text


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.cross_cell_fraction is not None and args.cells is None:
        parser.error("--cross-cell-fraction requires --cells")
    names = sorted(ALL_FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        started = time.time()
        sys.stdout.write(_run_one(name, args))
        sys.stdout.write(f"   [{name} took {time.time() - started:.1f} s]\n\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
