"""Paper scenario configurations (Section VI).

Two applications drive the evaluation:

* **Real-time video delivery** (VI-A): 20 links, 1500 B packets, 20 ms
  deadline, bursty arrivals (``Uniform{1..6}`` w.p. ``alpha``),
  ``p = 0.7`` symmetric or a 0.5/0.8 two-group asymmetric split,
  5000 intervals (100 s).
* **Ultra-low-latency control** (VI-B): 10 links, 100 B packets, 2 ms
  deadline, Bernoulli arrivals, ``p = 0.7``, 99% delivery ratio,
  20000 intervals (40 s).

``REPRO_SCALE`` (environment variable, default 1.0) multiplies interval
counts everywhere so benchmarks can run shape-preserving reduced versions.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Tuple

import numpy as np

from ..core import registry
from ..core.policies import IntervalMac
from ..core.requirements import NetworkSpec
from ..phy.channel import BernoulliChannel
from ..phy.timing import low_latency_timing, video_timing
from ..traffic.arrivals import BernoulliArrivals, BurstyVideoArrivals

__all__ = [
    "VIDEO_INTERVALS",
    "LOW_LATENCY_INTERVALS",
    "VIDEO_NUM_LINKS",
    "LOW_LATENCY_NUM_LINKS",
    "ASYMMETRIC_GROUPS",
    "scaled_intervals",
    "video_symmetric_spec",
    "video_asymmetric_spec",
    "low_latency_spec",
    "paper_policies",
    "PolicyFactory",
]

#: Simulation horizons used in the paper (Section VI).
VIDEO_INTERVALS = 5000  # 100 s of 20 ms intervals
LOW_LATENCY_INTERVALS = 20000  # 40 s of 2 ms intervals

VIDEO_NUM_LINKS = 20
LOW_LATENCY_NUM_LINKS = 10

#: Group id per link in the asymmetric scenario (first half group 0).
ASYMMETRIC_GROUPS: Tuple[int, ...] = (0,) * 10 + (1,) * 10

PolicyFactory = Callable[[], IntervalMac]


def scaled_intervals(default: int, minimum: int = 50) -> int:
    """Apply the ``REPRO_SCALE`` environment scaling to a horizon."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_SCALE must be a float, got {raw!r}") from exc
    if scale <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {scale}")
    return max(minimum, int(round(default * scale)))


def video_symmetric_spec(
    alpha: float,
    delivery_ratio: float = 0.9,
    num_links: int = VIDEO_NUM_LINKS,
    reliability: float = 0.7,
) -> NetworkSpec:
    """Fully-symmetric video network (Figs. 3-6)."""
    return NetworkSpec.from_delivery_ratios(
        arrivals=BurstyVideoArrivals.symmetric(num_links, alpha),
        channel=BernoulliChannel.symmetric(num_links, reliability),
        timing=video_timing(),
        delivery_ratios=delivery_ratio,
    )


def video_asymmetric_spec(
    alpha_star: float,
    delivery_ratio: float = 0.9,
) -> NetworkSpec:
    """Two-group asymmetric video network (Figs. 7-8).

    Group 1 (links 0-9): ``p = 0.5``, ``alpha = 0.5 alpha*``.
    Group 2 (links 10-19): ``p = 0.8``, ``alpha = alpha*``.
    """
    alphas = (0.5 * alpha_star,) * 10 + (alpha_star,) * 10
    reliabilities = (0.5,) * 10 + (0.8,) * 10
    return NetworkSpec.from_delivery_ratios(
        arrivals=BurstyVideoArrivals(alphas=alphas),
        channel=BernoulliChannel(success_probs=reliabilities),
        timing=video_timing(),
        delivery_ratios=delivery_ratio,
    )


def low_latency_spec(
    arrival_rate: float,
    delivery_ratio: float = 0.99,
    num_links: int = LOW_LATENCY_NUM_LINKS,
    reliability: float = 0.7,
) -> NetworkSpec:
    """Ultra-low-latency control network (Figs. 9-10)."""
    return NetworkSpec.from_delivery_ratios(
        arrivals=BernoulliArrivals.symmetric(num_links, arrival_rate),
        channel=BernoulliChannel.symmetric(num_links, reliability),
        timing=low_latency_timing(),
        delivery_ratios=delivery_ratio,
    )


def paper_policies(include_dcf: bool = False) -> Dict[str, PolicyFactory]:
    """The algorithms compared throughout Section VI.

    Fresh factories (policies are stateful): DB-DP with the paper's
    ``f(x) = log(max(1, 100(x+1)))`` and ``R = 10``, the centralized LDF
    baseline, and the discretized FCSMA baseline.  ``include_dcf`` adds the
    DCF reference point used by the collision-loss discussion.

    Factories come from the policy registry
    (:func:`repro.core.registry.resolve_policies`), so each one is the
    registered policy class — picklable for the parallel runner.
    """
    names = ["DB-DP", "LDF", "FCSMA"]
    if include_dcf:
        names.append("DCF")
    return registry.resolve_policies(names)
