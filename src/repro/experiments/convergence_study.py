"""Convergence-time study: how DB-DP's warm-up scales with network size.

The paper's Fig. 5 shows one network size; its technical report promises
"further results on convergence time".  This study quantifies the scaling:
for symmetric video networks of `N` links at a fixed per-link load, measure
how long the link that starts at the *lowest* priority takes to reach a
neighborhood of its requirement, under DB-DP (single- and multi-pair) and
under LDF.

The chain moves by at most `P` adjacent transpositions per interval and the
watched link starts `N - 1` positions from the top, so the single-pair
warm-up should grow superlinearly in `N` while LDF's stays flat — and
Remark 6's multi-pair variant should sit in between.  The bench asserts
exactly that ordering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.convergence import running_mean, time_to_neighborhood
from ..core.dbdp import DBDPPolicy
from ..core.dp_protocol import max_swap_pairs
from ..core.eldf import LDFPolicy
from ..sim.interval_sim import run_simulation
from .configs import VIDEO_INTERVALS, scaled_intervals, video_symmetric_spec
from .figures import FigureResult, _check_engine

__all__ = ["convergence_vs_network_size", "settling_time"]


def settling_time(
    deliveries: np.ndarray,
    link: int,
    target: float,
    relative_tolerance: float = 0.1,
) -> Optional[int]:
    """Intervals until the link's running timely-throughput settles near
    (or above) its requirement.

    A link serving *above* target counts as settled — the interesting
    failure mode is staying below.
    """
    series = running_mean(deliveries[:, link].astype(float))
    below_band = series < target * (1.0 - relative_tolerance)
    outside = np.flatnonzero(below_band)
    if outside.size == 0:
        return 0
    settle = int(outside[-1]) + 1
    if settle >= series.size:
        return None
    return settle


def convergence_vs_network_size(
    sizes: Sequence[int] = (6, 12, 20),
    num_intervals: Optional[int] = None,
    alpha: float = 0.5,
    delivery_ratio: float = 0.9,
    seed: int = 0,
    engine: str = "scalar",
) -> FigureResult:
    """Settling time of the bottom link vs N, for LDF and DB-DP variants.

    The per-link load is held constant (`alpha`), so larger networks are
    proportionally loaded; `alpha = 0.5` keeps every size strictly feasible
    (utilization 0.75 alpha N / 20 at 20 links' scale).  ``engine`` is
    accepted for harness uniformity; settling-time traces are per-seed
    scalar runs.
    """
    _check_engine(engine)
    intervals = num_intervals or scaled_intervals(VIDEO_INTERVALS)
    result = FigureResult(
        figure_id="ext-convergence",
        title="Bottom-link settling time vs network size",
        x_label="N",
        x_values=[float(n) for n in sizes],
        y_label="intervals to stay within 10% of the requirement "
        f"(cap {intervals})",
        notes=f"alpha = {alpha:g} per link, delivery ratio {delivery_ratio:g}; "
        "settling time capped at the horizon when a run never settles",
    )

    variants: Dict[str, callable] = {
        "LDF": lambda n: LDFPolicy(),
        "DB-DP (1 pair)": lambda n: DBDPPolicy(num_pairs=1),
        "DB-DP (max pairs)": lambda n: DBDPPolicy(
            num_pairs=max_swap_pairs(n)
        ),
    }
    for label, factory in variants.items():
        times: List[float] = []
        for n in sizes:
            spec = video_symmetric_spec(
                alpha, delivery_ratio=delivery_ratio, num_links=n
            )
            watched = n - 1  # identity start: the last link is lowest
            run = run_simulation(spec, factory(n), intervals, seed=seed)
            settle = settling_time(
                run.deliveries, watched, spec.requirements[watched]
            )
            times.append(float(intervals if settle is None else settle))
        result.series[label] = times
    return result
