"""Extension studies beyond the paper's figures.

Three add-on experiments the paper motivates but does not plot:

* :func:`baseline_panorama` — every implemented MAC on one stressed video
  scenario: the two debt-based policies (LDF, DB-DP), the three
  contention/TDMA references (FCSMA, DCF, round-robin), and frame-based
  CSMA ([23]).  Orders the design space in one table.
* :func:`burst_loss_robustness` — DB-DP vs LDF on a Gilbert-Elliott
  bursty-loss channel (violating the i.i.d. channel assumption both
  policies were analyzed under); both are configured with the channel's
  *stationary* reliability, as a deployment would.
* :func:`correlated_traffic_robustness` — DB-DP under cross-link
  correlated arrivals (allowed by the model) and Markov-modulated arrivals
  (outside the model), versus the i.i.d. Bernoulli base case at equal mean
  load.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.dbdp import DBDPPolicy
from ..core.dcf import DCFPolicy
from ..core.eldf import LDFPolicy
from ..core.fcsma import FCSMAPolicy
from ..core.frame_csma import FrameCSMAPolicy
from ..core.requirements import NetworkSpec
from ..core.round_robin import RoundRobinPolicy
from ..phy.channel import GilbertElliottChannel
from ..phy.timing import low_latency_timing
from ..sim.interval_sim import run_simulation
from ..traffic.arrivals import (
    BernoulliArrivals,
    CorrelatedBurstArrivals,
    MarkovModulatedArrivals,
)
from .configs import VIDEO_INTERVALS, scaled_intervals, video_symmetric_spec
from .figures import FigureResult, _check_engine

__all__ = [
    "baseline_panorama",
    "burst_loss_robustness",
    "correlated_traffic_robustness",
]


def baseline_panorama(
    num_intervals: Optional[int] = None,
    alpha: float = 0.55,
    seed: int = 0,
    engine: str = "scalar",
) -> FigureResult:
    """Total deficiency of every implemented MAC on the video scenario.

    ``engine`` is accepted for harness uniformity but these single-trace
    studies always run on the scalar engine (contention policies and
    stateful processes have no batch kernels).
    """
    _check_engine(engine)
    intervals = num_intervals or scaled_intervals(VIDEO_INTERVALS)
    spec = video_symmetric_spec(alpha, delivery_ratio=0.9)
    policies = {
        "LDF": LDFPolicy(),
        "DB-DP": DBDPPolicy(),
        "FrameCSMA": FrameCSMAPolicy(),
        "RoundRobin": RoundRobinPolicy(),
        "FCSMA": FCSMAPolicy(),
        "DCF": DCFPolicy(),
    }
    result = FigureResult(
        figure_id="ext-baselines",
        title=f"All baselines, symmetric video network (alpha* = {alpha:g})",
        x_label="metric",
        x_values=[0.0, 1.0, 2.0],
        notes="rows: total deficiency / collisions per interval / "
        "overhead us per interval",
    )
    for label, policy in policies.items():
        run = run_simulation(spec, policy, intervals, seed=seed)
        summary = run.summary()
        result.series[label] = [
            summary.total_deficiency,
            summary.total_collisions / intervals,
            summary.mean_overhead_us,
        ]
    return result


def burst_loss_robustness(
    num_intervals: Optional[int] = None,
    arrival_rate: float = 0.6,
    seed: int = 0,
    engine: str = "scalar",
) -> FigureResult:
    """DB-DP vs LDF under i.i.d. versus Gilbert-Elliott channels.

    Both channels have the same long-run reliability (~0.7); the
    Gilbert-Elliott one delivers it in bursts.  Policies use the stationary
    reliability in their weights, as the paper's "p_n obtained by probing
    or learning" prescription implies.  ``engine`` is accepted for harness uniformity;
    the Gilbert-Elliott channel forces the scalar engine regardless.
    """
    _check_engine(engine)
    intervals = num_intervals or scaled_intervals(VIDEO_INTERVALS)
    n = 10
    ge_channel = GilbertElliottChannel(
        n, p_good=0.95, p_bad=0.2, p_stay_good=0.9, p_stay_bad=0.8
    )
    stationary_p = float(ge_channel.reliabilities[0])
    from ..phy.channel import BernoulliChannel

    iid_channel = BernoulliChannel.symmetric(n, stationary_p)
    arrivals = BernoulliArrivals.symmetric(n, arrival_rate)

    result = FigureResult(
        figure_id="ext-burst-loss",
        title="Robustness to bursty losses (equal stationary reliability)",
        x_label="channel",
        x_values=[0.0, 1.0],
        notes=f"x = 0: i.i.d. Bernoulli({stationary_p:.3f}); "
        "x = 1: Gilbert-Elliott with the same stationary reliability",
    )
    for label, policy_factory in [("DB-DP", DBDPPolicy), ("LDF", LDFPolicy)]:
        values = []
        for channel in (iid_channel, ge_channel):
            if isinstance(channel, GilbertElliottChannel):
                # Fresh channel state per run.
                channel = GilbertElliottChannel(
                    n, p_good=0.95, p_bad=0.2, p_stay_good=0.9, p_stay_bad=0.8
                )
            spec = NetworkSpec.from_delivery_ratios(
                arrivals=arrivals,
                channel=channel,
                timing=low_latency_timing(),
                delivery_ratios=0.9,
            )
            run = run_simulation(spec, policy_factory(), intervals, seed=seed)
            values.append(run.total_deficiency())
        result.series[label] = values
    return result


def correlated_traffic_robustness(
    num_intervals: Optional[int] = None,
    mean_rate: float = 0.5,
    seed: int = 0,
    engine: str = "scalar",
) -> FigureResult:
    """DB-DP under three traffic correlation structures at equal mean load.

    ``engine`` is accepted for harness uniformity; Markov-modulated
    arrivals force the scalar engine regardless.
    """
    _check_engine(engine)
    intervals = num_intervals or scaled_intervals(VIDEO_INTERVALS)
    n = 8
    processes = {
        "iid": BernoulliArrivals.symmetric(n, mean_rate),
        "cross-correlated": CorrelatedBurstArrivals(
            num_links_=n, event_prob=mean_rate, burst_max=1
        ),
        "markov-modulated": MarkovModulatedArrivals(
            n, on_rate=min(1.0, 2 * mean_rate), off_rate=0.0,
            p_stay_on=0.9, p_stay_off=0.9,
        ),
    }
    from ..phy.channel import BernoulliChannel

    result = FigureResult(
        figure_id="ext-correlated-traffic",
        title="DB-DP deficiency under correlated traffic (equal mean load)",
        x_label="policy",
        x_values=[0.0],
        notes="mean arrivals per link per interval matched across processes",
    )
    for label, process in processes.items():
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=process,
            channel=BernoulliChannel.symmetric(n, 0.7),
            timing=low_latency_timing(),
            delivery_ratios=0.9,
        )
        run = run_simulation(spec, DBDPPolicy(), intervals, seed=seed)
        result.series[label] = [run.total_deficiency()]
    return result
