"""Extension studies beyond the paper's figures.

Three add-on experiments the paper motivates but does not plot:

* :func:`baseline_panorama` — every implemented MAC on one stressed video
  scenario: the two debt-based policies (LDF, DB-DP), the three
  contention/TDMA references (FCSMA, DCF, round-robin), and frame-based
  CSMA ([23]).  Orders the design space in one table.
* :func:`burst_loss_robustness` — DB-DP vs LDF swept over channel
  burstiness at fixed stationary reliability (violating the i.i.d.
  channel assumption both policies were analyzed under); the fused
  engine batches the whole Gilbert-Elliott grid.
* :func:`correlated_traffic_robustness` — DB-DP vs LDF swept over
  *traffic* burstiness at fixed mean load: Markov-modulated ON/OFF
  arrivals (outside the model's temporal-independence assumption) with
  the i.i.d. Bernoulli base case at ``x = 0``; the fused engine batches
  the whole MMPP grid under ``rng="free"``.
"""

from __future__ import annotations

import functools
from typing import Dict, Optional, Sequence

import numpy as np

from ..core.dbdp import DBDPPolicy
from ..core.dcf import DCFPolicy
from ..core.eldf import LDFPolicy
from ..core.fcsma import FCSMAPolicy
from ..core.frame_csma import FrameCSMAPolicy
from ..core.requirements import NetworkSpec
from ..core.round_robin import RoundRobinPolicy
from ..phy.channel import GilbertElliottChannel
from ..phy.timing import low_latency_timing
from ..sim.interval_sim import run_simulation
from ..traffic.arrivals import BernoulliArrivals, MarkovModulatedArrivals
from .configs import VIDEO_INTERVALS, scaled_intervals, video_symmetric_spec
from .figures import FigureResult, _check_engine, _sweep_to_figure
from .runner import run_sweep

__all__ = [
    "baseline_panorama",
    "burst_loss_robustness",
    "correlated_traffic_robustness",
]


def baseline_panorama(
    num_intervals: Optional[int] = None,
    alpha: float = 0.55,
    seed: int = 0,
    engine: str = "scalar",
) -> FigureResult:
    """Total deficiency of every implemented MAC on the video scenario.

    ``engine`` is accepted for harness uniformity but these single-trace
    studies always run on the scalar engine (contention policies and
    stateful processes have no batch kernels).
    """
    _check_engine(engine)
    intervals = num_intervals or scaled_intervals(VIDEO_INTERVALS)
    spec = video_symmetric_spec(alpha, delivery_ratio=0.9)
    policies = {
        "LDF": LDFPolicy(),
        "DB-DP": DBDPPolicy(),
        "FrameCSMA": FrameCSMAPolicy(),
        "RoundRobin": RoundRobinPolicy(),
        "FCSMA": FCSMAPolicy(),
        "DCF": DCFPolicy(),
    }
    result = FigureResult(
        figure_id="ext-baselines",
        title=f"All baselines, symmetric video network (alpha* = {alpha:g})",
        x_label="metric",
        x_values=[0.0, 1.0, 2.0],
        notes="rows: total deficiency / collisions per interval / "
        "overhead us per interval",
    )
    for label, policy in policies.items():
        run = run_simulation(spec, policy, intervals, seed=seed)
        summary = run.summary()
        result.series[label] = [
            summary.total_deficiency,
            summary.total_collisions / intervals,
            summary.mean_overhead_us,
        ]
    return result


#: Burstiness grid for :func:`burst_loss_robustness`.  ``b = 0.7``
#: reproduces the study's historical single Gilbert-Elliott point
#: (``p_stay_good = 0.9``, ``p_stay_bad = 0.8``).
BURST_GRID = (0.0, 0.2, 0.4, 0.6, 0.7, 0.8, 0.9)
_BURST_LINKS = 10
#: Stationary P(good state) held fixed across the grid (2/3 with
#: ``p_good = 0.95``, ``p_bad = 0.2`` gives stationary reliability 0.70).
_BURST_PI_GOOD = 2.0 / 3.0


def _burst_channel(burstiness: float, num_links: int):
    """Gilbert-Elliott channel at mixing rate ``1 - burstiness``.

    The state chain's transition probabilities are ``p_gb = (1 - pi) r``
    and ``p_bg = pi r`` with ``r = 1 - burstiness``, so the stationary
    distribution (and hence the long-run reliability) is the same at
    every grid point while the mean bad-burst length ``1 / (pi r)``
    grows with ``burstiness``.  At ``burstiness = 0`` the chain is
    memoryless and the study uses the channel codec's
    ``with_stationary_reliability()`` reduction — the exact i.i.d.
    Bernoulli reference both policies were analyzed under (no
    ``isinstance`` dispatch: the conversion is a ``ChannelModel``
    method, mirroring the no-isinstance discipline for policies).
    """
    rate = 1.0 - burstiness
    ge = GilbertElliottChannel(
        num_links,
        p_good=0.95,
        p_bad=0.2,
        p_stay_good=1.0 - (1.0 - _BURST_PI_GOOD) * rate,
        p_stay_bad=1.0 - _BURST_PI_GOOD * rate,
    )
    if burstiness == 0.0:
        return ge.with_stationary_reliability()
    return ge


def _burst_spec(arrival_rate: float, burstiness: float) -> NetworkSpec:
    """Picklable spec builder for the burstiness sweep (the swept value
    lands on ``burstiness`` positionally)."""
    return NetworkSpec.from_delivery_ratios(
        arrivals=BernoulliArrivals.symmetric(_BURST_LINKS, arrival_rate),
        channel=_burst_channel(burstiness, _BURST_LINKS),
        timing=low_latency_timing(),
        delivery_ratios=0.9,
    )


def burst_loss_robustness(
    num_intervals: Optional[int] = None,
    arrival_rate: float = 0.6,
    seed: int = 0,
    engine: str = "fused",
    burstiness: Sequence[float] = BURST_GRID,
    seeds: Optional[Sequence[int]] = None,
    rng: Optional[str] = None,
    backend: Optional[str] = None,
    cache=None,
    shards: Optional[int] = None,
) -> FigureResult:
    """DB-DP vs LDF swept over channel burstiness at equal reliability.

    Every grid point is a Gilbert-Elliott channel with the *same*
    stationary reliability (~0.70) but a longer mean bad-burst as
    ``burstiness`` grows; ``x = 0`` is the i.i.d. Bernoulli reference at
    that reliability.  Policies use the stationary reliability in their
    weights, as the paper's "p_n obtained by probing or learning"
    prescription implies.  The default fused engine mega-batches the
    whole grid (Gilbert-Elliott rows under ``rng="free"``, which is the
    default here; the Bernoulli reference point fuses into its own
    stack).  ``seeds`` overrides the replication set (default:
    ``(seed,)``, keeping the legacy scalar-study signature).
    """
    intervals = num_intervals or scaled_intervals(VIDEO_INTERVALS)
    if seeds is None:
        seeds = (seed,)
    if rng is None and engine in ("batch", "fused"):
        # Lockstep draws cannot evolve Gilbert-Elliott state; free-draw
        # substreams are the statistically-equivalent vectorized path.
        rng = "free"
    sweep = run_sweep(
        parameter_name="burstiness",
        values=tuple(burstiness),
        spec_builder=functools.partial(_burst_spec, arrival_rate),
        policies=("DB-DP", "LDF"),
        num_intervals=intervals,
        seeds=tuple(seeds),
        engine=engine,
        rng=rng,
        backend=backend,
        cache=cache,
        shards=shards,
    )
    figure = _sweep_to_figure(
        sweep,
        "ext-burst-loss",
        "Robustness to bursty losses (equal stationary reliability)",
        "burstiness",
        notes="stationary reliability 0.70 at every point; x = 0 is the "
        "i.i.d. Bernoulli reference, mean bad-burst length is "
        "1 / (0.667 (1 - x)) intervals",
    )
    return figure


#: Traffic-burstiness grid for :func:`correlated_traffic_robustness`.
MMPP_GRID = (0.0, 0.2, 0.4, 0.6, 0.7, 0.8, 0.9)
_TRAFFIC_LINKS = 8
_TRAFFIC_RELIABILITY = 0.7


def _mmpp_process(mean_rate: float, burstiness: float, num_links: int):
    """Symmetric ON/OFF chain at mixing rate ``1 - burstiness``.

    Stay probabilities ``s = (1 + burstiness) / 2`` on both states give
    a stationary ON probability of 1/2 at every grid point, so the mean
    load is exactly ``mean_rate`` throughout while the mean ON(/OFF)
    dwell time ``1 / (1 - s) = 2 / (1 - burstiness)`` grows with
    ``burstiness``.  At ``burstiness = 0`` the chain is memoryless and
    the study uses the exact i.i.d. Bernoulli reference instead (the
    temporal structure both policies were analyzed under).
    """
    if burstiness == 0.0:
        return BernoulliArrivals.symmetric(num_links, mean_rate)
    stay = (1.0 + burstiness) / 2.0
    on_rate = min(1.0, 2.0 * mean_rate)
    off_rate = 2.0 * mean_rate - on_rate
    return MarkovModulatedArrivals(
        num_links,
        on_rate=on_rate,
        off_rate=off_rate,
        p_stay_on=stay,
        p_stay_off=stay,
        initial_state="stationary",
    )


def _mmpp_spec(mean_rate: float, burstiness: float) -> NetworkSpec:
    """Picklable spec builder for the traffic-burstiness sweep (the swept
    value lands on ``burstiness`` positionally)."""
    from ..phy.channel import BernoulliChannel

    return NetworkSpec.from_delivery_ratios(
        arrivals=_mmpp_process(mean_rate, burstiness, _TRAFFIC_LINKS),
        channel=BernoulliChannel.symmetric(
            _TRAFFIC_LINKS, _TRAFFIC_RELIABILITY
        ),
        timing=low_latency_timing(),
        delivery_ratios=0.9,
    )


def correlated_traffic_robustness(
    num_intervals: Optional[int] = None,
    mean_rate: float = 0.5,
    seed: int = 0,
    engine: str = "fused",
    burstiness: Sequence[float] = MMPP_GRID,
    seeds: Optional[Sequence[int]] = None,
    rng: Optional[str] = None,
    backend: Optional[str] = None,
    cache=None,
    shards: Optional[int] = None,
) -> FigureResult:
    """DB-DP vs LDF swept over traffic burstiness at equal mean load.

    Every grid point is a symmetric Markov-modulated ON/OFF arrival
    process with the *same* mean load but a longer mean dwell time as
    ``burstiness`` grows; ``x = 0`` is the i.i.d. Bernoulli reference at
    that load.  The default fused engine mega-batches the whole grid
    (MMPP rows evolve vectorized under ``rng="free"``, which is the
    default here; the Bernoulli reference point fuses into its own
    stack).  ``seeds`` overrides the replication set (default:
    ``(seed,)``, keeping the legacy scalar-study signature).
    """
    intervals = num_intervals or scaled_intervals(VIDEO_INTERVALS)
    if seeds is None:
        seeds = (seed,)
    if rng is None and engine in ("batch", "fused"):
        # Lockstep draws cannot evolve the modulating chains; free-draw
        # substreams are the statistically-equivalent vectorized path.
        rng = "free"
    sweep = run_sweep(
        parameter_name="burstiness",
        values=tuple(burstiness),
        spec_builder=functools.partial(_mmpp_spec, mean_rate),
        policies=("DB-DP", "LDF"),
        num_intervals=intervals,
        seeds=tuple(seeds),
        engine=engine,
        rng=rng,
        backend=backend,
        cache=cache,
        shards=shards,
    )
    return _sweep_to_figure(
        sweep,
        "ext-correlated-traffic",
        "Robustness to bursty traffic (equal mean load)",
        "burstiness",
        notes=f"mean load {mean_rate:g} per link at every point; x = 0 is "
        "the i.i.d. Bernoulli reference, mean ON/OFF dwell time is "
        "2 / (1 - x) intervals",
    )
