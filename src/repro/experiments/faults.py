"""Fault-tolerance primitives for sweep orchestration.

Full-horizon figure sweeps run thousands of independent (value, policy)
cells across processes; at that scale workers crash, hang, and die with
their pool.  This module supplies the shared vocabulary every runner
(sequential, fused, parallel) uses to survive those faults:

* :class:`FaultPolicy` — how hard to try: bounded retries with
  exponential backoff, an optional per-cell wall-clock timeout, and a
  ``strict`` vs ``best_effort`` mode.
* :class:`SweepCellError` — a permanent cell failure, naming the
  (value, policy) cell, its seed tuple, the attempt count, and the last
  underlying exception (``strict`` mode raises it).
* :class:`CellFailure` / :class:`SweepFailureReport` — the structured
  record ``best_effort`` mode attaches to a
  :class:`~repro.experiments.runner.SweepResult` whose permanently
  failed cells were filled with NaN points (:func:`nan_point`).
* :func:`call_with_retries` — the retry loop itself, shared by the
  sequential and fused runners (the parallel orchestrator implements
  the same policy asynchronously across futures).
* :func:`fire_fault_hooks` — deterministic fault injection for testing:
  an injectable in-process callable (:func:`install_fault_injector`)
  plus the ``REPRO_FAULT_INJECT`` environment variable, which crosses
  process boundaries into pool workers.

``REPRO_FAULT_INJECT`` grammar — semicolon-separated directives of the
form ``kind:policy:value:max_attempts``::

    raise:LDF:0.4        # raise InjectedFault in LDF's cell at value 0.4
    kill:DB-DP:*:1       # kill the worker (os._exit) on attempt 0 only
    hang:*:0.5           # sleep 'forever' in every policy's cell at 0.5

``policy`` / ``value`` / ``max_attempts`` each accept ``*`` (match
anything / fire on every attempt); ``max_attempts = n`` fires only while
the cell's attempt index is ``< n``, so a transient fault that heals
after ``n`` retries is expressed deterministically — no randomness, no
cross-process counters.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "ENV_FAULT_INJECT",
    "MODE_BEST_EFFORT",
    "MODE_STRICT",
    "MODES",
    "CellFailure",
    "FaultPolicy",
    "InjectedFault",
    "SweepCellError",
    "SweepFailureReport",
    "call_with_retries",
    "clear_fault_injector",
    "fire_fault_hooks",
    "install_fault_injector",
    "nan_point",
]

#: Environment variable carrying fault-injection directives (see the
#: module docstring for the grammar).  Read in the process that runs the
#: cell, so directives reach pool workers without any extra plumbing.
ENV_FAULT_INJECT = "REPRO_FAULT_INJECT"

MODE_STRICT = "strict"
MODE_BEST_EFFORT = "best_effort"
MODES = (MODE_STRICT, MODE_BEST_EFFORT)

#: How long a "hang" directive sleeps — effectively forever next to any
#: realistic cell timeout, while still unwinding if a test forgets to
#: arm one.
_HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class FaultPolicy:
    """How a sweep runner responds to failing cells.

    retries:
        Extra attempts after the first (``retries=2`` means a cell runs
        at most 3 times before it is declared permanently failed).
    cell_timeout:
        Wall-clock seconds one cell may *run* before it counts as
        failed.  Only the parallel orchestrator can enforce it (a hung
        worker must be reclaimed by respawning the pool); the in-process
        runners ignore it.
    backoff_base / backoff_factor / backoff_max:
        Delay before retry ``k`` (1-based) is
        ``min(backoff_max, backoff_base * backoff_factor ** (k - 1))``.
        ``backoff_base=0`` disables sleeping (tests).
    mode:
        ``"strict"`` raises :class:`SweepCellError` on the first
        permanent failure; ``"best_effort"`` fills the failed cell with
        a NaN :func:`nan_point` and records a :class:`CellFailure` so
        the sweep still returns every healthy cell.
    """

    retries: int = 2
    cell_timeout: Optional[float] = None
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    mode: str = MODE_STRICT

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.cell_timeout is not None and not self.cell_timeout > 0:
            raise ValueError(
                f"cell_timeout must be positive, got {self.cell_timeout}"
            )
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max < 0:
            raise ValueError(
                f"backoff_max must be >= 0, got {self.backoff_max}"
            )
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")

    @property
    def best_effort(self) -> bool:
        return self.mode == MODE_BEST_EFFORT

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if self.backoff_base <= 0:
            return 0.0
        exponent = max(int(attempt), 1) - 1
        return min(self.backoff_max, self.backoff_base * self.backoff_factor**exponent)


@dataclass(frozen=True)
class CellFailure:
    """One permanently failed (value, policy) cell of a sweep."""

    value: float
    policy: str
    seeds: Tuple[int, ...]
    attempts: int
    error_type: str
    message: str

    def describe(self) -> str:
        return (
            f"cell (value={self.value!r}, policy={self.policy!r}, "
            f"seeds={self.seeds}) failed after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.message}"
        )


@dataclass
class SweepFailureReport:
    """Every permanent failure of one best-effort sweep, structured."""

    failures: List[CellFailure] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.failures)

    def __len__(self) -> int:
        return len(self.failures)

    @property
    def cells(self) -> List[Tuple[float, str]]:
        """The failed (value, policy) cells, in failure order."""
        return [(f.value, f.policy) for f in self.failures]

    def summary(self) -> str:
        lines = [f"{len(self.failures)} sweep cell(s) permanently failed:"]
        lines += [f"  - {f.describe()}" for f in self.failures]
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """JSON-serializable form (CI artifacts, logs)."""
        return {
            "failed_cells": [
                {
                    "value": f.value,
                    "policy": f.policy,
                    "seeds": list(f.seeds),
                    "attempts": f.attempts,
                    "error_type": f.error_type,
                    "message": f.message,
                }
                for f in self.failures
            ]
        }


class SweepCellError(RuntimeError):
    """A sweep cell failed permanently (strict mode).

    Carries the failing cell's coordinates so a crash deep inside a
    worker still names exactly which (value, policy, seeds) cell to
    re-run or exclude.
    """

    def __init__(
        self,
        value: float,
        policy: str,
        seeds: Sequence[int],
        attempts: int,
        cause: BaseException,
    ):
        self.value = value
        self.policy = policy
        self.seeds = tuple(seeds)
        self.attempts = attempts
        super().__init__(
            f"sweep cell (value={value!r}, policy={policy!r}, "
            f"seeds={self.seeds}) failed after {attempts} attempt(s): "
            f"{type(cause).__name__}: {cause}"
        )


class InjectedFault(RuntimeError):
    """Raised by a 'raise' fault-injection directive."""


def nan_point(policy: str, groups: Optional[Sequence[int]] = None):
    """The NaN :class:`~repro.experiments.runner.SweepPoint` best-effort
    mode substitutes for a permanently failed cell.

    ``group_deficiency`` gets one NaN per reporting group so
    ``SweepResult.group_series`` keeps working on partially failed
    sweeps.
    """
    from .runner import SweepPoint  # local import: runner imports this module

    nan = float("nan")
    group = None
    if groups is not None:
        group = (nan,) * (max(int(g) for g in groups) + 1)
    return SweepPoint(
        parameter=nan,
        policy=policy,
        total_deficiency=nan,
        deficiency_std=nan,
        group_deficiency=group,
        collisions=nan,
        mean_overhead_us=nan,
    )


def call_with_retries(
    fn: Callable[[int], object],
    *,
    value: float,
    label: str,
    seeds: Sequence[int],
    faults: FaultPolicy,
    failures: List[CellFailure],
    sleep: Callable[[float], None] = time.sleep,
):
    """Run ``fn(attempt)`` under ``faults``; the shared retry loop.

    Returns ``fn``'s result, or ``None`` after a permanent best-effort
    failure (recorded in ``failures``).  Strict mode raises
    :class:`SweepCellError` instead, chained to the last exception.
    """
    attempt = 0
    while True:
        try:
            return fn(attempt)
        except Exception as exc:
            attempt += 1
            if attempt <= faults.retries:
                delay = faults.backoff(attempt)
                if delay > 0:
                    sleep(delay)
                continue
            if not faults.best_effort:
                raise SweepCellError(
                    value, label, tuple(seeds), attempt, exc
                ) from exc
            failures.append(
                CellFailure(
                    value=float(value),
                    policy=label,
                    seeds=tuple(seeds),
                    attempts=attempt,
                    error_type=type(exc).__name__,
                    message=str(exc),
                )
            )
            return None


# ----------------------------------------------------------------------
# Deterministic fault injection
# ----------------------------------------------------------------------
_fault_injector: Optional[Callable[[float, str, int], None]] = None


def install_fault_injector(
    fn: Optional[Callable[[float, str, int], None]],
) -> Optional[Callable[[float, str, int], None]]:
    """Install an in-process injector ``fn(value, label, attempt)``.

    The callable runs at every cell's fault hook and injects a failure
    by raising.  Returns the previously installed injector (restore it
    when done).  Pool workers inherit the injector only under the
    ``fork`` start method; the ``REPRO_FAULT_INJECT`` environment
    variable works everywhere.
    """
    global _fault_injector
    previous = _fault_injector
    _fault_injector = fn
    return previous


def clear_fault_injector() -> None:
    install_fault_injector(None)


@dataclass(frozen=True)
class _Directive:
    kind: str
    policy: Optional[str]
    value: Optional[float]
    max_attempts: Optional[int]


_KINDS = ("raise", "kill", "hang")


def _parse_directives(spec: str) -> List[_Directive]:
    directives = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        fields = [f.strip() for f in chunk.split(":")]
        kind = fields[0]
        if kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} in {ENV_FAULT_INJECT}="
                f"{spec!r} (known kinds: {_KINDS})"
            )
        policy = fields[1] if len(fields) > 1 and fields[1] not in ("", "*") else None
        value = (
            float(fields[2])
            if len(fields) > 2 and fields[2] not in ("", "*")
            else None
        )
        upto = (
            int(fields[3])
            if len(fields) > 3 and fields[3] not in ("", "*")
            else None
        )
        directives.append(_Directive(kind, policy, value, upto))
    return directives


def _matches(d: _Directive, value: float, label: str, attempt: int) -> bool:
    if d.policy is not None and d.policy != label:
        return False
    if d.value is not None and not math.isclose(
        d.value, value, rel_tol=1e-9, abs_tol=1e-12
    ):
        return False
    if d.max_attempts is not None and attempt >= d.max_attempts:
        return False
    return True


def fire_fault_hooks(value: float, label: str, attempt: int = 0) -> None:
    """Run the fault-injection hooks for one cell attempt.

    Called by every runner in the process that is about to simulate the
    (``value``, ``label``) cell — inside the pool worker for parallel
    sweeps.  No-op unless an injector is installed or
    ``REPRO_FAULT_INJECT`` is set.
    """
    if _fault_injector is not None:
        _fault_injector(value, label, attempt)
    spec = os.environ.get(ENV_FAULT_INJECT, "").strip()
    if not spec:
        return
    for d in _parse_directives(spec):
        if not _matches(d, value, label, attempt):
            continue
        if d.kind == "raise":
            raise InjectedFault(
                f"injected fault at cell (value={value!r}, "
                f"policy={label!r}), attempt {attempt}"
            )
        if d.kind == "kill":
            # Hard-exit the worker without cleanup: the parent observes
            # a BrokenProcessPool, exactly like a segfault or OOM kill.
            os._exit(86)
        if d.kind == "hang":
            time.sleep(_HANG_SECONDS)
