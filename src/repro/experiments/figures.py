"""One entry point per figure of the paper's evaluation (Figs. 3-10).

Each ``figN()`` regenerates the series the corresponding figure plots and
returns a :class:`FigureResult` (or :class:`SweepResult`-backed result)
that the reporting module renders as a text table.  Interval counts default
to the paper's horizons scaled by ``REPRO_SCALE``.

Expected qualitative shapes (checked by the benchmark suite):

* Figs. 3/4/9/10: DB-DP's deficiency curve hugs LDF's; FCSMA lifts off at a
  markedly smaller load / delivery ratio.
* Fig. 5: DB-DP's lowest-priority link converges to its requirement on a
  timescale comparable to LDF.
* Fig. 6: under a fixed ordering, timely-throughput decreases with priority
  index but stays positive at the bottom (no starvation).
* Figs. 7/8: per-group deficiencies — FCSMA starves the weak group once
  debts saturate its window map; DB-DP and LDF serve both groups.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..core import registry
from ..core.requirements import NetworkSpec
from ..phy.channel import channel_from_spec
from ..sim.interval_sim import run_simulation
from .configs import (
    ASYMMETRIC_GROUPS,
    LOW_LATENCY_INTERVALS,
    VIDEO_INTERVALS,
    VIDEO_NUM_LINKS,
    PolicyFactory,
    low_latency_spec,
    paper_policies,
    scaled_intervals,
    video_asymmetric_spec,
    video_symmetric_spec,
)
from .faults import FaultPolicy, SweepFailureReport
from .runner import _ENGINES, SweepResult, run_sweep

#: ``policies`` argument accepted by the sweep figures: a label -> factory
#: mapping, a sequence of registered policy names
#: (``repro.core.registry.available()``), or ``None`` for the paper's
#: default comparison set.
PolicySelection = Optional[Union[Dict[str, PolicyFactory], Sequence[str]]]


def _with_channel(spec_builder, channel, value):
    """Picklable spec-builder wrapper swapping in a non-default channel.

    ``channel`` is a CLI-style spec string (see
    :func:`~repro.phy.channel.channel_from_spec` — ``"ge:0.1:0.3"``,
    ``"tv:drift:100:0.2"``, ``"bernoulli:0.7"``), a
    :class:`~repro.phy.channel.ChannelModel`, or a callable
    ``spec -> channel``.  Module-level (not a closure) so sharded fused
    sweeps can pickle the wrapped builder into worker processes.
    """
    spec = spec_builder(value)
    if isinstance(channel, str):
        channel = channel_from_spec(channel, spec.num_links)
    elif callable(channel):
        channel = channel(spec)
    return dataclasses.replace(spec, channel=channel)


def _maybe_with_channel(builder, channel):
    """The figure's default builder, or its channel-swapped wrap."""
    if channel is None:
        return builder
    return functools.partial(_with_channel, builder, channel)


def _with_arrivals(spec_builder, arrivals, value):
    """Picklable spec-builder wrapper swapping in a non-default arrival
    process.

    ``arrivals`` is a CLI-style spec string (see
    :func:`~repro.traffic.arrivals.arrivals_from_spec` —
    ``"mmpp:0.7:0.1:0.9:0.9"``, ``"pareto:0.2:1.5"``,
    ``"bernoulli:0.6"``), an
    :class:`~repro.traffic.arrivals.ArrivalProcess`, or a callable
    ``spec -> process``.  Requirements are rebuilt from the original
    spec's delivery ratios so ``q_n = rho_n * lambda_n`` stays feasible
    under the new mean rates.  Module-level (not a closure) so sharded
    fused sweeps can pickle the wrapped builder into worker processes.
    """
    from ..traffic.arrivals import arrivals_from_spec

    spec = spec_builder(value)
    if isinstance(arrivals, str):
        arrivals = arrivals_from_spec(arrivals, spec.num_links)
    elif callable(arrivals):
        arrivals = arrivals(spec)
    return NetworkSpec.from_delivery_ratios(
        arrivals=arrivals,
        channel=spec.channel,
        timing=spec.timing,
        delivery_ratios=spec.delivery_ratios,
    )


def _maybe_with_arrivals(builder, arrivals):
    """The builder as-is, or its arrivals-swapped wrap."""
    if arrivals is None:
        return builder
    return functools.partial(_with_arrivals, builder, arrivals)


def _check_engine(engine: str) -> None:
    """Validate an ``engine`` argument on figures that cannot use it."""
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")

__all__ = [
    "FigureResult",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ALL_FIGURES",
]

#: Default sweep grids, chosen to bracket the paper's plotted ranges.
FIG3_ALPHAS = (0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70)
FIG4_RATIOS = (0.80, 0.84, 0.88, 0.90, 0.93, 0.96, 0.99)
FIG7_ALPHAS = (0.45, 0.55, 0.65, 0.70, 0.75, 0.85)
FIG8_RATIOS = (0.80, 0.84, 0.88, 0.90, 0.93, 0.96, 0.99)
FIG9_LAMBDAS = (0.60, 0.66, 0.72, 0.78, 0.84, 0.90, 0.96)
FIG10_RATIOS = (0.80, 0.84, 0.88, 0.92, 0.96, 0.99)


@dataclass
class FigureResult:
    """Generic container: labelled x-axis plus one series per curve."""

    figure_id: str
    title: str
    x_label: str
    x_values: List[float]
    series: Dict[str, List[float]] = field(default_factory=dict)
    y_label: str = "total timely-throughput deficiency"
    notes: str = ""
    #: Structured report of permanently failed cells (best-effort fault
    #: mode); ``None`` for a fully successful sweep.
    failures: Optional[SweepFailureReport] = None

    def row(self, x: float) -> Dict[str, float]:
        i = self.x_values.index(x)
        return {label: values[i] for label, values in self.series.items()}


def _sweep_to_figure(
    sweep: SweepResult,
    figure_id: str,
    title: str,
    x_label: str,
    groups: Optional[Sequence[int]] = None,
    notes: str = "",
) -> FigureResult:
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        x_values=list(sweep.values),
        notes=notes,
        failures=sweep.failures,
    )
    for policy in sweep.policies:
        if groups is None:
            result.series[policy] = sweep.series(policy)
        else:
            for gid in sorted(set(groups)):
                result.series[f"{policy} (group {gid + 1})"] = (
                    sweep.group_series(policy, gid)
                )
    return result


def fig3(
    num_intervals: Optional[int] = None,
    seeds: Sequence[int] = (0,),
    alphas: Sequence[float] = FIG3_ALPHAS,
    engine: str = "scalar",
    policies: PolicySelection = None,
    cache=None,
    faults: Optional[FaultPolicy] = None,
    rng: Optional[str] = None,
    shards: Optional[int] = None,
    backend: Optional[str] = None,
    dp_state: Optional[str] = None,
    topology=None,
    channel=None,
    arrivals=None,
) -> FigureResult:
    """Fig. 3: symmetric video network, deficiency vs arrival parameter.

    20 links, ``p = 0.7``, 90% delivery ratio.  LDF's admissible boundary
    sits near ``alpha* ~ 0.62``; FCSMA supports only ~70% of that.
    ``policies`` overrides the compared set (factories or registered
    names); the default is the paper's comparison.  ``rng`` / ``shards``
    / ``backend`` reach the sweep engines (batch/fused only) — see
    :func:`~repro.experiments.runner.run_sweep`.  ``channel`` replaces
    the spec's default Bernoulli channel: a spec string such as
    ``"ge:0.1:0.3"`` (see :func:`~repro.phy.channel.channel_from_spec`),
    a :class:`~repro.phy.channel.ChannelModel`, or a ``spec -> channel``
    callable; ``arrivals`` likewise replaces the arrival process (e.g.
    ``"mmpp:0.7:0.1"`` — see
    :func:`~repro.traffic.arrivals.arrivals_from_spec`; requirements are
    rebuilt from the spec's delivery ratios).  All sweep figures accept
    the same keywords.
    """
    intervals = num_intervals or scaled_intervals(VIDEO_INTERVALS)
    sweep = run_sweep(
        parameter_name="alpha*",
        values=alphas,
        # functools.partial, not a lambda: sharded fused sweeps pickle
        # the builder into worker processes.
        spec_builder=_maybe_with_arrivals(
            _maybe_with_channel(
                functools.partial(video_symmetric_spec, delivery_ratio=0.9),
                channel,
            ),
            arrivals,
        ),
        policies=paper_policies() if policies is None else policies,
        num_intervals=intervals,
        seeds=seeds,
        engine=engine,
        cache=cache,
        faults=faults,
        rng=rng,
        shards=shards,
        backend=backend,
        dp_state=dp_state,
        topology=topology,
    )
    return _sweep_to_figure(
        sweep,
        "fig3",
        "Symmetric video network under 90% delivery ratio",
        "alpha*",
    )


def fig4(
    num_intervals: Optional[int] = None,
    seeds: Sequence[int] = (0,),
    ratios: Sequence[float] = FIG4_RATIOS,
    engine: str = "scalar",
    policies: PolicySelection = None,
    cache=None,
    faults: Optional[FaultPolicy] = None,
    rng: Optional[str] = None,
    shards: Optional[int] = None,
    backend: Optional[str] = None,
    dp_state: Optional[str] = None,
    topology=None,
    channel=None,
    arrivals=None,
) -> FigureResult:
    """Fig. 4: symmetric video network at ``alpha* = 0.55``, deficiency vs
    required delivery ratio."""
    intervals = num_intervals or scaled_intervals(VIDEO_INTERVALS)
    sweep = run_sweep(
        parameter_name="delivery ratio",
        values=ratios,
        # picklable: the swept value lands on delivery_ratio positionally
        spec_builder=_maybe_with_arrivals(
            _maybe_with_channel(
                functools.partial(video_symmetric_spec, 0.55), channel
            ),
            arrivals,
        ),
        policies=paper_policies() if policies is None else policies,
        num_intervals=intervals,
        seeds=seeds,
        engine=engine,
        cache=cache,
        faults=faults,
        rng=rng,
        shards=shards,
        backend=backend,
        dp_state=dp_state,
        topology=topology,
    )
    return _sweep_to_figure(
        sweep,
        "fig4",
        "Symmetric video network under fixed arrival rate alpha* = 0.55",
        "delivery ratio",
    )


def fig5(
    num_intervals: Optional[int] = None,
    seed: int = 0,
    sample_every: int = 50,
    engine: str = "scalar",
) -> FigureResult:
    """Fig. 5: convergence of the link with the lowest initial priority.

    ``alpha* = 0.55``, 93% delivery ratio; plots the running
    timely-throughput of the link that starts at priority index 20 under
    DB-DP and under LDF, against time (intervals).

    ``engine`` is accepted for harness uniformity (the benchmark suite
    passes one engine to every figure) but single-trace figures always run
    on the scalar engine — there is no seed stack or grid to vectorize.
    """
    _check_engine(engine)
    intervals = num_intervals or scaled_intervals(VIDEO_INTERVALS)
    spec = video_symmetric_spec(0.55, delivery_ratio=0.93)
    watched = VIDEO_NUM_LINKS - 1  # identity initial ordering: last = lowest

    series: Dict[str, List[float]] = {}
    for label in ("DB-DP", "LDF"):
        policy = registry.create(label)
        result = run_simulation(spec, policy, intervals, seed=seed)
        running = result.running_timely_throughput(watched)
        series[label] = [float(v) for v in running[sample_every - 1 :: sample_every]]

    x_values = [float(k) for k in range(sample_every, intervals + 1, sample_every)]
    out = FigureResult(
        figure_id="fig5",
        title=(
            "Convergence of the lowest-initial-priority link "
            "(alpha* = 0.55, 93% delivery ratio)"
        ),
        x_label="interval",
        x_values=x_values,
        y_label="running timely-throughput (packets/interval)",
        notes=f"requirement q = {spec.requirements[watched]:.4f} packets/interval",
    )
    out.series = series
    return out


def fig6(
    num_intervals: Optional[int] = None,
    seed: int = 0,
    engine: str = "scalar",
) -> FigureResult:
    """Fig. 6: average timely-throughput per link under a *fixed* priority
    ordering, ``alpha* = 0.6``.

    Demonstrates the no-starvation property of the priority structure: the
    x-axis is the priority index (1 = highest), and even index 20 receives
    non-zero timely-throughput.  ``engine`` is accepted for harness
    uniformity; single-trace figures always run on the scalar engine.
    """
    _check_engine(engine)
    intervals = num_intervals or scaled_intervals(VIDEO_INTERVALS)
    spec = video_symmetric_spec(0.60, delivery_ratio=0.9)
    # identity ordering: link n has priority n + 1
    policy = registry.create("StaticPriority")
    result = run_simulation(spec, policy, intervals, seed=seed)
    throughput = result.timely_throughput()
    out = FigureResult(
        figure_id="fig6",
        title="Average timely-throughput under a fixed priority ordering (alpha* = 0.6)",
        x_label="priority index",
        x_values=[float(i) for i in range(1, spec.num_links + 1)],
        y_label="timely-throughput (packets/interval)",
        notes=f"common requirement q = {spec.requirements[0]:.4f} packets/interval",
    )
    out.series = {"StaticPriority": [float(v) for v in throughput]}
    return out


def fig7(
    num_intervals: Optional[int] = None,
    seeds: Sequence[int] = (0,),
    alphas: Sequence[float] = FIG7_ALPHAS,
    engine: str = "scalar",
    policies: PolicySelection = None,
    cache=None,
    faults: Optional[FaultPolicy] = None,
    rng: Optional[str] = None,
    shards: Optional[int] = None,
    backend: Optional[str] = None,
    dp_state: Optional[str] = None,
    topology=None,
    channel=None,
    arrivals=None,
) -> FigureResult:
    """Fig. 7: asymmetric network, per-group deficiency vs ``alpha*`` at 90%
    delivery ratio."""
    intervals = num_intervals or scaled_intervals(VIDEO_INTERVALS)
    sweep = run_sweep(
        parameter_name="alpha*",
        values=alphas,
        spec_builder=_maybe_with_arrivals(
            _maybe_with_channel(
                functools.partial(video_asymmetric_spec, delivery_ratio=0.9),
                channel,
            ),
            arrivals,
        ),
        policies=paper_policies() if policies is None else policies,
        num_intervals=intervals,
        seeds=seeds,
        groups=ASYMMETRIC_GROUPS,
        engine=engine,
        cache=cache,
        faults=faults,
        rng=rng,
        shards=shards,
        backend=backend,
        dp_state=dp_state,
        topology=topology,
    )
    return _sweep_to_figure(
        sweep,
        "fig7",
        "Asymmetric network, group-wide deficiency under 90% delivery ratio",
        "alpha*",
        groups=ASYMMETRIC_GROUPS,
        notes="group 1: p = 0.5, alpha = 0.5 alpha*; group 2: p = 0.8, alpha = alpha*",
    )


def fig8(
    num_intervals: Optional[int] = None,
    seeds: Sequence[int] = (0,),
    ratios: Sequence[float] = FIG8_RATIOS,
    engine: str = "scalar",
    policies: PolicySelection = None,
    cache=None,
    faults: Optional[FaultPolicy] = None,
    rng: Optional[str] = None,
    shards: Optional[int] = None,
    backend: Optional[str] = None,
    dp_state: Optional[str] = None,
    topology=None,
    channel=None,
    arrivals=None,
) -> FigureResult:
    """Fig. 8: asymmetric network, per-group deficiency vs delivery ratio at
    ``alpha* = 0.7``."""
    intervals = num_intervals or scaled_intervals(VIDEO_INTERVALS)
    sweep = run_sweep(
        parameter_name="delivery ratio",
        values=ratios,
        spec_builder=_maybe_with_arrivals(
            _maybe_with_channel(
                functools.partial(video_asymmetric_spec, 0.7), channel
            ),
            arrivals,
        ),
        policies=paper_policies() if policies is None else policies,
        num_intervals=intervals,
        seeds=seeds,
        groups=ASYMMETRIC_GROUPS,
        engine=engine,
        cache=cache,
        faults=faults,
        rng=rng,
        shards=shards,
        backend=backend,
        dp_state=dp_state,
        topology=topology,
    )
    return _sweep_to_figure(
        sweep,
        "fig8",
        "Asymmetric network, group-wide deficiency under alpha* = 0.7",
        "delivery ratio",
        groups=ASYMMETRIC_GROUPS,
        notes="group 1: p = 0.5, alpha = 0.35; group 2: p = 0.8, alpha = 0.7",
    )


def fig9(
    num_intervals: Optional[int] = None,
    seeds: Sequence[int] = (0,),
    lambdas: Sequence[float] = FIG9_LAMBDAS,
    engine: str = "scalar",
    policies: PolicySelection = None,
    cache=None,
    faults: Optional[FaultPolicy] = None,
    rng: Optional[str] = None,
    shards: Optional[int] = None,
    backend: Optional[str] = None,
    dp_state: Optional[str] = None,
    topology=None,
    channel=None,
    arrivals=None,
) -> FigureResult:
    """Fig. 9: ultra-low-latency network, deficiency vs arrival rate at 99%
    delivery ratio (10 links, 2 ms deadline)."""
    intervals = num_intervals or scaled_intervals(LOW_LATENCY_INTERVALS)
    sweep = run_sweep(
        parameter_name="lambda*",
        values=lambdas,
        spec_builder=_maybe_with_arrivals(
            _maybe_with_channel(
                functools.partial(low_latency_spec, delivery_ratio=0.99),
                channel,
            ),
            arrivals,
        ),
        policies=paper_policies() if policies is None else policies,
        num_intervals=intervals,
        seeds=seeds,
        engine=engine,
        cache=cache,
        faults=faults,
        rng=rng,
        shards=shards,
        backend=backend,
        dp_state=dp_state,
        topology=topology,
    )
    return _sweep_to_figure(
        sweep,
        "fig9",
        "Low-latency network under 99% delivery ratio",
        "lambda*",
    )


def fig10(
    num_intervals: Optional[int] = None,
    seeds: Sequence[int] = (0,),
    ratios: Sequence[float] = FIG10_RATIOS,
    engine: str = "scalar",
    policies: PolicySelection = None,
    cache=None,
    faults: Optional[FaultPolicy] = None,
    rng: Optional[str] = None,
    shards: Optional[int] = None,
    backend: Optional[str] = None,
    dp_state: Optional[str] = None,
    topology=None,
    channel=None,
    arrivals=None,
) -> FigureResult:
    """Fig. 10: ultra-low-latency network, deficiency vs delivery ratio at
    ``lambda* = 0.78``."""
    intervals = num_intervals or scaled_intervals(LOW_LATENCY_INTERVALS)
    sweep = run_sweep(
        parameter_name="delivery ratio",
        values=ratios,
        spec_builder=_maybe_with_arrivals(
            _maybe_with_channel(
                functools.partial(low_latency_spec, 0.78), channel
            ),
            arrivals,
        ),
        policies=paper_policies() if policies is None else policies,
        num_intervals=intervals,
        seeds=seeds,
        engine=engine,
        cache=cache,
        faults=faults,
        rng=rng,
        shards=shards,
        backend=backend,
        dp_state=dp_state,
        topology=topology,
    )
    return _sweep_to_figure(
        sweep,
        "fig10",
        "Low-latency network under fixed lambda* = 0.78",
        "delivery ratio",
    )


#: Registry used by the CLI and the benchmark harness.
ALL_FIGURES = {
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
}
