"""Grid-fused sweeps: one engine pass per (policy family, N) group.

:func:`~repro.experiments.runner.run_sweep` with ``engine="batch"`` already
vectorizes across seeds, but still pays one engine invocation — Python
per-interval loop included — per (parameter value, policy) cell.  A figure
sweep is V values x P policies of those.  This module collapses the grid
the rest of the way: every cell of a sweep that shares a policy family and
a link count joins one **mega-batch** of ``R = V x S`` rows (S = seeds per
cell), built on the per-row spec support of
:class:`~repro.sim.spec_stack.SpecStack` /
:class:`~repro.sim.batch_sim.BatchIntervalSimulator`.  The whole sweep then
costs one Python interval loop per policy family instead of one per cell —
on the paper's Fig. 3 grid this is a further ~4x end-to-end over per-cell
batching (see ``benchmarks/bench_fused_sweep.py``).

Semantics:

* Per-row results are scattered back into ordinary
  :class:`~repro.experiments.runner.SweepPoint`s using float operations
  chosen to match the per-cell batch runner bit-for-bit given the same
  draws.  With ``sync_rng=True`` every row is bit-identical to the scalar
  engine (and hence to per-cell batch sync runs); in the default mode each
  row is an independent sample of the same distribution, drawn from
  ``"fused"``-tagged batch streams.
* Cells whose spec/policy cannot join a mega-batch — no batch kernel
  (FCSMA, DCF, frame-CSMA), stateful channels or arrivals, or per-row
  parameters the kernels cannot stack — **fall back automatically** to
  the per-cell runner (``engine="batch"``, which itself degrades to
  scalar), so ``run_sweep_fused`` accepts anything ``run_sweep`` does.
* Pass ``cache=True`` (or a directory / :class:`SweepCache`) to memoize
  finished cells on disk; see :mod:`repro.experiments.cache`.
* ``rng="free"`` switches capable policy families to independently
  derived free-draw substreams (statistically equivalent, not
  bit-identical, to the default lockstep-batch discipline); families
  that do not declare :attr:`~repro.core.registry.PolicyCapabilities.
  supports_free_rng` degrade to the batch discipline with one
  ``UserWarning`` per sweep.
* ``shards=K`` splits the grid into K row-contiguous shards dispatched
  through the fault-tolerant process orchestrator of
  :mod:`repro.experiments.parallel`, so a mega-batch sweep uses every
  core and inherits retry/respawn/checkpoint-resume per shard.
"""

from __future__ import annotations

import pickle
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core import registry
from ..core.requirements import NetworkSpec
from ..sim import perf
from ..sim.batch_sim import (
    BatchIntervalSimulator,
    BatchSweepStats,
    share_batch_draws,
    supports_batch_engine,
)
from ..sim.rng import normalize_rng_mode
from .cache import SweepCache, resolve_cache, warn_uncacheable
from .configs import PolicyFactory
from .faults import (
    CellFailure,
    FaultPolicy,
    SweepCellError,
    SweepFailureReport,
    call_with_retries,
    fire_fault_hooks,
    nan_point,
)
from .parallel import _CellState, _Orchestrator
from .runner import (
    SweepPoint,
    SweepResult,
    _check_dp_state,
    _policy_supports_incremental,
    _policy_supports_topology,
    _resolve_topology,
    _run_single_topology,
    _warn_topology_degrade,
    run_single,
)

__all__ = ["run_sweep_fused", "FUSED_STREAM_TAG"]

#: Batch-RNG namespace tag for fused mega-batches (see
#: :class:`~repro.sim.rng.BatchRngBundle`).
FUSED_STREAM_TAG = "fused"


@dataclass
class _Cell:
    """One (parameter value, policy) cell being assembled."""

    value: float
    label: str
    spec: NetworkSpec
    factory: PolicyFactory
    policy: object
    key: Optional[str] = None
    point: Optional[SweepPoint] = None
    cached: bool = False
    failed: bool = False  # permanent best-effort failure: never cached
    rows: Optional[slice] = field(default=None, repr=False)


def _group_signature(cell: _Cell) -> Tuple:
    """Cells sharing this signature are candidates for one mega-batch.

    Keyed on the registered policy family *and* the concrete class:
    the registry's kernel-family token decides which kernel serves the
    group, while the concrete class keeps distinct sweep curves (e.g.
    ``DP`` vs ``DB-DP``) in separate stacks so their row order — and
    hence the default-mode draw consumption — matches the per-cell
    engines exactly.
    """
    descriptor = registry.descriptor_for(cell.policy)
    family = None if descriptor is None else descriptor.kernel_family()
    return (
        family,
        type(cell.policy),
        cell.spec.num_links,
        cell.spec.timing,
        # Spec stacks require one channel model class per stack (the
        # kernel binds one draw pipeline); same-class rows fuse freely,
        # including per-row channel parameter sweeps.
        type(cell.spec.channel),
    )


def _supports_free(policy: object) -> bool:
    """Whether ``policy``'s registered family declares ``supports_free_rng``."""
    descriptor = registry.descriptor_for(policy)
    return (
        descriptor is not None and descriptor.capabilities.supports_free_rng
    )


def _effective_rng(cell: _Cell, rng_mode: str) -> str:
    """The draw discipline this cell actually runs under.

    ``rng="free"`` is a per-family capability: cells of families that do
    not declare it degrade to the default lockstep-batch discipline (the
    caller warns once per sweep) rather than failing the whole grid.
    """
    if rng_mode == "free" and not _supports_free(cell.policy):
        return "batch"
    return rng_mode


def _partition(
    cells: List[_Cell], rng_mode: str
) -> Tuple[Dict[Tuple, List[_Cell]], List[_Cell]]:
    """Split unresolved cells into fusable mega-batch groups and fallbacks.

    Fusability is a declared capability (the registry's ``fusable`` flag,
    via supports_batch_engine) — scalar-only families (DCF, FCSMA,
    frame-CSMA) land in the fallback path declaratively rather than as
    the implicit ``else`` of a type switch.  The group key includes the
    cell's *effective* draw discipline so free-draw groups never share a
    stack (or lockstep draws) with degraded batch-discipline groups.
    """
    fused_groups: Dict[Tuple, List[_Cell]] = {}
    fallback: List[_Cell] = []
    for cell in cells:
        if cell.point is not None:
            continue
        descriptor = registry.descriptor_for(cell.policy)
        fusable = descriptor is not None and descriptor.capabilities.fusable
        eff = _effective_rng(cell, rng_mode)
        if fusable and supports_batch_engine(
            cell.spec, cell.policy, sync_rng=rng_mode == "sync", rng=eff
        ):
            key = (_group_signature(cell), eff)
            fused_groups.setdefault(key, []).append(cell)
        else:
            fallback.append(cell)
    return fused_groups, fallback


def _scatter_points(
    cells: List[_Cell],
    stats: BatchSweepStats,
    num_seeds: int,
    groups: Optional[Sequence[int]],
) -> None:
    """Split mega-batch aggregates back into per-cell sweep points.

    Float operations mirror ``runner._run_single_batch`` exactly: int64
    delivery/collision sums make the means exact, and the per-cell row
    slices feed ``mean()``/``std()`` the same values in the same order, so
    a fused cell equals its per-cell counterpart bit-for-bit whenever the
    underlying draws match (``sync_rng=True``).
    """
    totals_all = stats.total_deficiency()  # (R,)
    collisions_all = stats.total_collisions().astype(float)  # (R,)
    overheads_all = stats.mean_overhead_us()  # (R,)
    link_def_all = stats.per_link_deficiency()  # (R, N)
    group_ids = None if groups is None else np.asarray(groups, dtype=int)
    for cell in cells:
        rows = cell.rows
        totals = totals_all[rows]
        group_mean = None
        if group_ids is not None:
            if group_ids.shape != (stats.num_links,):
                raise ValueError("groups must have one id per link")
            num_groups = int(group_ids.max()) + 1
            per_seed = [
                np.array(
                    [
                        link_def_all[r][group_ids == gid].sum()
                        for gid in range(num_groups)
                    ]
                )
                for r in range(rows.start, rows.stop)
            ]
            group_mean = tuple(float(x) for x in np.mean(per_seed, axis=0))
        cell.point = SweepPoint(
            parameter=float("nan"),  # filled during assembly
            policy=cell.policy.name,
            total_deficiency=float(totals.mean()),
            deficiency_std=float(totals.std()),
            group_deficiency=group_mean,
            collisions=float(collisions_all[rows].mean()),
            mean_overhead_us=float(np.mean(overheads_all[rows])),
        )


def _build_fused_sim(
    cells: List[_Cell],
    seeds: Tuple[int, ...],
    rng_mode: str,
    validate: bool,
    backend: Optional[str],
    stream_tag: str = FUSED_STREAM_TAG,
    dp_state: Optional[str] = None,
) -> Optional[BatchIntervalSimulator]:
    """Stack one group's cells into a mega-batch simulator.

    Stack construction and kernel binding may legitimately reject a group
    (heterogeneous timings, unstackable per-row policy parameters); those
    raise ``TypeError``/``ValueError`` *before* any simulation happens and
    turn into a per-cell fallback (``None``).  Errors raised
    mid-simulation are real failures and propagate from the run loop.
    """
    if dp_state is not None:
        descriptor = registry.descriptor_for(cells[0].policy)
        if (
            descriptor is None
            or not descriptor.capabilities.supports_incremental_dp
        ):
            # A sweep-level dp_state request addresses the DP-family
            # groups; a family without the capability runs exactly as
            # it would with dp_state=None instead of letting the
            # kernel's strict ValueError demote the whole group to the
            # per-cell fallback (whose different stream tags would
            # silently change the group's draws).
            dp_state = None
    num_seeds = len(seeds)
    row_specs: List[NetworkSpec] = []
    row_seeds: List[int] = []
    row_policies: List[object] = []
    for cell in cells:
        cell.rows = slice(len(row_seeds), len(row_seeds) + num_seeds)
        for seed in seeds:
            row_specs.append(cell.spec)
            row_seeds.append(seed)
            row_policies.append(cell.policy)
    try:
        return BatchIntervalSimulator(
            row_specs,
            cells[0].policy,
            row_seeds,
            rng=rng_mode,
            validate=validate,
            record_traces=False,
            row_policies=row_policies,
            stream_tag=stream_tag,
            backend=backend,
            dp_state=dp_state,
        )
    except (TypeError, ValueError):
        return None


def _run_fused_group_with_faults(
    cells: List[_Cell],
    seeds: Tuple[int, ...],
    rng_mode: str,
    validate: bool,
    backend: Optional[str],
    num_intervals: int,
    groups: Optional[Sequence[int]],
    faults: FaultPolicy,
    failures: List[CellFailure],
    fallback: List[_Cell],
    dp_state: Optional[str] = None,
) -> None:
    """Run one mega-batch group under a fault policy.

    A fused group is all-or-nothing: its cells share one simulator, so a
    mid-run failure retries the *whole group* (rebuilt from scratch) and
    a permanent failure fails every cell of the group — each one
    recorded individually in ``failures`` so the report still names
    every lost (value, policy) cell.  Build-time rejections
    (heterogeneous timings, unstackable parameters) are not faults and
    fall back to the per-cell runner as always.
    """
    attempt = 0
    while True:
        try:
            for cell in cells:
                fire_fault_hooks(cell.value, cell.label, attempt)
            sim = _build_fused_sim(
                cells, seeds, rng_mode, validate, backend, dp_state=dp_state
            )
            if sim is None:
                fallback.extend(cells)
                return
            for _ in range(num_intervals):
                sim.step()
            _scatter_points(cells, sim.stats, len(seeds), groups)
            return
        except Exception as exc:
            attempt += 1
            if attempt <= faults.retries:
                delay = faults.backoff(attempt)
                if delay > 0:
                    time.sleep(delay)
                continue
            if not faults.best_effort:
                first = cells[0]
                raise SweepCellError(
                    first.value, first.label, seeds, attempt, exc
                ) from exc
            for cell in cells:
                failures.append(
                    CellFailure(
                        value=cell.value,
                        policy=cell.label,
                        seeds=seeds,
                        attempts=attempt,
                        error_type=type(exc).__name__,
                        message=str(exc),
                    )
                )
                cell.point = nan_point(cell.label, groups)
                cell.failed = True
            return


def _simulate_cells(
    cells: List[_Cell],
    seeds: Tuple[int, ...],
    rng_mode: str,
    validate: bool,
    backend: Optional[str],
    num_intervals: int,
    groups: Optional[Sequence[int]],
    stream_tag: str,
    fallback: List[_Cell],
    dp_state: Optional[str] = None,
) -> None:
    """Partition, build, lockstep-run, and scatter one batch of cells.

    The fail-fast (``faults=None``) simulation body, shared by the
    unsharded path and the per-shard workers; cells that cannot join a
    mega-batch are appended to ``fallback`` for the per-cell runner.
    """
    fused_groups, unfusable = _partition(cells, rng_mode)
    fallback.extend(unfusable)
    built: List[Tuple[List[_Cell], BatchIntervalSimulator]] = []
    with perf.stage("fused.build"):
        for (_, eff), group_cells in fused_groups.items():
            sim = _build_fused_sim(
                group_cells, seeds, eff, validate, backend, stream_tag,
                dp_state=dp_state,
            )
            if sim is None:
                fallback.extend(group_cells)
            else:
                built.append((group_cells, sim))

        # Policy-family groups of one grid stack the same cells with the
        # same seeds, so their channel/arrival draws coincide; running
        # them in lockstep lets one generation pass feed every family
        # (exactly like the per-cell engines, where equal seeds reuse
        # equal draws across policies).
        share_batch_draws([sim for _, sim in built])
    with perf.stage("fused.run"):
        for _ in range(num_intervals):
            for _, sim in built:
                sim.step()
    with perf.stage("fused.scatter"):
        for group_cells, sim in built:
            _scatter_points(group_cells, sim.stats, len(seeds), groups)


@dataclass(frozen=True)
class _ShardSpec:
    """One row-contiguous slice of the sweep grid — everything picklable.

    ``members`` pins the (value, policy label) cells of the shard; the
    worker rebuilds specs and policies from the sweep's builder, exactly
    like :mod:`repro.experiments.parallel` cells.  ``index``/``count``
    derive the shard's batch-RNG stream tag, making every draw a pure
    function of (seeds, shard count, shard index) — reruns and resumes
    at the same shard count are bit-identical.
    """

    index: int
    count: int
    label: str
    members: Tuple[Tuple[float, str], ...]

    @property
    def value(self) -> float:
        """Orchestrator-facing cell value (used in failure reports)."""
        return float(self.index)


def _shard_tag(index: int, count: int) -> str:
    return f"{FUSED_STREAM_TAG}/shard{index + 1}of{count}"


def _run_shard(
    shard: _ShardSpec,
    spec_builder: Callable[[float], NetworkSpec],
    policies: Dict[str, PolicyFactory],
    num_intervals: int,
    seeds: Tuple[int, ...],
    groups: Optional[Tuple[int, ...]],
    rng_mode: str,
    validate: bool,
    backend: Optional[str],
    dp_state: Optional[str],
    attempt: int,
) -> Tuple[_ShardSpec, List[Tuple[float, str, SweepPoint]]]:
    """Worker-side execution of one shard (module-level, picklable)."""
    for value, label in shard.members:
        fire_fault_hooks(value, label, attempt)
    specs: Dict[float, NetworkSpec] = {}
    cells: List[_Cell] = []
    for value, label in shard.members:
        if value not in specs:
            specs[value] = spec_builder(value)
        factory = policies[label]
        cells.append(
            _Cell(
                value=value,
                label=label,
                spec=specs[value],
                factory=factory,
                policy=factory(),
            )
        )
    fallback: List[_Cell] = []
    _simulate_cells(
        cells, seeds, rng_mode, validate, backend, num_intervals, groups,
        _shard_tag(shard.index, shard.count), fallback, dp_state=dp_state,
    )
    for cell in fallback:
        cell.point = run_single(
            cell.spec, cell.factory, num_intervals, seeds, groups,
            engine="batch",
        )
    return shard, [(c.value, c.label, c.point) for c in cells]


class _ShardOrchestrator(_Orchestrator):
    """Drives whole shards through the parallel fault machinery.

    Inherits retry/backoff, pool respawn on worker death, and
    ``cell_timeout`` expiry unchanged; only the work unit and the
    outcome fan-out differ — one shard success resolves (and
    checkpoints) every member cell, one permanent shard failure fails
    them all individually so the report still names each lost cell.
    """

    task_fn = staticmethod(_run_shard)

    def __init__(self, states, *, cells_by_id, **kwargs):
        super().__init__(states, **kwargs)
        self._cells_by_id: Dict[Tuple[float, str], _Cell] = cells_by_id

    def _record_success(self, state, outcome) -> None:
        for value, label, point in outcome:
            cell = self._cells_by_id[(value, label)]
            cell.point = point
            cell.failed = False
            if self.store is not None and cell.key is not None:
                # Checkpoint immediately: a sweep killed right now
                # resumes from every shard recorded up to this moment.
                self.store.put(cell.key, point)
                cell.cached = True
            self.outcomes[(value, label)] = point

    def _record_permanent_failure(self, state, exc: BaseException) -> None:
        shard: _ShardSpec = state.cell
        if not self.faults.best_effort:
            raise SweepCellError(
                shard.value, shard.label, self.seeds, state.attempts, exc
            ) from exc
        for value, label in shard.members:
            self.failures.append(
                CellFailure(
                    value=value,
                    policy=label,
                    seeds=self.seeds,
                    attempts=state.attempts,
                    error_type=type(exc).__name__,
                    message=str(exc),
                )
            )
            cell = self._cells_by_id[(value, label)]
            cell.point = nan_point(label, self.groups)
            cell.failed = True


def _run_sweep_fused_sharded(
    cells: List[_Cell],
    spec_builder: Callable[[float], NetworkSpec],
    policies: Dict[str, PolicyFactory],
    num_intervals: int,
    seeds: Tuple[int, ...],
    groups: Optional[Sequence[int]],
    rng_mode: str,
    validate: bool,
    backend: Optional[str],
    faults: Optional[FaultPolicy],
    store: Optional[SweepCache],
    shards: int,
    failures: List[CellFailure],
    dp_state: Optional[str] = None,
) -> None:
    """Split the grid into row-contiguous shards and dispatch them.

    Shard membership is a pure function of the sweep definition and the
    shard count — computed over the *full* cell list, before cache
    state, so a resumed sweep splits identically to the original.  A
    shard only skips when **every** member is warm: warm members of a
    cold shard are recomputed (bit-identically — same stack, same
    stream tag) so resume equals an uninterrupted run at the same shard
    count.

    Without a fault policy the shards still go through the orchestrator
    (zero retries, strict), so a worker exception surfaces as a
    :class:`~repro.experiments.faults.SweepCellError` naming the shard.
    Unpicklable builders/policies fall back to sequential in-process
    shard execution — identical results, since shard draw streams
    depend only on the shard count, not on where they run.
    """
    count = max(1, min(int(shards), len(cells)))
    base, extra = divmod(len(cells), count)
    by_id: Dict[Tuple[float, str], _Cell] = {
        (c.value, c.label): c for c in cells
    }
    shard_specs: List[_ShardSpec] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        members = cells[start:start + size]
        start += size
        shard_specs.append(
            _ShardSpec(
                index=index,
                count=count,
                label=f"shard {index + 1}/{count} ({len(members)} cells)",
                members=tuple((c.value, c.label) for c in members),
            )
        )
    cold = [
        sh
        for sh in shard_specs
        if any(by_id[m].point is None for m in sh.members)
    ]
    if not cold:
        return
    for sh in cold:
        for m in sh.members:
            by_id[m].point = None
            by_id[m].cached = False

    submit_args = (
        spec_builder, policies, num_intervals, seeds,
        tuple(groups) if groups is not None else None,
        rng_mode, validate, backend, dp_state,
    )
    try:
        pickle.dumps((spec_builder, policies))
        picklable = True
    except Exception:
        picklable = False

    if picklable:
        _ShardOrchestrator(
            [_CellState(cell=sh) for sh in cold],
            cells_by_id=by_id,
            faults=faults or FaultPolicy(retries=0, backoff_base=0.0),
            store=store,
            max_workers=None,
            submit_args=submit_args,
            seeds=seeds,
            groups=tuple(groups) if groups is not None else None,
            outcomes={},
            failures=failures,
        ).run()
        return

    warnings.warn(
        "spec_builder/policies are not picklable; running shards "
        "sequentially in-process (results are identical — shard draw "
        "streams depend only on the shard count, not on where they run)",
        UserWarning,
        stacklevel=3,
    )
    for sh in cold:
        attempt = 0
        while True:
            try:
                _, points = _run_shard(sh, *submit_args, attempt)
            except Exception as exc:
                attempt += 1
                if faults is not None and attempt <= faults.retries:
                    delay = faults.backoff(attempt)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                if faults is None:
                    raise
                if not faults.best_effort:
                    raise SweepCellError(
                        sh.value, sh.label, seeds, attempt, exc
                    ) from exc
                for value, label in sh.members:
                    failures.append(
                        CellFailure(
                            value=value,
                            policy=label,
                            seeds=seeds,
                            attempts=attempt,
                            error_type=type(exc).__name__,
                            message=str(exc),
                        )
                    )
                    cell = by_id[(value, label)]
                    cell.point = nan_point(label, groups)
                    cell.failed = True
                break
            else:
                for value, label, point in points:
                    cell = by_id[(value, label)]
                    cell.point = point
                    cell.failed = False
                    if store is not None and cell.key is not None:
                        store.put(cell.key, point)
                        cell.cached = True
                break


def _run_sweep_topology(
    parameter_name: str,
    values: Sequence[float],
    spec_builder: Callable[[float], NetworkSpec],
    policies: Dict[str, PolicyFactory],
    num_intervals: int,
    seeds: Tuple[int, ...],
    groups: Optional[Sequence[int]],
    rng_mode: str,
    validate: bool,
    backend: Optional[str],
    dp_state: Optional[str],
    store: Optional[SweepCache],
    faults: Optional[FaultPolicy],
    topology,
    shards: Optional[int],
) -> SweepResult:
    """Multi-cell sweep: capable cells run on the topology engine.

    Each capable (value, policy) cell is already a mega-batch — every
    (seed, cell-of-topology) pair is one engine row, and ``shards``
    splits the *cells of the topology* across worker processes
    (:func:`~repro.topology.engine.run_topology_batch`) instead of
    splitting the sweep grid.  Families without ``supports_topology``
    degrade to the per-cell batch runner with one ``UserWarning`` and
    are cached under the same key a topology-free sweep would use (they
    compute the identical point).
    """
    groups_t = tuple(groups) if groups is not None else None
    degraded = [
        label
        for label, factory in policies.items()
        if not _policy_supports_topology(factory())
    ]
    if degraded:
        _warn_topology_degrade(degraded, stacklevel=4)
    free_degraded: List[str] = []
    if rng_mode == "free":
        free_degraded = [
            label
            for label, factory in policies.items()
            if not _supports_free(factory())
        ]
        if free_degraded:
            warnings.warn(
                "rng='free' is not declared (supports_free_rng) by policy "
                f"families: {', '.join(free_degraded)}; those cells run "
                "under the default batch draw discipline instead",
                UserWarning,
                stacklevel=4,
            )
    failures: List[CellFailure] = []
    uncacheable: List[str] = []
    result = SweepResult(parameter_name=parameter_name, values=list(values))
    for value in values:
        spec = spec_builder(value)
        topo = _resolve_topology(topology, spec)
        for label, factory in policies.items():
            policy = factory()
            capable = label not in degraded
            eff_rng = "batch" if label in free_degraded else rng_mode
            eff_dp = (
                dp_state if _policy_supports_incremental(policy) else None
            )
            key = None
            point = None
            if store is not None:
                key = store.cell_key(
                    spec=spec,
                    policy=policy,
                    seeds=seeds,
                    num_intervals=num_intervals,
                    groups=groups_t,
                    sync_rng=rng_mode == "sync",
                    rng="free" if eff_rng == "free" else None,
                    topology=topo if capable else None,
                )
                if key is None:
                    if label not in uncacheable:
                        uncacheable.append(label)
                else:
                    point = store.get(key)
            if point is None:

                def _compute(spec=spec, policy=policy, factory=factory,
                             topo=topo, capable=capable, eff_rng=eff_rng,
                             eff_dp=eff_dp):
                    if capable:
                        return _run_single_topology(
                            spec, policy, num_intervals, seeds, groups,
                            topo, backend=backend, rng=eff_rng,
                            dp_state=eff_dp, validate=validate,
                            shards=shards,
                        )
                    return run_single(
                        spec, factory, num_intervals, seeds, groups,
                        engine="batch", backend=backend, rng=eff_rng,
                        dp_state=dp_state,
                    )

                if faults is None:
                    point = _compute()
                else:

                    def _attempt(attempt, value=value, label=label,
                                 _compute=_compute):
                        fire_fault_hooks(float(value), label, attempt)
                        return _compute()

                    point = call_with_retries(
                        _attempt,
                        value=float(value),
                        label=label,
                        seeds=seeds,
                        faults=faults,
                        failures=failures,
                    )
                if point is None:  # permanent best-effort failure
                    point = nan_point(label, groups_t)
                elif store is not None and key is not None:
                    store.put(key, point)
            result.points.append(
                replace(point, parameter=float(value), policy=label)
            )
    warn_uncacheable(uncacheable, stacklevel=3)
    if failures:
        result.failures = SweepFailureReport(failures)
    return result


def run_sweep_fused(
    parameter_name: str,
    values: Sequence[float],
    spec_builder: Callable[[float], NetworkSpec],
    policies: Union[Dict[str, PolicyFactory], Sequence[str]],
    num_intervals: int,
    seeds: Sequence[int] = (0,),
    groups: Optional[Sequence[int]] = None,
    *,
    sync_rng: bool = False,
    rng: Optional[str] = None,
    shards: Optional[int] = None,
    cache: Union[None, bool, str, SweepCache] = None,
    validate: bool = True,
    backend: Optional[str] = None,
    dp_state: Optional[str] = None,
    faults: Optional[FaultPolicy] = None,
    topology=None,
) -> SweepResult:
    """Drop-in :func:`~repro.experiments.runner.run_sweep`, grid-fused.

    Same signature and :class:`SweepResult` contract as ``run_sweep``,
    plus:

    sync_rng:
        Drive every row with scalar-identical streams (bit-exact against
        the scalar and per-cell batch engines, but slow) instead of the
        default vectorized batch streams.
    rng:
        Draw discipline (:data:`~repro.sim.rng.RNG_MODES`).  ``None``
        keeps the default (lockstep batch, or sync when ``sync_rng``);
        ``"free"`` lets capable kernels draw only what they consume from
        independently derived substreams — statistically equivalent to
        (but not bit-identical with) the batch discipline, and faster.
        Families without
        :attr:`~repro.core.registry.PolicyCapabilities.supports_free_rng`
        degrade to the batch discipline with one ``UserWarning`` per
        sweep.  Free-rng cells are cacheable but keyed distinctly.
    shards:
        Split the grid into this many row-contiguous shards and run them
        as separate mega-batches through the fault-tolerant process
        orchestrator of :mod:`repro.experiments.parallel` (pool respawn
        on worker death, per-shard retries under ``faults``, per-cell
        cache checkpoints the moment a shard resolves).  Results are a
        pure function of (seeds, shard count): reruns and cache resumes
        at the same shard count are identical, different shard counts
        are statistically equivalent.  ``None``/``1`` keeps the
        single-process path.
    cache:
        ``True`` / directory / :class:`~repro.experiments.cache.SweepCache`
        enables the on-disk cell cache; finished cells are stored and hit
        cells skip simulation entirely.
    validate:
        Per-step deliveries-vs-arrivals assertion (on by default;
        benchmarks disable it).
    backend:
        Kernel backend for the mega-batches
        (:data:`~repro.sim.batch_kernels.KERNEL_BACKENDS`); all backends
        are bit-identical, so the cache key deliberately excludes it.
    dp_state:
        DP-family priority-state maintenance mode
        (:data:`~repro.sim.batch_kernels.DP_STATE_MODES`): ``"dense"``,
        ``"incremental"``, or ``None`` (resolve from the environment and
        the family capability).  Both modes are bit-identical, so —
        like ``backend`` — the cache key deliberately excludes it.
    faults:
        ``None`` (default) keeps fail-fast semantics.  A
        :class:`~repro.experiments.faults.FaultPolicy` retries failures
        with backoff; since a mega-batch shares one simulator, a group
        fails (and retries) as a unit, while fallback cells retry
        individually.  Permanent failures raise
        :class:`~repro.experiments.faults.SweepCellError` (``strict``)
        or yield NaN points plus a
        :class:`~repro.experiments.faults.SweepFailureReport` on the
        result (``best_effort``).  With faults enabled the groups run
        sequentially instead of in draw-sharing lockstep — value-neutral
        (sharing never changes draws), it only forgoes that perf
        optimization.
    topology:
        A :class:`~repro.topology.graph.CellTopology` — or a builder
        called with each value's spec — switches capable policy families
        (``supports_topology``) onto the multi-cell engine: every
        (seed, cell) pair of the topology becomes one engine row, and
        ``shards`` splits the topology's cells across worker processes
        instead of splitting the sweep grid.  Families without the
        capability degrade to the per-cell batch runner with one
        ``UserWarning`` per sweep.
    """
    if num_intervals <= 0:
        raise ValueError(f"num_intervals must be positive, got {num_intervals}")
    if not seeds:
        raise ValueError("need at least one seed")
    rng_mode = normalize_rng_mode(rng, sync_rng)
    _check_dp_state(dp_state)
    if shards is not None and int(shards) < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    seeds = tuple(int(s) for s in seeds)
    store = resolve_cache(cache)
    policies = registry.resolve_policies(policies)

    if topology is not None:
        return _run_sweep_topology(
            parameter_name, values, spec_builder, policies, num_intervals,
            seeds, groups, rng_mode, validate, backend, dp_state, store,
            faults, topology, shards,
        )

    cells: List[_Cell] = []
    for value in values:
        spec = spec_builder(value)
        for label, factory in policies.items():
            cells.append(
                _Cell(
                    value=float(value),
                    label=label,
                    spec=spec,
                    factory=factory,
                    policy=factory(),
                )
            )

    if rng_mode == "free":
        degraded: List[str] = []
        for cell in cells:
            if not _supports_free(cell.policy) and cell.label not in degraded:
                degraded.append(cell.label)
        if degraded:
            warnings.warn(
                "rng='free' is not declared (supports_free_rng) by policy "
                f"families: {', '.join(degraded)}; those cells run under "
                "the default batch draw discipline instead",
                UserWarning,
                stacklevel=2,
            )

    if rng_mode != "sync":
        chan_degraded: List[str] = []
        chan_names: List[str] = []
        for cell in cells:
            ch = cell.spec.channel
            descriptor = registry.descriptor_for(cell.policy)
            fusable = (
                descriptor is not None and descriptor.capabilities.fusable
            )
            if (
                ch.has_state
                and ch.state_uses_rng
                and _effective_rng(cell, rng_mode) != "free"
                # Only warn where free draws would actually fuse the
                # cell; families that fall back for other reasons (no
                # batch kernel, capability gaps) get the generic
                # degradation messages instead.
                and fusable
                and supports_batch_engine(cell.spec, cell.policy, rng="free")
            ):
                if cell.label not in chan_degraded:
                    chan_degraded.append(cell.label)
                if type(ch).__name__ not in chan_names:
                    chan_names.append(type(ch).__name__)
        if chan_degraded:
            warnings.warn(
                f"{'/'.join(chan_names)} state cannot evolve under a "
                "lockstep batch draw discipline; these cells fall back to "
                f"the scalar engine: {', '.join(chan_degraded)}.  Pass "
                "rng='free' to keep them vectorized (statistically "
                "equivalent)",
                UserWarning,
                stacklevel=2,
            )
        arr_degraded: List[str] = []
        arr_names: List[str] = []
        for cell in cells:
            arr = cell.spec.arrivals
            descriptor = registry.descriptor_for(cell.policy)
            fusable = (
                descriptor is not None and descriptor.capabilities.fusable
            )
            if (
                arr.has_state
                and arr.state_uses_rng
                and _effective_rng(cell, rng_mode) != "free"
                # Same scoping as the channel warning: only where free
                # draws would actually fuse the cell.
                and fusable
                and supports_batch_engine(cell.spec, cell.policy, rng="free")
            ):
                if cell.label not in arr_degraded:
                    arr_degraded.append(cell.label)
                if type(arr).__name__ not in arr_names:
                    arr_names.append(type(arr).__name__)
        if arr_degraded:
            warnings.warn(
                f"{'/'.join(arr_names)} state cannot evolve under a "
                "lockstep batch draw discipline; these cells fall back to "
                f"the scalar engine: {', '.join(arr_degraded)}.  Pass "
                "rng='free' to keep them vectorized (statistically "
                "equivalent)",
                UserWarning,
                stacklevel=2,
            )

    # Cache lookups first: hit cells never touch an engine.  Cells whose
    # policy (or spec) has no registered fingerprint simply run uncached
    # — announced once per sweep, never a failure.
    if store is not None:
        uncacheable: List[str] = []
        for cell in cells:
            # Only cells that actually run free draws get the distinct
            # rng key; degraded cells produce default-discipline samples
            # and share the default key.
            eff = _effective_rng(cell, rng_mode)
            cell.key = store.cell_key(
                spec=cell.spec,
                policy=cell.policy,
                seeds=seeds,
                num_intervals=num_intervals,
                groups=groups,
                sync_rng=rng_mode == "sync",
                rng="free" if eff == "free" else None,
            )
            if cell.key is not None:
                cell.point = store.get(cell.key)
                cell.cached = cell.point is not None
            elif cell.label not in uncacheable:
                uncacheable.append(cell.label)
        warn_uncacheable(uncacheable, stacklevel=2)

    failures: List[CellFailure] = []
    fallback: List[_Cell] = []
    if shards is not None and int(shards) > 1 and len(cells) > 1:
        _run_sweep_fused_sharded(
            cells, spec_builder, policies, num_intervals, seeds, groups,
            rng_mode, validate, backend, faults, store, int(shards),
            failures, dp_state=dp_state,
        )
    elif faults is None:
        _simulate_cells(
            cells, seeds, rng_mode, validate, backend, num_intervals,
            groups, FUSED_STREAM_TAG, fallback, dp_state=dp_state,
        )
    else:
        # Faulty groups must be rebuildable in isolation, so each group
        # runs its own build + interval loop (no cross-family lockstep;
        # draw sharing is value-neutral, so results are unchanged).
        fused_groups, fallback = _partition(cells, rng_mode)
        with perf.stage("fused.run"):
            for (_, eff), group_cells in fused_groups.items():
                _run_fused_group_with_faults(
                    group_cells, seeds, eff, validate, backend,
                    num_intervals, groups, faults, failures, fallback,
                    dp_state=dp_state,
                )

    with warnings.catch_warnings():
        # The channel-degradation advisory was already aggregated once
        # above; run_single would repeat it per fallback cell.
        warnings.filterwarnings(
            "ignore",
            message=".*state cannot evolve under a lockstep.*",
            category=UserWarning,
        )
        for cell in fallback:
            if faults is None:
                cell.point = run_single(
                    cell.spec, cell.factory, num_intervals, seeds, groups,
                    engine="batch",
                )
            else:

                def _attempt(attempt, cell=cell):
                    fire_fault_hooks(cell.value, cell.label, attempt)
                    return run_single(
                        cell.spec, cell.factory, num_intervals, seeds,
                        groups, engine="batch",
                    )

                point = call_with_retries(
                    _attempt,
                    value=cell.value,
                    label=cell.label,
                    seeds=seeds,
                    faults=faults,
                    failures=failures,
                )
                if point is None:  # permanent best-effort failure
                    cell.failed = True
                    point = nan_point(cell.label, groups)
                cell.point = point

    if store is not None:
        for cell in cells:
            if cell.key is not None and not cell.cached and not cell.failed:
                store.put(cell.key, cell.point)

    result = SweepResult(parameter_name=parameter_name, values=list(values))
    for cell in cells:
        # dataclasses.replace keeps every other SweepPoint field intact
        # (rebuilding field-by-field would silently drop fields added to
        # SweepPoint later).
        result.points.append(
            replace(cell.point, parameter=cell.value, policy=cell.label)
        )
    if failures:
        result.failures = SweepFailureReport(failures)
    return result
