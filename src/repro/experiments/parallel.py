"""Fault-tolerant parallel sweep execution across processes.

Full-horizon figure sweeps are embarrassingly parallel over (parameter,
policy, seed) cells; this module fans them out with
``concurrent.futures.ProcessPoolExecutor``.  Cell specifications are plain
picklable descriptions (builder + value + policy name), reconstructed in the
workers, so results are bit-identical to the sequential runner for the same
seeds.

The orchestration layer survives the faults a long sweep actually meets:

* a worker **exception** retries the cell up to
  :class:`~repro.experiments.faults.FaultPolicy` ``retries`` times with
  exponential backoff, then fails the cell permanently — ``strict`` mode
  raises a :class:`~repro.experiments.faults.SweepCellError` naming the
  (value, policy) cell and its seed tuple, ``best_effort`` mode fills the
  cell with NaN and records it in the result's
  :class:`~repro.experiments.faults.SweepFailureReport`;
* a worker **death** (segfault, OOM kill, ``os._exit``) breaks the whole
  pool — the orchestrator respawns it and resubmits only the unfinished
  cells, charging an attempt to the futures the broken pool invalidated;
* a worker **hang** is bounded by ``cell_timeout``: the cell counts as
  failed, and the pool is respawned (terminating the hung process) so its
  slot is reclaimed — interrupted innocent cells are resubmitted with
  their attempt refunded;
* every completed cell is **checkpointed** through the content-addressed
  :class:`~repro.experiments.cache.SweepCache` the moment its future
  resolves (pass ``cache=True`` / a directory / a store), so a sweep
  killed at 50% resumes warm — cached cells are never submitted to the
  pool — and finishes bit-identical to an uninterrupted run;
* fatal errors shut the pool down with ``cancel_futures=True`` and
  terminate its workers instead of blocking in ``__exit__`` on cells that
  no longer matter.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core import registry
from ..core.requirements import NetworkSpec
from .cache import SweepCache, resolve_cache, warn_uncacheable
from .configs import PolicyFactory
from .faults import (
    CellFailure,
    FaultPolicy,
    SweepCellError,
    SweepFailureReport,
    fire_fault_hooks,
    nan_point,
)
from .runner import SweepPoint, SweepResult, run_single

__all__ = ["run_sweep_parallel"]

#: Poll interval (seconds) used to observe when a queued future starts
#: running, which is when its ``cell_timeout`` clock starts.
_TIMEOUT_POLL_S = 0.05

#: Seconds to wait for a terminated worker process to exit.
_JOIN_TIMEOUT_S = 5.0


@dataclass(frozen=True)
class _Cell:
    """One (value, policy) cell of the sweep — everything picklable."""

    value: float
    label: str


def _run_cell(
    cell: _Cell,
    spec_builder: Callable[[float], NetworkSpec],
    policies: Dict[str, PolicyFactory],
    num_intervals: int,
    seeds: Sequence[int],
    groups: Optional[Sequence[int]],
    engine: str,
    attempt: int,
) -> Tuple[_Cell, SweepPoint]:
    fire_fault_hooks(cell.value, cell.label, attempt)
    spec = spec_builder(cell.value)
    point = run_single(
        spec, policies[cell.label], num_intervals, seeds, groups, engine
    )
    return cell, point


def _harvest_failures_last(future: Future) -> bool:
    """Sort key ordering successful futures before failed/cancelled ones."""
    if future.cancelled():
        return True
    return future.exception(timeout=0) is not None


@dataclass
class _CellState:
    """Orchestrator-side bookkeeping for one uncached cell."""

    cell: _Cell
    key: Optional[str] = None  # cache key, when the cell is cacheable
    attempts: int = 0  # submissions so far
    not_before: float = 0.0  # monotonic time gating the next submission


class _Orchestrator:
    """Drives one pool generation after another until every cell settles.

    The loop submits eligible cells, waits for completions, harvests
    them (success → outcome + cache checkpoint; failure → retry or
    permanent failure), and respawns the pool whenever it breaks or a
    running cell exceeds its timeout.

    The work unit is pluggable: subclasses may override :attr:`task_fn`
    (a picklable module-level callable invoked as
    ``task_fn(state.cell, *submit_args, attempts)``) together with
    :meth:`_record_success` / :meth:`_record_permanent_failure` to
    orchestrate coarser units than one cell — the fused sweep runner
    dispatches whole row-contiguous *shards* this way and inherits the
    retry/backoff/respawn/checkpoint machinery unchanged.
    """

    #: The picklable work function submitted to the pool.
    task_fn = staticmethod(_run_cell)

    def __init__(
        self,
        states: List[_CellState],
        *,
        faults: FaultPolicy,
        store: Optional[SweepCache],
        max_workers: Optional[int],
        submit_args: Tuple,
        seeds: Tuple[int, ...],
        groups: Optional[Tuple[int, ...]],
        outcomes: Dict[Tuple[float, str], SweepPoint],
        failures: List[CellFailure],
    ):
        self.queue: List[_CellState] = list(states)
        self.faults = faults
        self.store = store
        self.max_workers = max_workers
        self.submit_args = submit_args
        self.seeds = seeds
        self.groups = groups
        self.outcomes = outcomes
        self.failures = failures
        self.inflight: Dict[Future, _CellState] = {}
        #: first time each inflight future was observed running (None =
        #: still queued inside the pool); the timeout clock starts here.
        self.started: Dict[Future, Optional[float]] = {}

    # -- main loop -----------------------------------------------------
    def run(self) -> None:
        pool = self._new_pool()
        try:
            while self.queue or self.inflight:
                try:
                    self._submit_ready(pool)
                    respawn = self._poll()
                except BrokenProcessPool:
                    # submit() on a broken pool; inflight futures carry
                    # the same exception and are harvested on respawn.
                    respawn = True
                if respawn:
                    pool = self._respawn(pool)
        except BaseException:
            self._shutdown(pool)
            raise
        pool.shutdown(wait=True)

    # -- pool lifecycle ------------------------------------------------
    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.max_workers)

    def _shutdown(self, pool: ProcessPoolExecutor) -> None:
        """Abandon a pool without blocking on cells we no longer want.

        ``cancel_futures=True`` drops every queued work item;
        terminating the worker processes reclaims hung or mid-cell
        workers (a plain ``shutdown(wait=True)`` would block on them
        forever).
        """
        try:
            procs = list((pool._processes or {}).values())
        except AttributeError:  # pragma: no cover - implementation detail
            procs = []
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=_JOIN_TIMEOUT_S)

    def _respawn(self, pool: ProcessPoolExecutor) -> ProcessPoolExecutor:
        """Replace a broken or hung pool; keep finished work, requeue the rest.

        Futures that already resolved are harvested normally (results
        are kept; a BrokenProcessPool exception charges the cell an
        attempt — the culprit cannot be told apart from its pool-mates,
        so each burns one of its bounded retries).  Futures still
        pending are interrupted through no fault of their own: they are
        requeued with the attempt refunded.
        """
        done = [f for f in self.inflight if f.done()]
        for future, state in [
            (f, self.inflight[f]) for f in self.inflight if not f.done()
        ]:
            self.inflight.pop(future)
            self.started.pop(future, None)
            future.cancel()
            state.attempts = max(0, state.attempts - 1)
            state.not_before = 0.0
            self.queue.append(state)
        # Successes first, as in _poll: checkpoint finished work before a
        # strict failure can abort the sweep.
        for future in sorted(done, key=_harvest_failures_last):
            self._harvest(future)
        self._shutdown(pool)
        return self._new_pool()

    # -- submission ----------------------------------------------------
    def _submit_ready(self, pool: ProcessPoolExecutor) -> None:
        now = time.monotonic()
        for state in [s for s in self.queue if s.not_before <= now]:
            future = pool.submit(
                self.task_fn, state.cell, *self.submit_args, state.attempts
            )
            self.queue.remove(state)
            state.attempts += 1
            self.inflight[future] = state
            self.started[future] = None

    # -- waiting -------------------------------------------------------
    def _poll(self) -> bool:
        """Wait for progress; harvest completions; expire timeouts.

        Returns True when the pool must be respawned (a running cell
        timed out and its worker has to be reclaimed).
        """
        if not self.inflight:
            # Every remaining cell is backing off; sleep to its retry time.
            delay = min(s.not_before for s in self.queue) - time.monotonic()
            if delay > 0:
                time.sleep(min(delay, 1.0))
            return False
        done, _ = wait(
            set(self.inflight),
            timeout=self._wait_timeout(),
            return_when=FIRST_COMPLETED,
        )
        # Successes first: every completed cell is checkpointed before a
        # strict failure in the same batch aborts the sweep, so a resume
        # restarts from all finished work.
        for future in sorted(done, key=_harvest_failures_last):
            self._harvest(future)
        return self._expire_timeouts()

    def _wait_timeout(self) -> Optional[float]:
        """How long ``wait`` may block before bookkeeping must run."""
        now = time.monotonic()
        candidates: List[float] = []
        cell_timeout = self.faults.cell_timeout
        if cell_timeout is not None:
            for future in self.inflight:
                started = self.started.get(future)
                if started is None:
                    # Not yet observed running; poll to start its clock.
                    candidates.append(_TIMEOUT_POLL_S)
                else:
                    candidates.append(max(0.0, started + cell_timeout - now))
        if self.queue:
            next_retry = min(s.not_before for s in self.queue)
            candidates.append(max(0.0, next_retry - now))
        return min(candidates) if candidates else None

    def _expire_timeouts(self) -> bool:
        cell_timeout = self.faults.cell_timeout
        if cell_timeout is None:
            return False
        now = time.monotonic()
        for future in self.inflight:
            if self.started.get(future) is None and future.running():
                self.started[future] = now
        expired = [
            future
            for future in self.inflight
            if (started := self.started.get(future)) is not None
            and now - started >= cell_timeout
        ]
        for future in expired:
            state = self.inflight.pop(future)
            self.started.pop(future, None)
            future.cancel()  # no-op for a running future; the respawn reclaims it
            self._record_failure(
                state,
                TimeoutError(
                    f"cell exceeded cell_timeout={cell_timeout}s "
                    f"(attempt {state.attempts})"
                ),
            )
        return bool(expired)

    # -- outcome recording ---------------------------------------------
    def _harvest(self, future: Future) -> None:
        state = self.inflight.pop(future, None)
        self.started.pop(future, None)
        if state is None:
            return
        try:
            _, point = future.result(timeout=0)
        except Exception as exc:  # worker exception or BrokenProcessPool
            self._record_failure(state, exc)
        else:
            self._record_success(state, point)

    def _record_success(self, state: _CellState, point: SweepPoint) -> None:
        self.outcomes[(state.cell.value, state.cell.label)] = point
        if self.store is not None and state.key is not None:
            # Checkpoint immediately: a sweep killed right now resumes
            # from every cell recorded up to this moment.
            self.store.put(state.key, point)

    def _record_failure(self, state: _CellState, exc: BaseException) -> None:
        if state.attempts <= self.faults.retries:
            state.not_before = time.monotonic() + self.faults.backoff(
                state.attempts
            )
            self.queue.append(state)
            return
        self._record_permanent_failure(state, exc)

    def _record_permanent_failure(
        self, state: _CellState, exc: BaseException
    ) -> None:
        cell = state.cell
        if not self.faults.best_effort:
            raise SweepCellError(
                cell.value, cell.label, self.seeds, state.attempts, exc
            ) from exc
        self.failures.append(
            CellFailure(
                value=cell.value,
                policy=cell.label,
                seeds=self.seeds,
                attempts=state.attempts,
                error_type=type(exc).__name__,
                message=str(exc),
            )
        )
        self.outcomes[(cell.value, cell.label)] = nan_point(
            cell.label, self.groups
        )


def run_sweep_parallel(
    parameter_name: str,
    values: Sequence[float],
    spec_builder: Callable[[float], NetworkSpec],
    policies: Union[Dict[str, PolicyFactory], Sequence[str]],
    num_intervals: int,
    seeds: Sequence[int] = (0,),
    groups: Optional[Sequence[int]] = None,
    max_workers: Optional[int] = None,
    engine: str = "scalar",
    cache: Union[None, bool, str, SweepCache] = None,
    faults: Optional[FaultPolicy] = None,
) -> SweepResult:
    """Parallel drop-in for :func:`repro.experiments.runner.run_sweep`.

    ``spec_builder`` and the policy factories must be picklable (module-level
    functions / classes — every builder in :mod:`repro.experiments.configs`
    qualifies).  A sequence of registered policy names also works: the
    registry resolves each name to its (picklable) policy class.  Results
    are ordered exactly like the sequential runner's.
    ``engine="batch"`` composes with process parallelism: each worker then
    runs its cell's whole seed stack vectorized.  ``engine="fused"`` is
    accepted but equivalent to ``"batch"`` here — each worker owns a
    single cell, so there is no grid left to fuse inside it; use the
    sequential :func:`~repro.experiments.grid.run_sweep_fused` when you
    want whole-sweep fusion instead of process fan-out.

    cache:
        ``True`` / directory / :class:`~repro.experiments.cache.SweepCache`
        enables per-cell checkpointing: warm cells are served from disk
        without ever being submitted to the pool, and each completed cell
        is stored the moment its future resolves, so an interrupted sweep
        resumes from everything already finished (same keys as the
        sequential runners — scalar/batch cells are deterministic per
        cell, making a resumed sweep bit-identical to an uninterrupted
        one).
    faults:
        A :class:`~repro.experiments.faults.FaultPolicy`; the default
        retries each failing cell twice with exponential backoff and
        raises :class:`~repro.experiments.faults.SweepCellError` (naming
        the cell, its seeds, and the attempt count) on permanent
        failure.  ``mode="best_effort"`` instead fills permanently
        failed cells with NaN points and attaches a
        :class:`~repro.experiments.faults.SweepFailureReport` to the
        result.  ``cell_timeout`` bounds each cell's wall-clock run.
    """
    if num_intervals <= 0:
        raise ValueError(f"num_intervals must be positive, got {num_intervals}")
    if not seeds:
        raise ValueError("need at least one seed")
    if engine == "fused":
        warnings.warn(
            "run_sweep_parallel(engine='fused') degrades to per-cell "
            "engine='batch': each worker owns a single cell, so there is "
            "no grid to fuse; use repro.experiments.grid.run_sweep_fused "
            "for whole-sweep fusion",
            UserWarning,
            stacklevel=2,
        )
    faults = faults or FaultPolicy()
    policies = registry.resolve_policies(policies)
    seeds_t = tuple(int(s) for s in seeds)
    groups_t = tuple(groups) if groups is not None else None
    store = resolve_cache(cache)
    # run_single treats "fused" as "batch" (one cell has no grid to
    # fuse), so both share the per-cell "batch" cache namespace.
    key_engine = "batch" if engine == "fused" else engine

    outcomes: Dict[Tuple[float, str], SweepPoint] = {}
    failures: List[CellFailure] = []
    states: List[_CellState] = []
    uncacheable: List[str] = []
    for value in values:
        for label in policies:
            cell = _Cell(value=float(value), label=label)
            key = None
            if store is not None:
                key = store.cell_key(
                    spec=spec_builder(cell.value),
                    policy=policies[label](),
                    seeds=seeds_t,
                    num_intervals=num_intervals,
                    groups=groups_t,
                    sync_rng=False,
                    engine=key_engine,
                )
                if key is None:
                    if label not in uncacheable:
                        uncacheable.append(label)
                else:
                    point = store.get(key)
                    if point is not None:
                        # Warm cell: never submitted to the pool.
                        outcomes[(cell.value, cell.label)] = point
                        continue
            states.append(_CellState(cell=cell, key=key))
    warn_uncacheable(uncacheable)

    if states:
        _Orchestrator(
            states,
            faults=faults,
            store=store,
            max_workers=max_workers,
            submit_args=(
                spec_builder,
                policies,
                num_intervals,
                seeds_t,
                groups_t,
                engine,
            ),
            seeds=seeds_t,
            groups=groups_t,
            outcomes=outcomes,
            failures=failures,
        ).run()

    result = SweepResult(parameter_name=parameter_name, values=list(values))
    for value in values:
        for label in policies:
            point = outcomes[(float(value), label)]
            # dataclasses.replace keeps every other field of the worker's
            # point intact; rebuilding field-by-field here silently
            # dropped any field added to SweepPoint later.
            result.points.append(
                replace(point, parameter=float(value), policy=label)
            )
    if failures:
        result.failures = SweepFailureReport(failures)
    return result
