"""Parallel sweep execution across processes.

Full-horizon figure sweeps are embarrassingly parallel over (parameter,
policy, seed) cells; this module fans them out with
``concurrent.futures.ProcessPoolExecutor``.  Cell specifications are plain
picklable descriptions (builder + value + policy name), reconstructed in the
workers, so results are bit-identical to the sequential runner for the same
seeds.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core import registry
from ..core.requirements import NetworkSpec
from .configs import PolicyFactory
from .runner import SweepPoint, SweepResult, run_single

__all__ = ["run_sweep_parallel"]


@dataclass(frozen=True)
class _Cell:
    """One (value, policy) cell of the sweep — everything picklable."""

    value: float
    label: str


def _run_cell(
    cell: _Cell,
    spec_builder: Callable[[float], NetworkSpec],
    policies: Dict[str, PolicyFactory],
    num_intervals: int,
    seeds: Sequence[int],
    groups: Optional[Sequence[int]],
    engine: str,
) -> Tuple[_Cell, SweepPoint]:
    spec = spec_builder(cell.value)
    point = run_single(
        spec, policies[cell.label], num_intervals, seeds, groups, engine
    )
    return cell, point


def run_sweep_parallel(
    parameter_name: str,
    values: Sequence[float],
    spec_builder: Callable[[float], NetworkSpec],
    policies: Union[Dict[str, PolicyFactory], Sequence[str]],
    num_intervals: int,
    seeds: Sequence[int] = (0,),
    groups: Optional[Sequence[int]] = None,
    max_workers: Optional[int] = None,
    engine: str = "scalar",
) -> SweepResult:
    """Parallel drop-in for :func:`repro.experiments.runner.run_sweep`.

    ``spec_builder`` and the policy factories must be picklable (module-level
    functions / classes — every builder in :mod:`repro.experiments.configs`
    qualifies).  A sequence of registered policy names also works: the
    registry resolves each name to its (picklable) policy class.  Results
    are ordered exactly like the sequential runner's.
    ``engine="batch"`` composes with process parallelism: each worker then
    runs its cell's whole seed stack vectorized.  ``engine="fused"`` is
    accepted but equivalent to ``"batch"`` here — each worker owns a
    single cell, so there is no grid left to fuse inside it; use the
    sequential :func:`~repro.experiments.grid.run_sweep_fused` when you
    want whole-sweep fusion instead of process fan-out.
    """
    if num_intervals <= 0:
        raise ValueError(f"num_intervals must be positive, got {num_intervals}")
    if not seeds:
        raise ValueError("need at least one seed")
    if engine == "fused":
        warnings.warn(
            "run_sweep_parallel(engine='fused') degrades to per-cell "
            "engine='batch': each worker owns a single cell, so there is "
            "no grid to fuse; use repro.experiments.grid.run_sweep_fused "
            "for whole-sweep fusion",
            UserWarning,
            stacklevel=2,
        )
    policies = registry.resolve_policies(policies)
    cells = [
        _Cell(value=float(value), label=label)
        for value in values
        for label in policies
    ]
    outcomes: Dict[Tuple[float, str], SweepPoint] = {}
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [
            pool.submit(
                _run_cell,
                cell,
                spec_builder,
                policies,
                num_intervals,
                tuple(seeds),
                tuple(groups) if groups is not None else None,
                engine,
            )
            for cell in cells
        ]
        # Consume in completion order: a slow cell (high load, many swaps)
        # no longer serializes collection of everything submitted after it,
        # and a failing cell raises as soon as it fails instead of after
        # all earlier futures drain.  Output ordering is unaffected — the
        # result list below is rebuilt in (value, policy) order.
        for future in as_completed(futures):
            cell, point = future.result()
            outcomes[(cell.value, cell.label)] = point

    result = SweepResult(parameter_name=parameter_name, values=list(values))
    for value in values:
        for label in policies:
            point = outcomes[(float(value), label)]
            # dataclasses.replace keeps every other field of the worker's
            # point intact; rebuilding field-by-field here silently
            # dropped any field added to SweepPoint later.
            result.points.append(
                replace(point, parameter=float(value), policy=label)
            )
    return result
