"""Render figure results as aligned text tables / CSV.

The paper's figures are line plots; the reproduction prints the same series
as tables (one row per x value, one column per curve) so results are
diffable and greppable in CI logs.
"""

from __future__ import annotations

import io
from typing import Sequence

from .figures import FigureResult

__all__ = ["format_figure", "figure_to_csv"]


def format_figure(result: FigureResult, precision: int = 4) -> str:
    """Aligned text table for one figure."""
    labels = list(result.series)
    header = [result.x_label] + labels
    rows = []
    for i, x in enumerate(result.x_values):
        row = [f"{x:g}"]
        for label in labels:
            row.append(f"{result.series[label][i]:.{precision}f}")
        rows.append(row)

    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
        for c in range(len(header))
    ]
    out = io.StringIO()
    out.write(f"== {result.figure_id}: {result.title} ==\n")
    if result.notes:
        out.write(f"   {result.notes}\n")
    out.write(f"   y: {result.y_label}\n")
    out.write(
        "  ".join(h.rjust(w) for h, w in zip(header, widths)) + "\n"
    )
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in rows:
        out.write("  ".join(v.rjust(w) for v, w in zip(row, widths)) + "\n")
    return out.getvalue()


def figure_to_csv(result: FigureResult) -> str:
    """Comma-separated dump (header row then data rows)."""
    labels = list(result.series)
    lines = [",".join([result.x_label] + labels)]
    for i, x in enumerate(result.x_values):
        values = [f"{result.series[label][i]!r}" for label in labels]
        lines.append(",".join([repr(float(x))] + values))
    return "\n".join(lines) + "\n"
