"""Sweep runner: evaluate policies across a parameter grid with seeds.

Every figure in the paper is a sweep of one scenario parameter (arrival
rate or delivery ratio) against total timely-throughput deficiency for 2-3
algorithms.  :func:`run_sweep` is the shared engine; figure modules supply
the spec builder and grid.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core import registry
from ..core.requirements import NetworkSpec
from ..sim.batch_sim import run_simulation_batch, supports_batch_engine
from ..sim.interval_sim import run_simulation
from .configs import PolicyFactory
from .faults import (
    CellFailure,
    FaultPolicy,
    SweepFailureReport,
    call_with_retries,
    fire_fault_hooks,
    nan_point,
)

__all__ = ["SweepPoint", "SweepResult", "run_sweep", "run_single"]

#: Valid values for the runner's ``engine`` argument.
_ENGINES = ("scalar", "batch", "fused")


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated measurements for one (parameter value, policy) cell."""

    parameter: float
    policy: str
    total_deficiency: float  # mean across seeds
    deficiency_std: float
    group_deficiency: Optional[Tuple[float, ...]] = None
    collisions: float = 0.0
    mean_overhead_us: float = 0.0


@dataclass
class SweepResult:
    """All cells of one sweep, indexed for reporting.

    ``failures`` is ``None`` for a fully successful sweep; a best-effort
    run that permanently lost cells attaches the structured
    :class:`~repro.experiments.faults.SweepFailureReport` naming them
    (the corresponding points hold NaN measurements).
    """

    parameter_name: str
    values: List[float] = field(default_factory=list)
    points: List[SweepPoint] = field(default_factory=list)
    failures: Optional[SweepFailureReport] = None

    def _lookup(self, by_value: Dict[float, float], policy: str) -> List[float]:
        missing = [v for v in self.values if v not in by_value]
        if missing:
            known = sorted({p.policy for p in self.points})
            raise KeyError(
                f"sweep of {self.parameter_name!r} has no point for policy "
                f"{policy!r} at value(s) {missing} (policies present: "
                f"{known})"
            )
        return [by_value[v] for v in self.values]

    def series(self, policy: str) -> List[float]:
        """Deficiency series (aligned with ``values``) for one policy.

        Raises a ``KeyError`` naming the policy and the missing parameter
        value(s) if any (value, policy) cell is absent.
        """
        by_value = {
            p.parameter: p.total_deficiency
            for p in self.points
            if p.policy == policy
        }
        return self._lookup(by_value, policy)

    def group_series(self, policy: str, group: int) -> List[float]:
        """Per-group deficiency series; ``KeyError`` semantics as
        :meth:`series` (a point without group data counts as missing)."""
        by_value = {}
        for p in self.points:
            if p.policy == policy and p.group_deficiency is not None:
                by_value[p.parameter] = p.group_deficiency[group]
        return self._lookup(by_value, policy)

    @property
    def policies(self) -> List[str]:
        seen: List[str] = []
        for p in self.points:
            if p.policy not in seen:
                seen.append(p.policy)
        return seen


def _policy_supports_free(policy: object) -> bool:
    """Whether ``policy``'s registered family declares ``supports_free_rng``."""
    descriptor = registry.descriptor_for(policy)
    return (
        descriptor is not None and descriptor.capabilities.supports_free_rng
    )


def _policy_supports_incremental(policy: object) -> bool:
    """Whether the family declares ``supports_incremental_dp``."""
    descriptor = registry.descriptor_for(policy)
    return (
        descriptor is not None
        and descriptor.capabilities.supports_incremental_dp
    )


def _policy_supports_topology(policy: object) -> bool:
    """Whether the family declares ``supports_topology``."""
    descriptor = registry.descriptor_for(policy)
    return (
        descriptor is not None and descriptor.capabilities.supports_topology
    )


def _resolve_topology(topology, spec: NetworkSpec):
    """A concrete :class:`~repro.topology.graph.CellTopology` for ``spec``.

    ``topology`` may be a ready topology or a builder called with the
    spec (sweeps change the spec per value; a builder like
    ``lambda spec: grid_cells(spec.num_links, 4)`` adapts to each one).
    """
    from ..topology import CellTopology

    if topology is None:
        return None
    if not isinstance(topology, CellTopology):
        topology = topology(spec)
    if topology.num_links != spec.num_links:
        raise ValueError(
            f"topology covers {topology.num_links} links but the spec has "
            f"{spec.num_links}"
        )
    return topology


def _warn_topology_degrade(labels: Sequence[str], stacklevel: int = 3) -> None:
    warnings.warn(
        "topology= is ignored for policy families without the "
        f"supports_topology capability: {', '.join(labels)}; those cells "
        "run single-domain exactly as they would without a topology",
        UserWarning,
        stacklevel=stacklevel,
    )


def _warn_channel_degrade(
    spec: NetworkSpec, labels: Sequence[str], stacklevel: int = 3
) -> None:
    warnings.warn(
        f"{type(spec.channel).__name__} state cannot evolve under a "
        "lockstep batch draw discipline; these cells fall back to the "
        f"scalar engine: {', '.join(labels)}.  Pass rng='free' to keep "
        "them vectorized (statistically equivalent)",
        UserWarning,
        stacklevel=stacklevel,
    )


def _warn_arrival_degrade(
    spec: NetworkSpec, labels: Sequence[str], stacklevel: int = 3
) -> None:
    warnings.warn(
        f"{type(spec.arrivals).__name__} state cannot evolve under a "
        "lockstep batch draw discipline; these cells fall back to the "
        f"scalar engine: {', '.join(labels)}.  Pass rng='free' to keep "
        "them vectorized (statistically equivalent)",
        UserWarning,
        stacklevel=stacklevel,
    )


def _run_single_topology(
    spec: NetworkSpec,
    policy,
    num_intervals: int,
    seeds: Sequence[int],
    groups: Optional[Sequence[int]],
    topology,
    backend: Optional[str] = None,
    rng: Optional[str] = None,
    dp_state: Optional[str] = None,
    validate: bool = True,
    shards: Optional[int] = None,
) -> SweepPoint:
    """One (spec, policy) cell on the multi-cell topology engine."""
    from ..topology import run_topology_batch

    result = run_topology_batch(
        spec,
        policy,
        seeds,
        topology,
        num_intervals,
        rng=rng,
        backend=backend,
        dp_state=dp_state,
        validate=validate,
        shards=shards,
    )
    totals = result.total_deficiency()  # (S,)
    group_mean = None
    if groups is not None:
        gid = np.asarray(groups, dtype=int)
        short = np.maximum(
            np.asarray(spec.requirement_vector)[None, :]
            - result.mean_deliveries(),
            0.0,
        )  # (S, N)
        per_group = np.stack(
            [
                short[:, gid == g].sum(axis=1)
                for g in range(int(gid.max()) + 1)
            ],
            axis=1,
        )
        group_mean = tuple(float(x) for x in per_group.mean(axis=0))
    return SweepPoint(
        parameter=float("nan"),  # filled by run_sweep
        policy=registry.policy_label(policy),
        total_deficiency=float(totals.mean()),
        deficiency_std=float(totals.std()),
        group_deficiency=group_mean,
        collisions=float(result.collision_sums.astype(float).mean()),
        mean_overhead_us=float(result.mean_overhead_us().mean()),
    )


def _check_dp_state(dp_state: Optional[str]) -> None:
    """Reject unknown ``dp_state`` strings before any per-family degrade.

    Non-DP families run with the request nulled out, which would
    otherwise let a typo pass silently.
    """
    from ..sim.batch_kernels import DP_STATE_MODES

    if dp_state is not None and dp_state not in DP_STATE_MODES:
        raise ValueError(
            f"unknown dp_state {dp_state!r}; expected one of "
            f"{DP_STATE_MODES} or None"
        )


def _run_single_batch(
    spec: NetworkSpec,
    policy,
    num_intervals: int,
    seeds: Sequence[int],
    groups: Optional[Sequence[int]],
    backend: Optional[str] = None,
    rng: Optional[str] = None,
    dp_state: Optional[str] = None,
) -> SweepPoint:
    """One (spec, policy) cell on the batch engine: all seeds in one run."""
    batch = run_simulation_batch(
        spec, policy, num_intervals, seeds, backend=backend, rng=rng,
        dp_state=dp_state,
    )
    totals = batch.total_deficiency()  # (S,)
    collisions = batch.collisions.sum(axis=0).astype(float)  # (S,)
    overheads = (
        batch.overhead_time_us.mean(axis=0)
        if num_intervals
        else np.zeros(len(seeds))
    )
    group_mean = None
    if groups is not None:
        from ..analysis.metrics import group_deficiency

        deliveries = batch.deliveries  # (K, S, N)
        per_seed = [
            group_deficiency(
                deliveries[:, s], spec.requirement_vector, groups
            )
            for s in range(batch.num_seeds)
        ]
        group_mean = tuple(float(x) for x in np.mean(per_seed, axis=0))
    return SweepPoint(
        parameter=float("nan"),  # filled by run_sweep
        policy=registry.policy_label(policy),
        total_deficiency=float(totals.mean()),
        deficiency_std=float(totals.std()),
        group_deficiency=group_mean,
        collisions=float(collisions.mean()),
        mean_overhead_us=float(np.mean(overheads)),
    )


def run_single(
    spec: NetworkSpec,
    factory: PolicyFactory,
    num_intervals: int,
    seeds: Sequence[int],
    groups: Optional[Sequence[int]] = None,
    engine: str = "scalar",
    backend: Optional[str] = None,
    rng: Optional[str] = None,
    dp_state: Optional[str] = None,
    topology=None,
) -> SweepPoint:
    """Average one policy's deficiency on one spec across seeds.

    ``engine="batch"`` simulates all seeds simultaneously on the
    vectorized engine when the (spec, policy) pair supports it, and falls
    back to the scalar engine per policy otherwise (e.g. FCSMA/DCF, which
    have no batch kernels) — same statistics either way, only the random
    draw order differs.  ``engine="fused"`` is accepted for symmetry with
    :func:`run_sweep` but behaves as ``"batch"`` here: with a single cell
    there is no grid to fuse.  ``backend`` selects the batch kernel
    backend (ignored by the scalar engine); all backends are
    bit-identical.  ``rng`` selects the batch draw discipline
    (:data:`~repro.sim.rng.RNG_MODES`); ``"free"`` degrades to the
    default batch discipline for families without ``supports_free_rng``,
    and is rejected on the scalar engine.  ``dp_state`` selects the
    DP-family priority-state maintenance mode
    (:data:`~repro.sim.batch_kernels.DP_STATE_MODES`; batch/fused
    engines only, bit-identical either way).  ``topology`` — a
    :class:`~repro.topology.graph.CellTopology` or a builder called with
    the spec — runs capable families (``supports_topology``) through the
    multi-cell engine (:func:`~repro.topology.engine.run_topology_batch`);
    non-capable families degrade to the single-domain path with one
    ``UserWarning``.
    """
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
    _check_dp_state(dp_state)
    if rng is not None and engine == "scalar":
        raise ValueError(
            f"rng={rng!r} requires engine='batch' or 'fused'; the scalar "
            "engine has a single per-seed draw discipline"
        )
    if topology is not None and engine == "scalar":
        raise ValueError(
            "topology= requires engine='batch' or 'fused'; the scalar "
            "engine is single-domain only"
        )
    if engine in ("batch", "fused"):
        policy = factory()
        eff = rng
        if rng == "free" and not _policy_supports_free(policy):
            eff = None  # degrade to the default batch discipline
        eff_dp = dp_state
        if dp_state is not None and not _policy_supports_incremental(policy):
            # A sweep-level dp_state request addresses the DP family;
            # other families run exactly as with dp_state=None (direct
            # run_simulation_batch calls stay strict).
            eff_dp = None
        if topology is not None:
            if _policy_supports_topology(policy):
                return _run_single_topology(
                    spec, policy, num_intervals, seeds, groups,
                    _resolve_topology(topology, spec),
                    backend=backend, rng=eff, dp_state=eff_dp,
                )
            _warn_topology_degrade([registry.policy_label(policy)])
        if supports_batch_engine(spec, policy, rng=eff):
            return _run_single_batch(
                spec, policy, num_intervals, seeds, groups, backend, eff,
                eff_dp,
            )
        if eff != "free" and supports_batch_engine(spec, policy, rng="free"):
            # The only blocker was the lockstep discipline: say so once
            # instead of silently crawling through the scalar engine.
            if spec.channel.has_state and spec.channel.state_uses_rng:
                _warn_channel_degrade(spec, [registry.policy_label(policy)])
            elif spec.arrivals.has_state and spec.arrivals.state_uses_rng:
                _warn_arrival_degrade(spec, [registry.policy_label(policy)])
    totals: List[float] = []
    group_totals: List[np.ndarray] = []
    collisions: List[float] = []
    overheads: List[float] = []
    name = ""
    for seed in seeds:
        policy = factory()
        # Registry-backed label: the descriptor's (unique) registered name
        # when the instance is exactly a registered class, the instance's
        # own ``name`` for subclass variants (e.g. "DB-DP(est)").
        name = registry.policy_label(policy)
        result = run_simulation(spec, policy, num_intervals, seed=seed)
        totals.append(result.total_deficiency())
        summary = result.summary()
        collisions.append(float(summary.total_collisions))
        overheads.append(summary.mean_overhead_us)
        if groups is not None:
            from ..analysis.metrics import group_deficiency

            group_totals.append(
                group_deficiency(
                    result.deliveries, spec.requirement_vector, groups
                )
            )
    group_mean = (
        tuple(float(x) for x in np.mean(group_totals, axis=0))
        if group_totals
        else None
    )
    return SweepPoint(
        parameter=float("nan"),  # filled by run_sweep
        policy=name,
        total_deficiency=float(np.mean(totals)),
        deficiency_std=float(np.std(totals)),
        group_deficiency=group_mean,
        collisions=float(np.mean(collisions)),
        mean_overhead_us=float(np.mean(overheads)),
    )


def run_sweep(
    parameter_name: str,
    values: Sequence[float],
    spec_builder: Callable[[float], NetworkSpec],
    policies: Union[Dict[str, PolicyFactory], Sequence[str]],
    num_intervals: int,
    seeds: Sequence[int] = (0,),
    groups: Optional[Sequence[int]] = None,
    engine: str = "scalar",
    backend: Optional[str] = None,
    cache=None,
    faults: Optional[FaultPolicy] = None,
    rng: Optional[str] = None,
    shards: Optional[int] = None,
    dp_state: Optional[str] = None,
    topology=None,
) -> SweepResult:
    """Run every (value, policy) cell and aggregate across seeds.

    ``policies`` maps labels to zero-argument factories, or is a sequence
    of registered policy names (``repro.core.registry.available()``) which
    the registry resolves to default-config factories.

    See :func:`run_single` for ``engine`` semantics; ``engine="fused"``
    delegates the whole grid to
    :func:`~repro.experiments.grid.run_sweep_fused`, which batches every
    fusable (value, seed) cell of a policy family into one engine pass.
    ``rng`` selects the batch draw discipline
    (:data:`~repro.sim.rng.RNG_MODES`; batch/fused engines only) and
    ``shards`` splits a fused sweep across worker processes — see
    :func:`~repro.experiments.grid.run_sweep_fused` for both.
    ``topology`` — a :class:`~repro.topology.graph.CellTopology` or a
    builder called with each value's spec — runs capable policy families
    (``supports_topology``) through the multi-cell engine; families
    without the capability degrade to their single-domain path with one
    ``UserWarning`` per sweep, and their cells are cached under the same
    key as a topology-free sweep (they compute the identical point).

    cache:
        ``True`` / directory / :class:`~repro.experiments.cache.SweepCache`
        checkpoints each finished cell on disk and serves warm cells
        without simulating, so an interrupted sweep resumes from
        everything already computed (scalar/batch cells are
        deterministic per cell, making the resumed result bit-identical
        to an uninterrupted run).
    faults:
        ``None`` (default) keeps the historical fail-fast behaviour: a
        cell's exception propagates unwrapped.  A
        :class:`~repro.experiments.faults.FaultPolicy` retries failing
        cells with backoff; permanent failures raise
        :class:`~repro.experiments.faults.SweepCellError` naming the
        (value, policy) cell (``strict``) or yield NaN points plus a
        :class:`~repro.experiments.faults.SweepFailureReport` on the
        result (``best_effort``).  ``cell_timeout`` is only enforceable
        by :func:`~repro.experiments.parallel.run_sweep_parallel`.
    """
    if num_intervals <= 0:
        raise ValueError(f"num_intervals must be positive, got {num_intervals}")
    if not seeds:
        raise ValueError("need at least one seed")
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
    if shards is not None and engine != "fused":
        raise ValueError(
            f"shards={shards!r} requires engine='fused'; the per-cell "
            "engines parallelize with run_sweep_parallel instead"
        )
    if engine == "fused":
        from .grid import run_sweep_fused

        return run_sweep_fused(
            parameter_name,
            values,
            spec_builder,
            policies,
            num_intervals,
            seeds,
            groups,
            backend=backend,
            dp_state=dp_state,
            cache=cache,
            faults=faults,
            rng=rng,
            shards=shards,
            topology=topology,
        )
    if rng is not None and engine == "scalar":
        raise ValueError(
            f"rng={rng!r} requires engine='batch' or 'fused'; the scalar "
            "engine has a single per-seed draw discipline"
        )
    if topology is not None and engine == "scalar":
        raise ValueError(
            "topology= requires engine='batch' or 'fused'; the scalar "
            "engine is single-domain only"
        )
    # Local import: cache.py imports SweepPoint from this module.
    from .cache import resolve_cache, warn_uncacheable

    policies = registry.resolve_policies(policies)
    store = resolve_cache(cache)
    seeds_t = tuple(int(s) for s in seeds)
    groups_t = tuple(groups) if groups is not None else None
    degraded_topo: List[str] = []
    if topology is not None:
        degraded_topo = [
            label
            for label, factory in policies.items()
            if not _policy_supports_topology(factory())
        ]
        if degraded_topo:
            _warn_topology_degrade(degraded_topo, stacklevel=2)
    failures: List[CellFailure] = []
    uncacheable: List[str] = []
    result = SweepResult(parameter_name=parameter_name, values=list(values))
    for value in values:
        spec = spec_builder(value)
        topo = _resolve_topology(topology, spec)
        for label, factory in policies.items():
            cell_topo = topo if label not in degraded_topo else None
            key = None
            point = None
            if store is not None:
                # Free-draw cells are keyed distinctly — but only the
                # cells that actually run free draws; degraded families
                # produce default-discipline samples under the default
                # key.
                key_rng = (
                    "free"
                    if rng == "free" and _policy_supports_free(factory())
                    else None
                )
                key = store.cell_key(
                    spec=spec,
                    policy=factory(),
                    seeds=seeds_t,
                    num_intervals=num_intervals,
                    groups=groups_t,
                    sync_rng=rng == "sync",
                    engine=engine,
                    rng=key_rng,
                    topology=cell_topo,
                )
                if key is None:
                    if label not in uncacheable:
                        uncacheable.append(label)
                else:
                    point = store.get(key)
            if point is None:
                if faults is None:
                    point = run_single(
                        spec, factory, num_intervals, seeds, groups, engine,
                        backend, rng, dp_state, topology=cell_topo,
                    )
                else:

                    def _attempt(attempt, spec=spec, factory=factory,
                                 value=value, label=label,
                                 cell_topo=cell_topo):
                        fire_fault_hooks(float(value), label, attempt)
                        return run_single(
                            spec, factory, num_intervals, seeds, groups,
                            engine, backend, rng, dp_state,
                            topology=cell_topo,
                        )

                    point = call_with_retries(
                        _attempt,
                        value=float(value),
                        label=label,
                        seeds=seeds_t,
                        faults=faults,
                        failures=failures,
                    )
                if point is None:  # permanent best-effort failure
                    point = nan_point(label, groups_t)
                elif store is not None and key is not None:
                    # Checkpoint: a sweep killed after this cell resumes
                    # warm from here.
                    store.put(key, point)
            # Keep every other field of the worker's point intact
            # (rebuilding field-by-field drops fields added later).
            result.points.append(
                replace(point, parameter=float(value), policy=label)
            )
    warn_uncacheable(uncacheable)
    if failures:
        result.failures = SweepFailureReport(failures)
    return result
