"""Programmatic paper-vs-measured verdicts.

Computes the headline quantitative claims of the paper's evaluation from
fresh simulations and renders a verdict table — the automated core of
EXPERIMENTS.md:

* the admissible-load boundaries of LDF, DB-DP, and FCSMA on the symmetric
  video network (Fig. 3's lift-off points) and the FCSMA/LDF capacity ratio
  the paper pegs at ~70%,
* DB-DP's overhead per interval against the paper's "(N+1) backoff slots
  plus two empty packets / 1-2 fewer transmissions" quantification,
* the low-latency operating point (Fig. 9's lambda* = 0.78) deficiency gap
  between DB-DP and LDF,
* no-starvation under a fixed ordering (Fig. 6's bottom link).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..analysis.capacity import admissible_boundary, relative_capacity
from ..core.dbdp import DBDPPolicy
from ..core.eldf import LDFPolicy
from ..core.fcsma import FCSMAPolicy
from ..core.static_priority import StaticPriorityPolicy
from ..sim.interval_sim import run_simulation
from .configs import (
    VIDEO_INTERVALS,
    low_latency_spec,
    scaled_intervals,
    video_symmetric_spec,
)

__all__ = ["ClaimVerdict", "evaluate_paper_claims", "format_verdicts"]


@dataclass(frozen=True)
class ClaimVerdict:
    """One headline claim: what the paper says, what we measured."""

    claim: str
    paper: str
    measured: str
    holds: bool


def evaluate_paper_claims(
    num_intervals: Optional[int] = None,
    seed: int = 0,
) -> List[ClaimVerdict]:
    """Re-measure the paper's headline claims; returns one verdict each."""
    intervals = num_intervals or scaled_intervals(VIDEO_INTERVALS)
    verdicts: List[ClaimVerdict] = []

    # --- Claim 1: admissible boundaries and the ~70% FCSMA ratio. --------
    def builder(alpha: float):
        return video_symmetric_spec(alpha, delivery_ratio=0.9)

    boundaries = {}
    for label, factory in [
        ("LDF", LDFPolicy),
        ("DB-DP", DBDPPolicy),
        ("FCSMA", FCSMAPolicy),
    ]:
        boundaries[label] = admissible_boundary(
            builder,
            factory,
            low=0.2,
            high=0.9,
            num_intervals=intervals,
            seeds=(seed,),
            threshold=0.5,
            tolerance=0.02,
        )
    ratio = relative_capacity(boundaries["FCSMA"], boundaries["LDF"])
    dbdp_ratio = relative_capacity(boundaries["DB-DP"], boundaries["LDF"])
    verdicts.append(
        ClaimVerdict(
            claim="LDF admissible alpha* (Fig. 3 boundary)",
            paper="~0.62",
            measured=f"{boundaries['LDF'].boundary:.3f}",
            holds=0.55 <= boundaries["LDF"].boundary <= 0.70,
        )
    )
    verdicts.append(
        ClaimVerdict(
            claim="DB-DP tracks LDF's boundary",
            paper="almost the same as LDF",
            measured=f"ratio {dbdp_ratio:.2f}",
            holds=dbdp_ratio >= 0.85,
        )
    )
    verdicts.append(
        ClaimVerdict(
            claim="FCSMA supports only ~70% of LDF's load",
            paper="~0.70",
            measured=f"ratio {ratio:.2f}",
            holds=0.55 <= ratio <= 0.85,
        )
    )

    # --- Claim 2: quantifiably small DB-DP overhead. ---------------------
    spec = video_symmetric_spec(0.55, delivery_ratio=0.9)
    run = run_simulation(spec, DBDPPolicy(), intervals, seed=seed)
    mean_overhead = float(run.overhead_time_us.mean())
    max_overhead = float(run.overhead_time_us.max())
    bound = (
        (spec.num_links + 1) * spec.timing.backoff_slot_us
        + 2 * spec.timing.empty_airtime_us
    )
    lost_transmissions = mean_overhead / spec.timing.data_airtime_us
    verdicts.append(
        ClaimVerdict(
            claim="DB-DP overhead <= (N+1) slots + 2 empty packets",
            paper=f"bound {bound:.0f} us/interval",
            measured=f"max {max_overhead:.0f} us, mean {mean_overhead:.0f} us",
            holds=max_overhead <= bound + 1e-9,
        )
    )
    verdicts.append(
        ClaimVerdict(
            claim="DB-DP loses 1-2 transmissions per interval",
            paper="1 or 2 fewer than LDF's 60",
            measured=f"{lost_transmissions:.2f} equivalent transmissions",
            holds=lost_transmissions <= 2.0,
        )
    )
    verdicts.append(
        ClaimVerdict(
            claim="DP protocol is collision-free",
            paper="no capacity loss due to collision",
            measured=f"{int(run.collisions.sum())} collisions",
            holds=int(run.collisions.sum()) == 0,
        )
    )

    # --- Claim 3: low-latency operating point (Fig. 9). ------------------
    ll_intervals = max(intervals, 2000)
    ll_spec = low_latency_spec(0.78, delivery_ratio=0.99)
    dbdp_ll = run_simulation(ll_spec, DBDPPolicy(), ll_intervals, seed=seed)
    ldf_ll = run_simulation(ll_spec, LDFPolicy(), ll_intervals, seed=seed)
    gap = dbdp_ll.total_deficiency() - ldf_ll.total_deficiency()
    verdicts.append(
        ClaimVerdict(
            claim="DB-DP ~ LDF at the 2 ms deadline (lambda* = 0.78)",
            paper="timely-throughput close to LDF",
            measured=(
                f"deficiency DB-DP {dbdp_ll.total_deficiency():.3f} vs "
                f"LDF {ldf_ll.total_deficiency():.3f}"
            ),
            holds=gap <= 0.15,
        )
    )

    # --- Claim 4: no starvation under a fixed ordering (Fig. 6). ---------
    fixed_spec = video_symmetric_spec(0.6, delivery_ratio=0.9)
    fixed = run_simulation(fixed_spec, StaticPriorityPolicy(), intervals, seed=seed)
    bottom = float(fixed.timely_throughput()[-1])
    verdicts.append(
        ClaimVerdict(
            claim="lowest fixed priority still served (Fig. 6)",
            paper="non-zero timely-throughput at index 20",
            measured=f"{bottom:.2f} packets/interval",
            holds=bottom > 0.05,
        )
    )
    return verdicts


def format_verdicts(verdicts: List[ClaimVerdict]) -> str:
    """Aligned text table of the verdicts."""
    header = ("claim", "paper", "measured", "holds")
    rows = [
        (v.claim, v.paper, v.measured, "yes" if v.holds else "NO")
        for v in verdicts
    ]
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows))
        for c in range(4)
    ]
    out = io.StringIO()
    out.write(
        "  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip() + "\n"
    )
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in rows:
        out.write(
            "  ".join(v.ljust(w) for v, w in zip(row, widths)).rstrip() + "\n"
        )
    return out.getvalue()
