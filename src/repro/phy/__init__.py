"""PHY-layer substrate: 802.11a airtime accounting and unreliable-channel
models."""
