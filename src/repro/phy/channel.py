"""Unreliable-channel models (Section II-A) and their batchable state.

The paper's model: if link ``n`` transmits without interference, the attempt
succeeds with probability ``p_n > 0``, independently across attempts
(:class:`BernoulliChannel`).  If multiple links transmit simultaneously a
collision occurs and *all* transmissions fail — collision semantics live in
the simulators; channel models only answer "did this interference-free
attempt succeed?".

Two extensions deliberately violate the static i.i.d. assumption and say
so:

* :class:`GilbertElliottChannel` — two-state Markov burst losses.  The
  per-link GOOD/BAD state evolves **once per interval**
  (:meth:`~ChannelModel.begin_interval`); within an interval attempts are
  i.i.d. at the current state's success probability.  Interval timescales
  dominate coherence times in the deadline-traffic regime the paper
  targets, and the per-interval semantics is what makes the model
  batchable: a whole interval's retry counts are geometric at one known
  probability.
* :class:`TimeVaryingReliability` — deterministic ``p_n(t)`` schedules
  (ramps, duty cycles, mobility-style drift) over the interval index.

Every model answers the same capability questions (``has_state``,
``supports_batch_state``, ``state_uses_rng``, ``iid_within_interval``) so
engines dispatch on declared capabilities, never on channel types, and the
batch engines evolve state as vectorized ``(rows, links)`` planes through
:meth:`ChannelModel.stack_rows` / :class:`ChannelStateRows`.

Channel models with parameters are frozen dataclasses: the registry's
config codec (:func:`repro.core.registry.encode_config_value`) fingerprints
them field-by-field for the sweep cache, exactly like policy configs.
Mutable evolution state (the Gilbert–Elliott GOOD/BAD vector, the
time-varying interval counter) is deliberately *not* a dataclass field:
fingerprints, equality and the codec cover parameters only.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "ChannelModel",
    "ChannelStateRows",
    "BernoulliChannel",
    "GilbertElliottChannel",
    "TimeVaryingReliability",
    "channel_from_spec",
]


class ChannelStateRows(ABC):
    """Vectorized channel state for a stack of replication rows.

    Built by :meth:`ChannelModel.stack_rows` (one channel per row, all of
    one family); owned by the batch draw pipeline.  :meth:`evolve`
    advances every row's state by **one interval** and returns the
    ``(rows, links)`` success-probability plane in force for that
    interval; :meth:`evolve_block` amortizes the per-call overhead over a
    whole draw chunk.
    """

    #: Whether evolution consumes random draws (Markov state) or is a
    #: deterministic function of the interval index (schedules).
    uses_rng: bool = False

    @property
    @abstractmethod
    def min_success_prob(self) -> float:
        """The smallest success probability any row/link can reach.

        The draw pipeline sizes its geometric-scale dtype gate with it;
        must be strictly positive for the state to be batchable.
        """

    @abstractmethod
    def evolve(self, rng: Optional[np.random.Generator]) -> np.ndarray:
        """Advance one interval; return the ``(rows, links)`` prob plane."""

    def evolve_block(
        self,
        depth: int,
        rng: Optional[np.random.Generator],
        out: np.ndarray,
    ) -> np.ndarray:
        """Advance ``depth`` intervals, filling ``out`` (depth, rows, links)."""
        for d in range(depth):
            out[d] = self.evolve(rng)
        return out


class ChannelModel(ABC):
    """Per-attempt success model for interference-free transmissions.

    Every model exposes ``num_links`` (the number of links covered), the
    stationary :attr:`reliabilities`, and per-attempt :meth:`attempt`
    sampling.  Stateful models additionally evolve once per interval via
    :meth:`begin_interval` (the scalar engines call it; the batch engines
    evolve the equivalent vectorized state through :meth:`stack_rows`).
    """

    @property
    @abstractmethod
    def reliabilities(self) -> np.ndarray:
        """Long-run per-attempt success probability ``p_n`` of each link.

        Debt-based policies configure their bias weights from these
        stationary values on every engine — devices know their long-run
        ``p_n`` estimate, not the instantaneous channel state.
        """

    @abstractmethod
    def attempt(self, link: int, rng: np.random.Generator) -> bool:
        """Draw the outcome of one interference-free attempt by ``link``."""

    # -- capability surface (engines dispatch on these, never on types) ----
    @property
    def has_state(self) -> bool:
        """Whether the model carries per-interval state to reset/evolve."""
        return False

    @property
    def state_uses_rng(self) -> bool:
        """Whether :meth:`begin_interval` consumes random draws."""
        return False

    @property
    def supports_batch_state(self) -> bool:
        """Whether :meth:`stack_rows` can evolve this model vectorized.

        ``False`` degrades honestly to the scalar engine (or sync-mode
        clones); models whose reachable success probabilities include 0
        must decline (geometric retry draws need ``p > 0``).
        """
        return False

    @property
    def iid_within_interval(self) -> bool:
        """Whether attempts within one interval are i.i.d. at
        :meth:`success_prob`.

        Enables the vectorized geometric retry path in
        :func:`repro.core.policies.serve_link_attempts`; models with
        per-attempt memory keep the faithful attempt-by-attempt path.
        """
        return False

    # -- per-interval state (no-ops for memoryless models) -----------------
    def reset_state(self) -> None:
        """Return the model to its initial state (run construction)."""

    def begin_interval(self, rng: np.random.Generator) -> None:
        """Evolve the state by one interval (called before the interval)."""

    def current_probs(self) -> np.ndarray:
        """The per-link success probabilities in force this interval."""
        return self.reliabilities

    def success_prob(self, link: int) -> float:
        """This interval's success probability of ``link`` (scalar)."""
        return float(self.current_probs()[link])

    # -- batch-state construction ------------------------------------------
    @classmethod
    def stack_rows(
        cls, channels: Sequence["ChannelModel"]
    ) -> Optional[ChannelStateRows]:
        """Vectorized state for one channel per replication row.

        ``None`` for memoryless families: the draw pipeline keeps its
        static stationary scales, bit-identical to the pre-state-layer
        behavior.
        """
        return None

    def init_state_batch(self, num_rows: int) -> Optional[ChannelStateRows]:
        """:meth:`stack_rows` over ``num_rows`` copies of this model."""
        return type(self).stack_rows((self,) * int(num_rows))

    def evolve_batch(
        self, state: ChannelStateRows, rng: Optional[np.random.Generator]
    ) -> np.ndarray:
        """Advance ``state`` one interval; the ``(rows, links)`` plane."""
        if state is None:
            raise TypeError(
                f"{type(self).__name__} is memoryless and has no batch "
                "state to evolve"
            )
        return state.evolve(rng)

    # -- codec-style derivations -------------------------------------------
    def with_stationary_reliability(self) -> "BernoulliChannel":
        """The memoryless i.i.d. channel matched to this model's
        stationary reliabilities (the fair baseline for burst-robustness
        comparisons)."""
        return BernoulliChannel(
            success_probs=tuple(float(p) for p in self.reliabilities)
        )

    def take_links(
        self, links: Sequence[int], pad: int = 0
    ) -> "ChannelModel":
        """Rebuild the model restricted to ``links`` plus ``pad``
        perfectly-reliable dead links (the topology layer's per-cell
        slicing).  Families whose per-link laws are not independent must
        raise."""
        raise TypeError(
            f"{type(self).__name__} cannot be sliced per cell; the "
            "topology layer needs per-link-independent channels"
        )


@dataclass(frozen=True)
class BernoulliChannel(ChannelModel):
    """The paper's static unreliable channel: i.i.d. Bernoulli(``p_n``)."""

    success_probs: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.success_probs:
            raise ValueError("need at least one link")
        for p in self.success_probs:
            if not 0.0 < p <= 1.0:
                raise ValueError(
                    f"the paper requires p_n in (0, 1], got {p}"
                )

    @classmethod
    def symmetric(cls, num_links: int, p: float) -> "BernoulliChannel":
        return cls(success_probs=(p,) * num_links)

    @property
    def num_links(self) -> int:
        return len(self.success_probs)

    @property
    def reliabilities(self) -> np.ndarray:
        return np.asarray(self.success_probs, dtype=float)

    @property
    def iid_within_interval(self) -> bool:
        return True

    def success_prob(self, link: int) -> float:
        return float(self.success_probs[link])

    def attempt(self, link: int, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.success_probs[link])

    def with_stationary_reliability(self) -> "BernoulliChannel":
        return self

    def take_links(
        self, links: Sequence[int], pad: int = 0
    ) -> "BernoulliChannel":
        probs = tuple(float(self.success_probs[l]) for l in links)
        return BernoulliChannel(success_probs=probs + (1.0,) * int(pad))


def _as_link_vector(value, num_links: int, name: str) -> np.ndarray:
    """A ``(num_links,)`` float64 view of a scalar-or-tuple parameter."""
    if isinstance(value, tuple):
        if len(value) != num_links:
            raise ValueError(
                f"{name} covers {len(value)} links, channel has {num_links}"
            )
        return np.asarray(value, dtype=float)
    return np.full(num_links, float(value))


class _GilbertElliottRows(ChannelStateRows):
    """Per-row Gilbert–Elliott Markov state, evolved as ``(R, N)`` planes."""

    uses_rng = True

    def __init__(
        self,
        p_good: np.ndarray,
        p_bad: np.ndarray,
        stay_good: np.ndarray,
        stay_bad: np.ndarray,
    ):
        self._pg = p_good
        self._pb = p_bad
        self._sg = stay_good
        self._sb = stay_bad
        # Every row starts all-GOOD, matching the scalar model's
        # reset_state; the first begin_interval/evolve happens before
        # interval 0 on every engine, so distributions line up exactly.
        self._good = np.ones(p_good.shape, dtype=bool)
        self._stay = np.empty(p_good.shape)

    @property
    def min_success_prob(self) -> float:
        return float(min(self._pg.min(), self._pb.min()))

    def _step(self, uniforms: np.ndarray) -> None:
        np.copyto(self._stay, self._sb)
        np.copyto(self._stay, self._sg, where=self._good)
        self._good ^= uniforms >= self._stay

    def evolve(self, rng: Optional[np.random.Generator]) -> np.ndarray:
        self._step(rng.random(self._good.shape))
        return np.where(self._good, self._pg, self._pb)

    def evolve_block(
        self,
        depth: int,
        rng: Optional[np.random.Generator],
        out: np.ndarray,
    ) -> np.ndarray:
        # One generator call per chunk: (depth, R, N) uniforms consumed in
        # interval order, then depth cheap (R, N) vector steps.
        u = rng.random((depth,) + self._good.shape)
        for d in range(depth):
            self._step(u[d])
            np.copyto(out[d], self._pb)
            np.copyto(out[d], self._pg, where=self._good)
        return out


@dataclass(frozen=True)
class GilbertElliottChannel(ChannelModel):
    """Two-state burst-loss channel (GOOD/BAD) per link.

    **Extension beyond the paper's model** — success probabilities are
    correlated across intervals.  Each link's state evolves once per
    interval (:meth:`begin_interval`): stay in the current state with
    ``p_stay_good``/``p_stay_bad``, then every attempt that interval
    succeeds i.i.d. with ``p_good``/``p_bad``.  ``reliabilities`` reports
    the stationary success probability so debt-based policies can still
    be configured consistently.

    Parameters accept one scalar shared by all links or a per-link tuple
    (heterogeneous cells, topology pads).  All parameters are dataclass
    fields; the Markov state is not (fingerprints cover parameters only).
    """

    num_links: int
    p_good: Union[float, Tuple[float, ...]] = 0.95
    p_bad: Union[float, Tuple[float, ...]] = 0.2
    p_stay_good: Union[float, Tuple[float, ...]] = 0.95
    p_stay_bad: Union[float, Tuple[float, ...]] = 0.8

    def __post_init__(self) -> None:
        if self.num_links < 1:
            raise ValueError("need at least one link")
        vecs = {}
        for name in ("p_good", "p_bad", "p_stay_good", "p_stay_bad"):
            value = getattr(self, name)
            if isinstance(value, (list, tuple, np.ndarray)):
                value = tuple(float(v) for v in value)
            else:
                value = float(value)
            object.__setattr__(self, name, value)
            vec = _as_link_vector(value, self.num_links, name)
            if np.any(vec < 0.0) or np.any(vec > 1.0):
                raise ValueError(
                    f"{name} must lie in [0, 1], got {value}"
                )
            vecs[name] = vec
        if np.any((vecs["p_good"] <= 0) & (vecs["p_bad"] <= 0)):
            raise ValueError(
                "at least one state must allow success (p_n > 0)"
            )
        object.__setattr__(self, "_pg", vecs["p_good"])
        object.__setattr__(self, "_pb", vecs["p_bad"])
        object.__setattr__(self, "_sg", vecs["p_stay_good"])
        object.__setattr__(self, "_sb", vecs["p_stay_bad"])
        object.__setattr__(self, "_good", np.ones(self.num_links, dtype=bool))

    # ------------------------------------------------------------------
    @property
    def reliabilities(self) -> np.ndarray:
        leave_good = 1.0 - self._sg
        leave_bad = 1.0 - self._sb
        denom = leave_good + leave_bad
        # denom == 0: both states absorbing -> frozen in the GOOD start.
        pi_good = np.where(denom > 0, leave_bad / np.where(denom > 0, denom, 1.0), 1.0)
        return pi_good * self._pg + (1.0 - pi_good) * self._pb

    @property
    def has_state(self) -> bool:
        return True

    @property
    def state_uses_rng(self) -> bool:
        return True

    @property
    def supports_batch_state(self) -> bool:
        # Geometric retry scales need p > 0 in every reachable state.
        return bool(np.all(self._pg > 0.0) and np.all(self._pb > 0.0))

    @property
    def iid_within_interval(self) -> bool:
        return True

    # ------------------------------------------------------------------
    def reset_state(self) -> None:
        self._good.fill(True)

    def begin_interval(self, rng: np.random.Generator) -> None:
        stay = np.where(self._good, self._sg, self._sb)
        # In-place via ufunc out=: ``^=`` would rebind the (frozen) field.
        np.logical_xor(
            self._good, rng.random(self.num_links) >= stay, out=self._good
        )

    def current_probs(self) -> np.ndarray:
        return np.where(self._good, self._pg, self._pb)

    def success_prob(self, link: int) -> float:
        if not 0 <= link < self.num_links:
            raise IndexError(
                f"link {link} out of range [0, {self.num_links})"
            )
        return float(self._pg[link] if self._good[link] else self._pb[link])

    def attempt(self, link: int, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.success_prob(link))

    # ------------------------------------------------------------------
    @classmethod
    def stack_rows(
        cls, channels: Sequence["ChannelModel"]
    ) -> ChannelStateRows:
        for ch in channels:
            if not ch.supports_batch_state:
                raise TypeError(
                    f"{type(ch).__name__} declines batch state (a state "
                    "with p = 0 cannot feed geometric retry draws); run "
                    "it on the scalar engine"
                )
        return _GilbertElliottRows(
            p_good=np.stack([ch._pg for ch in channels]),
            p_bad=np.stack([ch._pb for ch in channels]),
            stay_good=np.stack([ch._sg for ch in channels]),
            stay_bad=np.stack([ch._sb for ch in channels]),
        )

    def take_links(
        self, links: Sequence[int], pad: int = 0
    ) -> "GilbertElliottChannel":
        pad = int(pad)

        def pick(vec: np.ndarray, pad_value: float) -> Tuple[float, ...]:
            return tuple(float(vec[l]) for l in links) + (pad_value,) * pad

        # Pads succeed in either state and freeze GOOD: reliability 1.
        return GilbertElliottChannel(
            num_links=len(tuple(links)) + pad,
            p_good=pick(self._pg, 1.0),
            p_bad=pick(self._pb, 1.0),
            p_stay_good=pick(self._sg, 1.0),
            p_stay_bad=pick(self._sb, 0.0),
        )


#: The deterministic modulation profiles TimeVaryingReliability knows.
TIME_VARYING_PROFILES = ("ramp", "duty", "drift")


class _TimeVaryingRows(ChannelStateRows):
    """Deterministic per-row schedules: no RNG, just an interval counter."""

    uses_rng = False

    def __init__(self, channels: Sequence["TimeVaryingReliability"]):
        # Rows sharing one schedule are computed once per interval.
        groups = []
        for i, ch in enumerate(channels):
            for rep, rows in groups:
                if ch == rep:
                    rows.append(i)
                    break
            else:
                groups.append((ch, [i]))
        self._groups = [(ch, np.asarray(rows)) for ch, rows in groups]
        self._shape = (len(channels), channels[0].num_links)
        self._k = 0

    @property
    def min_success_prob(self) -> float:
        return min(ch.min_prob for ch, _ in self._groups)

    def evolve(self, rng: Optional[np.random.Generator]) -> np.ndarray:
        out = np.empty(self._shape)
        for ch, rows in self._groups:
            out[rows] = ch.probs_at(self._k)
        self._k += 1
        return out


@dataclass(frozen=True)
class TimeVaryingReliability(ChannelModel):
    """Deterministic time-varying reliability ``p_n(t)`` schedules.

    **Extension beyond the paper's model** — the per-attempt success
    probability is a known function of the interval index ``t`` (mobility
    drift, duty-cycled interferers, slow fades):

    ``p_n(t) = clip(base_n - amplitude * m(t), floor, 1)``

    with the modulation ``m(t)`` over each ``period`` of intervals:

    * ``"ramp"``  — sawtooth ``(t mod period) / period``: degradation
      grows linearly, then snaps back;
    * ``"duty"``  — square wave: nominal for the first half period,
      degraded for the second;
    * ``"drift"`` — raised cosine ``0.5 - 0.5 cos(2 pi t / period)``:
      smooth mobility-style drift out and back.

    Evolution consumes **no** randomness, so the schedule runs under
    every draw discipline (including lockstep batch) on every engine.
    ``reliabilities`` reports the time-averaged ``p_n`` over one period.
    """

    base: Tuple[float, ...]
    profile: str = "drift"
    period: int = 100
    amplitude: float = 0.2
    floor: float = 0.05

    def __post_init__(self) -> None:
        base = tuple(float(p) for p in self.base)
        object.__setattr__(self, "base", base)
        if not base:
            raise ValueError("need at least one link")
        for p in base:
            if not 0.0 < p <= 1.0:
                raise ValueError(f"base p_n must lie in (0, 1], got {p}")
        if self.profile not in TIME_VARYING_PROFILES:
            raise ValueError(
                f"unknown profile {self.profile!r}; expected one of "
                f"{TIME_VARYING_PROFILES}"
            )
        if int(self.period) < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        object.__setattr__(self, "period", int(self.period))
        if not 0.0 <= float(self.amplitude) <= 1.0:
            raise ValueError(
                f"amplitude must lie in [0, 1], got {self.amplitude}"
            )
        object.__setattr__(self, "amplitude", float(self.amplitude))
        if not 0.0 < float(self.floor) <= 1.0:
            raise ValueError(
                f"floor must lie in (0, 1], got {self.floor}"
            )
        object.__setattr__(self, "floor", float(self.floor))
        object.__setattr__(self, "_base_vec", np.asarray(base))
        # One period of planes, precomputed: probs_at is a row lookup.
        table = np.empty((self.period, len(base)))
        for k in range(self.period):
            table[k] = np.clip(
                self._base_vec - self.amplitude * self._modulation(k),
                self.floor,
                1.0,
            )
        object.__setattr__(self, "_table", table)
        object.__setattr__(self, "_next_k", 0)
        object.__setattr__(self, "_probs", table[0].copy())

    def _modulation(self, k: int) -> float:
        phase = (int(k) % self.period) / self.period
        if self.profile == "ramp":
            return phase
        if self.profile == "duty":
            return 1.0 if phase >= 0.5 else 0.0
        return 0.5 - 0.5 * float(np.cos(2.0 * np.pi * phase))

    @classmethod
    def symmetric(
        cls, num_links: int, p: float, **kwargs
    ) -> "TimeVaryingReliability":
        return cls(base=(float(p),) * int(num_links), **kwargs)

    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        return len(self.base)

    @property
    def reliabilities(self) -> np.ndarray:
        return self._table.mean(axis=0)

    @property
    def min_prob(self) -> float:
        """The smallest scheduled success probability."""
        return float(self._table.min())

    def probs_at(self, k: int) -> np.ndarray:
        """The ``(num_links,)`` plane in force during interval ``k``."""
        return self._table[int(k) % self.period]

    @property
    def has_state(self) -> bool:
        return True

    @property
    def state_uses_rng(self) -> bool:
        return False

    @property
    def supports_batch_state(self) -> bool:
        return self.min_prob > 0.0

    @property
    def iid_within_interval(self) -> bool:
        return True

    # ------------------------------------------------------------------
    def reset_state(self) -> None:
        object.__setattr__(self, "_next_k", 0)
        np.copyto(self._probs, self._table[0])

    def begin_interval(self, rng: np.random.Generator) -> None:
        np.copyto(self._probs, self.probs_at(self._next_k))
        object.__setattr__(self, "_next_k", self._next_k + 1)

    def current_probs(self) -> np.ndarray:
        return self._probs

    def attempt(self, link: int, rng: np.random.Generator) -> bool:
        if not 0 <= link < self.num_links:
            raise IndexError(
                f"link {link} out of range [0, {self.num_links})"
            )
        return bool(rng.random() < self._probs[link])

    # ------------------------------------------------------------------
    @classmethod
    def stack_rows(
        cls, channels: Sequence["ChannelModel"]
    ) -> ChannelStateRows:
        for ch in channels:
            if not ch.supports_batch_state:
                raise TypeError(
                    f"{type(ch).__name__} declines batch state (a "
                    "scheduled p = 0 cannot feed geometric retry draws)"
                )
        return _TimeVaryingRows(channels)

    def take_links(
        self, links: Sequence[int], pad: int = 0
    ) -> "TimeVaryingReliability":
        base = tuple(float(self._base_vec[l]) for l in links)
        return TimeVaryingReliability(
            base=base + (1.0,) * int(pad),
            profile=self.profile,
            period=self.period,
            amplitude=self.amplitude,
            floor=self.floor,
        )


def channel_from_spec(text: str, num_links: int) -> ChannelModel:
    """Build a channel model from a CLI-style spec string.

    Formats (fields are colon-separated)::

        bernoulli:P                  i.i.d. Bernoulli(P) on every link
        ge:P_GB:P_BG[:P_GOOD:P_BAD]  Gilbert-Elliott with transition
                                     probabilities P_GB (good->bad) and
                                     P_BG (bad->good); success probs
                                     default to 0.95 / 0.2
        tv:PROFILE:PERIOD:AMPLITUDE[:BASE]
                                     TimeVaryingReliability (profile in
                                     {ramp, duty, drift}; BASE defaults
                                     to 0.9)
    """
    parts = str(text).split(":")
    kind, args = parts[0].lower(), parts[1:]
    try:
        if kind == "bernoulli":
            (p,) = args
            return BernoulliChannel.symmetric(num_links, float(p))
        if kind == "ge":
            if len(args) == 2:
                p_gb, p_bg = (float(a) for a in args)
                p_good, p_bad = 0.95, 0.2
            else:
                p_gb, p_bg, p_good, p_bad = (float(a) for a in args)
            return GilbertElliottChannel(
                num_links,
                p_good=p_good,
                p_bad=p_bad,
                p_stay_good=1.0 - p_gb,
                p_stay_bad=1.0 - p_bg,
            )
        if kind == "tv":
            if len(args) == 3:
                profile, period, amplitude = args
                base = 0.9
            else:
                profile, period, amplitude, base = args
            return TimeVaryingReliability.symmetric(
                num_links,
                float(base),
                profile=profile,
                period=int(period),
                amplitude=float(amplitude),
            )
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad channel spec {text!r}: {exc}") from exc
    raise ValueError(
        f"unknown channel kind {kind!r} in {text!r}; expected "
        "'bernoulli:p', 'ge:p_gb:p_bg[:p_good:p_bad]' or "
        "'tv:profile:period:amplitude[:base]'"
    )
