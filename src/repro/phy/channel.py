"""Unreliable-channel models (Section II-A).

The paper's model: if link ``n`` transmits without interference, the attempt
succeeds with probability ``p_n > 0``, independently across attempts
(:class:`BernoulliChannel`).  If multiple links transmit simultaneously a
collision occurs and *all* transmissions fail — collision semantics live in
the simulators; channel models only answer "did this interference-free
attempt succeed?".

:class:`GilbertElliottChannel` is an extension (burst losses) used by
robustness experiments; it deliberately violates the i.i.d. assumption and
says so.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["ChannelModel", "BernoulliChannel", "GilbertElliottChannel"]


class ChannelModel(ABC):
    """Per-attempt success model for interference-free transmissions."""

    @property
    @abstractmethod
    def num_links(self) -> int:
        """Number of links the model covers."""

    @property
    @abstractmethod
    def reliabilities(self) -> np.ndarray:
        """Long-run per-attempt success probability ``p_n`` of each link."""

    @abstractmethod
    def attempt(self, link: int, rng: np.random.Generator) -> bool:
        """Draw the outcome of one interference-free attempt by ``link``."""


@dataclass(frozen=True)
class BernoulliChannel(ChannelModel):
    """The paper's static unreliable channel: i.i.d. Bernoulli(``p_n``)."""

    success_probs: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.success_probs:
            raise ValueError("need at least one link")
        for p in self.success_probs:
            if not 0.0 < p <= 1.0:
                raise ValueError(
                    f"the paper requires p_n in (0, 1], got {p}"
                )

    @classmethod
    def symmetric(cls, num_links: int, p: float) -> "BernoulliChannel":
        return cls(success_probs=(p,) * num_links)

    @property
    def num_links(self) -> int:
        return len(self.success_probs)

    @property
    def reliabilities(self) -> np.ndarray:
        return np.asarray(self.success_probs, dtype=float)

    def attempt(self, link: int, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.success_probs[link])


class GilbertElliottChannel(ChannelModel):
    """Two-state burst-loss channel (GOOD/BAD) per link.

    **Extension beyond the paper's model** — attempts are correlated in time.
    ``reliabilities`` reports each link's stationary success probability so
    debt-based policies can still be configured consistently.
    """

    def __init__(
        self,
        num_links: int,
        p_good: float = 0.95,
        p_bad: float = 0.2,
        p_stay_good: float = 0.95,
        p_stay_bad: float = 0.8,
    ):
        if num_links < 1:
            raise ValueError("need at least one link")
        for name, value in [
            ("p_good", p_good),
            ("p_bad", p_bad),
            ("p_stay_good", p_stay_good),
            ("p_stay_bad", p_stay_bad),
        ]:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        if p_good <= 0 and p_bad <= 0:
            raise ValueError("at least one state must allow success (p_n > 0)")
        self._n = num_links
        self._p_good = p_good
        self._p_bad = p_bad
        self._p_stay_good = p_stay_good
        self._p_stay_bad = p_stay_bad
        self._good = np.ones(num_links, dtype=bool)

    @property
    def num_links(self) -> int:
        return self._n

    @property
    def reliabilities(self) -> np.ndarray:
        leave_good = 1.0 - self._p_stay_good
        leave_bad = 1.0 - self._p_stay_bad
        if leave_good + leave_bad == 0:
            pi_good = 1.0  # frozen in the GOOD start state
        else:
            pi_good = leave_bad / (leave_good + leave_bad)
        p = pi_good * self._p_good + (1.0 - pi_good) * self._p_bad
        return np.full(self._n, p)

    def attempt(self, link: int, rng: np.random.Generator) -> bool:
        if not 0 <= link < self._n:
            raise IndexError(f"link {link} out of range [0, {self._n})")
        # Evolve this link's state, then draw the outcome in the new state.
        stay = self._p_stay_good if self._good[link] else self._p_stay_bad
        if rng.random() >= stay:
            self._good[link] = not self._good[link]
        p = self._p_good if self._good[link] else self._p_bad
        return bool(rng.random() < p)
