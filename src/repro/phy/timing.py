"""802.11a PHY/MAC airtime accounting and interval timing.

The paper's evaluation runs on IEEE 802.11a at 54 Mbps with:

* backoff slot time 9 us ("to account for non-instantaneous carrier
  sensing"),
* ~330 us total airtime for a 1500 B data packet + ACK + interframe spacing
  (real-time video scenario, Section VI-A),
* ~120 us for a 100 B control packet + ACK (Section VI-B),
* ~70 us for an empty priority-claiming packet + interframe spacing
  (Section IV-C).

This module computes those airtimes from first principles (OFDM symbol
structure of 802.11a) and packages them into :class:`IntervalTiming`, the
time model shared by every policy and both simulators.  An *idealized*
timing (Definition 10: zero backoff-slot time, zero empty-packet time,
interval = ``T`` packet transmissions) supports the theory-facing tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = [
    "Dot11aPhy",
    "IntervalTiming",
    "video_timing",
    "low_latency_timing",
    "idealized_timing",
]


@dataclass(frozen=True)
class Dot11aPhy:
    """IEEE 802.11a OFDM PHY constants and airtime formulas.

    All times are microseconds.  Defaults follow the 1999 802.11a standard
    (reference [37] of the paper).
    """

    data_rate_mbps: float = 54.0
    control_rate_mbps: float = 24.0
    slot_time_us: float = 9.0
    sifs_us: float = 16.0
    difs_us: float = 34.0  # SIFS + 2 * slot
    phy_preamble_us: float = 16.0
    phy_signal_us: float = 4.0
    symbol_us: float = 4.0
    mac_header_bytes: int = 28  # MAC header (24-30 B) + FCS, typical data frame
    ack_bytes: int = 14
    service_tail_bits: int = 22  # 16 SERVICE + 6 tail bits
    guard_us: float = 4.0  # Rx/Tx turnaround + propagation margin ([36])

    def _ppdu_airtime_us(self, payload_bytes: int, rate_mbps: float) -> float:
        """Airtime of one PPDU carrying ``payload_bytes`` of MPDU payload."""
        if payload_bytes < 0:
            raise ValueError(f"payload must be nonnegative, got {payload_bytes}")
        bits = 8 * payload_bytes + self.service_tail_bits
        bits_per_symbol = rate_mbps * self.symbol_us
        n_symbols = math.ceil(bits / bits_per_symbol)
        return self.phy_preamble_us + self.phy_signal_us + n_symbols * self.symbol_us

    def data_frame_airtime_us(self, payload_bytes: int) -> float:
        """Airtime of a data frame (payload + MAC header) at the data rate."""
        if payload_bytes < 0:
            raise ValueError(f"payload must be nonnegative, got {payload_bytes}")
        return self._ppdu_airtime_us(
            payload_bytes + self.mac_header_bytes, self.data_rate_mbps
        )

    def ack_airtime_us(self) -> float:
        """Airtime of an ACK frame at the control rate."""
        return self._ppdu_airtime_us(self.ack_bytes, self.control_rate_mbps)

    def exchange_airtime_us(self, payload_bytes: int) -> float:
        """Total channel occupancy of one data transmission attempt.

        DATA + SIFS + ACK + DIFS (the guard before the next contention
        round), matching the paper's "total airtime required by sending a
        data packet plus an ACK and the interframe spacing".
        """
        return (
            self.data_frame_airtime_us(payload_bytes)
            + self.sifs_us
            + self.ack_airtime_us()
            + self.difs_us
            + self.guard_us
        )

    def empty_packet_airtime_us(self) -> float:
        """Airtime of a zero-payload priority-claiming frame + spacing.

        The paper quotes ~70 us for a no-payload packet plus interframe
        spacing in 802.11a; a header-only frame + DIFS lands there.
        """
        return self.data_frame_airtime_us(0) + self.difs_us + self.guard_us


@dataclass(frozen=True)
class IntervalTiming:
    """Time model of one interval, shared by policies and simulators.

    Parameters
    ----------
    interval_us:
        Interval length ``T`` in microseconds (the per-packet deadline).
    data_airtime_us:
        Channel time consumed by one data transmission attempt (success or
        failure — the ACK timeout on failure is assumed equal to the ACK
        airtime, as in slotted analyses).
    empty_airtime_us:
        Channel time of one empty priority-claiming packet.
    backoff_slot_us:
        Duration of one backoff slot.
    """

    interval_us: float
    data_airtime_us: float
    empty_airtime_us: float
    backoff_slot_us: float

    def __post_init__(self) -> None:
        if self.interval_us <= 0:
            raise ValueError(f"interval must be positive, got {self.interval_us}")
        if self.data_airtime_us <= 0:
            raise ValueError(
                f"data airtime must be positive, got {self.data_airtime_us}"
            )
        if self.empty_airtime_us < 0 or self.backoff_slot_us < 0:
            raise ValueError("empty airtime and slot time must be nonnegative")
        if self.data_airtime_us > self.interval_us:
            raise ValueError(
                "a single transmission does not fit in the interval: "
                f"{self.data_airtime_us} us > {self.interval_us} us"
            )

    @property
    def max_transmissions(self) -> int:
        """Transmission opportunities per interval with zero contention.

        For the paper's video scenario this is 60 (20 ms / 330 us); for the
        low-latency scenario 16 (2 ms / 120 us).
        """
        return int(self.interval_us // self.data_airtime_us)

    @property
    def is_idealized(self) -> bool:
        """True when backoff slots and empty packets cost zero time."""
        return self.backoff_slot_us == 0 and self.empty_airtime_us == 0

    def with_slot_time(self, backoff_slot_us: float) -> "IntervalTiming":
        """Copy with a different backoff slot duration (ablation support)."""
        return replace(self, backoff_slot_us=backoff_slot_us)


def video_timing(phy: Dot11aPhy | None = None) -> IntervalTiming:
    """Real-time video scenario (Section VI-A): 1500 B payload, 20 ms deadline.

    The computed exchange airtime is ~330 us, giving 60 transmission
    opportunities per interval as the paper states.
    """
    phy = phy or Dot11aPhy()
    return IntervalTiming(
        interval_us=20_000.0,
        data_airtime_us=phy.exchange_airtime_us(1500),
        empty_airtime_us=phy.empty_packet_airtime_us(),
        backoff_slot_us=phy.slot_time_us,
    )


def low_latency_timing(phy: Dot11aPhy | None = None) -> IntervalTiming:
    """Ultra-low-latency control scenario (Section VI-B): 100 B, 2 ms deadline.

    The computed exchange airtime is ~120 us, giving 16 transmission
    opportunities per interval as the paper states.
    """
    phy = phy or Dot11aPhy()
    return IntervalTiming(
        interval_us=2_000.0,
        data_airtime_us=phy.exchange_airtime_us(100),
        empty_airtime_us=phy.empty_packet_airtime_us(),
        backoff_slot_us=phy.slot_time_us,
    )


def idealized_timing(transmissions_per_interval: int) -> IntervalTiming:
    """Idealized timing of Definition 10.

    One "time unit" is one packet transmission; backoff slots and empty
    packets are free.  ``transmissions_per_interval`` is the deadline ``T``
    measured in packet transmissions.
    """
    if transmissions_per_interval <= 0:
        raise ValueError(
            f"need at least one transmission per interval, got "
            f"{transmissions_per_interval}"
        )
    return IntervalTiming(
        interval_us=float(transmissions_per_interval),
        data_airtime_us=1.0,
        empty_airtime_us=0.0,
        backoff_slot_us=0.0,
    )
