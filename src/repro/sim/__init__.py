"""Simulators: the fast interval-level engine and the microsecond
event-driven engine (ns-3 substitute), plus RNG and result containers."""
