"""Vectorized per-policy kernels for the batch simulation engine.

Each kernel advances one interval for a *stack* of ``S`` independent
replications at once, holding every piece of per-interval state — debts,
arrivals, priorities, backoffs, deliveries — as ``(S, N)`` NumPy arrays.
Kernels exist for the policies that dominate benchmark time:

* :class:`BatchDPKernel` — Algorithm 2 / DB-DP (single- and multi-pair
  swaps, Remark 6);
* :class:`BatchELDFKernel` — ELDF/LDF via a stable argsort on
  ``f(d^+) p``;
* :class:`BatchRoundRobinKernel` and :class:`BatchStaticPriorityKernel`.

The shared primitive is :func:`solve_ordered_service`: given pre-drawn
geometric retry counts, it resolves the whole "serve links in priority
order until time runs out" recursion with cumulative sums instead of a
per-link loop.  This works because the attempt ceiling is non-increasing
along the service order, so once one link is truncated every later link is
starved — exactly the scalar engine's semantics (see the derivation in the
function docstring).

Two implementation notes that matter for throughput at the target scale
(tens of seeds, tens of links — i.e. *small* arrays, where NumPy's Python
wrapper cost rivals its C time):

* all gather/scatter steps use raw integer fancy indexing
  (``a[rows, idx]``) rather than ``take_along_axis``/``put_along_axis``,
  whose index-building wrappers dominate at this size;
* random draws are made in chunks of :data:`DRAW_CHUNK` intervals per
  stream and sliced per interval, amortizing the Generator call overhead.
  Chunking only re-orders consumption *within* a batch stream, which is a
  private namespace — reproducibility (same seeds, same trajectory) is
  unaffected, and chunk boundaries are independent of how ``run`` calls
  are split because the caches live on the kernel.

Kernels also accept **per-row spec parameters** (the grid-fused engine):
``bind`` takes either one shared spec or a
:class:`~repro.sim.spec_stack.SpecStack` with one spec per replication
row, in which case reliabilities and requirements become ``(S, N)``
matrices and rows may come from *different sweep cells* (different
``p_n``/``q_n``/arrival parameters, and — for the DP kernel — different
Glauber bias constants via ``row_policies``) as long as ``N``, the timing,
and the policy family match.

Every kernel also has a ``sync_rng`` mode in which it drives one *scalar*
policy clone per seed with that seed's scalar-identical random streams
(:attr:`~repro.sim.rng.BatchRngBundle.bundles`).  That mode is the
cross-validation bridge: it is bit-identical to the scalar engine by
construction, while sharing the batch engine's debt and result
bookkeeping.
"""

from __future__ import annotations

import copy
import dataclasses
import os
import warnings
from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass
from types import SimpleNamespace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core import registry
from ..core.dbdp import stack_swap_biases
from ..core.dp_protocol import DPProtocol, max_swap_pairs
from ..core.eldf import ELDFPolicy
from ..core.permutations import priority_to_link_order, validate_priority_vector
from ..core.policies import IntervalMac
from ..core.requirements import NetworkSpec
from ..core.round_robin import RoundRobinPolicy
from ..core.static_priority import StaticPriorityPolicy
from ..phy.channel import ChannelStateRows
from . import jit_kernels, perf
from .rng import BatchRngBundle, draw_chunk_depth, normalize_rng_mode
from .spec_stack import SpecStack

__all__ = [
    "BatchIntervalOutcome",
    "BatchPolicyKernel",
    "BatchDPKernel",
    "BatchELDFKernel",
    "BatchRoundRobinKernel",
    "BatchStaticPriorityKernel",
    "solve_ordered_service",
    "make_batch_kernel",
    "has_batch_kernel",
    "resolve_backend",
    "resolve_dp_state",
    "KERNEL_BACKENDS",
    "DP_STATE_MODES",
    "DRAW_CHUNK",
]

#: Intervals' worth of randomness drawn per Generator call in batch mode.
DRAW_CHUNK = 64

#: Default chunk depth under the ``rng="free"`` discipline.  Free mode has
#: no lockstep-schedule constraint, so it amortizes Generator call
#: overhead over deeper blocks (``REPRO_DRAW_CHUNK`` still overrides).
FREE_DRAW_CHUNK = 256

#: Interval-resolution backends a kernel can bind with.
#:
#: * ``"numpy"`` — the preallocated-workspace NumPy path (the default on
#:   hosts without numba): all per-interval scratch lives in buffers
#:   allocated once at bind time and every hot-loop step writes in place
#:   via ``out=`` ufuncs.
#: * ``"jit"`` — the workspace path with the two irreducibly sequential
#:   stages (ordered service, DP interval timeline) compiled by Numba
#:   (:mod:`repro.sim.jit_kernels`); the default whenever numba imports,
#:   warm-compiled at bind so first-interval timings exclude compilation,
#:   with ``prange`` row-parallelism on large stacks.  An explicit
#:   ``backend="jit"`` falls back to ``"numpy"`` with a
#:   :class:`RuntimeWarning` when numba is not importable.
#: * ``"legacy"`` — the pre-workspace implementation, preserved verbatim
#:   as the benchmark baseline and the reference for bit-identity tests.
#:
#: All three produce bit-identical outcomes for the same
#: :class:`~repro.sim.rng.BatchRngBundle` (proven in
#: ``tests/integration/test_kernel_backends.py``): they consume the same
#: generator values in the same order, and every derived quantity is a
#: small exact integer carried in float32/float64 far below the mantissa
#: limit, which makes the arithmetic independent of summation order and
#: of whether a stage runs vectorized or sequentially.
KERNEL_BACKENDS = ("numpy", "jit", "legacy")


def resolve_backend(backend: Optional[str] = None) -> str:
    """Normalize a backend request to one of :data:`KERNEL_BACKENDS`.

    ``None`` defers to the environment: ``REPRO_KERNEL_BACKEND`` if set,
    else ``"jit"`` when ``REPRO_JIT=1``; with neither set the default is
    ``"jit"`` whenever numba imported compiled (so the fast path is the
    default on capable hosts) and ``"numpy"`` otherwise.  An *explicit*
    ``"jit"`` request degrades to ``"numpy"`` with a
    :class:`RuntimeWarning` when numba is unavailable (and not forced
    into pure-Python test mode); the silent default never picks a jit
    that would have to degrade.
    """
    if backend is None:
        backend = os.environ.get("REPRO_KERNEL_BACKEND", "") or (
            "jit" if os.environ.get("REPRO_JIT", "") == "1" else ""
        )
        if not backend:
            backend = (
                "jit"
                if jit_kernels.HAS_NUMBA and not jit_kernels.force_python
                else "numpy"
            )
    backend = str(backend).lower()
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r}; choose from {KERNEL_BACKENDS}"
        )
    if backend == "jit" and not jit_kernels.available():
        warnings.warn(
            "numba is not installed; kernel backend 'jit' falls back to "
            "the workspace NumPy path (install numba or set "
            "REPRO_JIT_FORCE_PY=1 to exercise the loop bodies in Python)",
            RuntimeWarning,
            stacklevel=2,
        )
        backend = "numpy"
    return backend


#: Priority-state maintenance modes of the DP-family kernels.
#:
#: * ``"dense"`` — every interval rebuilds the inverse permutation, the
#:   service order and the full per-position timeline from ``sigma``:
#:   O(S*N) per interval (plus the solver's O(S*N^2) prefix matmuls on
#:   the workspace path).  The historical behaviour, kept as the
#:   reference.
#: * ``"incremental"`` — the inverse permutation persists in the
#:   workspace across intervals and only the accepted adjacent swaps are
#:   applied (O(S*num_pairs) state upkeep); the timeline solve runs on
#:   the at-most ``max_transmissions + 1`` backlogged links that can
#:   possibly transmit instead of all N, so per-interval cost tracks the
#:   protocol's O(1) moves rather than the network size.
#:
#: Both modes are bit-identical (same RNG consumption, same exact-integer
#: arithmetic — proven in ``tests/sim/test_incremental_dp.py``); the knob
#: exists for baseline benchmarking and as an escape hatch.
DP_STATE_MODES = ("dense", "incremental")


def resolve_dp_state(
    dp_state: Optional[str] = None,
    *,
    supports_incremental: bool = False,
    workspace: bool = True,
) -> str:
    """Normalize a DP priority-state request to one of :data:`DP_STATE_MODES`.

    ``None`` defers to the environment (``REPRO_DP_STATE``) and then to
    the registry-capability default: ``"incremental"`` whenever the
    policy family declares ``supports_incremental_dp`` and the kernel is
    on a workspace backend, else ``"dense"``.  An *explicit*
    ``"incremental"`` request is strict — it raises :class:`ValueError`
    when the family or backend cannot honor it — while an
    environment-sourced request degrades silently to ``"dense"`` (the
    variable is a global preference and must not break kernels that never
    had an incremental path).

    DP kernels refine the capability default once the network is known:
    a dense serve set (``n <= max_transmissions + 1``) has no sparsity
    to exploit, so the silent default drops back to ``"dense"`` there
    (explicit and environment requests are honored as asked); see
    :attr:`BatchPolicyKernel.dp_state`.
    """
    explicit = dp_state is not None
    if not explicit:
        dp_state = os.environ.get("REPRO_DP_STATE", "") or None
        if dp_state is None:
            return (
                "incremental"
                if (supports_incremental and workspace)
                else "dense"
            )
    dp_state = str(dp_state).lower()
    if dp_state not in DP_STATE_MODES:
        raise ValueError(
            f"unknown dp_state {dp_state!r}; choose from {DP_STATE_MODES}"
        )
    if dp_state == "incremental" and not (supports_incremental and workspace):
        if explicit:
            if not supports_incremental:
                raise ValueError(
                    "dp_state='incremental' requires a policy family with "
                    "the supports_incremental_dp capability (see "
                    "repro.core.registry.PolicyCapabilities)"
                )
            raise ValueError(
                "dp_state='incremental' is not available on the legacy "
                "backend (it is frozen as the bit-exact baseline); use "
                "backend='numpy' or 'jit'"
            )
        return "dense"
    return dp_state


@dataclass
class BatchIntervalOutcome:
    """What happened during one interval, for every replication at once.

    The batch analogue of :class:`~repro.core.policies.IntervalOutcome`:
    per-link arrays are ``(S, N)``, per-interval scalars are ``(S,)``.

    ``attempts`` (like ``priorities``) is ``None`` when the kernel was
    bound with ``lite=True``: stats-only consumers never read it, and
    skipping the link-space scatter saves a hot-loop pass.
    """

    deliveries: np.ndarray  # (S, N) int64
    attempts: Optional[np.ndarray]  # (S, N) int64 or None (lite mode)
    busy_time_us: np.ndarray  # (S,) float
    overhead_time_us: np.ndarray  # (S,) float
    collisions: np.ndarray  # (S,) int64
    priorities: Optional[np.ndarray] = None  # (S, N) int64 or None


def drain_totals(needed_cum: np.ndarray, backlog: np.ndarray) -> np.ndarray:
    """Per-link total attempts needed to drain the backlog: ``(S, N)``.

    This is ``needed_cum[..., backlog - 1]`` (zero for empty buffers) in
    the draw dtype.  It depends only on the channel draws and the
    arrivals, not on any policy decision, so lockstep simulators sharing
    draw blocks also share this plane (``batch_sim._FanoutDraws``).
    """
    idx = np.maximum(backlog - 1, 0)
    tot = np.take_along_axis(needed_cum, idx[:, :, None], axis=2)[:, :, 0]
    return np.where(backlog > 0, tot, needed_cum.dtype.type(0))


def solve_ordered_service(
    order: np.ndarray,
    backlog: np.ndarray,
    needed_cum: np.ndarray,
    caps: np.ndarray,
    tot_link: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Resolve sequential in-order service for all replications at once.

    Parameters
    ----------
    order:
        ``(S, N)`` — link ids in service order (a permutation per row).
    backlog:
        ``(S, N)`` — packets buffered per *link*.
    needed_cum:
        ``(S, N, A)`` — per link, cumulative attempts needed to deliver
        its first ``t+1`` packets (cumsum of geometric draws).  May be an
        integer or float array; float entries must hold exact integers
        (:class:`_ChunkedChannelDraws` guarantees this).
    caps:
        ``(S, N)`` int64 — per service *position*, the absolute attempt
        ceiling: the link in that position may finish at most
        ``caps - attempts_used_before_it`` attempts before its deadline.
        **Must be non-increasing along axis 1** (true for both constant
        attempt budgets and backoff-staircase budgets, since backoffs grow
        along the service order).

    Returns ``(delivered, attempts, attempts_pos)``: ``delivered`` and
    ``attempts`` are ``(S, N)`` int64 indexed by *link*; ``attempts_pos``
    is the same attempts indexed by service *position* (callers need both
    views, and the position view is a by-product here).

    Why no loop is needed: with ``G`` the cumulative attempts *needed* by
    the first ``j`` links, position ``j`` receives
    ``clip(caps_j - G_{j-1}, 0, needed_j)`` attempts.  This matches the
    sequential recursion because attempts-used equals attempts-needed for
    every link until the first truncated link, and after a truncation the
    non-increasing ceiling starves all later links — the same "budget
    exhausted" outcome the scalar engine produces.  Packet ``t`` of the
    link in position ``j`` is delivered iff ``G_{j-1} + needed_cum[t] <=
    caps_j``.

    The per-packet scan only runs for *partially served* links — positive
    budget short of a full drain.  A drained link delivers its whole
    backlog and a starved one delivers nothing, no packet data needed, and
    the non-increasing cap leaves at most one partial link per row (the
    marginal link at the truncation point), so the scan touches ``O(S*A)``
    elements instead of the full ``(S, N, A)`` block.

    ``tot_link`` — the per-link total attempts needed to drain (cum at
    slot ``backlog - 1``, zero where the backlog is empty) — is recomputed
    when omitted; callers that share draw blocks across lockstep
    simulators pass the cached plane instead (see
    ``batch_sim.share_batch_draws``).
    """
    S = order.shape[0]
    rows = np.arange(S)[:, None]
    work = needed_cum.dtype

    # Total attempts needed to fully drain each link's buffer (its cum at
    # slot backlog-1), then reorder that (S, N) plane into service order.
    if tot_link is None:
        tot_link = drain_totals(needed_cum, backlog)
    tot_pos = tot_link[rows, order]

    cum_needed = np.cumsum(tot_pos, axis=1)
    # Attempts left for each position; computed in the draw dtype so every
    # comparison against the draw block stays in one dtype.
    budget = caps.astype(work) - (cum_needed - tot_pos)
    attempts_pos = np.clip(budget, 0, tot_pos)

    budget_link = np.empty_like(budget)
    budget_link[rows, order] = budget
    full = budget_link >= tot_link
    delivered = np.where(full, backlog, 0)
    partial = (budget_link > 0) & ~full
    if partial.any():
        # needed_cum is increasing along the packet axis, so the number of
        # slots with cum <= budget counts deliverable packets; slots past
        # the backlog have cum >= tot > budget and drop out on their own.
        rp, cp = np.nonzero(partial)
        cum_sel = needed_cum[rp, cp]
        within = (cum_sel <= budget_link[rp, cp, None]).sum(axis=1)
        delivered[rp, cp] = np.minimum(within, backlog[rp, cp])

    attempts = np.empty_like(budget_link)
    attempts[rows, order] = attempts_pos
    return (
        delivered,
        attempts.astype(np.int64),
        attempts_pos.astype(np.int64),
    )


class _ChunkedChannelDraws:
    """Pre-drawn geometric retry counts, :data:`DRAW_CHUNK` intervals deep.

    ``next(rng)`` yields one interval's ``(S, N, A)`` cumulative-attempt
    array; a fresh ``(DRAW_CHUNK, S, N, A)`` block is drawn whenever the
    cache runs dry.

    Draws use inverse-transform sampling, ``g = max(ceil(E / lambda), 1)``
    with ``E`` standard exponential and ``lambda = -log(1 - p)``, which is
    exactly geometric(p) and fills the block roughly twice as fast as
    ``Generator.geometric`` on broadcast probabilities.  The whole block —
    draws and running cumsum — stays in float32 whenever the largest
    reachable cumulative count is below ``2**24`` (small integers are exact
    in float32), halving the memory traffic of this hot path; pathological
    reliabilities fall back to float64, where the sums stay exact below
    ``2**53``.

    With ``state`` (a :class:`~repro.phy.channel.ChannelStateRows`) the
    probabilities are no longer a fixed plane: each refill evolves the
    channel state once per buffered interval and scales that interval's
    draws by its own ``(S, N)`` reliability plane.  Inverse-transform
    sampling makes this nearly free — the exponential stream is
    probability-independent, so dynamic channels reuse the same bulk
    generation and only swap the per-interval scale.  The static path is
    byte-for-byte unchanged when ``state`` is ``None``.
    """

    def __init__(
        self,
        success_probs: np.ndarray,
        num_seeds: int,
        a_max: int,
        *,
        depth: Optional[int] = None,
        fast: bool = True,
        state: Optional[ChannelStateRows] = None,
    ):
        probs = np.asarray(success_probs, dtype=float)
        num_links = probs.shape[-1]
        if probs.ndim == 1:
            # One shared reliability vector: broadcast over replications.
            probs = probs[None, None, :, None]
        else:
            # Per-row reliabilities of a fused stack: (S, N) -> (1, S, N, 1).
            if probs.shape[0] != num_seeds:
                raise ValueError(
                    f"per-row reliabilities cover {probs.shape[0]} rows, "
                    f"stack has {num_seeds}"
                )
            probs = probs[None, :, :, None]
        with np.errstate(divide="ignore"):
            # p == 1 -> lambda = inf -> scale 0 -> g = max(ceil(0), 1) = 1.
            scale = -1.0 / np.log1p(-probs)
        if state is not None:
            # Dynamic planes: the dtype gate must cover the *worst* state
            # any (row, link) can visit, not the stationary plane.
            min_p = float(state.min_success_prob)
            if not 0.0 < min_p <= 1.0:
                raise ValueError(
                    f"channel-state rows report min success prob {min_p}; "
                    "geometric retry draws need 0 < p <= 1 in every state"
                )
            with np.errstate(divide="ignore"):
                worst_scale = float(-1.0 / np.log1p(-min_p))
        else:
            worst_scale = float(scale.max())
        # A float32 standard exponential never exceeds ~89 (= -log of the
        # smallest positive float32 the ziggurat can emit); 128 leaves slack.
        worst_cum = a_max * np.ceil(128.0 * worst_scale + 1.0)
        dtype = np.float32 if worst_cum < 2**24 else np.float64
        self._scale = scale.astype(dtype)
        self._depth = DRAW_CHUNK if depth is None else int(depth)
        self._shape = (self._depth, num_seeds, num_links, a_max)
        self._dtype = dtype
        self._cache: Optional[np.ndarray] = None
        self._pos = self._depth
        # ``fast=False`` keeps the seed engine's exact refill/totals code
        # (``np.cumsum`` chunks, fresh ``drain_totals`` planes) so the
        # legacy backend stays a faithful performance baseline; the
        # workspace backends use the in-place accumulate and the gather
        # below — same values either way.
        self._fast = bool(fast)
        # Drain-totals gather scratch, reused every interval: the flat
        # index of ``cum[s, l, backlog - 1]`` inside a raveled (S, N, A)
        # block is ``(s * N + l) * A + (backlog - 1)``.
        self._tot_base = (
            np.arange(num_seeds * num_links, dtype=np.int64) * a_max
        ).reshape(num_seeds, num_links)
        self._tot_idx = np.empty((num_seeds, num_links), dtype=np.int64)
        self._tot_mask = np.empty((num_seeds, num_links), dtype=bool)
        self._tot2 = np.empty((num_seeds, num_links), dtype=dtype)
        self._gen_buf: Optional[np.ndarray] = None
        self._lazy = False
        self._state = state
        # Per-interval probability planes of one refill block, evolved at
        # refill time and turned into geometric scales in place.
        self._probs_buf = (
            np.empty((self._depth, num_seeds, num_links), dtype=np.float64)
            if state is not None
            else None
        )

    @property
    def dtype(self) -> np.dtype:
        """The draw dtype (float32 unless sums could exceed 2**24)."""
        return np.dtype(self._dtype)

    @property
    def lazy(self) -> bool:
        """True when :meth:`next` yields *raw* exponential draws."""
        return self._lazy

    @property
    def dynamic(self) -> bool:
        """True when a channel-state process evolves the planes."""
        return self._state is not None

    def set_lazy(self) -> None:
        """Switch to raw-draw mode: refills only generate exponentials.

        The scale/ceil/cumsum transform — four full passes over the
        ``(depth, S, N, A)`` block, the dominant ``kernel.dp.setup``
        cost at large N — is skipped; the caller applies it to whatever
        rows it actually gathers (the incremental path's K-sized serve
        set) via :meth:`scale_rows`.  Element order and arithmetic are
        unchanged, so transformed values are bit-identical to eager
        mode's.  Must be selected before the first draw.
        """
        if self._lazy:
            return
        if not self._fast:
            raise RuntimeError("lazy channel draws require the fast engine")
        if self._state is not None:
            # Lazy consumers scale gathered rows by a *static* (S, N)
            # plane (scale_rows); a state process makes that plane
            # per-interval, so the incremental path must stay eager.
            raise RuntimeError(
                "lazy channel draws are static-plane only; dynamic "
                "channel state requires eager (dense) draws"
            )
        if self._cache is not None:
            raise RuntimeError(
                "cannot switch channel-draw transform mode mid-stream"
            )
        self._lazy = True

    def scale_rows(self, num_seeds: int) -> np.ndarray:
        """``(S, N)`` per-(row, link) geometric scales, in draw dtype."""
        s2 = self._scale.reshape(self._scale.shape[1], self._scale.shape[2])
        return np.ascontiguousarray(np.broadcast_to(s2, (num_seeds, s2.shape[1])))

    def next(
        self,
        rng: np.random.Generator,
        state_rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        if self._pos >= self._depth:
            if perf.counters.enabled:
                t0 = perf.clock()
            allocs = 0
            if self._fast:
                # Refill into one persistent buffer — the previous chunk
                # is fully consumed by the time we get here, and the
                # generated stream does not depend on the destination.
                if self._gen_buf is None:
                    self._gen_buf = np.empty(self._shape, dtype=self._dtype)
                    allocs = 1
                draws = self._gen_buf
                rng.standard_exponential(dtype=self._dtype, out=draws)
            else:
                draws = rng.standard_exponential(
                    self._shape, dtype=self._dtype
                )
                allocs = 2  # the draw block plus the cumsum below
            if self._lazy:
                # Raw mode: generation is the whole refill; consumers
                # transform the rows they gather.
                self._cache = draws
            else:
                if self._state is not None:
                    # Evolve the state one step per buffered interval and
                    # turn each interval's (S, N) probability plane into
                    # geometric scales, all in place in the plane buffer:
                    # p -> -1 / log1p(-p), with p == 1 -> scale 0 as in
                    # the static precompute above.
                    p = self._probs_buf
                    self._state.evolve_block(self._depth, state_rng, out=p)
                    np.negative(p, out=p)
                    np.log1p(p, out=p)
                    with np.errstate(divide="ignore"):
                        np.divide(-1.0, p, out=p)
                    np.multiply(
                        draws,
                        p.reshape(self._depth, *self._shape[1:3], 1),
                        out=draws,
                    )
                else:
                    np.multiply(draws, self._scale, out=draws)
                np.ceil(draws, out=draws)
                np.maximum(draws, 1.0, out=draws)
                if self._fast:
                    # Running cumsum along the arrival axis, in place.
                    # The axis is tiny (A slots), so A-1 whole-cube
                    # slice adds beat ``np.cumsum``'s short-segment scan
                    # by ~5x at this shape — identical values, every
                    # partial sum an exact small integer.
                    flat = draws.reshape(-1, self._shape[-1])
                    for a in range(1, self._shape[-1]):
                        np.add(flat[:, a], flat[:, a - 1], out=flat[:, a])
                    self._cache = draws
                else:
                    self._cache = np.cumsum(draws, axis=3)
            self._pos = 0
            if perf.counters.enabled:
                perf.counters.add(
                    "draws.channel_refill", perf.clock() - t0, allocs
                )
        block = self._cache[self._pos]
        self._pos += 1
        return block

    def totals(self, needed_cum: np.ndarray, backlog: np.ndarray) -> np.ndarray:
        """Per-link drain totals for the interval's block (``(S, N)``).

        Same values as :func:`drain_totals` — the running cumsum gathered
        at slot ``backlog - 1``, zero for empty buffers — via one flat
        ``np.take`` into a reused buffer (callers must not mutate or
        retain it across intervals).  Lockstep fan-out wrappers override
        this with a per-serve-cycle cache (the plane depends only on
        draws and arrivals, both shared).
        """
        if self._lazy:
            raise RuntimeError(
                "totals() needs eager (transformed) draws; this instance "
                "is in lazy raw-draw mode"
            )
        if not self._fast:
            return drain_totals(needed_cum, backlog)
        np.subtract(backlog, 1, out=self._tot_idx)
        np.maximum(self._tot_idx, 0, out=self._tot_idx)
        np.add(self._tot_idx, self._tot_base, out=self._tot_idx)
        needed_cum.ravel().take(self._tot_idx.ravel(), out=self._tot2.ravel())
        np.greater(backlog, 0, out=self._tot_mask)
        np.multiply(self._tot2, self._tot_mask, out=self._tot2)
        return self._tot2


class _ChunkedUniforms:
    """Pre-drawn ``random()`` blocks of a fixed per-interval shape.

    Each chunk is one ``Generator.random`` call, so the stream's values
    per interval are independent of ``depth`` (see
    :func:`~repro.sim.rng.draw_chunk_depth`).  The chunk buffer is
    allocated once and refilled in place (``Generator.random(out=...)``
    produces the same values as a fresh allocation), so steady-state
    refills are allocation-free.
    """

    def __init__(self, *per_interval_shape: int, depth: Optional[int] = None):
        self._depth = DRAW_CHUNK if depth is None else int(depth)
        self._shape = (self._depth, *per_interval_shape)
        self._cache: Optional[np.ndarray] = None
        self._pos = self._depth

    def _refill(self, rng: np.random.Generator) -> int:
        """Fill the persistent chunk buffer; returns allocations made."""
        allocs = 0
        if self._cache is None:
            self._cache = np.empty(self._shape)
            allocs = 1
        rng.random(out=self._cache)
        return allocs

    def next(self, rng: np.random.Generator) -> np.ndarray:
        if self._pos >= self._depth:
            if perf.counters.enabled:
                t0 = perf.clock()
            allocs = self._refill(rng)
            self._pos = 0
            if perf.counters.enabled:
                perf.counters.add(
                    "draws.uniform_refill", perf.clock() - t0, allocs
                )
        block = self._cache[self._pos]
        self._pos += 1
        return block


class _ChunkedArgmaxUniforms(_ChunkedUniforms):
    """Uniform chunks consumed only through their per-row argmax.

    The single-pair DP candidate draw needs ``argmax`` over the last axis
    of each interval's ``(S, M)`` uniform slice; computing the argmax for
    the whole ``(depth, S, M)`` chunk once at refill time gives the same
    values (``block.argmax(axis=2)[pos] == block[pos].argmax(axis=1)``)
    while amortizing the reduction's call overhead across the chunk.
    """

    def __init__(self, *per_interval_shape: int, depth: Optional[int] = None):
        super().__init__(*per_interval_shape, depth=depth)
        self._argmax: Optional[np.ndarray] = None

    def next_argmax(self, rng: np.random.Generator) -> np.ndarray:
        if self._pos >= self._depth:
            if perf.counters.enabled:
                t0 = perf.clock()
            allocs = self._refill(rng)
            if self._argmax is None:
                self._argmax = np.empty(self._shape[:2], dtype=np.intp)
                allocs += 1
            np.argmax(self._cache, axis=2, out=self._argmax)
            self._pos = 0
            if perf.counters.enabled:
                perf.counters.add(
                    "draws.uniform_refill", perf.clock() - t0, allocs
                )
        row = self._argmax[self._pos]
        self._pos += 1
        return row


class _ChunkedIntegers:
    """Pre-drawn ``integers(low, high)`` blocks (free-rng discipline only).

    The single-pair DP candidate index is uniform on ``{1, .., n-1}``; the
    lockstep batch schedule derives it as ``1 + argmax`` of an ``(S, n-1)``
    uniform slice so every backend consumes identical generator values.
    The free discipline has no such constraint and draws the integers
    directly — ``(n-1)x`` less generated randomness for the identical
    distribution.
    """

    def __init__(
        self,
        low: int,
        high: int,
        *per_interval_shape: int,
        depth: Optional[int] = None,
    ):
        self._low = int(low)
        self._high = int(high)
        self._depth = DRAW_CHUNK if depth is None else int(depth)
        self._shape = (self._depth, *per_interval_shape)
        self._cache: Optional[np.ndarray] = None
        self._pos = self._depth

    def next(self, rng: np.random.Generator) -> np.ndarray:
        if self._pos >= self._depth:
            if perf.counters.enabled:
                t0 = perf.clock()
            # ``Generator.integers`` has no ``out=`` form; one block
            # allocation per chunk is already O(1) per chunk.
            self._cache = rng.integers(
                self._low, self._high, size=self._shape, dtype=np.int64
            )
            self._pos = 0
            if perf.counters.enabled:
                perf.counters.add(
                    "draws.uniform_refill", perf.clock() - t0, 1
                )
        block = self._cache[self._pos]
        self._pos += 1
        return block


class BatchPolicyKernel(ABC):
    """Base class: one policy family, vectorized across replications."""

    def __init__(self, policy: IntervalMac):
        self.policy = policy
        self.name = policy.name
        self._spec: Optional[NetworkSpec] = None
        self._stack: Optional[SpecStack] = None
        self._row_policies: Optional[List[IntervalMac]] = None
        self._clones: List[IntervalMac] = []

    @property
    def spec(self) -> NetworkSpec:
        """Row 0's spec (the shared spec for homogeneous stacks)."""
        if self._spec is None:
            raise RuntimeError(f"{type(self).__name__} is not bound; call bind()")
        return self._spec

    @property
    def stack(self) -> Optional[SpecStack]:
        """The per-row spec stack, or ``None`` for a single shared spec."""
        return self._stack

    @property
    def dp_state(self) -> str:
        """The bound priority-state mode (:data:`DP_STATE_MODES`).

        Meaningful for DP-family kernels only; other families always
        report ``"dense"``.  May differ from the bind request when the
        kernel had to degrade (multi-pair stacks, degenerate networks)
        or when the capability default declined the incremental path
        because the serve set is not sparse (``n <= max_transmissions
        + 1`` — no win available; explicit requests are honored).
        """
        return getattr(self, "_dp_state", "dense")

    def bind(
        self,
        spec: "NetworkSpec | SpecStack | Sequence[NetworkSpec]",
        num_seeds: int,
        sync_rng: bool,
        row_policies: Optional[Sequence[IntervalMac]] = None,
        *,
        backend: Optional[str] = None,
        lite: bool = False,
        rng: Optional[str] = None,
        dp_state: Optional[str] = None,
    ) -> None:
        """Attach to a network and reset all per-replication state.

        ``spec`` is either one shared :class:`NetworkSpec` (every
        replication simulates the same network — the plain batch engine)
        or a :class:`SpecStack` / sequence of specs, one per replication
        row (the grid-fused engine).  ``row_policies`` optionally supplies
        one policy instance per row; they must match the kernel's policy
        family and configuration except where the kernel supports per-row
        parameters (the DP kernel's swap-bias constants).  Sync mode
        clones *those* per row, so heterogeneous rows stay bit-identical
        to their scalar counterparts.

        ``backend`` picks the interval resolver (:data:`KERNEL_BACKENDS`;
        ``None`` resolves from the environment) — irrelevant in sync mode,
        which always drives the scalar clones.  ``lite=True`` lets the
        kernel skip materializing per-link attempts and priorities
        (``BatchIntervalOutcome`` carries ``None`` instead); only valid
        for stats-only consumers that never read them.

        ``rng`` picks the draw discipline (:data:`~repro.sim.rng.RNG_MODES`;
        ``None`` defers to ``sync_rng``).  Under ``rng="free"`` the kernel
        draws demand-sized blocks from the bundle's independent free
        substreams instead of the lockstep batch schedule — statistically
        equivalent, not bit-identical, and unavailable on the ``legacy``
        backend (which is frozen as the bit-exact baseline).

        ``dp_state`` picks the DP-family priority-state maintenance mode
        (:data:`DP_STATE_MODES`; ``None`` resolves from the environment
        and the family's registry capability).  Bit-identical either way;
        families without the capability ignore it (an explicit
        ``"incremental"`` request on such a family raises).  Sync mode
        always drives the scalar clones, so the knob is moot there.
        """
        if isinstance(spec, SpecStack):
            stack: Optional[SpecStack] = spec
        elif isinstance(spec, NetworkSpec):
            stack = None
        else:
            stack = SpecStack(spec)
        if stack is not None and stack.num_rows != int(num_seeds):
            raise ValueError(
                f"spec stack has {stack.num_rows} rows but the bundle has "
                f"{num_seeds} seeds; a fused stack needs one seed per row"
            )
        first = stack.specs[0] if stack is not None else spec
        if row_policies is not None:
            row_policies = list(row_policies)
            if len(row_policies) != int(num_seeds):
                raise ValueError(
                    f"{len(row_policies)} row policies for {num_seeds} rows"
                )
            for i, p in enumerate(row_policies):
                # Registry-backed family check: rows may mix concrete
                # classes served by the same kernel (DP and DB-DP, ELDF
                # and LDF); per-row *parameters* are vetted by each
                # kernel's _on_bind.
                if not registry.same_kernel_family(p, self.policy):
                    raise TypeError(
                        f"row policy {i} is {type(p).__name__}, kernel "
                        f"serves {type(self.policy).__name__}"
                    )
        self._spec = first
        self._stack = stack
        self._row_policies = row_policies
        self.num_seeds = int(num_seeds)
        timing = first.timing
        self._interval_us = timing.interval_us
        self._data_air = timing.data_airtime_us
        self._empty_air = timing.empty_airtime_us
        self._slot = timing.backoff_slot_us
        self._budget = timing.max_transmissions
        if stack is not None:
            self._a_max = stack.max_arrivals_per_link
            self._reliabilities = stack.reliability_matrix
        else:
            self._a_max = max(1, first.arrivals.max_per_link)
            self._reliabilities = first.reliabilities
        self._backend = resolve_backend(backend)
        self._rng_mode = normalize_rng_mode(rng, sync_rng)
        self._free = self._rng_mode == "free"
        if self._free and self._backend == "legacy":
            raise ValueError(
                "rng='free' is not available on the legacy backend (it is "
                "frozen as the bit-exact baseline); use backend='numpy' or "
                "'jit'"
            )
        chan0 = first.channel
        if not sync_rng:
            # Batched draw pipelines need i.i.d.-within-interval attempts
            # (the geometric pre-draw) plus, for stateful channels, a
            # vectorized per-row state process.  Sync mode drives the
            # scalar clones and supports any channel.
            if not chan0.has_state and not chan0.iid_within_interval:
                raise TypeError(
                    f"{type(chan0).__name__} attempts are not i.i.d. within "
                    "an interval, so the batch engine cannot pre-draw its "
                    "retry counts; use engine='scalar' or sync_rng=True"
                )
            if chan0.has_state:
                if not chan0.supports_batch_state:
                    raise TypeError(
                        f"this {type(chan0).__name__} declines batched "
                        "channel state (a state with zero success "
                        "probability breaks geometric retry draws), so the "
                        "batch engine cannot run it; use engine='scalar' "
                        "or sync_rng=True"
                    )
                if chan0.state_uses_rng and not self._free:
                    raise TypeError(
                        f"{type(chan0).__name__} state cannot evolve under "
                        f"the lockstep '{self._rng_mode}' draw discipline "
                        "of the batch engine; pass rng='free' "
                        "(statistically equivalent) or use engine='scalar'"
                    )
        self._use_ws = self._backend != "legacy" and not sync_rng
        self._use_jit = self._backend == "jit" and not sync_rng
        descriptor = registry.descriptor_for(self.policy)
        self._dp_state_req = dp_state
        self._dp_state = resolve_dp_state(
            dp_state,
            supports_incremental=(
                descriptor is not None
                and descriptor.capabilities.supports_incremental_dp
            ),
            workspace=self._backend != "legacy",
        )
        self._lite = bool(lite) and not sync_rng
        self._depth = (
            draw_chunk_depth(FREE_DRAW_CHUNK if self._free else DRAW_CHUNK)
            if self._use_ws
            else DRAW_CHUNK
        )
        if sync_rng or not chan0.has_state:
            chan_state = None
        else:
            chan_state = type(chan0).stack_rows(
                stack.channels if stack is not None else (chan0,) * self.num_seeds
            )
        self._chan_state_uses_rng = (
            chan_state is not None and chan_state.uses_rng
        )
        self._channel_draws = _ChunkedChannelDraws(
            self._reliabilities,
            self.num_seeds,
            self._a_max,
            depth=self._depth,
            fast=self._use_ws,
            state=chan_state,
        )
        self._rows = np.arange(self.num_seeds)[:, None]
        if sync_rng:
            # One scalar clone per seed: the sync path drives the *scalar*
            # policy with scalar-identical streams, so its outcomes are
            # bit-identical to the scalar engine by construction.  Fused
            # stacks clone each row's own policy and bind each row's own
            # spec.
            sources = (
                row_policies
                if row_policies is not None
                else [self.policy] * self.num_seeds
            )
            row_specs = (
                stack.specs if stack is not None else (first,) * self.num_seeds
            )
            if chan0.has_state:
                # Rows may share one channel object (broadcast stacks);
                # each clone needs its own mutable state, reset exactly
                # like the scalar engine resets at construction.
                row_specs = tuple(
                    dataclasses.replace(rs, channel=copy.deepcopy(rs.channel))
                    for rs in row_specs
                )
                for rs in row_specs:
                    rs.channel.reset_state()
                self._sync_channels: Optional[list] = [
                    rs.channel for rs in row_specs
                ]
            else:
                self._sync_channels = None
            self._clones = [copy.deepcopy(p) for p in sources]
            for clone, row_spec in zip(self._clones, row_specs):
                clone.bind(row_spec)
        else:
            self._sync_channels = None
            self._clones = []
        self._on_bind()

    def _on_bind(self) -> None:
        """Hook for subclasses to (re)initialize batched state."""

    def _kstream(self, rng: BatchRngBundle, name: str) -> np.random.Generator:
        """The vectorized stream ``name`` under the bound rng discipline."""
        if self._free:
            return rng.free_stream(name)
        return rng.batch_stream(name)

    def _chan_rng(
        self, rng: BatchRngBundle
    ) -> Optional[np.random.Generator]:
        """The channel-state evolution stream, or ``None`` if stateless.

        A dedicated stream keeps the retry-draw stream untouched, so the
        Bernoulli draw schedule is bit-identical with or without this
        feature compiled in.
        """
        if getattr(self, "_chan_state_uses_rng", False):
            return self._kstream(rng, "channel-state")
        return None

    def run_interval(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: BatchRngBundle,
        sync_rng: bool,
    ) -> BatchIntervalOutcome:
        if sync_rng:
            return self._run_interval_sync(k, arrivals, positive_debts, rng)
        if self._use_ws:
            return self._run_interval_ws(k, arrivals, positive_debts, rng)
        return self._run_interval_batch(k, arrivals, positive_debts, rng)

    @abstractmethod
    def _run_interval_batch(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: BatchRngBundle,
    ) -> BatchIntervalOutcome:
        """Advance one interval with fully vectorized draws (legacy)."""

    def _run_interval_ws(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: BatchRngBundle,
    ) -> BatchIntervalOutcome:
        """Advance one interval on the preallocated workspace (subclasses
        override; the base falls back to the legacy path)."""
        return self._run_interval_batch(k, arrivals, positive_debts, rng)

    # -- workspace plumbing shared by the concrete kernels -----------------
    def _alloc_common_ws(self) -> SimpleNamespace:
        """Buffers every workspace kernel needs: flat-index planes for the
        gather/scatter steps and the ordered-service solver's scratch.

        All buffers are C-contiguous and owned, so ``.ravel()`` on them is
        a view — flat ``np.take``/fancy-scatter on raveled planes is the
        cheapest gather/scatter at this array size.
        """
        S, n = self.num_seeds, self.spec.num_links
        workf = self._channel_draws.dtype
        w = SimpleNamespace()
        w.workf = workf
        # Row offsets (S, 1) turn (S, n) link/position ids into flat
        # indices of a raveled (S, n) plane.
        w.row_off = (np.arange(S, dtype=np.int64) * n)[:, None]
        w.link_plane = np.tile(np.arange(n, dtype=np.int64), (S, 1))
        # Strict-upper-triangular ones: ``x @ mexcl`` is the exclusive
        # prefix sum of ``x`` along axis 1.  One small BLAS matmul beats
        # ``np.cumsum``'s short-segment scan on (S, n) planes, and stays
        # bit-exact (every product and partial sum is an exact small
        # integer, so the summation order cannot matter).
        w.mexcl = np.triu(np.ones((n, n), dtype=workf), 1)
        # Ordered-service solver scratch.
        w.oflat = np.empty((S, n), dtype=np.int64)  # order + row_off
        w.tot_pos = np.empty((S, n), dtype=workf)
        w.cum = np.empty((S, n), dtype=workf)
        w.budget = np.empty((S, n), dtype=workf)
        w.att_pos = np.empty((S, n), dtype=workf)
        w.budget_link = np.empty((S, n), dtype=workf)
        A = self._a_max
        w.serve3f = np.empty((S, n, A), dtype=workf)
        w.ones_af = np.ones(A, dtype=workf)
        w.countf = np.empty((S, n), dtype=workf)
        w.delivered = np.empty((S, n), dtype=np.int64)
        w.attempts_f = np.empty((S, n), dtype=workf)
        w.attempts_i = np.empty((S, n), dtype=np.int64)
        w.busy = np.empty(S, dtype=np.float64)
        # Row sums as one matvec against ones: a BLAS dot of n exact
        # small integers, bit-equal to ``np.sum`` but without the
        # reduction's per-call overhead.
        w.ones_wf = np.ones(n, dtype=workf)
        w.busyf = np.empty(S, dtype=workf)
        # Shared never-written zero planes for outcome fields the kernel
        # family never produces (safe to alias across intervals).
        w.zerof = np.zeros(S, dtype=np.float64)
        w.zeroi = np.zeros(S, dtype=np.int64)
        w.zeroi2 = np.zeros((S, n), dtype=np.int64)
        return w

    def _solve_ordered_ws(
        self,
        w: SimpleNamespace,
        order: np.ndarray,
        backlog: np.ndarray,
        needed: np.ndarray,
        caps_f: np.ndarray,
    ) -> None:
        """:func:`solve_ordered_service` on workspace buffers.

        Inputs: ``order`` (S, n) int64 service order, ``backlog`` (S, n)
        int64, ``needed`` the interval's cumulative (S, n, A) draw block,
        ``caps_f`` the per-position attempt ceilings in the draw dtype
        (must be non-increasing along axis 1, as in the legacy solver).
        ``w.oflat`` must already hold ``order + w.row_off``.  Results land
        in ``w.delivered`` (int64, by link) and ``w.att_pos`` (draw dtype,
        by position); both match the legacy solver exactly — every
        intermediate is an exact small integer, so the gathered totals
        and in-place clip reproduce the legacy arithmetic bit for bit.
        """
        tot = self._channel_draws.totals(needed, backlog)
        tot.ravel().take(w.oflat.ravel(), out=w.tot_pos.ravel())
        np.matmul(w.tot_pos, w.mexcl, out=w.cum)  # attempts needed before
        np.subtract(caps_f, w.cum, out=w.budget)
        # clip(budget, 0, tot_pos) with tot_pos >= 0.
        np.minimum(w.budget, w.tot_pos, out=w.att_pos)
        np.maximum(w.att_pos, 0, out=w.att_pos)
        w.budget_link.ravel()[w.oflat.ravel()] = w.budget.ravel()
        # A packet is delivered iff its running attempt total fits the
        # link's budget: delivered[s, l] counts slots a < backlog with
        # needed_cum[s, l, a] <= budget_link[s, l].  The cumsums are
        # strictly increasing (every draw >= 1), so that prefix count is
        # ``min(count over the whole axis, backlog)`` — the whole-axis
        # count lands as one small matvec, far cheaper than a bool
        # ``sum(axis=2)`` reduction, and every value stays an exact
        # small integer.  Full drains count exactly backlog; exhausted
        # budgets (<= 0) count zero.
        A = needed.shape[-1]
        np.less_equal(
            needed, w.budget_link[:, :, None], out=w.serve3f, casting="unsafe"
        )
        np.matmul(w.serve3f.reshape(-1, A), w.ones_af, out=w.countf.ravel())
        np.copyto(w.delivered, w.countf, casting="unsafe")
        np.minimum(w.delivered, backlog, out=w.delivered)

    def _run_interval_sync(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: BatchRngBundle,
    ) -> BatchIntervalOutcome:
        """Advance one interval via per-seed scalar clones (exact mode)."""
        S, n = arrivals.shape
        deliveries = np.zeros((S, n), dtype=np.int64)
        attempts = np.zeros((S, n), dtype=np.int64)
        busy = np.zeros(S)
        overhead = np.zeros(S)
        collisions = np.zeros(S, dtype=np.int64)
        priorities = np.zeros((S, n), dtype=np.int64)
        if self._sync_channels is not None:
            # Mirror IntervalSimulator.step(): evolve each row's channel
            # once per interval from that seed's own "channel-state"
            # stream, so sync rows stay bit-identical to scalar runs.
            for ch, bundle in zip(self._sync_channels, rng.bundles):
                ch.begin_interval(bundle.stream("channel-state"))
        for s, (clone, bundle) in enumerate(zip(self._clones, rng.bundles)):
            outcome = clone.run_interval(
                k, arrivals[s], positive_debts[s], bundle
            )
            deliveries[s] = outcome.deliveries
            attempts[s] = outcome.attempts
            busy[s] = outcome.busy_time_us
            overhead[s] = outcome.overhead_time_us
            collisions[s] = outcome.collisions
            if outcome.priorities is not None:
                priorities[s] = outcome.priorities
        return BatchIntervalOutcome(
            deliveries=deliveries,
            attempts=attempts,
            busy_time_us=busy,
            overhead_time_us=overhead,
            collisions=collisions,
            priorities=priorities,
        )


class _BatchOrderedServeKernel(BatchPolicyKernel):
    """Shared machinery for "serve links in some order until time runs out"
    policies (ELDF/LDF, round-robin, static priority): constant attempt
    budget, no backoff slots, no empty packets."""

    def _on_bind(self) -> None:
        self._caps = np.full(
            (self.num_seeds, self.spec.num_links), self._budget, dtype=np.int64
        )
        self._rank_row = np.arange(1, self.spec.num_links + 1, dtype=np.int64)
        if self._use_ws:
            w = self._alloc_common_ws()
            S, n = self.num_seeds, self.spec.num_links
            w.caps_f = np.full((S, n), self._budget, dtype=w.workf)
            w.att_posf = np.empty((S, n), dtype=np.float64)  # jit output
            w.rank_plane = np.tile(self._rank_row, (S, 1))
            w.prios = np.empty((S, n), dtype=np.int64)
            self._ws = w
            if self._use_jit:
                secs = jit_kernels.warm_compile(
                    "serve_rows",
                    np.int64, np.int64, w.workf, np.int64, np.float64,
                )
                if secs and perf.counters.enabled:
                    perf.counters.add("jit.warmup", secs)

    @abstractmethod
    def _service_orders(
        self, k: int, positive_debts: np.ndarray
    ) -> np.ndarray:
        """Return ``(S, N)`` link ids in service order for this interval."""

    def _run_interval_ws(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: BatchRngBundle,
    ) -> BatchIntervalOutcome:
        w = self._ws
        counters = perf.counters
        if counters.enabled:
            t0 = perf.clock()
        order = self._service_orders(k, positive_debts)
        needed = self._channel_draws.next(
            self._kstream(rng, "channel"), self._chan_rng(rng)
        )
        lite = self._lite
        if not arrivals.any():
            # Fast path: nothing buffered anywhere in the stack — nobody
            # transmits (the draws above were still consumed, keeping the
            # stream aligned with the other backends).
            w.att_pos.fill(0)
            w.delivered.fill(0)
            att_pos = w.att_pos
        elif self._use_jit:
            order = np.ascontiguousarray(order)
            jit_kernels.serve_rows(
                order, arrivals, needed, int(self._budget),
                w.delivered, w.att_posf,
            )
            att_pos = w.att_posf
        else:
            np.add(order, w.row_off, out=w.oflat)
            self._solve_ordered_ws(w, order, arrivals, needed, w.caps_f)
            att_pos = w.att_pos
        if att_pos is w.att_pos:
            np.matmul(att_pos, w.ones_wf, out=w.busyf)
            np.multiply(w.busyf, self._data_air, out=w.busy)
        else:  # jit path returns float64 attempt positions
            np.sum(att_pos, axis=1, out=w.busy)
            np.multiply(w.busy, self._data_air, out=w.busy)
        if not lite:
            np.add(order, w.row_off, out=w.oflat)
            w.attempts_f.ravel()[w.oflat.ravel()] = att_pos.ravel()
            np.copyto(w.attempts_i, w.attempts_f, casting="unsafe")
            w.prios.ravel()[w.oflat.ravel()] = w.rank_plane.ravel()
        if counters.enabled:
            counters.add("kernel.serve.interval", perf.clock() - t0)
        return BatchIntervalOutcome(
            deliveries=w.delivered if lite else w.delivered.copy(),
            attempts=None if lite else w.attempts_i.copy(),
            busy_time_us=w.busy if lite else w.busy.copy(),
            overhead_time_us=w.zerof,
            collisions=w.zeroi,
            priorities=None if lite else w.prios.copy(),
        )

    def _run_interval_batch(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: BatchRngBundle,
    ) -> BatchIntervalOutcome:
        S, n = arrivals.shape
        rows = self._rows
        order = self._service_orders(k, positive_debts)
        needed_cum = self._channel_draws.next(
            self._kstream(rng, "channel"), self._chan_rng(rng)
        )
        deliveries, attempts, attempts_pos = solve_ordered_service(
            order, arrivals, needed_cum, self._caps,
            tot_link=self._channel_draws.totals(needed_cum, arrivals),
        )

        priorities = np.empty((S, n), dtype=np.int64)
        priorities[rows, order] = self._rank_row

        busy = attempts_pos.sum(axis=1) * self._data_air
        return BatchIntervalOutcome(
            deliveries=deliveries,
            attempts=attempts,
            busy_time_us=busy,
            overhead_time_us=np.zeros(S),
            collisions=np.zeros(S, dtype=np.int64),
            priorities=priorities,
        )


class BatchELDFKernel(_BatchOrderedServeKernel):
    """ELDF/LDF: stable argsort on ``f(d^+) p`` descending, per row."""

    def __init__(self, policy: ELDFPolicy):
        super().__init__(policy)
        self.influence = policy.influence

    def _on_bind(self) -> None:
        super()._on_bind()
        if self._row_policies is not None:
            for i, p in enumerate(self._row_policies):
                if p.influence != self.influence:
                    raise TypeError(
                        f"row {i} uses influence {p.influence!r}, the "
                        f"kernel uses {self.influence!r}; ELDF rows cannot "
                        "mix influence functions"
                    )
        if self._use_ws:
            # Persistent (S, N) weight plane: f(d+) * p is evaluated into
            # this buffer every interval (influence functions accept
            # ``out=``), so the serve-order stage allocates nothing but
            # argsort's own output.
            self._ws.eldf_w = np.empty(
                (self.num_seeds, self.spec.num_links), dtype=np.float64
            )

    def _service_orders(self, k: int, positive_debts: np.ndarray) -> np.ndarray:
        # _reliabilities is (N,) or, for fused stacks, (S, N); either
        # broadcasts against the (S, N) debt weights.
        if self._use_ws:
            weights = self.influence.value_array(
                positive_debts, out=self._ws.eldf_w
            )
            np.multiply(weights, self._reliabilities, out=weights)
        else:
            weights = (
                self.influence.value_array(positive_debts)
                * self._reliabilities
            )
        if (
            self._use_ws
            and weights.dtype == np.float64
            and weights.flags.c_contiguous
            and weights.min() >= 0.0
        ):
            # Same permutation, sorted as integers: non-negative float64
            # bit patterns order exactly like their values, so negating
            # the int64 view and stable-sorting equals the stable argsort
            # of ``-weights`` — and integer radix sort is measurably
            # faster than float mergesort at these shapes.  (Exotic
            # influence functions yielding negative weights fall through
            # to the float sort below.)
            keys = weights.view(np.int64)
            np.negative(keys, out=keys)
            return np.argsort(keys, axis=1, kind="stable")
        # Stable argsort of -weights: ties keep lowest link first, exactly
        # like the scalar policy's tie-break.
        return np.argsort(-weights, axis=1, kind="stable")


class BatchRoundRobinKernel(_BatchOrderedServeKernel):
    """Rotating strict priority; the rotation is deterministic, so all
    replications share one order per interval."""

    def _on_bind(self) -> None:
        super()._on_bind()
        self._offset = 0
        n = self.spec.num_links
        # All n rotations, precomputed: rotation r is row r.
        base = np.arange(n, dtype=np.int64)
        self._rotations = (base[None, :] + base[:, None]) % n

    def _service_orders(self, k: int, positive_debts: np.ndarray) -> np.ndarray:
        row = self._rotations[self._offset]
        self._offset = (self._offset + 1) % self.spec.num_links
        return np.broadcast_to(row, (self.num_seeds, row.size))


class BatchStaticPriorityKernel(_BatchOrderedServeKernel):
    """One fixed order for every interval and replication."""

    def __init__(self, policy: StaticPriorityPolicy):
        super().__init__(policy)
        self._configured = policy._configured

    def _on_bind(self) -> None:
        super()._on_bind()
        if self._row_policies is not None:
            for i, p in enumerate(self._row_policies):
                if p._configured != self._configured:
                    raise TypeError(
                        f"row {i} configures a different priority vector; "
                        "static-priority rows must share one ordering"
                    )
        n = self.spec.num_links
        if self._configured is None:
            sigma = tuple(range(1, n + 1))
        else:
            if len(self._configured) != n:
                raise ValueError(
                    f"priority vector covers {len(self._configured)} links, "
                    f"network has {n}"
                )
            sigma = validate_priority_vector(self._configured)
        self._order_row = np.asarray(priority_to_link_order(sigma), dtype=np.int64)

    def _service_orders(self, k: int, positive_debts: np.ndarray) -> np.ndarray:
        return np.broadcast_to(
            self._order_row, (self.num_seeds, self._order_row.size)
        )


class BatchDPKernel(BatchPolicyKernel):
    """Algorithm 2 (and DB-DP via its Glauber bias), vectorized.

    Per interval and replication: candidate pairs from the shared stream,
    biased coins, collision-free backoffs, the analytic interval timeline
    (staircase attempt ceilings set by backoff slots and empty-packet
    airtime), and the swap handshake of Eqs. (5)-(8).

    Empty priority-claiming packets couple the timeline: whether one fits
    depends on the airtime used before it, which depends on earlier
    service.  The kernel assumes every wanted empty packet fits (by far
    the common case), solves the whole stack in closed form, then
    *verifies* the assumption per replication; rows where it fails —
    end-of-interval pressure near overload — are re-run with an exact
    sequential sweep over that row's pre-drawn retry counts, so the result
    is identical to sequential evaluation in all cases.
    """

    #: Test hook: route *every* replication through the exact sequential
    #: sweep instead of only assumption-violating ones.  Draws are shared,
    #: so the outcome must be bit-identical to the vectorized path — the
    #: test-suite uses this to prove the closed-form timeline correct.
    _force_sequential = False

    def __init__(self, policy: DPProtocol):
        super().__init__(policy)
        self.bias = policy.bias
        self.num_pairs = policy.num_pairs
        self._initial = policy._initial
        self._active_bias = policy.bias

    def _on_bind(self) -> None:
        if self._row_policies is not None:
            for i, p in enumerate(self._row_policies):
                if p.num_pairs != self.num_pairs:
                    raise TypeError(
                        f"row {i} uses {p.num_pairs} swap pairs, the kernel "
                        f"uses {self.num_pairs}; fused DP rows must agree"
                    )
                if p._initial != self._initial:
                    raise TypeError(
                        f"row {i} configures different initial priorities; "
                        "fused DP rows must share sigma(0)"
                    )
            # Per-row swap-bias constants (e.g. Glauber R) collapse into
            # one vectorized bias; incompatible mixes raise TypeError so
            # callers fall back to per-cell simulation.
            self._active_bias = stack_swap_biases(
                [p.bias for p in self._row_policies]
            )
        else:
            self._active_bias = self.bias
        n = self.spec.num_links
        if self._initial is not None:
            if len(self._initial) != n:
                raise ValueError(
                    f"initial priorities cover {len(self._initial)} links, "
                    f"network has {n}"
                )
            row = np.asarray(self._initial, dtype=np.int64)
        else:
            row = np.arange(1, n + 1, dtype=np.int64)
        self._sigma = np.tile(row, (self.num_seeds, 1))
        if n >= 2 and self.num_pairs > max_swap_pairs(n):
            raise ValueError(
                f"{self.num_pairs} pairs would make the priority chain "
                f"reducible on {n} links; the bound is {max_swap_pairs(n)}"
            )
        P = self.num_pairs if n >= 2 else 0
        self._coin_draws = _ChunkedUniforms(
            self.num_seeds, 2 * P, depth=self._depth
        )
        self._cand_ints: Optional[_ChunkedIntegers] = None
        if self._free and P == 1:
            # Free discipline: draw the single-pair candidate index as a
            # demand-sized integer block instead of (S, n-1) uniforms.
            self._cand_ints = _ChunkedIntegers(
                1, n, self.num_seeds, depth=self._depth
            )
        self._cand_draws = _ChunkedArgmaxUniforms(
            self.num_seeds, max(0, (n - 1) - (P - 1)), depth=self._depth
        )
        self._pair_idx = np.arange(P, dtype=np.int64)[None, :]
        self._position_row = np.arange(n, dtype=np.int64)
        # With integer-valued timing parameters, every dead time is an
        # exact integer and ``floor(x / air)`` provably equals
        # ``floor_divide(x, air)``: the true quotient is either an exact
        # integer (exactly representable, correctly rounded) or at least
        # ``1 / air`` away from one — far beyond the division's half-ulp
        # error.  ``np.divide`` + ``np.floor`` is ~10x faster than
        # ``np.floor_divide``'s divmod loop, so take it when safe.
        # The interval bound additionally keeps the quotient's float32
        # rounding error (q * 2**-24 <= T/air * 2**-24) below that 1/air
        # margin, so the caps divide may land directly in the float32
        # solver dtype.
        self._exact_div = self._interval_us < 2**24 and all(
            float(v).is_integer()
            for v in (
                self._interval_us,
                self._data_air,
                self._slot,
                self._empty_air,
            )
        )
        # The incremental sparse path covers the paper's protocol — one
        # candidate pair on a real network, workspace backends.  Remark-6
        # multi-pair stacks and degenerate (n < 2) networks keep the
        # dense recompute; an explicit request for them degrades loudly.
        #
        # The capability *default* additionally requires a sparse serve
        # set: when every link fits in the interval's transmission
        # budget (n <= max_transmissions + 1, e.g. the paper's N=20
        # video grid with budget 60) the timeline must visit all n
        # positions either way and the incremental path's serve-set
        # selection is pure overhead (BENCH_LARGE_N.json records
        # ~0.8x at N=20) — so the silent default only picks the
        # incremental path where it wins.  Explicit and
        # environment-sourced requests are honored as asked (the path
        # is bit-identical regardless).
        if (
            self._dp_state == "incremental"
            and self._dp_state_req is None
            and not os.environ.get("REPRO_DP_STATE", "")
            and n <= self._budget + 1
        ):
            self._dp_state = "dense"
        if self._dp_state == "incremental" and self._channel_draws.dynamic:
            # The incremental path consumes lazy raw draws scaled by a
            # static (S, N) plane; a channel-state process makes that
            # plane per-interval, so dynamic channels keep the dense
            # recompute (the draws cannot be deferred).
            if self._dp_state_req == "incremental":
                warnings.warn(
                    "dp_state='incremental' requires a static channel "
                    f"plane; {type(self.spec.channel).__name__} evolves "
                    "per interval, so this bind falls back to the dense "
                    "recompute",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self._dp_state = "dense"
        self._use_inc = (
            self._dp_state == "incremental"
            and self._use_ws
            and P == 1
        )
        if self._dp_state == "incremental" and not self._use_inc:
            if self._dp_state_req == "incremental" and self._use_ws:
                warnings.warn(
                    "dp_state='incremental' covers single-pair DP stacks "
                    f"only (num_pairs={self.num_pairs}, n={n}); this bind "
                    "falls back to the dense recompute (bit-identical)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self._dp_state = "dense"
        if self._use_ws:
            if self._use_inc:
                self._alloc_dp_ws_inc()
            else:
                self._alloc_dp_ws(P)

    def _alloc_dp_ws(self, P: int) -> None:
        """Workspace buffers for the in-place DP interval (see
        :meth:`_run_interval_ws`)."""
        w = self._alloc_common_ws()
        S, n = self.num_seeds, self.spec.num_links
        w.caps_f = np.empty((S, n), dtype=w.workf)
        w.att_posf = np.empty((S, n), dtype=np.float64)  # jit att output
        # Link/position-space integer and boolean scratch.
        w.tmpi = np.empty((S, n), dtype=np.int64)
        w.tmpi2 = np.empty((S, n), dtype=np.int64)
        w.inv = np.empty((S, n), dtype=np.int64)
        w.order = np.empty((S, n), dtype=np.int64)
        w.backoff = np.empty((S, n), dtype=np.int64)
        w.bpos = np.empty((S, n), dtype=np.int64)
        w.posn = np.empty((S, n), dtype=np.int64)
        # Single-pair non-candidate backoffs by position have a closed
        # form ``j + 2 * (j > c)``; precomputing all n candidate rows
        # turns the per-interval build into one row gather.
        col = np.arange(n, dtype=np.int64)
        w.bpos_tab = col[None, :] + 2 * (col[None, :] > col[:, None])
        w.row_off_m1 = w.row_off - 1
        w.we = np.zeros((S, n), dtype=bool)
        w.iep = np.empty((S, n), dtype=bool)
        w.fits = np.empty((S, n), dtype=bool)
        w.mm = np.empty((S, n), dtype=bool)
        w.tx = np.empty((S, n), dtype=bool)
        # Timeline floats.  With integer-valued timings every timeline
        # quantity (dead time, start, caps, attempt prefix) is an exact
        # integer bounded by the interval length, so whenever
        # ``interval_us < 2**24`` the whole timeline fits float32 exactly
        # and the divide+floor caps stay provably exact (same 1/air
        # margin argument as ``_exact_div``, with the 2**-24 relative
        # error of float32).  Otherwise fall back to float64, which the
        # legacy int64*float path effectively uses.
        tlf = w.workf if self._exact_div else np.float64
        w.iepf = np.empty((S, n), dtype=tlf)
        w.ebf = np.empty((S, n), dtype=tlf)
        w.mexcl_tl = (
            w.mexcl
            if tlf == w.workf
            else np.triu(np.ones((n, n), dtype=np.float64), 1)
        )
        w.dead = np.empty((S, n), dtype=tlf)
        w.tmpf = np.empty((S, n), dtype=tlf)
        w.attb = np.empty((S, n), dtype=tlf)
        w.start = np.empty((S, n), dtype=tlf)
        # Per-row reductions.
        w.idle = np.empty(S, dtype=np.int64)
        w.ne = np.empty(S, dtype=np.int64)
        w.att_tot = np.empty(S, dtype=np.int64)
        w.eus = np.empty(S, dtype=np.float64)
        w.ovh = np.empty(S, dtype=np.float64)
        # Pair-space scratch (contiguous halves: ``w.xi[:, :P]`` views are
        # ufunc *inputs* only, never raveled out-targets).
        w.cands = np.empty((S, max(P, 1)), dtype=np.int64)[:, :P]
        w.down = np.empty((S, P), dtype=np.int64)
        w.up = np.empty((S, P), dtype=np.int64)
        w.pi = np.empty((S, P), dtype=np.int64)
        w.pi2 = np.empty((S, P), dtype=np.int64)
        w.vs = np.empty((S, P), dtype=np.int64)
        w.vs2 = np.empty((S, P), dtype=np.int64)
        w.bmin = np.empty((S, P), dtype=np.int64)
        w.bmax = np.empty((S, P), dtype=np.int64)
        w.cl = np.empty((S, 2 * P), dtype=np.int64)
        w.clflat = np.empty((S, 2 * P), dtype=np.int64)
        w.ac = np.empty((S, 2 * P), dtype=np.int64)
        w.acb = np.empty((S, 2 * P), dtype=bool)
        w.relc = np.empty((S, 2 * P), dtype=np.float64)
        w.dc = np.empty((S, 2 * P), dtype=np.float64)
        w.xib = np.empty((S, 2 * P), dtype=bool)
        w.xi = np.empty((S, 2 * P), dtype=np.int64)
        w.cd = np.empty((S, P), dtype=bool)
        w.cu = np.empty((S, P), dtype=bool)
        w.cc = np.empty((S, P), dtype=bool)
        w.empty_pairs = np.zeros((S, 0), dtype=np.int64)
        w.rel_flat = np.ascontiguousarray(
            np.broadcast_to(self._reliabilities, (S, n)), dtype=np.float64
        ).ravel()
        if perf.counters.enabled:
            perf.counters.alloc("kernel.dp.bind_workspace", 50)
        self._ws = w
        if self._use_jit:
            secs = jit_kernels.warm_compile(
                "dp_timeline_rows",
                np.int64, np.int64, np.bool_, np.int64, w.workf,
                np.int64, np.float64, np.bool_, tlf, np.int64,
            )
            if secs and perf.counters.enabled:
                perf.counters.add("jit.warmup", secs)

    def _alloc_dp_ws_inc(self) -> None:
        """Workspace for the sparse incremental DP path (see
        :meth:`_run_interval_inc`).

        Deliberately *not* built on :meth:`_alloc_common_ws`: the dense
        solver's (n, n) prefix-sum mask and (S, n, A) compare cube are
        exactly the quadratic footprint this path exists to avoid.  The
        block scratch here is ``(S, K)`` with ``K = min(n,
        max_transmissions + 1)`` — the largest number of links that can
        possibly receive attempts in one interval plus the marginal
        starved one — so memory and per-interval math scale with the
        attempt budget, not the network size.
        """
        S, n = self.num_seeds, self.spec.num_links
        A = self._a_max
        workf = self._channel_draws.dtype
        tlf = workf if self._exact_div else np.float64
        K = min(n, self._budget + 1)
        self._inc_k = K
        self._inc_small = K >= n
        w = SimpleNamespace()
        w.workf = workf
        w.row_off = (np.arange(S, dtype=np.int64) * n)[:, None]
        w.row_off_m1 = w.row_off - 1
        w.link_plane = np.tile(np.arange(n, dtype=np.int64), (S, 1))
        w.tmpi = np.empty((S, n), dtype=np.int64)
        # The persistent sparse priority state: the inverse permutation
        # (priority position -> link), built once here by scatter and
        # afterwards maintained only by the O(commits) writes of the swap
        # commit — never rebuilt from sigma again.
        w.inv = np.empty((S, n), dtype=np.int64)
        np.add(self._sigma, w.row_off_m1, out=w.tmpi)
        w.inv.ravel()[w.tmpi.ravel()] = w.link_plane.ravel()
        # Persistent outcome planes.  Only entries named by the previous
        # interval's serve set (``prev_links``) can be nonzero, so each
        # interval zeroes those K entries instead of the whole plane.
        w.delivered = np.zeros((S, n), dtype=np.int64)
        w.attempts_i = np.zeros((S, n), dtype=np.int64)
        w.prev_links = np.zeros((S, K), dtype=np.int64)
        w.pfscr = np.empty((S, K), dtype=np.int64)
        # Serve-set selection scratch.  Small networks (K >= n) keep the
        # dense path's "copy inv + O(S) candidate fix-ups" order build;
        # large ones select the K lowest backlogged positions.
        if self._inc_small:
            w.order = np.empty((S, n), dtype=np.int64)
        else:
            w.posm = np.empty((S, n), dtype=np.int64)
            w.maskn = np.empty((S, n), dtype=bool)
            w.pflat = np.empty((S, K), dtype=np.int64)
            w.posk_un = np.empty((S, K), dtype=np.int64)
            w.posk = np.empty((S, K), dtype=np.int64)
            w.oflatk = np.empty((S, K), dtype=np.int64)
            w.row_off_k = (np.arange(S, dtype=np.int64) * K)[:, None]
        w.sel_flat = np.empty((S, K), dtype=np.int64)
        # (S, K) block scratch for the closed-form timeline.
        w.blk = np.empty((S, K), dtype=np.int64)
        w.tmpk_i = np.empty((S, K), dtype=np.int64)
        w.idx3 = np.empty((S, K), dtype=np.int64)
        w.delk = np.empty((S, K), dtype=np.int64)
        w.uki = np.empty((S, K), dtype=np.int64)
        w.bk = np.empty((S, K), dtype=np.int64)
        w.bki = np.empty((S, K), dtype=np.int64)
        w.ek = np.empty((S, K), dtype=np.int64)
        w.totk = np.empty((S, K), dtype=workf)
        w.cumk = np.empty((S, K), dtype=workf)
        w.budk = np.empty((S, K), dtype=workf)
        w.uk = np.empty((S, K), dtype=workf)
        w.uksel = np.empty((S, K), dtype=workf)
        w.countk = np.empty((S, K), dtype=workf)
        w.capk = np.empty((S, K), dtype=workf)
        w.deadk = np.empty((S, K), dtype=tlf)
        w.tmpk = np.empty((S, K), dtype=tlf)
        w.boolk = np.empty((S, K), dtype=bool)
        w.boolk2 = np.empty((S, K), dtype=bool)
        w.boolk3 = np.empty((S, K), dtype=bool)
        w.boolk4 = np.empty((S, K), dtype=bool)
        w.needk2 = np.empty((S * K, A), dtype=workf)
        w.needk3 = w.needk2.reshape(S, K, A)
        w.cmpk2 = np.empty((S * K, A), dtype=workf)
        w.cmpk3 = w.cmpk2.reshape(S, K, A)
        w.ones_k = np.ones(K, dtype=workf)
        w.ones_af = np.ones(A, dtype=workf)
        if not self._use_jit:
            # Lazy channel draws: refills stop transforming the whole
            # (depth, S, N, A) block; this path transforms only the
            # (S, K, A) serve-set rows it gathers each interval.
            self._channel_draws.set_lazy()
            w.chan_scale = self._channel_draws.scale_rows(S)
            w.scalek = np.empty((S * K, 1), dtype=workf)
            w.skoff = (np.arange(S * K, dtype=np.int64) * A).reshape(S, K)
            w.cum_row = None  # (n, A) scratch, built on first misfit row
        # Pair scratch — same shapes as the dense path (P == 1 here).
        w.cands = np.empty((S, 1), dtype=np.int64)
        w.candm1 = np.empty((S, 1), dtype=np.int64)
        w.pi = np.empty((S, 1), dtype=np.int64)
        w.pi2 = np.empty((S, 1), dtype=np.int64)
        w.down = np.empty((S, 1), dtype=np.int64)
        w.up = np.empty((S, 1), dtype=np.int64)
        w.vs = np.empty((S, 1), dtype=np.int64)
        w.vs2 = np.empty((S, 1), dtype=np.int64)
        w.bmin = np.empty((S, 1), dtype=np.int64)
        w.bmax = np.empty((S, 1), dtype=np.int64)
        w.cl = np.empty((S, 2), dtype=np.int64)
        w.clflat = np.empty((S, 2), dtype=np.int64)
        w.ac = np.empty((S, 2), dtype=np.int64)
        w.acb = np.empty((S, 2), dtype=bool)
        w.relc = np.empty((S, 2), dtype=np.float64)
        w.dc = np.empty((S, 2), dtype=np.float64)
        w.xib = np.empty((S, 2), dtype=bool)
        w.xi = np.empty((S, 2), dtype=np.int64)
        w.cd = np.empty((S, 1), dtype=bool)
        w.cc = np.empty((S, 1), dtype=bool)
        w.wa = np.empty(S, dtype=bool)
        w.wb = np.empty(S, dtype=bool)
        # Per-row scalars of the candidate columns.
        w.att_tot_f = np.empty(S, dtype=workf)
        w.att_a = np.empty(S, dtype=workf)
        w.ua = np.empty(S, dtype=workf)
        w.att_b = np.empty(S, dtype=workf)
        w.start_a = np.empty(S, dtype=np.float64)
        w.start_b = np.empty(S, dtype=np.float64)
        w.tmps = np.empty(S, dtype=np.float64)
        w.fits_a = np.empty(S, dtype=bool)
        w.fits_b = np.empty(S, dtype=bool)
        w.txa = np.empty(S, dtype=bool)
        w.t1 = np.empty(S, dtype=bool)
        w.t2 = np.empty(S, dtype=bool)
        w.ne = np.empty(S, dtype=np.int64)
        w.idle = np.empty(S, dtype=np.int64)
        w.tmpi_s = np.empty(S, dtype=np.int64)
        w.att_tot_i = np.empty(S, dtype=np.int64)  # jit body output
        w.eus = np.empty(S, dtype=np.float64)
        w.busy = np.empty(S, dtype=np.float64)
        w.ovh = np.empty(S, dtype=np.float64)
        w.zeroi = np.zeros(S, dtype=np.int64)
        w.rel_flat = np.ascontiguousarray(
            np.broadcast_to(self._reliabilities, (S, n)), dtype=np.float64
        ).ravel()
        if perf.counters.enabled:
            perf.counters.alloc("kernel.dp.bind_workspace", 60)
        self._ws = w
        if self._use_jit:
            secs = jit_kernels.warm_compile(
                "dp_incremental_rows",
                np.int64, np.int64, np.bool_, np.bool_, np.bool_,
                np.int64, np.int64, np.int64, workf, np.int64, np.int64,
                np.int64, np.int64, np.int64, np.int64, np.bool_,
                np.float64,
            )
            if secs and perf.counters.enabled:
                perf.counters.add("jit.warmup", secs)

    def _run_interval_inc(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: BatchRngBundle,
    ) -> BatchIntervalOutcome:
        """One DP interval on the incrementally maintained sparse state.

        Same draws, same arithmetic, same outcomes as the dense
        :meth:`_run_interval_ws` — proven bit-identical in
        ``tests/sim/test_incremental_dp.py`` — but the per-interval work
        is reshaped around what one interval can actually change:

        * the inverse permutation persists in the workspace; the commit
          applies the accepted adjacent swap with O(commits) element
          writes instead of re-deriving the order from sigma (O(S*N));
        * only the serve set — the first ``K = min(n, budget + 1)``
          backlogged links in priority order, which provably covers every
          link that can receive an attempt — enters the timeline solve,
          so the block math is ``(S, K)`` instead of the dense solver's
          ``(S, N)`` planes and (n, n)/(S, N, A) products;
        * the two candidate positions (the only ones with data-dependent
          backoffs or empty claims) are handled by per-row scalar
          columns, which is what makes the serve-set reduction exact.

        Outcome planes persist across intervals with sparse zeroing of
        the previous serve set, so no O(S*N) fill appears anywhere in the
        steady-state loop (the dense path's per-interval ``sigma.copy()``
        for the outcome remains, and is skipped in lite mode).
        """
        w = self._ws
        counters = perf.counters
        S, n = arrivals.shape
        T = self._interval_us
        air = self._data_air
        slot = self._slot
        empty_air = self._empty_air
        lite = self._lite
        sigma = self._sigma
        sigma_out = None if lite else sigma.copy()
        K = self._inc_k
        if counters.enabled:
            t0 = perf.clock()

        # -- setup: candidate pair, coins, backoffs (all O(S)) -------------
        cands = self._draw_candidates_ws(rng)
        np.add(cands, w.row_off, out=w.pi2)
        np.subtract(w.pi2, 1, out=w.pi)
        inv_flat = w.inv.ravel()
        inv_flat.take(w.pi.ravel(), out=w.down.ravel())
        inv_flat.take(w.pi2.ravel(), out=w.up.ravel())
        w.cl[:, :1] = w.down
        w.cl[:, 1:] = w.up
        np.add(w.cl, w.row_off, out=w.clflat)
        clflat = w.clflat.ravel()
        w.rel_flat.take(clflat, out=w.relc.ravel())
        positive_debts.ravel().take(clflat, out=w.dc.ravel())
        mu = self._active_bias.mu_batch(w.cl, w.dc, w.relc)
        if not (mu.min() > 0.0 and mu.max() < 1.0):
            raise ValueError(
                "swap bias returned mu outside (0, 1); Algorithm 2 "
                "requires a non-degenerate coin"
            )
        coins = self._coin_draws.next(self._kstream(rng, "policy"))
        np.less(coins, mu, out=w.xib)
        np.multiply(w.xib, 2, out=w.xi)
        np.subtract(w.xi, 1, out=w.xi)
        arrivals.ravel().take(clflat, out=w.ac.ravel())
        np.equal(w.ac, 0, out=w.acb)
        np.logical_not(w.xib[:, :1], out=w.cd)
        np.logical_and(w.cd, w.xib[:, 1:], out=w.cc)
        rc = np.flatnonzero(w.cc[:, 0])
        cdx = cands[rc, 0]
        cdm1 = cdx - 1
        np.subtract(cands, w.xi[:, :1], out=w.vs)
        np.subtract(cands, w.xi[:, 1:], out=w.vs2)
        np.add(w.vs2, 1, out=w.vs2)
        np.minimum(w.vs, w.vs2, out=w.bmin)
        np.maximum(w.vs, w.vs2, out=w.bmax)
        np.subtract(cands, 1, out=w.candm1)
        # Wants-empty by *position*: position c-1 holds the down-link
        # normally and the up-link on commit-coin rows, position c the
        # other one (exactly the dense path's iep fix-ups).
        np.copyto(w.wa, w.acb[:, 0])
        np.copyto(w.wb, w.acb[:, 1])
        if rc.size:
            w.wa[rc] = w.acb[rc, 1]
            w.wb[rc] = w.acb[rc, 0]
        needed = self._channel_draws.next(
            self._kstream(rng, "channel"), self._chan_rng(rng)
        )
        if counters.enabled:
            counters.add("kernel.dp.setup", perf.clock() - t0)
            t0 = perf.clock()

        use_jit = self._use_jit and not self._force_sequential
        inc_allocs = 0
        if not use_jit:
            # -- incremental: sparse zeroing + serve-set selection ---------
            # Zero the entries the *previous* interval touched (its serve
            # set), then select this interval's serve set: the K lowest
            # backlogged priority positions, with the candidate pair's
            # position fix-ups applied on commit-coin rows.
            np.add(w.prev_links, w.row_off, out=w.pfscr)
            w.delivered.ravel()[w.pfscr.ravel()] = 0
            if not lite:
                w.attempts_i.ravel()[w.pfscr.ravel()] = 0
            if self._inc_small:
                order = w.order
                np.copyto(order, w.inv)
                if rc.size:
                    order[rc, cdm1] = w.up[rc, 0]
                    order[rc, cdx] = w.down[rc, 0]
                np.add(order, w.row_off, out=w.sel_flat)
                posk = w.link_plane
            else:
                np.subtract(sigma, 1, out=w.posm)
                if rc.size:
                    w.posm[rc, w.down[rc, 0]] = cdx
                    w.posm[rc, w.up[rc, 0]] = cdm1
                np.equal(arrivals, 0, out=w.maskn)
                np.copyto(w.posm, n, where=w.maskn)
                # The K smallest positions (argpartition), then sorted into
                # service order; np.argpartition/argsort have no out=
                # variant, so these are the path's two accepted per-interval
                # allocations (reported via the stage's alloc count).
                part = np.argpartition(w.posm, K - 1, axis=1)[:, :K]
                np.add(part, w.row_off, out=w.pflat)
                w.posm.ravel().take(w.pflat.ravel(), out=w.posk_un.ravel())
                ordk = np.argsort(w.posk_un, axis=1)
                np.add(ordk, w.row_off_k, out=w.oflatk)
                w.posk_un.ravel().take(w.oflatk.ravel(), out=w.posk.ravel())
                w.pflat.ravel().take(w.oflatk.ravel(), out=w.sel_flat.ravel())
                posk = w.posk
                inc_allocs = 2
            np.subtract(w.sel_flat, w.row_off, out=w.prev_links)
        if counters.enabled:
            counters.add("kernel.dp.incremental", perf.clock() - t0, inc_allocs)
            t0 = perf.clock()

        # -- timeline ------------------------------------------------------
        if use_jit:
            # The compiled sweep maintains its own touched set (it zeroes
            # and refills prev_links) and resolves each row's timeline
            # exactly, stopping at the first position past the candidate
            # pair whose attempt ceiling is provably exhausted.
            jit_kernels.dp_incremental_rows(
                w.inv, w.cands[:, 0], w.cc[:, 0], w.wa, w.wb,
                w.bmin[:, 0], w.bmax[:, 0],
                arrivals, needed,
                float(T), float(air), float(slot), float(empty_air),
                w.delivered, w.attempts_i, not lite,
                w.prev_links, w.att_tot_i,
                w.ne, w.idle, w.txa, w.start_a,
            )
            np.multiply(w.att_tot_i, air, out=w.busy)
        else:
            active = bool(arrivals.any())
            lazy = self._channel_draws.lazy
            if active:
                arrivals.ravel().take(w.sel_flat.ravel(), out=w.blk.ravel())
                # Per-link drain totals, gathered only for the serve set.
                np.subtract(w.blk, 1, out=w.tmpk_i)
                np.maximum(w.tmpk_i, 0, out=w.tmpk_i)
                if lazy:
                    # Raw draws: gather the serve-set rows first, then
                    # apply the scale/ceil/cumsum transform to just the
                    # (S, K, A) block — same element order and
                    # arithmetic as the eager whole-block transform, so
                    # the values are bit-identical.
                    needed.reshape(S * n, -1).take(
                        w.sel_flat.ravel(), axis=0, out=w.needk2
                    )
                    w.chan_scale.ravel().take(
                        w.sel_flat.ravel(), out=w.scalek.ravel()
                    )
                    np.multiply(w.needk2, w.scalek, out=w.needk2)
                    np.ceil(w.needk2, out=w.needk2)
                    np.maximum(w.needk2, 1.0, out=w.needk2)
                    np.cumsum(w.needk2, axis=1, out=w.needk2)
                    np.add(w.skoff, w.tmpk_i, out=w.idx3)
                    w.needk2.ravel().take(
                        w.idx3.ravel(), out=w.totk.ravel()
                    )
                else:
                    np.multiply(w.sel_flat, self._a_max, out=w.idx3)
                    np.add(w.idx3, w.tmpk_i, out=w.idx3)
                    needed.ravel().take(w.idx3.ravel(), out=w.totk.ravel())
                np.greater(w.blk, 0, out=w.boolk)
                np.multiply(w.totk, w.boolk, out=w.totk)
                # Backoff staircase by position: j below the pair, j + 2
                # above it, the candidate pair's own backoffs in between.
                np.greater(posk, cands, out=w.boolk2)
                np.multiply(w.boolk2, 2, out=w.bk)
                np.add(w.bk, posk, out=w.bk)
                np.equal(posk, w.candm1, out=w.boolk3)
                np.copyto(w.bk, w.bmin, where=w.boolk3)
                np.equal(posk, cands, out=w.boolk4)
                np.copyto(w.bk, w.bmax, where=w.boolk4)
                # Empties *wanted* before each position: wa counts past
                # position c-1, wb past position c (the dense iep prefix).
                np.greater(posk, w.candm1, out=w.boolk3)
                np.logical_and(w.boolk3, w.wa[:, None], out=w.boolk3)
                np.greater(posk, cands, out=w.boolk4)
                np.logical_and(w.boolk4, w.wb[:, None], out=w.boolk4)
                np.copyto(w.ek, w.boolk3, casting="unsafe")
                np.add(w.ek, w.boolk4, out=w.ek)
                # Attempt ceilings (same divide/floor discipline as dense).
                np.multiply(w.bk, slot, out=w.deadk)
                np.multiply(w.ek, empty_air, out=w.tmpk)
                np.add(w.deadk, w.tmpk, out=w.deadk)
                np.subtract(T, w.deadk, out=w.deadk)
                if self._exact_div:
                    np.divide(w.deadk, air, out=w.capk)
                    np.floor(w.capk, out=w.capk)
                else:
                    np.floor_divide(w.deadk, air, out=w.deadk)
                    np.copyto(w.capk, w.deadk, casting="unsafe")
                np.cumsum(w.totk, axis=1, out=w.cumk)
                np.subtract(w.cumk, w.totk, out=w.cumk)  # exclusive prefix
                np.subtract(w.capk, w.cumk, out=w.budk)
                np.minimum(w.budk, w.totk, out=w.uk)
                np.maximum(w.uk, 0, out=w.uk)
                # Delivered counts off the serve set's draw rows only
                # (already gathered and transformed above in lazy mode).
                if not lazy:
                    needed.reshape(S * n, -1).take(
                        w.sel_flat.ravel(), axis=0, out=w.needk2
                    )
                np.less_equal(
                    w.needk3, w.budk[:, :, None], out=w.cmpk3,
                    casting="unsafe",
                )
                np.matmul(w.cmpk2, w.ones_af, out=w.countk.ravel())
                np.copyto(w.delk, w.countk, casting="unsafe")
                np.minimum(w.delk, w.blk, out=w.delk)
                w.delivered.ravel()[w.sel_flat.ravel()] = w.delk.ravel()
                if not lite:
                    np.copyto(w.uki, w.uk, casting="unsafe")
                    w.attempts_i.ravel()[w.sel_flat.ravel()] = w.uki.ravel()
                np.greater(w.uk, 0, out=w.boolk)
                np.multiply(w.bk, w.boolk, out=w.bki)
                w.bki.max(axis=1, out=w.idle)
                np.matmul(w.uk, w.ones_k, out=w.att_tot_f)
                np.less(posk, w.candm1, out=w.boolk2)
                np.multiply(w.uk, w.boolk2, out=w.uksel)
                np.matmul(w.uksel, w.ones_k, out=w.att_a)
                np.equal(posk, w.candm1, out=w.boolk2)
                np.multiply(w.uk, w.boolk2, out=w.uksel)
                np.matmul(w.uksel, w.ones_k, out=w.ua)
            else:
                # Whole stack idle: draws were consumed, nothing transmits
                # data; candidate empty claims are still resolved below.
                w.att_tot_f.fill(0)
                w.att_a.fill(0)
                w.ua.fill(0)
                w.idle.fill(0)
            np.add(w.att_a, w.ua, out=w.att_b)
            # Candidate service starts under the all-empties-fit
            # assumption, then the fit check (dense semantics verbatim).
            np.multiply(w.att_a, air, out=w.start_a)
            np.multiply(w.bmin[:, 0], slot, out=w.tmps)
            np.add(w.start_a, w.tmps, out=w.start_a)
            np.multiply(w.att_b, air, out=w.start_b)
            np.multiply(w.bmax[:, 0], slot, out=w.tmps)
            np.add(w.start_b, w.tmps, out=w.start_b)
            np.multiply(w.wa, empty_air, out=w.tmps)
            np.add(w.start_b, w.tmps, out=w.start_b)
            if empty_air > 0:
                np.less_equal(w.start_a, T - empty_air, out=w.fits_a)
                np.less_equal(w.start_b, T - empty_air, out=w.fits_b)
            else:
                np.less(w.start_a, T, out=w.fits_a)
                np.less(w.start_b, T, out=w.fits_b)
            np.logical_and(w.fits_a, w.wa, out=w.fits_a)
            np.logical_and(w.fits_b, w.wb, out=w.fits_b)
            if self._force_sequential:
                for s in range(S):
                    self._resolve_row_inc(
                        s, arrivals, needed, posk, active, from_start=True
                    )
            else:
                np.logical_not(w.fits_a, out=w.t1)
                np.logical_and(w.t1, w.wa, out=w.t1)
                np.logical_not(w.fits_b, out=w.t2)
                np.logical_and(w.t2, w.wb, out=w.t2)
                np.logical_or(w.t1, w.t2, out=w.t1)
                if w.t1.any():
                    for s in np.flatnonzero(w.t1):
                        self._resolve_row_inc(
                            int(s), arrivals, needed, posk, active
                        )
            np.greater(w.ua, 0, out=w.txa)
            np.logical_or(w.txa, w.fits_a, out=w.txa)
            np.copyto(w.ne, w.fits_a, casting="unsafe")
            np.add(w.ne, w.fits_b, out=w.ne)
            # Fitting empty claims also count as transmissions for the
            # idle-slot bound (dense: tx = attempts | fits by position).
            np.multiply(w.bmin[:, 0], w.fits_a, out=w.tmpi_s)
            np.maximum(w.idle, w.tmpi_s, out=w.idle)
            np.multiply(w.bmax[:, 0], w.fits_b, out=w.tmpi_s)
            np.maximum(w.idle, w.tmpi_s, out=w.idle)
            np.multiply(w.att_tot_f, air, out=w.busy)
        np.multiply(w.ne, empty_air, out=w.eus)
        np.add(w.busy, w.eus, out=w.busy)
        np.multiply(w.idle, slot, out=w.ovh)
        np.add(w.ovh, w.eus, out=w.ovh)
        if counters.enabled:
            counters.add("kernel.dp.timeline", perf.clock() - t0)
            t0 = perf.clock()

        # -- commit: O(commits) upkeep of sigma AND the persistent inverse -
        if rc.size:
            live = w.txa[rc] & (w.start_a[rc] + air <= T)
            rcc = rc[live]
            if rcc.size:
                csel = cands[rcc, 0]
                dl = w.down[rcc, 0]
                ul = w.up[rcc, 0]
                sigma[rcc, dl] = csel + 1
                sigma[rcc, ul] = csel
                w.inv[rcc, csel - 1] = ul
                w.inv[rcc, csel] = dl
        if counters.enabled:
            counters.add("kernel.dp.commit", perf.clock() - t0)
        return BatchIntervalOutcome(
            deliveries=w.delivered if lite else w.delivered.copy(),
            attempts=None if lite else w.attempts_i.copy(),
            busy_time_us=w.busy if lite else w.busy.copy(),
            overhead_time_us=w.ovh if lite else w.ovh.copy(),
            collisions=w.zeroi,
            priorities=sigma_out,
        )

    def _resolve_row_inc(
        self,
        s: int,
        arrivals: np.ndarray,
        needed: np.ndarray,
        posk: np.ndarray,
        active: bool,
        from_start: bool = False,
    ) -> None:
        """Exact sequential sweep of one row for the incremental path.

        The incremental analogue of :meth:`_resolve_row_sequential`: the
        vectorized solve assumed every wanted empty claim fits, so the
        first wrong column is the earliest misfitting claim — position
        ``c - 1`` if the up-mover's claim misfit, else ``c``.  Everything
        strictly before it (attempt counts, drain totals, the idle
        high-water of the prefix) is already exact, so the sweep resumes
        there: zero the serve-set entries at positions >= the resume
        point, walk forward with the dense path's scalar arithmetic, and
        stop once every later position's attempt ceiling is provably
        exhausted (no claims remain past ``c``).  Every link that can
        receive attempts is in the serve set, so the zero-then-rewrite of
        the suffix is complete.  ``from_start`` (the force-sequential
        verification mode) walks the whole row instead and trusts nothing
        from the vector pass; ``active=False`` marks the vector per-entry
        tables (uk/bk) as not computed this interval, which is only
        consistent with an empty prefix.  Writes the per-row outputs
        (att_tot, ua, idle, fits, start_a) in the workspace; the caller's
        idle fold for fitting claims runs afterwards and is idempotent
        with the walk's own idle updates.
        """
        w = self._ws
        T = self._interval_us
        air = self._data_air
        slot = self._slot
        empty_air = self._empty_air
        n = self.spec.num_links
        track = not self._lite
        c = int(w.cands[s, 0])
        swap = bool(w.cc[s, 0])
        wa = bool(w.wa[s])
        wb = bool(w.wb[s])
        bmin = int(w.bmin[s, 0])
        bmax = int(w.bmax[s, 0])
        sel = w.sel_flat[s]
        pos_row = posk[s]
        if from_start:
            j0 = 0
            i0 = 0
            att_total = 0
            ua = 0
            fa = False
            sta = 0.0
        elif wa and not bool(w.fits_a[s]):
            j0 = c - 1
            i0 = int(np.searchsorted(pos_row, j0))
            att_total = int(w.att_a[s])
            ua = 0
            fa = False
            sta = 0.0
        else:
            j0 = c
            i0 = int(np.searchsorted(pos_row, j0))
            att_total = int(w.att_b[s])
            ua = int(w.ua[s])
            fa = bool(w.fits_a[s])
            sta = float(w.start_a[s])
        ef = 1 if fa else 0
        fb = False
        idle = 0
        if i0 > 0 and active:
            # Idle high-water of the untouched prefix: backoffs of the
            # serve-set entries that actually transmitted data (fitting
            # claims are folded in by the caller).
            uk_row = w.uk[s]
            bk_row = w.bk[s]
            for i in range(i0):
                if uk_row[i] > 0:
                    b = int(bk_row[i])
                    if b > idle:
                        idle = b
        w.delivered.ravel()[sel[i0:]] = 0
        if track:
            w.attempts_i.ravel()[sel[i0:]] = 0
        inv_row = w.inv[s]
        arr_row = arrivals[s]
        if self._channel_draws.lazy:
            # Raw draws: transform this row's whole (n, A) plane into a
            # reused scratch.  Only misfitting-claim rows come through
            # here, so the O(n*A) pass stays off the steady-state path.
            scratch = w.cum_row
            if scratch is None:
                scratch = w.cum_row = np.empty(
                    needed.shape[1:], dtype=needed.dtype
                )
            np.multiply(
                needed[s], w.chan_scale[s][:, None], out=scratch
            )
            np.ceil(scratch, out=scratch)
            np.maximum(scratch, 1.0, out=scratch)
            np.cumsum(scratch, axis=1, out=scratch)
            cum_rows = scratch
        else:
            cum_rows = needed[s]
        delivered = w.delivered
        attempts = w.attempts_i
        for j in range(j0, n):
            if j == c - 1:
                link = int(inv_row[c]) if swap else int(inv_row[c - 1])
                b = bmin
            elif j == c:
                link = int(inv_row[c - 1]) if swap else int(inv_row[c])
                b = bmax
            elif j > c:
                link = int(inv_row[j])
                b = j + 2
            else:
                link = int(inv_row[j])
                b = j
            backlog = int(arr_row[link])
            dead = b * slot + ef * empty_air
            start = att_total * air + dead
            if j == c - 1:
                sta = start
            if backlog > 0:
                cap = int((T - dead) // air)
                budget = cap - att_total
                if budget > 0:
                    cum = cum_rows[link]
                    tot = int(cum[backlog - 1])
                    if tot <= budget:
                        used = tot
                        served = backlog
                    else:
                        used = budget
                        served = bisect_right(cum, budget, 0, backlog)
                    att_total += used
                    delivered[s, link] = served
                    if track:
                        attempts[s, link] = used
                    if b > idle:
                        idle = b
                    if j == c - 1:
                        ua = used
            elif (j == c - 1 and wa) or (j == c and wb):
                if empty_air > 0:
                    fits = start + empty_air <= T
                else:
                    fits = start < T
                if fits:
                    ef += 1
                    if b > idle:
                        idle = b
                    if j == c - 1:
                        fa = True
                    else:
                        fb = True
            # Positions past j all carry backoff >= j + 3 (the candidate
            # pair is behind us), so once that ceiling is exhausted no
            # later link can transmit and no claims remain — stop.
            if j >= c and int((T - (j + 3) * slot - ef * empty_air) // air) <= att_total:
                break
        w.att_tot_f[s] = att_total
        w.ua[s] = ua
        w.idle[s] = idle
        w.fits_a[s] = fa
        w.fits_b[s] = fb
        w.start_a[s] = sta

    @property
    def priorities(self) -> np.ndarray:
        """Current ``(S, N)`` priority stack (sigma per replication)."""
        if self._clones:
            return np.asarray([c.priorities for c in self._clones], dtype=np.int64)
        return self._sigma.copy()

    def _draw_candidates(self, rng: BatchRngBundle, S: int, n: int) -> np.ndarray:
        """``(S, P)`` sorted non-consecutive candidate indices per row."""
        P = self.num_pairs
        shared = self._kstream(rng, "shared")
        if P == 1:
            draws = self._cand_draws.next(shared)  # (S, n-1) uniforms
            return 1 + np.argmax(draws, axis=1, keepdims=True).astype(np.int64)
        # Gap bijection (see draw_candidate_indices): uniform P-subsets of
        # [1, M] with M = (n - 1) - (P - 1), then shift the i-th smallest
        # by i.  The subset comes from the first P slots of a uniform
        # permutation (argsort of i.i.d. uniforms).
        draws = self._cand_draws.next(shared)
        subset = np.sort(np.argsort(draws, axis=1)[:, :P] + 1, axis=1)
        return subset + self._pair_idx

    def _draw_candidates_ws(self, rng: BatchRngBundle) -> np.ndarray:
        """Workspace candidate draw: same stream consumption and values as
        :meth:`_draw_candidates`, buffered for the single-pair case.

        Under ``rng="free"`` the single-pair candidate comes from a direct
        integer block (:class:`_ChunkedIntegers`) instead of the argmax of
        an ``(S, n-1)`` uniform slice — same uniform-on-``{1..n-1}``
        distribution, a fraction of the generated randomness.  Both
        priority-state paths draw through here, so they consume identical
        generator values in identical order.
        """
        if self.num_pairs == 1:
            if self._free:
                row = self._cand_ints.next(rng.free_stream("shared"))
                np.copyto(self._ws.cands[:, 0], row)
                return self._ws.cands
            am = self._cand_draws.next_argmax(rng.batch_stream("shared"))
            np.add(am, 1, out=self._ws.cands[:, 0])
            return self._ws.cands
        S, n = self.num_seeds, self.spec.num_links
        return self._draw_candidates(rng, S, n)

    def _run_interval_ws(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: BatchRngBundle,
    ) -> BatchIntervalOutcome:
        """The legacy DP interval, re-expressed over the bound workspace.

        Same stages and the same arithmetic as
        :meth:`_run_interval_batch`, but every (S, n)-sized intermediate
        lands in a preallocated buffer via ``out=`` ufuncs / flat
        ``np.take`` gathers, the inverse priority permutation comes from a
        scatter instead of an argsort, and the ordered-service solver and
        swap commit are short-circuited when provably idle.  Under
        ``backend="jit"`` the timeline block (empty-claim accounting +
        ordered service) is one compiled per-row sweep instead.
        """
        if self._use_inc:
            return self._run_interval_inc(k, arrivals, positive_debts, rng)
        w = self._ws
        counters = perf.counters
        S, n = arrivals.shape
        rows = self._rows
        T = self._interval_us
        air = self._data_air
        slot = self._slot
        empty_air = self._empty_air
        lite = self._lite
        sigma = self._sigma
        sigma_out = None if lite else sigma.copy()
        if counters.enabled:
            t0 = perf.clock()

        if n >= 2:
            cands = self._draw_candidates_ws(rng)
            P = cands.shape[1]
            # Inverse permutation by scatter (sigma is a permutation of
            # 1..n, so this equals argsort(sigma)).
            np.add(sigma, w.row_off_m1, out=w.tmpi)
            w.inv.ravel()[w.tmpi.ravel()] = w.link_plane.ravel()
            np.add(cands, w.row_off, out=w.pi2)
            np.subtract(w.pi2, 1, out=w.pi)
            inv_flat = w.inv.ravel()
            inv_flat.take(w.pi.ravel(), out=w.down.ravel())
            inv_flat.take(w.pi2.ravel(), out=w.up.ravel())
            w.cl[:, :P] = w.down
            w.cl[:, P:] = w.up
            np.add(w.cl, w.row_off, out=w.clflat)
            clflat = w.clflat.ravel()
            w.rel_flat.take(clflat, out=w.relc.ravel())
            positive_debts.ravel().take(clflat, out=w.dc.ravel())
            mu = self._active_bias.mu_batch(w.cl, w.dc, w.relc)
            if not (mu.min() > 0.0 and mu.max() < 1.0):
                raise ValueError(
                    "swap bias returned mu outside (0, 1); Algorithm 2 "
                    "requires a non-degenerate coin"
                )
            coins = self._coin_draws.next(self._kstream(rng, "policy"))
            np.less(coins, mu, out=w.xib)
            np.multiply(w.xib, 2, out=w.xi)
            np.subtract(w.xi, 1, out=w.xi)
            xi_down = w.xi[:, :P]
            xi_up = w.xi[:, P:]
            arrivals.ravel().take(w.clflat.ravel(), out=w.ac.ravel())
            np.equal(w.ac, 0, out=w.acb)
        else:
            P = 0
            cands = w.empty_pairs
            xi_down = xi_up = cands

        rc = cdm1 = None
        if P == 1:
            # Single pair (the paper's protocol): the service order and
            # its backoff staircase have closed forms, so the legacy
            # argsort collapses into an inv copy plus O(S) fix-ups.
            # Non-candidates keep priority order with backoff p - 1
            # (below the pair) or p + 1 (above it); the candidates land
            # in positions c-1 and c with backoffs c - xi_down and
            # c + 1 - xi_up, which orders down before up except when
            # both coins point "swap" (xi_down = -1, xi_up = +1) —
            # exactly the commit-coin condition.
            np.logical_not(w.xib[:, :1], out=w.cd)
            np.logical_and(w.cd, w.xib[:, 1:], out=w.cc)
            order = w.order
            np.copyto(order, w.inv)
            rc = np.flatnonzero(w.cc[:, 0])
            cdx = cands[rc, 0]
            cdm1 = cdx - 1
            if rc.size:
                order[rc, cdm1] = w.up[rc, 0]
                order[rc, cdx] = w.down[rc, 0]
            # Backoff by position: j below the pair, j + 2 above it,
            # min/max of the two candidate backoffs in between (w.pi /
            # w.pi2 are the flat indices of positions c-1 and c).
            w.bpos_tab.take(cands[:, 0], axis=0, out=w.bpos)
            np.subtract(cands, xi_down, out=w.vs)
            np.subtract(cands, xi_up, out=w.vs2)
            np.add(w.vs2, 1, out=w.vs2)
            np.minimum(w.vs, w.vs2, out=w.bmin)
            np.maximum(w.vs, w.vs2, out=w.bmax)
            w.bpos.ravel()[w.pi.ravel()] = w.bmin.ravel()
            w.bpos.ravel()[w.pi2.ravel()] = w.bmax.ravel()
            # Only candidates may claim with empty packets; they sit in
            # positions c-1 (down) and c (up), swapped on commit rows.
            w.iep.fill(False)
            w.iep.ravel()[w.pi.ravel()] = w.acb[:, 0]
            w.iep.ravel()[w.pi2.ravel()] = w.acb[:, 1]
            if rc.size:
                w.iep[rc, cdm1] = w.acb[rc, 1]
                w.iep[rc, cdx] = w.acb[rc, 0]
            np.add(order, w.row_off, out=w.oflat)
        else:
            # Multi-pair (Remark 6) and degenerate stacks are off the
            # benchmark path; keep the legacy construction.
            if P:
                pairs_below = (
                    cands[:, None, :] + 1 < sigma[:, :, None]
                ).sum(axis=2, dtype=np.int64)
                np.multiply(pairs_below, 2, out=w.backoff)
                np.add(w.backoff, sigma, out=w.backoff)
                np.subtract(w.backoff, 1, out=w.backoff)
                w.backoff[rows, w.down] = cands - xi_down + 2 * self._pair_idx
                w.backoff[rows, w.up] = cands + 1 - xi_up + 2 * self._pair_idx
                w.we.fill(False)
                w.we.ravel()[w.clflat.ravel()] = w.acb.ravel()
            else:
                np.subtract(sigma, 1, out=w.backoff)
                w.we.fill(False)
            order = np.argsort(w.backoff, axis=1)
            np.add(order, w.row_off, out=w.oflat)
            w.backoff.ravel().take(w.oflat.ravel(), out=w.bpos.ravel())
            w.we.ravel().take(w.oflat.ravel(), out=w.iep.ravel())
        oflat = w.oflat.ravel()
        needed = self._channel_draws.next(
            self._kstream(rng, "channel"), self._chan_rng(rng)
        )
        if counters.enabled:
            counters.add("kernel.dp.setup", perf.clock() - t0)
            t0 = perf.clock()

        if self._use_jit and not self._force_sequential:
            # One compiled pass resolves the whole timeline (including
            # empty-claim coupling), so no assumption check is needed.
            jit_kernels.dp_timeline_rows(
                order, w.bpos, w.iep, arrivals, needed,
                float(T), float(air), float(slot), float(empty_air),
                w.delivered, w.att_posf, w.fits, w.start, w.att_tot,
            )
            att_pos = w.att_posf
            np.multiply(w.att_tot, air, out=w.busy)
        else:
            # Exclusive prefix sums land as one small matmul against a
            # strict upper-triangular mask — bit-exact on these
            # integer-valued floats and faster than cumsum's short-row
            # scan at benchmark shapes.
            np.copyto(w.iepf, w.iep, casting="unsafe")
            np.matmul(w.iepf, w.mexcl_tl, out=w.ebf)  # empties before
            np.multiply(w.bpos, slot, out=w.dead)
            np.multiply(w.ebf, empty_air, out=w.tmpf)
            np.add(w.dead, w.tmpf, out=w.dead)
            np.subtract(T, w.dead, out=w.tmpf)
            if self._exact_div:  # same floors, minus divmod (see _on_bind)
                # Dividing straight into the solver dtype is exact here:
                # the quotient's float32 rounding error is below the
                # 1 / air margin whenever interval_us < 2**24.
                np.divide(w.tmpf, air, out=w.caps_f)
                np.floor(w.caps_f, out=w.caps_f)
            else:
                np.floor_divide(w.tmpf, air, out=w.tmpf)
                np.copyto(w.caps_f, w.tmpf, casting="unsafe")
            if arrivals.any():
                self._solve_ordered_ws(w, order, arrivals, needed, w.caps_f)
            else:
                # Whole stack idle: skip the solver, nothing transmits
                # data (empty claims are still resolved below).
                w.att_pos.fill(0)
                w.delivered.fill(0)
            np.matmul(w.att_pos, w.mexcl, out=w.attb)  # attempts before
            np.multiply(w.attb, air, out=w.start)
            np.add(w.start, w.dead, out=w.start)
            # start + empty_air <= T rewritten against the precomputed
            # bound T - empty_air: same exact-integer comparison, one
            # whole-plane add saved per interval.
            if empty_air > 0:
                np.less_equal(w.start, T - empty_air, out=w.fits)
            else:
                np.less(w.start, T, out=w.fits)
            np.logical_and(w.fits, w.iep, out=w.fits)

            if self._force_sequential:
                bad_rows = np.arange(S)
                first_bad = np.zeros(S, dtype=np.int64)
            else:
                np.not_equal(w.fits, w.iep, out=w.mm)
                if w.mm.any():
                    bad_rows = np.flatnonzero(w.mm.any(axis=1))
                    first_bad = np.argmax(w.mm, axis=1)
                else:
                    bad_rows = None
            if bad_rows is not None and len(bad_rows):
                for s in bad_rows:
                    j0 = int(first_bad[s])
                    self._resolve_row_sequential(
                        int(s),
                        j0,
                        int(w.attb[s, j0]),
                        int(w.ebf[s, j0]),
                        order[s],
                        w.bpos[s],
                        w.iep[s],
                        arrivals[s],
                        needed[int(s)],
                        w.delivered,
                        None,
                        w.att_pos,
                        w.fits,
                        w.start,
                    )
            att_pos = w.att_pos
            np.matmul(att_pos, w.ones_wf, out=w.busyf)
            np.multiply(w.busyf, air, out=w.busy)

        np.greater(att_pos, 0, out=w.tx)
        np.logical_or(w.tx, w.fits, out=w.tx)
        np.multiply(w.bpos, w.tx, out=w.tmpi2)
        w.tmpi2.max(axis=1, out=w.idle)
        np.sum(w.fits, axis=1, out=w.ne)
        np.multiply(w.ne, empty_air, out=w.eus)
        np.add(w.busy, w.eus, out=w.busy)
        np.multiply(w.idle, slot, out=w.ovh)
        np.add(w.ovh, w.eus, out=w.ovh)
        if counters.enabled:
            counters.add("kernel.dp.timeline", perf.clock() - t0)
            t0 = perf.clock()

        if P == 1:
            if rc.size:
                # Commit is confined to the rows where both coins said
                # "swap" (w.cc, computed during setup) — and on those
                # rows the up-link was served at position c - 1, so the
                # transmission test is two tiny gathers.  The in-place
                # sigma writes touch committed entries only.
                live = w.tx[rc, cdm1] & (w.start[rc, cdm1] + air <= T)
                rcc = rc[live]
                if rcc.size:
                    csel = cands[rcc, 0]
                    sigma[rcc, w.down[rcc, 0]] = csel + 1
                    sigma[rcc, w.up[rcc, 0]] = csel
        elif P:
            np.equal(xi_down, -1, out=w.cd)
            np.equal(xi_up, 1, out=w.cu)
            np.logical_and(w.cd, w.cu, out=w.cc)
            if w.cc.any():
                # A pair can only swap when both coins point "swap"; only
                # then is the transmission state worth gathering.  The
                # in-place sigma writes below touch committed entries
                # only — non-committed writes in the legacy path restore
                # the values sigma already holds.
                w.posn.ravel()[oflat] = w.link_plane.ravel()
                up_pos = w.posn[rows, w.up]
                committed = (
                    w.cc
                    & w.tx[rows, up_pos]
                    & (w.start[rows, up_pos] + air <= T)
                )
                rcp, pc = np.nonzero(committed)
                if rcp.size:
                    csel = cands[rcp, pc]
                    sigma[rcp, w.down[rcp, pc]] = csel + 1
                    sigma[rcp, w.up[rcp, pc]] = csel

        if not lite:
            w.attempts_f.ravel()[oflat] = att_pos.ravel()
            np.copyto(w.attempts_i, w.attempts_f, casting="unsafe")
        if counters.enabled:
            counters.add("kernel.dp.commit", perf.clock() - t0)
        return BatchIntervalOutcome(
            deliveries=w.delivered if lite else w.delivered.copy(),
            attempts=None if lite else w.attempts_i.copy(),
            busy_time_us=w.busy if lite else w.busy.copy(),
            overhead_time_us=w.ovh if lite else w.ovh.copy(),
            collisions=w.zeroi,
            priorities=sigma_out,
        )

    def _run_interval_batch(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: BatchRngBundle,
    ) -> BatchIntervalOutcome:
        S, n = arrivals.shape
        rows = self._rows
        # Priorities reported for interval k are sigma *before* any swap
        # (matching the scalar protocol); copy so the outcome never aliases
        # live kernel state.
        sigma = self._sigma.copy()
        T = self._interval_us
        air = self._data_air
        slot = self._slot
        empty_air = self._empty_air
        rel = self._reliabilities

        if n >= 2:
            # Step 1: shared randomness -> candidate priority indices.
            cands = self._draw_candidates(rng, S, n)
            P = cands.shape[1]
            inv = np.argsort(sigma, axis=1)  # priority p+1 -> link
            down = inv[rows, cands - 1]  # (S, P)
            up = inv[rows, cands]
            cand_links = np.concatenate([down, up], axis=1)  # (S, 2P)

            # Step 3: biased local coins for both candidates of each pair.
            # rel is (N,) for a shared spec, (S, N) for a fused stack.
            rel_cand = (
                rel[rows, cand_links] if rel.ndim == 2 else rel[cand_links]
            )
            mu = self._active_bias.mu_batch(
                cand_links, positive_debts[rows, cand_links], rel_cand
            )
            if not np.all((mu > 0.0) & (mu < 1.0)):
                raise ValueError(
                    "swap bias returned mu outside (0, 1); Algorithm 2 "
                    "requires a non-degenerate coin"
                )
            coins = self._coin_draws.next(self._kstream(rng, "policy"))
            xi = np.where(coins < mu, 1, -1)
            xi_down, xi_up = xi[:, :P], xi[:, P:]

            # Step 4: collision-free backoffs (candidate pair i works in a
            # band shifted by 2i; non-candidates shift by the pairs below).
            if P == 1:
                # One pair: "pairs entirely below priority s" is a plain
                # comparison, and the band shift 2i is zero.
                backoff = sigma - 1 + 2 * (sigma > cands + 1)
                backoff[rows, down] = cands - xi_down
                backoff[rows, up] = cands + 1 - xi_up
            else:
                pairs_below = (cands[:, None, :] + 1 < sigma[:, :, None]).sum(
                    axis=2, dtype=np.int64
                )
                backoff = sigma - 1 + 2 * pairs_below
                backoff[rows, down] = cands - xi_down + 2 * self._pair_idx
                backoff[rows, up] = cands + 1 - xi_up + 2 * self._pair_idx

            # Step 2: candidates without arrivals claim with empty packets.
            wants_empty = np.zeros((S, n), dtype=bool)
            wants_empty[rows, cand_links] = arrivals[rows, cand_links] == 0
        else:
            P = 0
            cands = np.zeros((S, 0), dtype=np.int64)
            down = up = cands
            xi_down = xi_up = cands
            backoff = sigma - 1
            wants_empty = np.zeros((S, n), dtype=bool)

        # Steps 5-6: the interval timeline.  Service order is backoff order;
        # the attempt ceiling of each position is set by its backoff slots
        # plus the empty packets transmitted before it.
        order = np.argsort(backoff, axis=1)
        backoff_pos = backoff[rows, order]
        is_empty_pos = wants_empty[rows, order]
        empties_before = np.cumsum(is_empty_pos, axis=1) - is_empty_pos

        # Time each position loses to its own backoff slots plus the empty
        # packets ahead of it — shared by the attempt ceiling and the
        # service-start computation below.
        dead_us = backoff_pos * slot + empties_before * empty_air
        caps = np.floor_divide(T - dead_us, air).astype(np.int64)
        needed_cum = self._channel_draws.next(
            self._kstream(rng, "channel"), self._chan_rng(rng)
        )
        deliveries, attempts, attempts_pos = solve_ordered_service(
            order, arrivals, needed_cum, caps,
            tot_link=self._channel_draws.totals(needed_cum, arrivals),
        )

        att_cum = np.cumsum(attempts_pos, axis=1)
        att_before = att_cum - attempts_pos
        start_pos = att_before * air + dead_us
        if empty_air > 0:
            fits_pos = is_empty_pos & (start_pos + empty_air <= T)
        else:
            # Idealized mode: a zero-length claim still needs a live instant.
            fits_pos = is_empty_pos & (start_pos < T)

        # Verify the all-empties-fit assumption; re-run offending rows
        # sequentially (only under end-of-interval congestion).  Positions
        # before a row's first misfit already match the sequential sweep —
        # every earlier claim fit, so the assumed timeline was the real one
        # up to there — and the resolver resumes from that position's
        # (attempts-used, empties-fit) state instead of position 0.
        if self._force_sequential:
            bad_rows = np.arange(S)
            first_bad = np.zeros(S, dtype=np.int64)
        else:
            mismatch = fits_pos != is_empty_pos
            bad_rows = np.flatnonzero(mismatch.any(axis=1))
            first_bad = np.argmax(mismatch, axis=1)
        for s in bad_rows:
            j0 = int(first_bad[s])
            self._resolve_row_sequential(
                int(s),
                j0,
                int(att_before[s, j0]),
                int(empties_before[s, j0]),
                order[s],
                backoff_pos[s],
                is_empty_pos[s],
                arrivals[s],
                needed_cum[s],
                deliveries,
                attempts,
                attempts_pos,
                fits_pos,
                start_pos,
            )
        if bad_rows.size:
            att_cum = np.cumsum(attempts_pos, axis=1)

        transmitted_pos = (attempts_pos > 0) | fits_pos
        idle_slots = np.max(
            np.where(transmitted_pos, backoff_pos, 0), axis=1
        )
        num_empties = fits_pos.sum(axis=1)
        empty_us = num_empties * empty_air
        busy = att_cum[:, -1] * air + empty_us
        overhead = idle_slots * slot + empty_us

        if P:
            # Step 5 / Eqs. (7)-(8): commit swaps.  The up-mover must have
            # transmitted (data or a fitting empty claim) with one data
            # airtime left before the deadline.  Look the up-mover up by
            # *position* (inverse of ``order``) rather than scattering the
            # whole timeline back to link space.
            position = np.empty((S, n), dtype=np.int64)
            position[rows, order] = self._position_row
            up_pos = position[rows, up]
            committed = (
                (xi_down == -1)
                & (xi_up == 1)
                & transmitted_pos[rows, up_pos]
                & (start_pos[rows, up_pos] + air <= T)
            )
            new_sigma = sigma.copy()
            new_sigma[rows, down] = np.where(committed, cands + 1, cands)
            new_sigma[rows, up] = np.where(committed, cands, cands + 1)
            self._sigma = new_sigma

        return BatchIntervalOutcome(
            deliveries=deliveries,
            attempts=attempts,
            busy_time_us=busy,
            overhead_time_us=overhead,
            collisions=np.zeros(S, dtype=np.int64),
            priorities=sigma,
        )

    def _resolve_row_sequential(
        self,
        s: int,
        j0: int,
        att_total: int,
        empties_fit: int,
        order_row: np.ndarray,
        backoff_row: np.ndarray,
        is_empty_row: np.ndarray,
        arrivals_row: np.ndarray,
        needed_cum_row: np.ndarray,
        deliveries: np.ndarray,
        attempts: Optional[np.ndarray],
        attempts_pos: np.ndarray,
        fits_pos: np.ndarray,
        start_pos: np.ndarray,
    ) -> None:
        """Exact sequential sweep of one replication's interval timeline,
        resuming from position ``j0`` with ``att_total`` attempts already
        used and ``empties_fit`` empty claims already on air.

        Uses the same pre-drawn retry counts and the same integer-ceiling
        arithmetic as the vectorized path, so the combined result equals a
        full sequential evaluation of the whole stack.  Operates on plain
        Python scalars — at tens of links that beats per-element ndarray
        indexing by an order of magnitude.  ``deliveries``/``attempts``
        are link-indexed, the remaining output arrays position-indexed
        (matching :func:`solve_ordered_service`).  ``attempts`` may be
        ``None`` (the workspace path reconstructs the link view from
        ``attempts_pos`` at the end of the interval instead).
        """
        T = self._interval_us
        air = self._data_air
        slot = self._slot
        empty_air = self._empty_air
        order_l = order_row.tolist()
        backoff_l = backoff_row.tolist()
        empty_l = is_empty_row.tolist()
        arrivals_l = arrivals_row.tolist()
        for j in range(j0, len(order_l)):
            link = order_l[j]
            backlog = arrivals_l[link]
            start = att_total * air + empties_fit * empty_air + backoff_l[j] * slot
            fits = False
            used = 0
            served = 0
            if backlog > 0:
                cap = int((T - backoff_l[j] * slot - empties_fit * empty_air) // air)
                budget = cap - att_total
                if budget > 0:
                    # Indexing the ndarray row directly beats converting
                    # the whole (N, A) cum block to nested lists: only a
                    # handful of scalars per link are ever read.
                    cum = needed_cum_row[link]
                    tot = int(cum[backlog - 1])
                    if tot <= budget:
                        used = tot
                        served = backlog
                    else:
                        used = budget
                        served = bisect_right(cum, budget, 0, backlog)
                    att_total += used
            elif empty_l[j]:
                if empty_air > 0:
                    fits = start + empty_air <= T
                else:
                    fits = start < T
                if fits:
                    empties_fit += 1
            deliveries[s, link] = served
            if attempts is not None:
                attempts[s, link] = used
            attempts_pos[s, j] = used
            fits_pos[s, j] = fits
            start_pos[s, j] = start


def make_batch_kernel(policy: IntervalMac) -> BatchPolicyKernel:
    """Build the vectorized kernel for ``policy``; raises if unsupported.

    Dispatch is registry-driven: the policy's registered
    :class:`~repro.core.registry.PolicyDescriptor` names its kernel
    class, so new families plug in by registration instead of by
    extending a type switch here.
    """
    return registry.make_kernel(policy)


def has_batch_kernel(policy: IntervalMac) -> bool:
    """Whether :func:`make_batch_kernel` supports ``policy``."""
    return registry.has_kernel(policy)
