"""Vectorized per-policy kernels for the batch simulation engine.

Each kernel advances one interval for a *stack* of ``S`` independent
replications at once, holding every piece of per-interval state — debts,
arrivals, priorities, backoffs, deliveries — as ``(S, N)`` NumPy arrays.
Kernels exist for the policies that dominate benchmark time:

* :class:`BatchDPKernel` — Algorithm 2 / DB-DP (single- and multi-pair
  swaps, Remark 6);
* :class:`BatchELDFKernel` — ELDF/LDF via a stable argsort on
  ``f(d^+) p``;
* :class:`BatchRoundRobinKernel` and :class:`BatchStaticPriorityKernel`.

The shared primitive is :func:`solve_ordered_service`: given pre-drawn
geometric retry counts, it resolves the whole "serve links in priority
order until time runs out" recursion with cumulative sums instead of a
per-link loop.  This works because the attempt ceiling is non-increasing
along the service order, so once one link is truncated every later link is
starved — exactly the scalar engine's semantics (see the derivation in the
function docstring).

Two implementation notes that matter for throughput at the target scale
(tens of seeds, tens of links — i.e. *small* arrays, where NumPy's Python
wrapper cost rivals its C time):

* all gather/scatter steps use raw integer fancy indexing
  (``a[rows, idx]``) rather than ``take_along_axis``/``put_along_axis``,
  whose index-building wrappers dominate at this size;
* random draws are made in chunks of :data:`DRAW_CHUNK` intervals per
  stream and sliced per interval, amortizing the Generator call overhead.
  Chunking only re-orders consumption *within* a batch stream, which is a
  private namespace — reproducibility (same seeds, same trajectory) is
  unaffected, and chunk boundaries are independent of how ``run`` calls
  are split because the caches live on the kernel.

Kernels also accept **per-row spec parameters** (the grid-fused engine):
``bind`` takes either one shared spec or a
:class:`~repro.sim.spec_stack.SpecStack` with one spec per replication
row, in which case reliabilities and requirements become ``(S, N)``
matrices and rows may come from *different sweep cells* (different
``p_n``/``q_n``/arrival parameters, and — for the DP kernel — different
Glauber bias constants via ``row_policies``) as long as ``N``, the timing,
and the policy family match.

Every kernel also has a ``sync_rng`` mode in which it drives one *scalar*
policy clone per seed with that seed's scalar-identical random streams
(:attr:`~repro.sim.rng.BatchRngBundle.bundles`).  That mode is the
cross-validation bridge: it is bit-identical to the scalar engine by
construction, while sharing the batch engine's debt and result
bookkeeping.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.dbdp import stack_swap_biases
from ..core.dp_protocol import DPProtocol, max_swap_pairs
from ..core.eldf import ELDFPolicy
from ..core.permutations import priority_to_link_order, validate_priority_vector
from ..core.policies import IntervalMac
from ..core.requirements import NetworkSpec
from ..core.round_robin import RoundRobinPolicy
from ..core.static_priority import StaticPriorityPolicy
from ..phy.channel import BernoulliChannel
from .rng import BatchRngBundle
from .spec_stack import SpecStack

__all__ = [
    "BatchIntervalOutcome",
    "BatchPolicyKernel",
    "BatchDPKernel",
    "BatchELDFKernel",
    "BatchRoundRobinKernel",
    "BatchStaticPriorityKernel",
    "solve_ordered_service",
    "make_batch_kernel",
    "has_batch_kernel",
    "DRAW_CHUNK",
]

#: Intervals' worth of randomness drawn per Generator call in batch mode.
DRAW_CHUNK = 64


@dataclass
class BatchIntervalOutcome:
    """What happened during one interval, for every replication at once.

    The batch analogue of :class:`~repro.core.policies.IntervalOutcome`:
    per-link arrays are ``(S, N)``, per-interval scalars are ``(S,)``.
    """

    deliveries: np.ndarray  # (S, N) int64
    attempts: np.ndarray  # (S, N) int64
    busy_time_us: np.ndarray  # (S,) float
    overhead_time_us: np.ndarray  # (S,) float
    collisions: np.ndarray  # (S,) int64
    priorities: Optional[np.ndarray] = None  # (S, N) int64 or None


def drain_totals(needed_cum: np.ndarray, backlog: np.ndarray) -> np.ndarray:
    """Per-link total attempts needed to drain the backlog: ``(S, N)``.

    This is ``needed_cum[..., backlog - 1]`` (zero for empty buffers) in
    the draw dtype.  It depends only on the channel draws and the
    arrivals, not on any policy decision, so lockstep simulators sharing
    draw blocks also share this plane (``batch_sim._FanoutDraws``).
    """
    idx = np.maximum(backlog - 1, 0)
    tot = np.take_along_axis(needed_cum, idx[:, :, None], axis=2)[:, :, 0]
    return np.where(backlog > 0, tot, needed_cum.dtype.type(0))


def solve_ordered_service(
    order: np.ndarray,
    backlog: np.ndarray,
    needed_cum: np.ndarray,
    caps: np.ndarray,
    tot_link: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Resolve sequential in-order service for all replications at once.

    Parameters
    ----------
    order:
        ``(S, N)`` — link ids in service order (a permutation per row).
    backlog:
        ``(S, N)`` — packets buffered per *link*.
    needed_cum:
        ``(S, N, A)`` — per link, cumulative attempts needed to deliver
        its first ``t+1`` packets (cumsum of geometric draws).  May be an
        integer or float array; float entries must hold exact integers
        (:class:`_ChunkedChannelDraws` guarantees this).
    caps:
        ``(S, N)`` int64 — per service *position*, the absolute attempt
        ceiling: the link in that position may finish at most
        ``caps - attempts_used_before_it`` attempts before its deadline.
        **Must be non-increasing along axis 1** (true for both constant
        attempt budgets and backoff-staircase budgets, since backoffs grow
        along the service order).

    Returns ``(delivered, attempts, attempts_pos)``: ``delivered`` and
    ``attempts`` are ``(S, N)`` int64 indexed by *link*; ``attempts_pos``
    is the same attempts indexed by service *position* (callers need both
    views, and the position view is a by-product here).

    Why no loop is needed: with ``G`` the cumulative attempts *needed* by
    the first ``j`` links, position ``j`` receives
    ``clip(caps_j - G_{j-1}, 0, needed_j)`` attempts.  This matches the
    sequential recursion because attempts-used equals attempts-needed for
    every link until the first truncated link, and after a truncation the
    non-increasing ceiling starves all later links — the same "budget
    exhausted" outcome the scalar engine produces.  Packet ``t`` of the
    link in position ``j`` is delivered iff ``G_{j-1} + needed_cum[t] <=
    caps_j``.

    The per-packet scan only runs for *partially served* links — positive
    budget short of a full drain.  A drained link delivers its whole
    backlog and a starved one delivers nothing, no packet data needed, and
    the non-increasing cap leaves at most one partial link per row (the
    marginal link at the truncation point), so the scan touches ``O(S*A)``
    elements instead of the full ``(S, N, A)`` block.

    ``tot_link`` — the per-link total attempts needed to drain (cum at
    slot ``backlog - 1``, zero where the backlog is empty) — is recomputed
    when omitted; callers that share draw blocks across lockstep
    simulators pass the cached plane instead (see
    ``batch_sim.share_batch_draws``).
    """
    S = order.shape[0]
    rows = np.arange(S)[:, None]
    work = needed_cum.dtype

    # Total attempts needed to fully drain each link's buffer (its cum at
    # slot backlog-1), then reorder that (S, N) plane into service order.
    if tot_link is None:
        tot_link = drain_totals(needed_cum, backlog)
    tot_pos = tot_link[rows, order]

    cum_needed = np.cumsum(tot_pos, axis=1)
    # Attempts left for each position; computed in the draw dtype so every
    # comparison against the draw block stays in one dtype.
    budget = caps.astype(work) - (cum_needed - tot_pos)
    attempts_pos = np.clip(budget, 0, tot_pos)

    budget_link = np.empty_like(budget)
    budget_link[rows, order] = budget
    full = budget_link >= tot_link
    delivered = np.where(full, backlog, 0)
    partial = (budget_link > 0) & ~full
    if partial.any():
        # needed_cum is increasing along the packet axis, so the number of
        # slots with cum <= budget counts deliverable packets; slots past
        # the backlog have cum >= tot > budget and drop out on their own.
        rp, cp = np.nonzero(partial)
        cum_sel = needed_cum[rp, cp]
        within = (cum_sel <= budget_link[rp, cp, None]).sum(axis=1)
        delivered[rp, cp] = np.minimum(within, backlog[rp, cp])

    attempts = np.empty_like(budget_link)
    attempts[rows, order] = attempts_pos
    return (
        delivered,
        attempts.astype(np.int64),
        attempts_pos.astype(np.int64),
    )


class _ChunkedChannelDraws:
    """Pre-drawn geometric retry counts, :data:`DRAW_CHUNK` intervals deep.

    ``next(rng)`` yields one interval's ``(S, N, A)`` cumulative-attempt
    array; a fresh ``(DRAW_CHUNK, S, N, A)`` block is drawn whenever the
    cache runs dry.

    Draws use inverse-transform sampling, ``g = max(ceil(E / lambda), 1)``
    with ``E`` standard exponential and ``lambda = -log(1 - p)``, which is
    exactly geometric(p) and fills the block roughly twice as fast as
    ``Generator.geometric`` on broadcast probabilities.  The whole block —
    draws and running cumsum — stays in float32 whenever the largest
    reachable cumulative count is below ``2**24`` (small integers are exact
    in float32), halving the memory traffic of this hot path; pathological
    reliabilities fall back to float64, where the sums stay exact below
    ``2**53``.
    """

    def __init__(self, success_probs: np.ndarray, num_seeds: int, a_max: int):
        probs = np.asarray(success_probs, dtype=float)
        num_links = probs.shape[-1]
        if probs.ndim == 1:
            # One shared reliability vector: broadcast over replications.
            probs = probs[None, None, :, None]
        else:
            # Per-row reliabilities of a fused stack: (S, N) -> (1, S, N, 1).
            if probs.shape[0] != num_seeds:
                raise ValueError(
                    f"per-row reliabilities cover {probs.shape[0]} rows, "
                    f"stack has {num_seeds}"
                )
            probs = probs[None, :, :, None]
        with np.errstate(divide="ignore"):
            # p == 1 -> lambda = inf -> scale 0 -> g = max(ceil(0), 1) = 1.
            scale = -1.0 / np.log1p(-probs)
        # A float32 standard exponential never exceeds ~89 (= -log of the
        # smallest positive float32 the ziggurat can emit); 128 leaves slack.
        worst_cum = a_max * np.ceil(128.0 * scale.max() + 1.0)
        dtype = np.float32 if worst_cum < 2**24 else np.float64
        self._scale = scale.astype(dtype)
        self._shape = (DRAW_CHUNK, num_seeds, num_links, a_max)
        self._dtype = dtype
        self._cache: Optional[np.ndarray] = None
        self._pos = DRAW_CHUNK

    def next(self, rng: np.random.Generator) -> np.ndarray:
        if self._pos >= DRAW_CHUNK:
            draws = rng.standard_exponential(self._shape, dtype=self._dtype)
            np.multiply(draws, self._scale, out=draws)
            np.ceil(draws, out=draws)
            np.maximum(draws, 1.0, out=draws)
            self._cache = np.cumsum(draws, axis=3)
            self._pos = 0
        block = self._cache[self._pos]
        self._pos += 1
        return block

    def totals(self, needed_cum: np.ndarray, backlog: np.ndarray) -> np.ndarray:
        """Drain totals for the interval's block; lockstep fan-out wrappers
        override this with a per-interval cache (the plane depends only on
        draws and arrivals, both shared)."""
        return drain_totals(needed_cum, backlog)


class _ChunkedUniforms:
    """Pre-drawn ``random()`` blocks of a fixed per-interval shape."""

    def __init__(self, *per_interval_shape: int):
        self._shape = (DRAW_CHUNK, *per_interval_shape)
        self._cache: Optional[np.ndarray] = None
        self._pos = DRAW_CHUNK

    def next(self, rng: np.random.Generator) -> np.ndarray:
        if self._pos >= DRAW_CHUNK:
            self._cache = rng.random(self._shape)
            self._pos = 0
        block = self._cache[self._pos]
        self._pos += 1
        return block


class BatchPolicyKernel(ABC):
    """Base class: one policy family, vectorized across replications."""

    def __init__(self, policy: IntervalMac):
        self.policy = policy
        self.name = policy.name
        self._spec: Optional[NetworkSpec] = None
        self._stack: Optional[SpecStack] = None
        self._row_policies: Optional[List[IntervalMac]] = None
        self._clones: List[IntervalMac] = []

    @property
    def spec(self) -> NetworkSpec:
        """Row 0's spec (the shared spec for homogeneous stacks)."""
        if self._spec is None:
            raise RuntimeError(f"{type(self).__name__} is not bound; call bind()")
        return self._spec

    @property
    def stack(self) -> Optional[SpecStack]:
        """The per-row spec stack, or ``None`` for a single shared spec."""
        return self._stack

    def bind(
        self,
        spec: "NetworkSpec | SpecStack | Sequence[NetworkSpec]",
        num_seeds: int,
        sync_rng: bool,
        row_policies: Optional[Sequence[IntervalMac]] = None,
    ) -> None:
        """Attach to a network and reset all per-replication state.

        ``spec`` is either one shared :class:`NetworkSpec` (every
        replication simulates the same network — the plain batch engine)
        or a :class:`SpecStack` / sequence of specs, one per replication
        row (the grid-fused engine).  ``row_policies`` optionally supplies
        one policy instance per row; they must match the kernel's policy
        family and configuration except where the kernel supports per-row
        parameters (the DP kernel's swap-bias constants).  Sync mode
        clones *those* per row, so heterogeneous rows stay bit-identical
        to their scalar counterparts.
        """
        if isinstance(spec, SpecStack):
            stack: Optional[SpecStack] = spec
        elif isinstance(spec, NetworkSpec):
            stack = None
        else:
            stack = SpecStack(spec)
        if stack is not None and stack.num_rows != int(num_seeds):
            raise ValueError(
                f"spec stack has {stack.num_rows} rows but the bundle has "
                f"{num_seeds} seeds; a fused stack needs one seed per row"
            )
        first = stack.specs[0] if stack is not None else spec
        for row_spec in stack.specs if stack is not None else (first,):
            if not isinstance(row_spec.channel, BernoulliChannel):
                raise TypeError(
                    "the batch engine requires a BernoulliChannel (stateful "
                    "channels are not batchable), got "
                    f"{type(row_spec.channel).__name__}"
                )
        if row_policies is not None:
            row_policies = list(row_policies)
            if len(row_policies) != int(num_seeds):
                raise ValueError(
                    f"{len(row_policies)} row policies for {num_seeds} rows"
                )
            for i, p in enumerate(row_policies):
                if not isinstance(p, type(self.policy)):
                    raise TypeError(
                        f"row policy {i} is {type(p).__name__}, kernel "
                        f"serves {type(self.policy).__name__}"
                    )
        self._spec = first
        self._stack = stack
        self._row_policies = row_policies
        self.num_seeds = int(num_seeds)
        timing = first.timing
        self._interval_us = timing.interval_us
        self._data_air = timing.data_airtime_us
        self._empty_air = timing.empty_airtime_us
        self._slot = timing.backoff_slot_us
        self._budget = timing.max_transmissions
        if stack is not None:
            self._a_max = stack.max_arrivals_per_link
            self._reliabilities = stack.reliability_matrix
        else:
            self._a_max = max(1, first.arrivals.max_per_link)
            self._reliabilities = first.reliabilities
        self._channel_draws = _ChunkedChannelDraws(
            self._reliabilities, self.num_seeds, self._a_max
        )
        self._rows = np.arange(self.num_seeds)[:, None]
        if sync_rng:
            # One scalar clone per seed: the sync path drives the *scalar*
            # policy with scalar-identical streams, so its outcomes are
            # bit-identical to the scalar engine by construction.  Fused
            # stacks clone each row's own policy and bind each row's own
            # spec.
            sources = (
                row_policies
                if row_policies is not None
                else [self.policy] * self.num_seeds
            )
            row_specs = (
                stack.specs if stack is not None else (first,) * self.num_seeds
            )
            self._clones = [copy.deepcopy(p) for p in sources]
            for clone, row_spec in zip(self._clones, row_specs):
                clone.bind(row_spec)
        else:
            self._clones = []
        self._on_bind()

    def _on_bind(self) -> None:
        """Hook for subclasses to (re)initialize batched state."""

    def run_interval(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: BatchRngBundle,
        sync_rng: bool,
    ) -> BatchIntervalOutcome:
        if sync_rng:
            return self._run_interval_sync(k, arrivals, positive_debts, rng)
        return self._run_interval_batch(k, arrivals, positive_debts, rng)

    @abstractmethod
    def _run_interval_batch(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: BatchRngBundle,
    ) -> BatchIntervalOutcome:
        """Advance one interval with fully vectorized draws."""

    def _run_interval_sync(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: BatchRngBundle,
    ) -> BatchIntervalOutcome:
        """Advance one interval via per-seed scalar clones (exact mode)."""
        S, n = arrivals.shape
        deliveries = np.zeros((S, n), dtype=np.int64)
        attempts = np.zeros((S, n), dtype=np.int64)
        busy = np.zeros(S)
        overhead = np.zeros(S)
        collisions = np.zeros(S, dtype=np.int64)
        priorities = np.zeros((S, n), dtype=np.int64)
        for s, (clone, bundle) in enumerate(zip(self._clones, rng.bundles)):
            outcome = clone.run_interval(
                k, arrivals[s], positive_debts[s], bundle
            )
            deliveries[s] = outcome.deliveries
            attempts[s] = outcome.attempts
            busy[s] = outcome.busy_time_us
            overhead[s] = outcome.overhead_time_us
            collisions[s] = outcome.collisions
            if outcome.priorities is not None:
                priorities[s] = outcome.priorities
        return BatchIntervalOutcome(
            deliveries=deliveries,
            attempts=attempts,
            busy_time_us=busy,
            overhead_time_us=overhead,
            collisions=collisions,
            priorities=priorities,
        )


class _BatchOrderedServeKernel(BatchPolicyKernel):
    """Shared machinery for "serve links in some order until time runs out"
    policies (ELDF/LDF, round-robin, static priority): constant attempt
    budget, no backoff slots, no empty packets."""

    def _on_bind(self) -> None:
        self._caps = np.full(
            (self.num_seeds, self.spec.num_links), self._budget, dtype=np.int64
        )
        self._rank_row = np.arange(1, self.spec.num_links + 1, dtype=np.int64)

    @abstractmethod
    def _service_orders(
        self, k: int, positive_debts: np.ndarray
    ) -> np.ndarray:
        """Return ``(S, N)`` link ids in service order for this interval."""

    def _run_interval_batch(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: BatchRngBundle,
    ) -> BatchIntervalOutcome:
        S, n = arrivals.shape
        rows = self._rows
        order = self._service_orders(k, positive_debts)
        needed_cum = self._channel_draws.next(rng.batch_stream("channel"))
        deliveries, attempts, attempts_pos = solve_ordered_service(
            order, arrivals, needed_cum, self._caps,
            tot_link=self._channel_draws.totals(needed_cum, arrivals),
        )

        priorities = np.empty((S, n), dtype=np.int64)
        priorities[rows, order] = self._rank_row

        busy = attempts_pos.sum(axis=1) * self._data_air
        return BatchIntervalOutcome(
            deliveries=deliveries,
            attempts=attempts,
            busy_time_us=busy,
            overhead_time_us=np.zeros(S),
            collisions=np.zeros(S, dtype=np.int64),
            priorities=priorities,
        )


class BatchELDFKernel(_BatchOrderedServeKernel):
    """ELDF/LDF: stable argsort on ``f(d^+) p`` descending, per row."""

    def __init__(self, policy: ELDFPolicy):
        super().__init__(policy)
        self.influence = policy.influence

    def _on_bind(self) -> None:
        super()._on_bind()
        if self._row_policies is not None:
            for i, p in enumerate(self._row_policies):
                if p.influence != self.influence:
                    raise TypeError(
                        f"row {i} uses influence {p.influence!r}, the "
                        f"kernel uses {self.influence!r}; ELDF rows cannot "
                        "mix influence functions"
                    )

    def _service_orders(self, k: int, positive_debts: np.ndarray) -> np.ndarray:
        # _reliabilities is (N,) or, for fused stacks, (S, N); either
        # broadcasts against the (S, N) debt weights.
        weights = self.influence.value_array(positive_debts) * self._reliabilities
        # Stable argsort of -weights: ties keep lowest link first, exactly
        # like the scalar policy's tie-break.
        return np.argsort(-weights, axis=1, kind="stable")


class BatchRoundRobinKernel(_BatchOrderedServeKernel):
    """Rotating strict priority; the rotation is deterministic, so all
    replications share one order per interval."""

    def _on_bind(self) -> None:
        super()._on_bind()
        self._offset = 0
        n = self.spec.num_links
        # All n rotations, precomputed: rotation r is row r.
        base = np.arange(n, dtype=np.int64)
        self._rotations = (base[None, :] + base[:, None]) % n

    def _service_orders(self, k: int, positive_debts: np.ndarray) -> np.ndarray:
        row = self._rotations[self._offset]
        self._offset = (self._offset + 1) % self.spec.num_links
        return np.broadcast_to(row, (self.num_seeds, row.size))


class BatchStaticPriorityKernel(_BatchOrderedServeKernel):
    """One fixed order for every interval and replication."""

    def __init__(self, policy: StaticPriorityPolicy):
        super().__init__(policy)
        self._configured = policy._configured

    def _on_bind(self) -> None:
        super()._on_bind()
        if self._row_policies is not None:
            for i, p in enumerate(self._row_policies):
                if p._configured != self._configured:
                    raise TypeError(
                        f"row {i} configures a different priority vector; "
                        "static-priority rows must share one ordering"
                    )
        n = self.spec.num_links
        if self._configured is None:
            sigma = tuple(range(1, n + 1))
        else:
            if len(self._configured) != n:
                raise ValueError(
                    f"priority vector covers {len(self._configured)} links, "
                    f"network has {n}"
                )
            sigma = validate_priority_vector(self._configured)
        self._order_row = np.asarray(priority_to_link_order(sigma), dtype=np.int64)

    def _service_orders(self, k: int, positive_debts: np.ndarray) -> np.ndarray:
        return np.broadcast_to(
            self._order_row, (self.num_seeds, self._order_row.size)
        )


class BatchDPKernel(BatchPolicyKernel):
    """Algorithm 2 (and DB-DP via its Glauber bias), vectorized.

    Per interval and replication: candidate pairs from the shared stream,
    biased coins, collision-free backoffs, the analytic interval timeline
    (staircase attempt ceilings set by backoff slots and empty-packet
    airtime), and the swap handshake of Eqs. (5)-(8).

    Empty priority-claiming packets couple the timeline: whether one fits
    depends on the airtime used before it, which depends on earlier
    service.  The kernel assumes every wanted empty packet fits (by far
    the common case), solves the whole stack in closed form, then
    *verifies* the assumption per replication; rows where it fails —
    end-of-interval pressure near overload — are re-run with an exact
    sequential sweep over that row's pre-drawn retry counts, so the result
    is identical to sequential evaluation in all cases.
    """

    #: Test hook: route *every* replication through the exact sequential
    #: sweep instead of only assumption-violating ones.  Draws are shared,
    #: so the outcome must be bit-identical to the vectorized path — the
    #: test-suite uses this to prove the closed-form timeline correct.
    _force_sequential = False

    def __init__(self, policy: DPProtocol):
        super().__init__(policy)
        self.bias = policy.bias
        self.num_pairs = policy.num_pairs
        self._initial = policy._initial
        self._active_bias = policy.bias

    def _on_bind(self) -> None:
        if self._row_policies is not None:
            for i, p in enumerate(self._row_policies):
                if p.num_pairs != self.num_pairs:
                    raise TypeError(
                        f"row {i} uses {p.num_pairs} swap pairs, the kernel "
                        f"uses {self.num_pairs}; fused DP rows must agree"
                    )
                if p._initial != self._initial:
                    raise TypeError(
                        f"row {i} configures different initial priorities; "
                        "fused DP rows must share sigma(0)"
                    )
            # Per-row swap-bias constants (e.g. Glauber R) collapse into
            # one vectorized bias; incompatible mixes raise TypeError so
            # callers fall back to per-cell simulation.
            self._active_bias = stack_swap_biases(
                [p.bias for p in self._row_policies]
            )
        else:
            self._active_bias = self.bias
        n = self.spec.num_links
        if self._initial is not None:
            if len(self._initial) != n:
                raise ValueError(
                    f"initial priorities cover {len(self._initial)} links, "
                    f"network has {n}"
                )
            row = np.asarray(self._initial, dtype=np.int64)
        else:
            row = np.arange(1, n + 1, dtype=np.int64)
        self._sigma = np.tile(row, (self.num_seeds, 1))
        if n >= 2 and self.num_pairs > max_swap_pairs(n):
            raise ValueError(
                f"{self.num_pairs} pairs would make the priority chain "
                f"reducible on {n} links; the bound is {max_swap_pairs(n)}"
            )
        P = self.num_pairs if n >= 2 else 0
        self._coin_draws = _ChunkedUniforms(self.num_seeds, 2 * P)
        self._cand_draws = _ChunkedUniforms(
            self.num_seeds, max(0, (n - 1) - (P - 1))
        )
        self._pair_idx = np.arange(P, dtype=np.int64)[None, :]
        self._position_row = np.arange(n, dtype=np.int64)

    @property
    def priorities(self) -> np.ndarray:
        """Current ``(S, N)`` priority stack (sigma per replication)."""
        if self._clones:
            return np.asarray([c.priorities for c in self._clones], dtype=np.int64)
        return self._sigma.copy()

    def _draw_candidates(self, rng: BatchRngBundle, S: int, n: int) -> np.ndarray:
        """``(S, P)`` sorted non-consecutive candidate indices per row."""
        P = self.num_pairs
        shared = rng.batch_stream("shared")
        if P == 1:
            draws = self._cand_draws.next(shared)  # (S, n-1) uniforms
            return 1 + np.argmax(draws, axis=1, keepdims=True).astype(np.int64)
        # Gap bijection (see draw_candidate_indices): uniform P-subsets of
        # [1, M] with M = (n - 1) - (P - 1), then shift the i-th smallest
        # by i.  The subset comes from the first P slots of a uniform
        # permutation (argsort of i.i.d. uniforms).
        draws = self._cand_draws.next(shared)
        subset = np.sort(np.argsort(draws, axis=1)[:, :P] + 1, axis=1)
        return subset + self._pair_idx

    def _run_interval_batch(
        self,
        k: int,
        arrivals: np.ndarray,
        positive_debts: np.ndarray,
        rng: BatchRngBundle,
    ) -> BatchIntervalOutcome:
        S, n = arrivals.shape
        rows = self._rows
        # Priorities reported for interval k are sigma *before* any swap
        # (matching the scalar protocol); copy so the outcome never aliases
        # live kernel state.
        sigma = self._sigma.copy()
        T = self._interval_us
        air = self._data_air
        slot = self._slot
        empty_air = self._empty_air
        rel = self._reliabilities

        if n >= 2:
            # Step 1: shared randomness -> candidate priority indices.
            cands = self._draw_candidates(rng, S, n)
            P = cands.shape[1]
            inv = np.argsort(sigma, axis=1)  # priority p+1 -> link
            down = inv[rows, cands - 1]  # (S, P)
            up = inv[rows, cands]
            cand_links = np.concatenate([down, up], axis=1)  # (S, 2P)

            # Step 3: biased local coins for both candidates of each pair.
            # rel is (N,) for a shared spec, (S, N) for a fused stack.
            rel_cand = (
                rel[rows, cand_links] if rel.ndim == 2 else rel[cand_links]
            )
            mu = self._active_bias.mu_batch(
                cand_links, positive_debts[rows, cand_links], rel_cand
            )
            if not np.all((mu > 0.0) & (mu < 1.0)):
                raise ValueError(
                    "swap bias returned mu outside (0, 1); Algorithm 2 "
                    "requires a non-degenerate coin"
                )
            coins = self._coin_draws.next(rng.batch_stream("policy"))
            xi = np.where(coins < mu, 1, -1)
            xi_down, xi_up = xi[:, :P], xi[:, P:]

            # Step 4: collision-free backoffs (candidate pair i works in a
            # band shifted by 2i; non-candidates shift by the pairs below).
            if P == 1:
                # One pair: "pairs entirely below priority s" is a plain
                # comparison, and the band shift 2i is zero.
                backoff = sigma - 1 + 2 * (sigma > cands + 1)
                backoff[rows, down] = cands - xi_down
                backoff[rows, up] = cands + 1 - xi_up
            else:
                pairs_below = (cands[:, None, :] + 1 < sigma[:, :, None]).sum(
                    axis=2, dtype=np.int64
                )
                backoff = sigma - 1 + 2 * pairs_below
                backoff[rows, down] = cands - xi_down + 2 * self._pair_idx
                backoff[rows, up] = cands + 1 - xi_up + 2 * self._pair_idx

            # Step 2: candidates without arrivals claim with empty packets.
            wants_empty = np.zeros((S, n), dtype=bool)
            wants_empty[rows, cand_links] = arrivals[rows, cand_links] == 0
        else:
            P = 0
            cands = np.zeros((S, 0), dtype=np.int64)
            down = up = cands
            xi_down = xi_up = cands
            backoff = sigma - 1
            wants_empty = np.zeros((S, n), dtype=bool)

        # Steps 5-6: the interval timeline.  Service order is backoff order;
        # the attempt ceiling of each position is set by its backoff slots
        # plus the empty packets transmitted before it.
        order = np.argsort(backoff, axis=1)
        backoff_pos = backoff[rows, order]
        is_empty_pos = wants_empty[rows, order]
        empties_before = np.cumsum(is_empty_pos, axis=1) - is_empty_pos

        # Time each position loses to its own backoff slots plus the empty
        # packets ahead of it — shared by the attempt ceiling and the
        # service-start computation below.
        dead_us = backoff_pos * slot + empties_before * empty_air
        caps = np.floor_divide(T - dead_us, air).astype(np.int64)
        needed_cum = self._channel_draws.next(rng.batch_stream("channel"))
        deliveries, attempts, attempts_pos = solve_ordered_service(
            order, arrivals, needed_cum, caps,
            tot_link=self._channel_draws.totals(needed_cum, arrivals),
        )

        att_cum = np.cumsum(attempts_pos, axis=1)
        att_before = att_cum - attempts_pos
        start_pos = att_before * air + dead_us
        if empty_air > 0:
            fits_pos = is_empty_pos & (start_pos + empty_air <= T)
        else:
            # Idealized mode: a zero-length claim still needs a live instant.
            fits_pos = is_empty_pos & (start_pos < T)

        # Verify the all-empties-fit assumption; re-run offending rows
        # sequentially (only under end-of-interval congestion).  Positions
        # before a row's first misfit already match the sequential sweep —
        # every earlier claim fit, so the assumed timeline was the real one
        # up to there — and the resolver resumes from that position's
        # (attempts-used, empties-fit) state instead of position 0.
        if self._force_sequential:
            bad_rows = np.arange(S)
            first_bad = np.zeros(S, dtype=np.int64)
        else:
            mismatch = fits_pos != is_empty_pos
            bad_rows = np.flatnonzero(mismatch.any(axis=1))
            first_bad = np.argmax(mismatch, axis=1)
        for s in bad_rows:
            j0 = int(first_bad[s])
            self._resolve_row_sequential(
                int(s),
                j0,
                int(att_before[s, j0]),
                int(empties_before[s, j0]),
                order[s],
                backoff_pos[s],
                is_empty_pos[s],
                arrivals[s],
                needed_cum[s],
                deliveries,
                attempts,
                attempts_pos,
                fits_pos,
                start_pos,
            )
        if bad_rows.size:
            att_cum = np.cumsum(attempts_pos, axis=1)

        transmitted_pos = (attempts_pos > 0) | fits_pos
        idle_slots = np.max(
            np.where(transmitted_pos, backoff_pos, 0), axis=1
        )
        num_empties = fits_pos.sum(axis=1)
        empty_us = num_empties * empty_air
        busy = att_cum[:, -1] * air + empty_us
        overhead = idle_slots * slot + empty_us

        if P:
            # Step 5 / Eqs. (7)-(8): commit swaps.  The up-mover must have
            # transmitted (data or a fitting empty claim) with one data
            # airtime left before the deadline.  Look the up-mover up by
            # *position* (inverse of ``order``) rather than scattering the
            # whole timeline back to link space.
            position = np.empty((S, n), dtype=np.int64)
            position[rows, order] = self._position_row
            up_pos = position[rows, up]
            committed = (
                (xi_down == -1)
                & (xi_up == 1)
                & transmitted_pos[rows, up_pos]
                & (start_pos[rows, up_pos] + air <= T)
            )
            new_sigma = sigma.copy()
            new_sigma[rows, down] = np.where(committed, cands + 1, cands)
            new_sigma[rows, up] = np.where(committed, cands, cands + 1)
            self._sigma = new_sigma

        return BatchIntervalOutcome(
            deliveries=deliveries,
            attempts=attempts,
            busy_time_us=busy,
            overhead_time_us=overhead,
            collisions=np.zeros(S, dtype=np.int64),
            priorities=sigma,
        )

    def _resolve_row_sequential(
        self,
        s: int,
        j0: int,
        att_total: int,
        empties_fit: int,
        order_row: np.ndarray,
        backoff_row: np.ndarray,
        is_empty_row: np.ndarray,
        arrivals_row: np.ndarray,
        needed_cum_row: np.ndarray,
        deliveries: np.ndarray,
        attempts: np.ndarray,
        attempts_pos: np.ndarray,
        fits_pos: np.ndarray,
        start_pos: np.ndarray,
    ) -> None:
        """Exact sequential sweep of one replication's interval timeline,
        resuming from position ``j0`` with ``att_total`` attempts already
        used and ``empties_fit`` empty claims already on air.

        Uses the same pre-drawn retry counts and the same integer-ceiling
        arithmetic as the vectorized path, so the combined result equals a
        full sequential evaluation of the whole stack.  Operates on plain
        Python scalars — at tens of links that beats per-element ndarray
        indexing by an order of magnitude.  ``deliveries``/``attempts``
        are link-indexed, the remaining output arrays position-indexed
        (matching :func:`solve_ordered_service`).
        """
        T = self._interval_us
        air = self._data_air
        slot = self._slot
        empty_air = self._empty_air
        order_l = order_row.tolist()
        backoff_l = backoff_row.tolist()
        empty_l = is_empty_row.tolist()
        arrivals_l = arrivals_row.tolist()
        cum_rows = needed_cum_row.tolist()
        for j in range(j0, len(order_l)):
            link = order_l[j]
            backlog = arrivals_l[link]
            start = att_total * air + empties_fit * empty_air + backoff_l[j] * slot
            fits = False
            used = 0
            served = 0
            if backlog > 0:
                cap = int((T - backoff_l[j] * slot - empties_fit * empty_air) // air)
                budget = cap - att_total
                if budget > 0:
                    cum = cum_rows[link]
                    tot = int(cum[backlog - 1])
                    if tot <= budget:
                        used = tot
                        served = backlog
                    else:
                        used = budget
                        served = bisect_right(cum, budget, 0, backlog)
                    att_total += used
            elif empty_l[j]:
                if empty_air > 0:
                    fits = start + empty_air <= T
                else:
                    fits = start < T
                if fits:
                    empties_fit += 1
            deliveries[s, link] = served
            attempts[s, link] = used
            attempts_pos[s, j] = used
            fits_pos[s, j] = fits
            start_pos[s, j] = start


def make_batch_kernel(policy: IntervalMac) -> BatchPolicyKernel:
    """Build the vectorized kernel for ``policy``; raises if unsupported."""
    if isinstance(policy, DPProtocol):
        return BatchDPKernel(policy)
    if isinstance(policy, ELDFPolicy):
        return BatchELDFKernel(policy)
    if isinstance(policy, RoundRobinPolicy):
        return BatchRoundRobinKernel(policy)
    if isinstance(policy, StaticPriorityPolicy):
        return BatchStaticPriorityKernel(policy)
    raise TypeError(
        f"no batch kernel for policy {type(policy).__name__!r}; supported "
        "families: DPProtocol/DB-DP, ELDF/LDF, RoundRobin, StaticPriority"
    )


def has_batch_kernel(policy: IntervalMac) -> bool:
    """Whether :func:`make_batch_kernel` supports ``policy``."""
    return isinstance(
        policy, (DPProtocol, ELDFPolicy, RoundRobinPolicy, StaticPriorityPolicy)
    )
