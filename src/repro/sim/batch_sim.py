"""Batch simulation engine: all replications of one experiment at once.

The scalar :class:`~repro.sim.interval_sim.IntervalSimulator` runs one seed
at a time; multi-seed experiments repeat it S times, so the Python
per-interval overhead multiplies by S.  The batch engine instead advances a
stack of S independent replications *together*: debts, arrivals, priorities
and deliveries live as ``(S, N)`` arrays, and each interval is one pass of
vectorized kernel code (:mod:`repro.sim.batch_kernels`) rather than S
Python loops.  At 20 seeds this turns the per-interval cost from
"20x scalar" into "roughly 1x scalar", which is where the engine's >=10x
speedup comes from.

Two RNG disciplines are supported:

``sync_rng=False`` (default, fast)
    Vectorized draws from dedicated batch streams
    (:meth:`~repro.sim.rng.BatchRngBundle.batch_stream`).  Each
    replication is still an independent, reproducible random experiment,
    but the draw *order* differs from the scalar engine, so traces agree
    with scalar runs statistically rather than bit-for-bit.  Deterministic
    quantities (round-robin orders, LDF tie-breaks) are exact either way.

``sync_rng=True`` (exact, for cross-validation)
    Each replication consumes its scalar-identical streams in scalar
    order, by driving one scalar policy clone per seed; every trace is
    bit-identical to ``IntervalSimulator(spec, policy, seed=s)``.  This is
    how the test-suite proves the batch bookkeeping correct.

Stateful spec components that cannot be replicated independently per seed
(the Gilbert-Elliott channel, Markov-modulated arrivals) are rejected at
construction with a ``TypeError``; use the scalar engine for those.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.policies import IntervalMac
from ..core.requirements import NetworkSpec
from ..phy.channel import BernoulliChannel
from .batch_kernels import (
    DRAW_CHUNK,
    BatchIntervalOutcome,
    has_batch_kernel,
    make_batch_kernel,
)
from .results import SimulationResult
from .rng import BatchRngBundle

__all__ = [
    "BatchIntervalSimulator",
    "BatchSimulationResult",
    "run_simulation_batch",
    "supports_batch_engine",
]


def supports_batch_engine(
    spec: NetworkSpec, policy: IntervalMac, *, sync_rng: bool = False
) -> bool:
    """Whether ``(spec, policy)`` can run on the batch engine.

    Requires a batch kernel for the policy family, a memoryless channel,
    and (in the default vectorized-RNG mode) a batch-samplable arrival
    process.  Callers that want graceful degradation (the experiment
    runner) check this and fall back to the scalar engine.
    """
    if not has_batch_kernel(policy):
        return False
    if not isinstance(spec.channel, BernoulliChannel):
        return False
    if not sync_rng and not spec.arrivals.supports_batch_sampling:
        return False
    return True


class BatchSimulationResult:
    """Per-interval traces for a whole stack of replications.

    The batch analogue of :class:`~repro.sim.results.SimulationResult`:
    per-link arrays are ``(K, S, N)``, per-interval series are ``(K, S)``.
    Metric methods return one value per replication (leading ``S`` axis),
    and :meth:`seed_result` / :meth:`to_results` materialize
    scalar-compatible :class:`SimulationResult` views for downstream code
    that expects them.
    """

    def __init__(
        self,
        policy_name: str,
        requirements: np.ndarray,
        seeds: Sequence[int],
        record_priorities: bool = False,
    ):
        self.policy_name = policy_name
        self.requirements = np.asarray(requirements, dtype=float)
        self.seeds: Tuple[int, ...] = tuple(int(s) for s in seeds)
        self.record_priorities = record_priorities
        self._arrivals: List[np.ndarray] = []
        self._deliveries: List[np.ndarray] = []
        self._attempts: List[np.ndarray] = []
        self._busy: List[np.ndarray] = []
        self._overhead: List[np.ndarray] = []
        self._collisions: List[np.ndarray] = []
        self._priorities: List[np.ndarray] = []

    # ------------------------------------------------------------------
    def record(self, arrivals: np.ndarray, outcome: BatchIntervalOutcome) -> None:
        self._arrivals.append(np.asarray(arrivals, dtype=np.int64))
        self._deliveries.append(np.asarray(outcome.deliveries, dtype=np.int64))
        self._attempts.append(np.asarray(outcome.attempts, dtype=np.int64))
        self._busy.append(np.asarray(outcome.busy_time_us, dtype=float))
        self._overhead.append(np.asarray(outcome.overhead_time_us, dtype=float))
        self._collisions.append(np.asarray(outcome.collisions, dtype=np.int64))
        if self.record_priorities:
            if outcome.priorities is None:
                raise RuntimeError(
                    f"{self.policy_name} produced no priorities but the run "
                    "was configured to record them"
                )
            self._priorities.append(np.asarray(outcome.priorities, dtype=np.int64))

    # ------------------------------------------------------------------
    @property
    def num_intervals(self) -> int:
        return len(self._deliveries)

    @property
    def num_seeds(self) -> int:
        return len(self.seeds)

    @property
    def num_links(self) -> int:
        return self.requirements.size

    def _stack3(self, rows: List[np.ndarray]) -> np.ndarray:
        shape = (self.num_intervals, self.num_seeds, self.num_links)
        if not rows:
            return np.zeros(shape, dtype=np.int64)
        return np.stack(rows).reshape(shape)

    @property
    def arrivals(self) -> np.ndarray:
        return self._stack3(self._arrivals)

    @property
    def deliveries(self) -> np.ndarray:
        return self._stack3(self._deliveries)

    @property
    def attempts(self) -> np.ndarray:
        return self._stack3(self._attempts)

    @property
    def busy_time_us(self) -> np.ndarray:
        if not self._busy:
            return np.zeros((0, self.num_seeds))
        return np.stack(self._busy)

    @property
    def overhead_time_us(self) -> np.ndarray:
        if not self._overhead:
            return np.zeros((0, self.num_seeds))
        return np.stack(self._overhead)

    @property
    def collisions(self) -> np.ndarray:
        if not self._collisions:
            return np.zeros((0, self.num_seeds), dtype=np.int64)
        return np.stack(self._collisions)

    @property
    def priorities(self) -> np.ndarray:
        if not self.record_priorities:
            raise RuntimeError("run was not configured to record priorities")
        return self._stack3(self._priorities)

    # ------------------------------------------------------------------
    # Definition 1 metrics, one value per replication
    # ------------------------------------------------------------------
    def per_link_deficiency(self, upto: Optional[int] = None) -> np.ndarray:
        """``(q_n - mean deliveries)^+`` per replication — shape ``(S, N)``."""
        k = self.num_intervals if upto is None else upto
        if k <= 0:
            return np.tile(self.requirements, (self.num_seeds, 1))
        mean = self.deliveries[:k].mean(axis=0)
        return np.maximum(self.requirements[None, :] - mean, 0.0)

    def total_deficiency(self, upto: Optional[int] = None) -> np.ndarray:
        """Total deficiency per replication — shape ``(S,)``."""
        return self.per_link_deficiency(upto).sum(axis=1)

    def deficiency_trajectory(self, stride: int = 1) -> np.ndarray:
        """Per-replication total deficiency after each ``stride``-th
        interval — shape ``(K // stride, S)``."""
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        cumulative = np.cumsum(self.deliveries, axis=0, dtype=float)
        ks = np.arange(1, self.num_intervals + 1)[:, None, None]
        deficiency = np.maximum(
            self.requirements[None, None, :] - cumulative / ks, 0.0
        )
        totals = deficiency.sum(axis=2)
        return totals[stride - 1 :: stride]

    def timely_throughput(self) -> np.ndarray:
        """Mean deliveries/interval per replication — shape ``(S, N)``."""
        if self.num_intervals == 0:
            return np.zeros((self.num_seeds, self.num_links))
        return self.deliveries.mean(axis=0)

    # ------------------------------------------------------------------
    def seed_index(self, seed: int) -> int:
        """Position of ``seed`` in the replication stack."""
        try:
            return self.seeds.index(int(seed))
        except ValueError:
            raise KeyError(f"seed {seed} is not in this batch: {self.seeds}")

    def seed_result(self, seed: int) -> SimulationResult:
        """One replication's trace as a scalar-compatible result."""
        s = self.seed_index(seed)
        return SimulationResult.from_arrays(
            policy_name=self.policy_name,
            requirements=self.requirements,
            arrivals=self.arrivals[:, s],
            deliveries=self.deliveries[:, s],
            attempts=self.attempts[:, s],
            busy_time_us=self.busy_time_us[:, s],
            overhead_time_us=self.overhead_time_us[:, s],
            collisions=self.collisions[:, s],
            priorities=self.priorities[:, s] if self.record_priorities else None,
        )

    def to_results(self) -> List[SimulationResult]:
        """All replications as scalar-compatible results, in seed order."""
        return [self.seed_result(s) for s in self.seeds]


class BatchIntervalSimulator:
    """Stateful multi-replication simulator; mirrors ``IntervalSimulator``.

    Parameters
    ----------
    spec:
        The network under test (must use a Bernoulli channel).
    policy:
        A policy with a batch kernel (DP/DB-DP, ELDF/LDF, round-robin,
        static priority); :func:`~repro.sim.batch_kernels.make_batch_kernel`
        raises ``TypeError`` otherwise.
    seeds:
        One seed per replication; each matches the scalar engine's
        single-``seed`` argument.
    sync_rng:
        Consume randomness in scalar order per seed (exact but slow); see
        the module docstring.
    validate:
        Assert deliveries never exceed arrivals each step (cheap, on by
        default; benchmarks turn it off).
    """

    def __init__(
        self,
        spec: NetworkSpec,
        policy: IntervalMac,
        seeds: Sequence[int],
        *,
        sync_rng: bool = False,
        validate: bool = True,
        record_priorities: bool = False,
    ):
        self.spec = spec
        self.policy = policy
        self.sync_rng = bool(sync_rng)
        self.validate = bool(validate)
        self.rng = BatchRngBundle(seeds)
        if not self.sync_rng and not spec.arrivals.supports_batch_sampling:
            raise TypeError(
                f"{type(spec.arrivals).__name__} cannot be sampled as an "
                "independent batch (stateful process); use sync_rng=True or "
                "the scalar engine"
            )
        self.kernel = make_batch_kernel(policy)
        self.kernel.bind(spec, self.rng.num_seeds, self.sync_rng)
        self._q = spec.requirement_vector
        self._debts = np.zeros((self.rng.num_seeds, spec.num_links))
        self._interval = 0
        self._arrival_cache: Optional[np.ndarray] = None
        self._arrival_pos = DRAW_CHUNK
        self.result = BatchSimulationResult(
            policy_name=policy.name,
            requirements=self._q,
            seeds=self.rng.seeds,
            record_priorities=record_priorities,
        )

    # ------------------------------------------------------------------
    @property
    def seeds(self) -> Tuple[int, ...]:
        return self.rng.seeds

    @property
    def num_seeds(self) -> int:
        return self.rng.num_seeds

    @property
    def interval(self) -> int:
        return self._interval

    @property
    def debts(self) -> np.ndarray:
        """Current ``(S, N)`` debt stack (copy)."""
        return self._debts.copy()

    @property
    def positive_debts(self) -> np.ndarray:
        return np.maximum(self._debts, 0.0)

    # ------------------------------------------------------------------
    def _sample_arrivals(self) -> np.ndarray:
        if self.sync_rng:
            # Scalar draw order per seed: identical to IntervalSimulator.
            return np.stack(
                [
                    self.spec.arrivals.sample(bundle.arrivals)
                    for bundle in self.rng.bundles
                ]
            )
        # Batch-samplable processes are stateless (i.i.d. across both
        # replications and intervals), so DRAW_CHUNK intervals' worth of
        # arrivals can come from one oversized draw — same distribution,
        # far fewer Generator round-trips.
        if self._arrival_pos >= DRAW_CHUNK:
            flat = self.spec.arrivals.sample_batch(
                self.rng.arrivals, DRAW_CHUNK * self.num_seeds
            )
            self._arrival_cache = flat.reshape(
                DRAW_CHUNK, self.num_seeds, self.spec.num_links
            )
            self._arrival_pos = 0
        arrivals = self._arrival_cache[self._arrival_pos]
        self._arrival_pos += 1
        return arrivals

    def step(self) -> None:
        """Simulate one interval for every replication."""
        arrivals = self._sample_arrivals()
        outcome = self.kernel.run_interval(
            self._interval,
            arrivals,
            np.maximum(self._debts, 0.0),
            self.rng,
            self.sync_rng,
        )
        if self.validate and np.any(outcome.deliveries > arrivals):
            raise AssertionError(
                f"{self.policy.name} delivered more than arrived in at "
                "least one replication"
            )
        # Eq. (1), elementwise per replication: the float operations per
        # seed are the same as DebtLedger.record_interval, so sync-mode
        # debts stay bit-identical to scalar ledgers.
        self._debts += self._q[None, :] - outcome.deliveries
        self._interval += 1
        self.result.record(arrivals, outcome)

    def run(
        self,
        num_intervals: int,
        progress: Optional[Callable[[int], None]] = None,
    ) -> BatchSimulationResult:
        """Simulate ``num_intervals`` further intervals; return the result."""
        if num_intervals < 0:
            raise ValueError(f"num_intervals must be >= 0, got {num_intervals}")
        if progress is None:
            for _ in range(num_intervals):
                self.step()
        else:
            for i in range(num_intervals):
                self.step()
                progress(i)
        return self.result


def run_simulation_batch(
    spec: NetworkSpec,
    policy: IntervalMac,
    num_intervals: int,
    seeds: Sequence[int],
    *,
    sync_rng: bool = False,
    validate: bool = True,
    record_priorities: bool = False,
) -> BatchSimulationResult:
    """One-shot convenience wrapper around :class:`BatchIntervalSimulator`."""
    sim = BatchIntervalSimulator(
        spec,
        policy,
        seeds,
        sync_rng=sync_rng,
        validate=validate,
        record_priorities=record_priorities,
    )
    return sim.run(num_intervals)
