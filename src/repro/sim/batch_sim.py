"""Batch simulation engine: all replications of one experiment at once.

The scalar :class:`~repro.sim.interval_sim.IntervalSimulator` runs one seed
at a time; multi-seed experiments repeat it S times, so the Python
per-interval overhead multiplies by S.  The batch engine instead advances a
stack of S independent replications *together*: debts, arrivals, priorities
and deliveries live as ``(S, N)`` arrays, and each interval is one pass of
vectorized kernel code (:mod:`repro.sim.batch_kernels`) rather than S
Python loops.  At 20 seeds this turns the per-interval cost from
"20x scalar" into "roughly 1x scalar", which is where the engine's >=10x
speedup comes from.

Two RNG disciplines are supported:

``sync_rng=False`` (default, fast)
    Vectorized draws from dedicated batch streams
    (:meth:`~repro.sim.rng.BatchRngBundle.batch_stream`).  Each
    replication is still an independent, reproducible random experiment,
    but the draw *order* differs from the scalar engine, so traces agree
    with scalar runs statistically rather than bit-for-bit.  Deterministic
    quantities (round-robin orders, LDF tie-breaks) are exact either way.

``sync_rng=True`` (exact, for cross-validation)
    Each replication consumes its scalar-identical streams in scalar
    order, by driving one scalar policy clone per seed; every trace is
    bit-identical to ``IntervalSimulator(spec, policy, seed=s)``.  This is
    how the test-suite proves the batch bookkeeping correct.

Stateful spec components are batchable when they expose a vectorized
per-row state process: the Gilbert-Elliott channel and the deterministic
time-varying reliability profiles evolve as ``(S, N)`` planes inside the
kernels' channel-draw pipeline, and Markov-modulated / Pareto-burst
arrivals evolve as ``(S, N)`` planes inside the arrival-draw pipeline,
fed by a dedicated ``"arrival-state"`` substream so stateless processes'
draw schedules never shift (stochastic state additionally requires the
``rng="free"`` discipline, since lockstep batch streams cannot host the
extra evolution draws).  Components without a vectorized state process —
channels whose attempts are not i.i.d. within an interval, arrival
processes without ``stack_rows`` — are rejected at construction with a
``TypeError`` naming the working fallback (``sync_rng=True`` or the
scalar engine).

Beyond one shared spec, the simulator accepts a **per-row spec stack**
(:class:`~repro.sim.spec_stack.SpecStack`, or any sequence of specs, one
per seed): rows may then come from heterogeneous networks — different
reliabilities, requirements, and arrival parameters — which is what lets
the grid-fused sweep engine (:mod:`repro.experiments.grid`) simulate a
whole figure sweep in one engine pass.  ``record_traces=False`` skips the
per-interval trace lists and keeps only the streaming
:class:`BatchSweepStats` aggregates, which is all a sweep cell reports.
"""

from __future__ import annotations

import copy
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core import registry
from ..core.policies import IntervalMac
from ..core.requirements import NetworkSpec
from . import perf
from .batch_kernels import (
    DRAW_CHUNK,
    BatchIntervalOutcome,
    make_batch_kernel,
)
from .results import SimulationResult
from .rng import BatchRngBundle, normalize_rng_mode
from .spec_stack import SpecStack

__all__ = [
    "BatchIntervalSimulator",
    "BatchSimulationResult",
    "BatchSweepStats",
    "run_simulation_batch",
    "share_batch_draws",
    "supports_batch_engine",
]


def supports_batch_engine(
    spec: NetworkSpec,
    policy: IntervalMac,
    *,
    sync_rng: bool = False,
    rng: Optional[str] = None,
) -> bool:
    """Whether ``(spec, policy)`` can run on the batch engine.

    Requires a policy family registered as ``batchable`` (consulting the
    policy registry's capability flags rather than a type switch), a
    channel the kernels can pre-draw (i.i.d.-within-interval attempts;
    stateful channels additionally need vectorized batch state, the
    family's ``supports_markov_channel`` capability, and — when the state
    evolution is stochastic — the ``rng="free"`` discipline), and (in the
    non-sync modes) an arrival process that is either batch-samplable or
    supplies vectorized batch state (stochastic arrival state likewise
    needs ``rng="free"``).
    ``rng="free"`` additionally requires the family to declare
    ``supports_free_rng``.  Callers that want graceful degradation (the
    experiment runner) check this and fall back to the scalar engine.
    """
    descriptor = registry.descriptor_for(policy)
    if descriptor is None or not descriptor.capabilities.batchable:
        return False
    if sync_rng and not descriptor.capabilities.supports_sync_rng:
        return False
    mode = normalize_rng_mode(rng, sync_rng)
    if mode == "free" and not descriptor.capabilities.supports_free_rng:
        return False
    channel = spec.channel
    if channel.has_state:
        if mode != "sync":
            if not channel.supports_batch_state:
                return False
            if not descriptor.capabilities.supports_markov_channel:
                return False
            if channel.state_uses_rng and mode != "free":
                return False
    elif not channel.iid_within_interval:
        return False
    arrivals = spec.arrivals
    if mode != "sync":
        if arrivals.has_state:
            if not arrivals.supports_batch_state:
                return False
            if arrivals.state_uses_rng and mode != "free":
                return False
        elif not arrivals.supports_batch_sampling:
            return False
    return True


class BatchSimulationResult:
    """Per-interval traces for a whole stack of replications.

    The batch analogue of :class:`~repro.sim.results.SimulationResult`:
    per-link arrays are ``(K, S, N)``, per-interval series are ``(K, S)``.
    Metric methods return one value per replication (leading ``S`` axis),
    and :meth:`seed_result` / :meth:`to_results` materialize
    scalar-compatible :class:`SimulationResult` views for downstream code
    that expects them.

    ``requirements`` may be a shared ``(N,)`` vector or, for heterogeneous
    spec stacks, an ``(S, N)`` matrix with one requirement row per
    replication; metrics broadcast either shape.
    """

    def __init__(
        self,
        policy_name: str,
        requirements: np.ndarray,
        seeds: Sequence[int],
        record_priorities: bool = False,
    ):
        self.policy_name = policy_name
        self.requirements = np.asarray(requirements, dtype=float)
        self.seeds: Tuple[int, ...] = tuple(int(s) for s in seeds)
        self.record_priorities = record_priorities
        self._arrivals: List[np.ndarray] = []
        self._deliveries: List[np.ndarray] = []
        self._attempts: List[np.ndarray] = []
        self._busy: List[np.ndarray] = []
        self._overhead: List[np.ndarray] = []
        self._collisions: List[np.ndarray] = []
        self._priorities: List[np.ndarray] = []

    # ------------------------------------------------------------------
    def record(self, arrivals: np.ndarray, outcome: BatchIntervalOutcome) -> None:
        if outcome.attempts is None:
            raise RuntimeError(
                f"{self.policy_name} ran on a lite-bound kernel (no attempt "
                "traces); trace recording requires lite=False"
            )
        # Copy: several draw/kernel paths hand back reused buffers (e.g.
        # the topology engine's cell-wise blocks), so stored traces must
        # own their data or every interval would alias the last one.
        self._arrivals.append(np.array(arrivals, dtype=np.int64))
        self._deliveries.append(np.array(outcome.deliveries, dtype=np.int64))
        self._attempts.append(np.array(outcome.attempts, dtype=np.int64))
        self._busy.append(np.array(outcome.busy_time_us, dtype=float))
        self._overhead.append(np.array(outcome.overhead_time_us, dtype=float))
        self._collisions.append(np.array(outcome.collisions, dtype=np.int64))
        if self.record_priorities:
            if outcome.priorities is None:
                raise RuntimeError(
                    f"{self.policy_name} produced no priorities but the run "
                    "was configured to record them"
                )
            self._priorities.append(np.array(outcome.priorities, dtype=np.int64))

    # ------------------------------------------------------------------
    @property
    def num_intervals(self) -> int:
        return len(self._deliveries)

    @property
    def num_seeds(self) -> int:
        return len(self.seeds)

    @property
    def num_links(self) -> int:
        return self.requirements.shape[-1]

    @property
    def _req_rows(self) -> np.ndarray:
        """Requirements broadcastable against ``(S, N)`` arrays."""
        if self.requirements.ndim == 2:
            return self.requirements
        return self.requirements[None, :]

    def _stack3(self, rows: List[np.ndarray]) -> np.ndarray:
        shape = (self.num_intervals, self.num_seeds, self.num_links)
        if not rows:
            return np.zeros(shape, dtype=np.int64)
        return np.stack(rows).reshape(shape)

    @property
    def arrivals(self) -> np.ndarray:
        return self._stack3(self._arrivals)

    @property
    def deliveries(self) -> np.ndarray:
        return self._stack3(self._deliveries)

    @property
    def attempts(self) -> np.ndarray:
        return self._stack3(self._attempts)

    @property
    def busy_time_us(self) -> np.ndarray:
        if not self._busy:
            return np.zeros((0, self.num_seeds))
        return np.stack(self._busy)

    @property
    def overhead_time_us(self) -> np.ndarray:
        if not self._overhead:
            return np.zeros((0, self.num_seeds))
        return np.stack(self._overhead)

    @property
    def collisions(self) -> np.ndarray:
        if not self._collisions:
            return np.zeros((0, self.num_seeds), dtype=np.int64)
        return np.stack(self._collisions)

    @property
    def priorities(self) -> np.ndarray:
        if not self.record_priorities:
            raise RuntimeError("run was not configured to record priorities")
        return self._stack3(self._priorities)

    # ------------------------------------------------------------------
    # Definition 1 metrics, one value per replication
    # ------------------------------------------------------------------
    def per_link_deficiency(self, upto: Optional[int] = None) -> np.ndarray:
        """``(q_n - mean deliveries)^+`` per replication — shape ``(S, N)``."""
        k = self.num_intervals if upto is None else upto
        if k <= 0:
            return np.broadcast_to(
                self._req_rows, (self.num_seeds, self.num_links)
            ).copy()
        mean = self.deliveries[:k].mean(axis=0)
        return np.maximum(self._req_rows - mean, 0.0)

    def total_deficiency(self, upto: Optional[int] = None) -> np.ndarray:
        """Total deficiency per replication — shape ``(S,)``."""
        return self.per_link_deficiency(upto).sum(axis=1)

    def deficiency_trajectory(self, stride: int = 1) -> np.ndarray:
        """Per-replication total deficiency after each ``stride``-th
        interval — shape ``(K // stride, S)``."""
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        cumulative = np.cumsum(self.deliveries, axis=0, dtype=float)
        ks = np.arange(1, self.num_intervals + 1)[:, None, None]
        deficiency = np.maximum(
            self._req_rows[None, :, :] - cumulative / ks, 0.0
        )
        totals = deficiency.sum(axis=2)
        return totals[stride - 1 :: stride]

    def timely_throughput(self) -> np.ndarray:
        """Mean deliveries/interval per replication — shape ``(S, N)``."""
        if self.num_intervals == 0:
            return np.zeros((self.num_seeds, self.num_links))
        return self.deliveries.mean(axis=0)

    # ------------------------------------------------------------------
    def seed_index(self, seed: int) -> int:
        """Position of ``seed`` in the replication stack."""
        try:
            return self.seeds.index(int(seed))
        except ValueError:
            raise KeyError(f"seed {seed} is not in this batch: {self.seeds}")

    def seed_result(self, seed: int) -> SimulationResult:
        """One replication's trace as a scalar-compatible result."""
        s = self.seed_index(seed)
        requirements = (
            self.requirements[s]
            if self.requirements.ndim == 2
            else self.requirements
        )
        return SimulationResult.from_arrays(
            policy_name=self.policy_name,
            requirements=requirements,
            arrivals=self.arrivals[:, s],
            deliveries=self.deliveries[:, s],
            attempts=self.attempts[:, s],
            busy_time_us=self.busy_time_us[:, s],
            overhead_time_us=self.overhead_time_us[:, s],
            collisions=self.collisions[:, s],
            priorities=self.priorities[:, s] if self.record_priorities else None,
        )

    def to_results(self) -> List[SimulationResult]:
        """All replications as scalar-compatible results, in seed order."""
        return [self.seed_result(s) for s in self.seeds]


class BatchSweepStats:
    """Streaming per-row aggregates sufficient for sweep reporting.

    Holds exactly what the experiment runner reports from a run — per-row
    delivery sums, collision sums, and the per-interval overhead rows —
    without retaining full ``(K, S, N)`` traces, so a grid-fused
    mega-batch stays O(S*N) in memory instead of O(K*S*N).

    The aggregates are chosen to reproduce the trace-based metrics
    *bit-for-bit*: deliveries and collisions accumulate as exact int64
    sums (every partial sum is a small integer, so the float mean
    ``sums / K`` equals ``traces.mean(axis=0)`` exactly), and overhead
    keeps the raw per-interval ``(S,)`` rows so :meth:`mean_overhead_us`
    performs the same ``np.stack(...).mean(axis=0)`` pairwise summation
    as ``BatchSimulationResult.overhead_time_us.mean(axis=0)``.
    """

    def __init__(self, requirements: np.ndarray, seeds: Sequence[int]):
        self.seeds: Tuple[int, ...] = tuple(int(s) for s in seeds)
        req = np.asarray(requirements, dtype=float)
        if req.ndim == 1:
            req = req[None, :]
        if req.shape[0] == 1:
            req = np.broadcast_to(req, (len(self.seeds), req.shape[1]))
        elif req.shape[0] != len(self.seeds):
            raise ValueError(
                f"requirements have {req.shape[0]} rows but the stack has "
                f"{len(self.seeds)} replications"
            )
        self.requirements = np.array(req, dtype=float)
        self.num_intervals = 0
        self.delivery_sums = np.zeros(self.requirements.shape, dtype=np.int64)
        self.collision_sums = np.zeros(len(self.seeds), dtype=np.int64)
        self._overhead_rows: List[np.ndarray] = []

    @property
    def num_seeds(self) -> int:
        return len(self.seeds)

    @property
    def num_links(self) -> int:
        return self.requirements.shape[-1]

    def update(self, outcome: BatchIntervalOutcome) -> None:
        """Fold one interval's outcome into the running aggregates.

        The overhead row is *copied* before retention: workspace kernels
        hand out live buffers they overwrite next interval, so anything
        kept beyond the call must own its data (sums fold immediately and
        need no copy).
        """
        self.delivery_sums += np.asarray(outcome.deliveries, dtype=np.int64)
        self.collision_sums += np.asarray(outcome.collisions, dtype=np.int64)
        self._overhead_rows.append(
            np.array(outcome.overhead_time_us, dtype=float)
        )
        self.num_intervals += 1

    # ------------------------------------------------------------------
    def mean_deliveries(self) -> np.ndarray:
        """Mean deliveries/interval per row — shape ``(S, N)``."""
        if self.num_intervals == 0:
            return np.zeros(self.requirements.shape)
        return self.delivery_sums / self.num_intervals

    def per_link_deficiency(self) -> np.ndarray:
        """``(q_n - mean deliveries)^+`` per row — shape ``(S, N)``."""
        if self.num_intervals == 0:
            return self.requirements.copy()
        return np.maximum(self.requirements - self.mean_deliveries(), 0.0)

    def total_deficiency(self) -> np.ndarray:
        """Total deficiency per row — shape ``(S,)``."""
        return self.per_link_deficiency().sum(axis=1)

    def total_collisions(self) -> np.ndarray:
        """Collision count per row over the whole run — shape ``(S,)``."""
        return self.collision_sums.copy()

    def mean_overhead_us(self) -> np.ndarray:
        """Mean per-interval overhead per row — shape ``(S,)``."""
        if not self._overhead_rows:
            return np.zeros(self.num_seeds)
        return np.stack(self._overhead_rows).mean(axis=0)


class _BatchArrivalDraws:
    """Chunked arrival blocks for the vectorized (non-sync) RNG mode.

    Batch-samplable processes are stateless (i.i.d. across both
    replications and intervals), so :data:`DRAW_CHUNK` intervals' worth of
    arrivals can come from one oversized draw — same distribution, far
    fewer Generator round-trips.
    """

    def __init__(
        self,
        stack: Optional[SpecStack],
        spec: NetworkSpec,
        num_seeds: int,
        depth: Optional[int] = None,
    ):
        # The depth stays fixed at DRAW_CHUNK in batch mode even when the
        # kernels use a deeper REPRO_DRAW_CHUNK: arrival sampling may make
        # several Generator calls per block (e.g. bursty uniforms then
        # integers), so the block size changes how the stream's values
        # interleave — unlike the single-call channel/uniform chunks, a
        # different depth here would change the trajectory.  The free
        # discipline has no trajectory-preservation constraint (statistical
        # equivalence is the contract; arrivals stay i.i.d. per interval at
        # any block size), so it passes the kernel's deeper chunk depth.
        self._stack = stack
        self._spec = spec
        self._num_seeds = num_seeds
        self._depth = DRAW_CHUNK if depth is None else int(depth)
        self._cache: Optional[np.ndarray] = None
        self._pos = self._depth

    def next(self, rng: np.random.Generator) -> np.ndarray:
        if self._pos >= self._depth:
            if perf.counters.enabled:
                t0 = perf.clock()
            if self._stack is not None:
                self._cache = self._stack.sample_arrival_block(
                    rng, self._depth
                )
            else:
                flat = self._spec.arrivals.sample_batch(
                    rng, self._depth * self._num_seeds
                )
                self._cache = flat.reshape(
                    self._depth, self._num_seeds, self._spec.num_links
                )
            self._pos = 0
            if perf.counters.enabled:
                perf.counters.add(
                    "draws.arrival_refill", perf.clock() - t0, 1
                )
        block = self._cache[self._pos]
        self._pos += 1
        return block


class _StatefulArrivalDraws:
    """Chunked arrival blocks when some rows carry evolving state.

    Stateless rows draw exactly as :class:`_BatchArrivalDraws` would —
    grouped ``sample_batch`` calls from the arrivals stream, in row
    order — so adding stateful neighbors to a stack never shifts a
    stateless process's draw schedule.  Stateful rows are stacked by
    class into :class:`~repro.traffic.arrivals.ArrivalStateRows` planes
    that evolve one interval per block slot, consuming the dedicated
    ``"arrival-state"`` substream held internally (fan-out sharing passes
    only the arrivals stream through ``next``).
    """

    def __init__(
        self,
        stack: Optional[SpecStack],
        spec: NetworkSpec,
        num_seeds: int,
        depth: Optional[int] = None,
        state_rng: Optional[np.random.Generator] = None,
    ):
        specs = stack.specs if stack is not None else (spec,) * num_seeds
        self._num_seeds = num_seeds
        self._n = specs[0].num_links
        self._depth = DRAW_CHUNK if depth is None else int(depth)
        self._state_rng = state_rng
        # Stateless rows grouped by process equality (one sample_batch per
        # distinct process); stateful rows grouped by class (one stacked
        # state plane per family).
        stateless: List[Tuple] = []
        by_class: List[Tuple[type, List, List[int]]] = []
        for i, sp in enumerate(specs):
            proc = sp.arrivals
            if proc.has_state:
                for cls, procs, rows in by_class:
                    if type(proc) is cls:
                        procs.append(proc)
                        rows.append(i)
                        break
                else:
                    by_class.append((type(proc), [proc], [i]))
            else:
                for rep, rows in stateless:
                    if proc == rep:
                        rows.append(i)
                        break
                else:
                    stateless.append((proc, [i]))
        self._stateless = [(proc, rows) for proc, rows in stateless]
        self._state_groups = [
            (
                cls.stack_rows(procs),
                rows,
                np.empty((self._depth, len(rows), self._n), dtype=np.int64),
            )
            for cls, procs, rows in by_class
        ]
        self._cache = np.empty(
            (self._depth, num_seeds, self._n), dtype=np.int64
        )
        self._pos = self._depth

    def next(self, rng: np.random.Generator) -> np.ndarray:
        if self._pos >= self._depth:
            if perf.counters.enabled:
                t0 = perf.clock()
            for proc, rows in self._stateless:
                flat = proc.sample_batch(rng, self._depth * len(rows))
                self._cache[:, rows] = flat.reshape(
                    self._depth, len(rows), self._n
                )
            for state_rows, rows, buf in self._state_groups:
                state_rows.evolve_block(self._depth, self._state_rng, buf)
                self._cache[:, rows] = buf
            self._pos = 0
            if perf.counters.enabled:
                perf.counters.add(
                    "draws.arrival_refill", perf.clock() - t0, 1
                )
        block = self._cache[self._pos]
        self._pos += 1
        return block


class _FanoutDraws:
    """Serve each drawn block to ``consumers`` lockstep clients.

    Simulators whose seed tuples and spec stacks coincide would draw
    *identical* channel retry counts and arrival blocks (their streams are
    keyed only by seeds, stream tag and stream name).  When such
    simulators advance in lockstep — every client calls ``next`` exactly
    once per interval, in a fixed rotation — one generation pass can feed
    all of them.  Only the first client's generator is consumed; the
    others' streams stay untouched, which is indistinguishable from each
    having drawn its own (equal) block.
    """

    def __init__(self, inner, consumers: int):
        self._inner = inner
        self._consumers = consumers
        self._remaining = 0
        self._block: Optional[np.ndarray] = None
        self._totals: Optional[np.ndarray] = None

    @property
    def lazy(self) -> bool:
        """Whether the shared source serves raw (untransformed) draws."""
        return bool(getattr(self._inner, "lazy", False))

    def next(
        self,
        rng: np.random.Generator,
        state_rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        if self._remaining == 0:
            if state_rng is None:
                self._block = self._inner.next(rng)
            else:
                # Channel-state fan-out: the state evolves once per cycle
                # from the first client's stream (the classes guarantee
                # every client's stream would be identical).
                self._block = self._inner.next(rng, state_rng)
            self._remaining = self._consumers
            self._totals = None
        self._remaining -= 1
        return self._block

    def totals(self, needed_cum: np.ndarray, backlog: np.ndarray) -> np.ndarray:
        """Drain totals for the current serve cycle, computed once.

        The plane depends only on the channel block and the backlog, and
        lockstep clients of a channel fan-out share both (arrivals come
        from a sibling fan-out), so every client of one cycle gets the
        first client's computation.
        """
        if self._totals is None:
            self._totals = self._inner.totals(needed_cum, backlog)
        return self._totals


def share_batch_draws(sims: Sequence["BatchIntervalSimulator"]) -> None:
    """Wire common-random-number sharing across lockstep simulators.

    Partitions ``sims`` into classes that provably draw identical channel
    and arrival randomness — same seed tuple, same stream tag, equal row
    specs, vectorized (non-sync) mode — and gives each class one shared
    draw source.  Callers **must** then advance all the simulators in
    lockstep (each steps once per interval, in any fixed order); the fused
    sweep runner does exactly that for the policy-family mega-batches of
    one grid, which by construction stack the same cells for each family.

    This mirrors the per-cell engines, where cells of different policies
    reuse the same seeds and therefore the same draws; sharing changes no
    values, it only skips regenerating them.
    """
    classes: List[Tuple[Tuple, List["BatchIntervalSimulator"]]] = []
    for sim in sims:
        if sim.sync_rng or sim._arrival_draws is None:
            continue
        if getattr(sim.kernel, "_channel_draws", None) is None:
            continue
        specs = sim.stack.specs if sim.stack is not None else (sim.spec,)
        draws = sim.kernel._channel_draws
        # Chunk depth is part of the class key: blocks are shared by
        # reference, so lockstep clients must consume identically-shaped
        # chunks (depths can differ when only some kernels honor
        # REPRO_DRAW_CHUNK).
        # The rng mode is part of the key too: batch and free simulators
        # draw from disjoint stream namespaces, so their blocks differ.
        # Lazy (raw-draw) kernels transform gathered rows themselves;
        # eager kernels expect the block pre-transformed.  Both generate
        # identical raw streams, but a shared *block* must mean the same
        # thing to every client, so lazy-ness splits the class.
        key = (
            sim.rng.seeds,
            sim.rng.stream_tag,
            sim.rng_mode,
            specs,
            draws._depth,
            bool(getattr(draws, "lazy", False)),
        )
        for existing_key, members in classes:
            if existing_key == key:  # spec equality, not identity
                members.append(sim)
                break
        else:
            classes.append((key, [sim]))
    for _, group in classes:
        if len(group) < 2:
            continue
        shared_channel = _FanoutDraws(
            group[0].kernel._channel_draws, len(group)
        )
        shared_arrivals = _FanoutDraws(group[0]._arrival_draws, len(group))
        for sim in group:
            sim.kernel._channel_draws = shared_channel
            sim._arrival_draws = shared_arrivals


class BatchIntervalSimulator:
    """Stateful multi-replication simulator; mirrors ``IntervalSimulator``.

    Parameters
    ----------
    spec:
        The network under test.  The channel must be batchable under the
        chosen rng discipline (see :func:`supports_batch_engine`):
        memoryless channels need i.i.d.-within-interval attempts, and
        stateful ones (Gilbert-Elliott, time-varying profiles) need
        vectorized batch state — with ``rng="free"`` when the state
        evolution is stochastic.  May also be a
        :class:`~repro.sim.spec_stack.SpecStack` (or any sequence of
        specs, one per seed) to give every replication row its own
        channel parameters, requirements and arrival parameters.
    policy:
        A policy with a batch kernel (DP/DB-DP, ELDF/LDF, round-robin,
        static priority); :func:`~repro.sim.batch_kernels.make_batch_kernel`
        raises ``TypeError`` otherwise.
    seeds:
        One seed per replication; each matches the scalar engine's
        single-``seed`` argument.  With a spec stack, seeds may repeat
        (one row per (cell, seed) pair of a fused sweep).
    sync_rng:
        Consume randomness in scalar order per seed (exact but slow); see
        the module docstring.
    validate:
        Assert deliveries never exceed arrivals each step (cheap, on by
        default; benchmarks turn it off).
    record_traces:
        Keep full per-interval traces (:attr:`result`).  ``False`` keeps
        only the streaming :attr:`stats` aggregates — the grid-fused
        engine's mode, where a full-figure mega-batch would otherwise
        retain hundreds of MB of traces.
    row_policies:
        Optional per-row policy instances (same family as ``policy``);
        lets fused rows differ in policy parameters the kernel can stack
        (e.g. per-row Glauber constants).
    stream_tag:
        Namespace tag for the batch RNG streams; see
        :class:`~repro.sim.rng.BatchRngBundle`.
    backend:
        Kernel backend (:data:`~repro.sim.batch_kernels.KERNEL_BACKENDS`):
        ``"numpy"`` (preallocated workspace, default), ``"jit"`` (Numba
        inner loops, falls back to ``"numpy"`` without numba), or
        ``"legacy"``.  All backends are bit-identical; ``None`` resolves
        from ``REPRO_KERNEL_BACKEND`` / ``REPRO_JIT``.
    dp_state:
        Priority-state maintenance mode for DP-family kernels
        (:data:`~repro.sim.batch_kernels.DP_STATE_MODES`): ``"dense"``
        re-derives the service order from sigma every interval,
        ``"incremental"`` maintains it sparsely across intervals
        (bit-identical, O(swaps) updates, serve-set timeline solve).
        ``None`` resolves from ``REPRO_DP_STATE`` or the policy family's
        capabilities; non-DP kernels accept only ``None``/``"dense"``.
    """

    def __init__(
        self,
        spec: Union[NetworkSpec, SpecStack, Sequence[NetworkSpec]],
        policy: IntervalMac,
        seeds: Sequence[int],
        *,
        sync_rng: bool = False,
        validate: bool = True,
        record_priorities: bool = False,
        record_traces: bool = True,
        row_policies: Optional[Sequence[IntervalMac]] = None,
        stream_tag: Optional[str] = None,
        backend: Optional[str] = None,
        rng: Optional[str] = None,
        dp_state: Optional[str] = None,
    ):
        if isinstance(spec, SpecStack):
            stack: Optional[SpecStack] = spec
        elif isinstance(spec, NetworkSpec):
            stack = None
        else:
            stack = SpecStack(spec)
        self.stack = stack
        self.spec = stack.specs[0] if stack is not None else spec
        self.policy = policy
        self.rng_mode = normalize_rng_mode(rng, sync_rng)
        self.sync_rng = self.rng_mode == "sync"
        self.validate = bool(validate)
        self.record_traces = bool(record_traces)
        self.rng = BatchRngBundle(seeds, stream_tag=stream_tag)
        if stack is not None and stack.num_rows != self.rng.num_seeds:
            raise ValueError(
                f"spec stack has {stack.num_rows} rows but "
                f"{self.rng.num_seeds} seeds were given"
            )
        if stack is not None:
            arrivals_have_state = stack.has_state_arrivals
            arrival_state_rng = stack.arrival_state_uses_rng
            arrival_state_ok = stack.supports_batch_state_arrivals
            batch_ok = stack.supports_batch_arrivals
        else:
            arr = self.spec.arrivals
            arrivals_have_state = arr.has_state
            arrival_state_rng = arr.has_state and arr.state_uses_rng
            arrival_state_ok = arr.supports_batch_state
            batch_ok = arr.supports_batch_sampling
        if not self.sync_rng:
            if arrivals_have_state:
                if not arrival_state_ok:
                    raise TypeError(
                        f"{type(self.spec.arrivals).__name__} carries "
                        "per-interval state without a vectorized batch "
                        "state process, so the batch engine cannot run "
                        "it; use sync_rng=True or engine='scalar'"
                    )
                if arrival_state_rng and self.rng_mode != "free":
                    raise TypeError(
                        f"{type(self.spec.arrivals).__name__} evolves "
                        "stochastic per-interval state, which the lockstep "
                        "batch draw discipline cannot host; pass "
                        "rng='free' (statistically equivalent), "
                        "sync_rng=True (bit-identical, scalar-speed), or "
                        "engine='scalar'"
                    )
            elif not batch_ok:
                raise TypeError(
                    f"{type(self.spec.arrivals).__name__} cannot be sampled "
                    "as an independent batch (stateful process), so the "
                    "batch engine cannot run it; use sync_rng=True or "
                    "engine='scalar'"
                )
        if self.rng_mode == "free":
            descriptor = registry.descriptor_for(policy)
            if descriptor is None or not descriptor.capabilities.supports_free_rng:
                raise TypeError(
                    f"{type(policy).__name__}'s family does not declare "
                    "supports_free_rng; run it under the default batch "
                    "discipline (rng=None) instead"
                )
        self.kernel = make_batch_kernel(policy)
        self.kernel.bind(
            stack if stack is not None else self.spec,
            self.rng.num_seeds,
            self.sync_rng,
            row_policies=row_policies,
            backend=backend,
            # Trace recording reads per-link attempts and priorities;
            # stats-only runs let the kernel skip materializing them.
            lite=not self.record_traces,
            rng=self.rng_mode,
            dp_state=dp_state,
        )
        self.backend = self.kernel._backend
        self.dp_state = self.kernel.dp_state
        self._q_rows = (
            stack.requirement_matrix
            if stack is not None
            else self.spec.requirement_vector[None, :]
        )
        self._debts = np.zeros((self.rng.num_seeds, self.spec.num_links))
        self._pos_debts = np.empty_like(self._debts)
        self._debt_step = np.empty_like(self._debts)
        self._interval = 0
        if self.sync_rng:
            # Per-row process clones, each reset to its initial state:
            # rows are then bit-identical to the scalar engine and never
            # advance a shared modulating chain through each other.
            src = (
                stack.specs
                if stack is not None
                else (self.spec,) * self.rng.num_seeds
            )
            sync_procs = []
            for sp in src:
                proc = sp.arrivals
                if proc.has_state:
                    proc = copy.deepcopy(proc)
                    proc.reset_state()
                sync_procs.append(proc)
            self._sync_arrivals = tuple(sync_procs)
            self._sync_arrival_state = tuple(
                bundle.stream("arrival-state") if proc.has_state else None
                for proc, bundle in zip(sync_procs, self.rng.bundles)
            )
            self._arrival_draws = None
        else:
            depth = self.kernel._depth if self.rng_mode == "free" else None
            if arrivals_have_state:
                self._arrival_draws = _StatefulArrivalDraws(
                    stack,
                    self.spec,
                    self.rng.num_seeds,
                    depth=depth,
                    state_rng=(
                        self.rng.free_stream("arrival-state")
                        if arrival_state_rng
                        else None
                    ),
                )
            else:
                self._arrival_draws = _BatchArrivalDraws(
                    stack, self.spec, self.rng.num_seeds, depth=depth
                )
        self._arrival_stream = (
            None
            if self.sync_rng
            else (
                self.rng.free_stream("arrivals")
                if self.rng_mode == "free"
                else self.rng.arrivals
            )
        )
        self.stats = BatchSweepStats(self._q_rows, self.rng.seeds)
        self.result: Optional[BatchSimulationResult] = None
        if self.record_traces:
            self.result = BatchSimulationResult(
                policy_name=policy.name,
                requirements=(
                    stack.requirement_matrix
                    if stack is not None
                    else self.spec.requirement_vector
                ),
                seeds=self.rng.seeds,
                record_priorities=record_priorities,
            )
        elif record_priorities:
            raise ValueError("record_priorities requires record_traces=True")

    # ------------------------------------------------------------------
    @property
    def seeds(self) -> Tuple[int, ...]:
        return self.rng.seeds

    @property
    def num_seeds(self) -> int:
        return self.rng.num_seeds

    @property
    def interval(self) -> int:
        return self._interval

    @property
    def debts(self) -> np.ndarray:
        """Current ``(S, N)`` debt stack (copy)."""
        return self._debts.copy()

    @property
    def positive_debts(self) -> np.ndarray:
        return np.maximum(self._debts, 0.0)

    # ------------------------------------------------------------------
    def _sample_arrivals(self) -> np.ndarray:
        if self.sync_rng:
            # Scalar draw order per seed: identical to IntervalSimulator
            # (including its per-interval begin_interval hook for stateful
            # processes, driven by each row's own "arrival-state" stream).
            rows = []
            for proc, state_rng, bundle in zip(
                self._sync_arrivals,
                self._sync_arrival_state,
                self.rng.bundles,
            ):
                if state_rng is not None:
                    proc.begin_interval(state_rng)
                rows.append(proc.sample(bundle.arrivals))
            return np.stack(rows)
        return self._arrival_draws.next(self._arrival_stream)

    def step(self) -> None:
        """Simulate one interval for every replication."""
        counters = perf.counters
        if counters.enabled:
            t0 = perf.clock()
        arrivals = self._sample_arrivals()
        np.maximum(self._debts, 0.0, out=self._pos_debts)
        if counters.enabled:
            counters.add("sim.arrivals", perf.clock() - t0)
            t0 = perf.clock()
        outcome = self.kernel.run_interval(
            self._interval,
            arrivals,
            self._pos_debts,
            self.rng,
            self.sync_rng,
        )
        if counters.enabled:
            counters.add("sim.kernel", perf.clock() - t0)
            t0 = perf.clock()
        if self.validate and np.any(outcome.deliveries > arrivals):
            raise AssertionError(
                f"{self.policy.name} delivered more than arrived in at "
                "least one replication"
            )
        # Eq. (1), elementwise per replication: the float operations per
        # seed are the same as DebtLedger.record_interval, so sync-mode
        # debts stay bit-identical to scalar ledgers.
        np.subtract(self._q_rows, outcome.deliveries, out=self._debt_step)
        np.add(self._debts, self._debt_step, out=self._debts)
        self._interval += 1
        self.stats.update(outcome)
        if self.result is not None:
            self.result.record(arrivals, outcome)
        if counters.enabled:
            counters.add("sim.update", perf.clock() - t0)

    def run(
        self,
        num_intervals: int,
        progress: Optional[Callable[[int], None]] = None,
    ) -> Union[BatchSimulationResult, BatchSweepStats]:
        """Simulate ``num_intervals`` further intervals; return the result
        (or, with ``record_traces=False``, the streaming stats)."""
        if num_intervals < 0:
            raise ValueError(f"num_intervals must be >= 0, got {num_intervals}")
        if progress is None:
            for _ in range(num_intervals):
                self.step()
        else:
            for i in range(num_intervals):
                self.step()
                progress(i)
        return self.result if self.result is not None else self.stats


def run_simulation_batch(
    spec: NetworkSpec,
    policy: IntervalMac,
    num_intervals: int,
    seeds: Sequence[int],
    *,
    sync_rng: bool = False,
    validate: bool = True,
    record_priorities: bool = False,
    backend: Optional[str] = None,
    rng: Optional[str] = None,
    dp_state: Optional[str] = None,
    topology=None,
) -> BatchSimulationResult:
    """One-shot convenience wrapper around :class:`BatchIntervalSimulator`.

    ``topology`` — a :class:`~repro.topology.graph.CellTopology` — runs
    the multi-cell lowering instead and returns its aggregated
    :class:`~repro.topology.engine.TopologyResult` (per-interval traces
    are a single-domain feature; the topology engine reports per-link
    sums).  Like ``dp_state``, the direct call is strict: a policy
    family without ``supports_topology`` raises ``TypeError`` (the
    experiment runner degrades gracefully instead).
    """
    if topology is not None:
        if record_priorities:
            raise ValueError(
                "record_priorities is a single-domain trace feature; it "
                "is not supported with topology="
            )
        from ..topology import run_topology_batch

        return run_topology_batch(
            spec,
            policy,
            seeds,
            topology,
            num_intervals,
            sync_rng=sync_rng,
            rng=rng,
            backend=backend,
            dp_state=dp_state,
            validate=validate,
        )
    sim = BatchIntervalSimulator(
        spec,
        policy,
        seeds,
        sync_rng=sync_rng,
        validate=validate,
        record_priorities=record_priorities,
        backend=backend,
        rng=rng,
        dp_state=dp_state,
    )
    return sim.run(num_intervals)
