"""A small discrete-event simulation core.

The event-driven wireless simulator (:mod:`repro.sim.event_sim`) runs on
this engine: a time-ordered event queue with stable FIFO ordering for
simultaneous events, cancellable handles, and a monotonic clock.  Kept
deliberately generic — nothing wireless-specific lives here.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["EventHandle", "EventScheduler"]


@dataclass(order=True)
class _QueueEntry:
    time: float
    sequence: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A scheduled callback; cancel with :meth:`cancel`."""

    __slots__ = ("callback", "cancelled", "time")

    def __init__(self, time: float, callback: Callable[[], None]):
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EventScheduler:
    """Time-ordered event queue with a monotonic clock.

    Events scheduled for the same instant run in scheduling (FIFO) order.
    Scheduling in the past raises — simulations with causality bugs should
    fail loudly, not silently reorder history.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: List[_QueueEntry] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.handle.cancelled)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        handle = EventHandle(time, callback)
        heapq.heappush(self._queue, _QueueEntry(time, next(self._counter), handle))
        return handle

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        if delay < 0:
            raise ValueError(f"delay must be nonnegative, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def step(self) -> bool:
        """Run the next pending event; False when the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.handle.cancelled:
                continue
            self._now = entry.time
            self._processed += 1
            entry.handle.callback()
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> None:
        """Process events up to and including ``end_time``.

        ``max_events`` guards against runaway self-scheduling loops.
        """
        budget = max_events
        while self._queue:
            head = self._queue[0]
            if head.handle.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > end_time:
                break
            if budget is not None:
                if budget == 0:
                    raise RuntimeError(
                        f"event budget exhausted at t={self._now} "
                        f"({self._processed} events processed)"
                    )
                budget -= 1
            self.step()
        self._now = max(self._now, end_time)

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Drain the queue completely (bounded by ``max_events``)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError(f"event budget {max_events} exhausted")
