"""Microsecond event-driven simulator of the DP protocol (ns-3 substitute).

Unlike the closed-form interval engine (:mod:`repro.sim.interval_sim`),
this simulator realizes the protocol the way a radio would experience it:

* a :class:`WirelessChannel` with a busy/idle state that every device senses,
* per-device backoff counters that decrement **only at idle slot
  boundaries** and freeze while the channel is busy,
* transmissions as timed events (data and empty-packet airtimes),
* the swap handshake read off the *channel state* at the instant a
  candidate's counter reaches 1 (Eqs. (7)-(8)) — each device acts purely on
  its own priority index, its own coin, and carrier sensing.

The two engines are statistically equivalent; the test-suite cross-checks
delivery distributions and swap dynamics between them.  Requires a
realistic timing model (``backoff_slot_us > 0``); the idealized protocol of
Definition 10 collapses slot boundaries and is only meaningful analytically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.dbdp import GlauberDebtBias
from ..core.debt import DebtLedger
from ..core.dp_protocol import SwapBias, draw_candidate_indices
from ..core.influence import PaperLogInfluence
from ..core.permutations import validate_priority_vector
from ..core.policies import IntervalOutcome
from ..core.requirements import NetworkSpec
from .engine import EventScheduler
from .results import SimulationResult
from .rng import RngBundle
from .tracing import (
    IntervalEvent,
    SwapEvent,
    TraceRecorder,
    TransmissionEvent,
)

__all__ = ["WirelessChannel", "DPDevice", "EventDrivenDPSimulator"]


class WirelessChannel:
    """Fully-interfering shared medium with carrier sensing.

    One transmission at a time (the DP protocol is collision-free by
    construction; an overlapping ``begin_transmission`` raises, which the
    tests rely on to prove collision-freedom holds in the event timeline).
    """

    def __init__(self, scheduler: EventScheduler):
        self._scheduler = scheduler
        self._busy_until = -1.0
        self._transmitter: Optional[int] = None
        self.total_busy_us = 0.0

    @property
    def busy(self) -> bool:
        return self._scheduler.now < self._busy_until

    @property
    def transmitter(self) -> Optional[int]:
        return self._transmitter if self.busy else None

    def begin_transmission(self, link: int, duration_us: float) -> float:
        """Occupy the medium; returns the end time."""
        now = self._scheduler.now
        if self.busy:
            raise RuntimeError(
                f"collision: link {link} began transmitting at t={now} while "
                f"link {self._transmitter} holds the channel"
            )
        self._busy_until = now + duration_us
        self._transmitter = link
        self.total_busy_us += duration_us
        return self._busy_until


@dataclass
class DPDevice:
    """One link's protocol state — knows only its own priority index."""

    link: int
    priority: int  # sigma_n (1-based)
    backoff: int = 0
    buffered_packets: int = 0
    has_empty_packet: bool = False
    is_candidate: bool = False
    candidate_role: str = ""  # "down" (at C) or "up" (at C + 1)
    xi: int = 0
    observed_at_one: Optional[bool] = None  # channel busy when counter hit 1
    transmitted_this_interval: bool = False
    service_start_us: Optional[float] = None
    deliveries: int = 0
    attempts: int = 0

    def reset_for_interval(self) -> None:
        self.buffered_packets = 0
        self.has_empty_packet = False
        self.is_candidate = False
        self.candidate_role = ""
        self.xi = 0
        self.observed_at_one = None
        self.transmitted_this_interval = False
        self.service_start_us = None
        self.deliveries = 0
        self.attempts = 0

    @property
    def wants_channel(self) -> bool:
        return self.buffered_packets > 0 or self.has_empty_packet


class EventDrivenDPSimulator:
    """Run DP / DB-DP at microsecond resolution on the event engine.

    Parameters mirror :class:`~repro.core.dp_protocol.DPProtocol`; the debt
    ledger lives here (as in the interval simulator) and feeds the swap
    bias each interval.
    """

    def __init__(
        self,
        spec: NetworkSpec,
        bias: Optional[SwapBias] = None,
        num_pairs: int = 1,
        seed: int = 0,
        initial_priorities: Optional[Sequence[int]] = None,
        record_priorities: bool = False,
        trace: Optional[TraceRecorder] = None,
    ):
        if spec.timing.backoff_slot_us <= 0:
            raise ValueError(
                "the event-driven simulator needs a positive backoff slot "
                "time; use the interval engine for idealized timing"
            )
        self.spec = spec
        self.bias = bias or GlauberDebtBias(influence=PaperLogInfluence())
        if num_pairs < 1:
            raise ValueError(f"num_pairs must be >= 1, got {num_pairs}")
        self.num_pairs = num_pairs
        self.rng = RngBundle(seed)
        # Stateful channels evolve once per interval (same per-interval
        # semantics as the interval engines), from the same named stream.
        self._channel_rng = (
            self.rng.stream("channel-state") if spec.channel.has_state else None
        )
        spec.channel.reset_state()
        # Stateful arrival processes reset too: replications sharing one
        # process instance must not continue each other's modulating chain.
        self._arrival_state_rng = (
            self.rng.stream("arrival-state") if spec.arrivals.has_state else None
        )
        spec.arrivals.reset_state()
        self.ledger = DebtLedger(spec.requirements)
        self.result = SimulationResult(
            policy_name="DB-DP(event)",
            requirements=spec.requirement_vector,
            record_priorities=record_priorities,
        )
        n = spec.num_links
        if initial_priorities is None:
            sigma = tuple(range(1, n + 1))
        else:
            sigma = validate_priority_vector(initial_priorities)
            if len(sigma) != n:
                raise ValueError("initial priority vector length mismatch")
        self.devices = [
            DPDevice(link=link, priority=sigma[link]) for link in range(n)
        ]
        self._scheduler = EventScheduler()
        self._channel = WirelessChannel(self._scheduler)
        self._interval_end = 0.0
        self._arrivals: Optional[np.ndarray] = None
        self._idle_slots = 0
        self._candidate_pairs: List[Tuple[int, int, int]] = []  # (c, down, up)
        self._interval_index = 0
        self.trace = trace

    # ------------------------------------------------------------------
    @property
    def priorities(self) -> Tuple[int, ...]:
        return tuple(device.priority for device in self.devices)

    # ------------------------------------------------------------------
    # Interval lifecycle
    # ------------------------------------------------------------------
    def _start_interval(self) -> None:
        spec = self.spec
        n = spec.num_links
        if self._channel_rng is not None:
            spec.channel.begin_interval(self._channel_rng)
        if self._arrival_state_rng is not None:
            spec.arrivals.begin_interval(self._arrival_state_rng)
        arrivals = spec.arrivals.sample(self.rng.arrivals)
        self._arrivals = arrivals
        debts = self.ledger.positive_debts
        reliabilities = spec.reliabilities

        if self.trace is not None:
            self.trace.record(
                IntervalEvent(
                    time_us=self._scheduler.now,
                    interval=self._interval_index,
                    priorities=self.priorities,
                )
            )
        for device in self.devices:
            device.reset_for_interval()
            device.buffered_packets = int(arrivals[device.link])

        # Step 1: shared random seed -> candidate priority indices.
        candidates = (
            draw_candidate_indices(n, self.num_pairs, self.rng.shared)
            if n >= 2
            else ()
        )
        self._candidate_pairs = []
        sigma = self.priorities
        for pair_index, c in enumerate(candidates):
            down = sigma.index(c)
            up = sigma.index(c + 1)
            self._candidate_pairs.append((c, down, up))
            for link, role in ((down, "down"), (up, "up")):
                device = self.devices[link]
                device.is_candidate = True
                device.candidate_role = role
                mu = self.bias.mu(
                    link, float(debts[link]), float(reliabilities[link])
                )
                device.xi = 1 if self.rng.policy.random() < mu else -1
                # Step 2: claim priority with an empty packet if needed.
                if device.buffered_packets == 0:
                    device.has_empty_packet = True

        # Step 4: collision-free backoff values.
        offsets = {c: 2 * i for i, c in enumerate(candidates)}
        for device in self.devices:
            s = device.priority
            if device.is_candidate:
                c = s if device.candidate_role == "down" else s - 1
                device.backoff = s - device.xi + offsets[c]
            else:
                pairs_below = sum(1 for c in candidates if c + 1 < s)
                device.backoff = s - 1 + 2 * pairs_below

        self._idle_slots = 0
        # Treat the interval start as an idle-slot boundary: devices with
        # backoff 0 transmit immediately, devices at 1 observe (see
        # DESIGN.md on swap atomicity).
        self._boundary()

    def _boundary(self) -> None:
        """One idle-slot boundary: pick the transmitter, record observations."""
        now = self._scheduler.now
        if now >= self._interval_end:
            return
        transmitter: Optional[DPDevice] = None
        for device in self.devices:
            if device.backoff == self._idle_slots and device.wants_channel:
                if transmitter is not None:
                    raise RuntimeError(
                        "backoff collision between links "
                        f"{transmitter.link} and {device.link}"
                    )
                transmitter = device

        starts = False
        if transmitter is not None:
            starts = self._begin_service(transmitter)

        # Candidates whose counter just reached 1 sense the channel now.
        for device in self.devices:
            if (
                device.is_candidate
                and device.backoff == self._idle_slots + 1
                and device.observed_at_one is None
            ):
                device.observed_at_one = starts

        if transmitter is None or not starts:
            # Channel stays idle: next slot boundary.
            self._idle_slots += 1
            next_tick = now + self.spec.timing.backoff_slot_us
            if next_tick <= self._interval_end:
                self._scheduler.schedule_at(next_tick, self._boundary)

    def _begin_service(self, device: DPDevice) -> bool:
        """Start the device's transmission run; False if nothing fits."""
        timing = self.spec.timing
        now = self._scheduler.now
        if device.buffered_packets > 0:
            if now + timing.data_airtime_us > self._interval_end:
                return False  # Remark 4: stay idle.
            end = self._channel.begin_transmission(
                device.link, timing.data_airtime_us
            )
            device.transmitted_this_interval = True
            device.service_start_us = now
            self._scheduler.schedule_at(end, lambda d=device: self._attempt_done(d))
            return True
        if device.has_empty_packet:
            if now + timing.empty_airtime_us > self._interval_end:
                return False
            end = self._channel.begin_transmission(
                device.link, timing.empty_airtime_us
            )
            device.transmitted_this_interval = True
            device.service_start_us = now
            device.has_empty_packet = False
            if self.trace is not None:
                self.trace.record(
                    TransmissionEvent(
                        time_us=now,
                        interval=self._interval_index,
                        link=device.link,
                        duration_us=timing.empty_airtime_us,
                        kind="empty",
                    )
                )
            self._scheduler.schedule_at(end, lambda d=device: self._service_done(d))
            return True
        return False

    def _attempt_done(self, device: DPDevice) -> None:
        device.attempts += 1
        delivered = self.spec.channel.attempt(device.link, self.rng.channel)
        if self.trace is not None:
            airtime = self.spec.timing.data_airtime_us
            self.trace.record(
                TransmissionEvent(
                    time_us=self._scheduler.now - airtime,
                    interval=self._interval_index,
                    link=device.link,
                    duration_us=airtime,
                    kind="data",
                    delivered=delivered,
                )
            )
        if delivered:
            device.deliveries += 1
            device.buffered_packets -= 1
        if (
            device.buffered_packets > 0
            and self._scheduler.now + self.spec.timing.data_airtime_us
            <= self._interval_end
        ):
            end = self._channel.begin_transmission(
                device.link, self.spec.timing.data_airtime_us
            )
            self._scheduler.schedule_at(end, lambda d=device: self._attempt_done(d))
        else:
            self._service_done(device)

    def _service_done(self, device: DPDevice) -> None:
        """The channel went idle; resume slot ticking for everyone else."""
        next_tick = self._scheduler.now + self.spec.timing.backoff_slot_us
        self._idle_slots += 1
        if next_tick <= self._interval_end:
            self._scheduler.schedule_at(next_tick, self._boundary)

    def _finish_interval(self) -> IntervalOutcome:
        """Step 7: flush buffers, commit swaps, update the ledger."""
        sigma_used = self.priorities
        timing = self.spec.timing
        swaps_committed = []
        for c, down, up in self._candidate_pairs:
            down_device = self.devices[down]
            up_device = self.devices[up]
            # Commit rule (DESIGN.md, "swap atomicity"): both coins align
            # and the up-mover's transmission starts early enough to leave a
            # full data airtime before the deadline — the same condition the
            # interval engine applies.
            committed = (
                down_device.xi == -1
                and up_device.xi == 1
                and up_device.transmitted_this_interval
                and up_device.service_start_us is not None
                and up_device.service_start_us + timing.data_airtime_us
                <= self._interval_end
            )
            # Handshake consistency: whenever the commit fires, the
            # down-mover must in fact have sensed the channel busy when its
            # counter reached 1 (that instant *is* the up-mover's
            # transmission start).  A violation would mean the decentralized
            # detection desynchronized — fail loudly.
            if committed and down_device.observed_at_one is not True:
                raise RuntimeError(
                    f"swap handshake desynchronized at pair C={c}: up link "
                    f"{up} transmitted but down link {down} observed "
                    f"{down_device.observed_at_one!r}"
                )
            if self.trace is not None:
                self.trace.record(
                    SwapEvent(
                        time_us=self._interval_end,
                        interval=self._interval_index,
                        candidate_priority=c,
                        down_link=down,
                        up_link=up,
                        committed=committed,
                    )
                )
            if committed:
                swaps_committed.append((c, down, up))
                down_device.priority, up_device.priority = (
                    up_device.priority,
                    down_device.priority,
                )
        deliveries = np.array(
            [device.deliveries for device in self.devices], dtype=np.int64
        )
        attempts = np.array(
            [device.attempts for device in self.devices], dtype=np.int64
        )
        return IntervalOutcome(
            deliveries=deliveries,
            attempts=attempts,
            busy_time_us=0.0,  # filled by run() from channel accounting
            overhead_time_us=0.0,
            collisions=0,
            priorities=sigma_used,
            info={"swaps": swaps_committed},
        )

    # ------------------------------------------------------------------
    def run(self, num_intervals: int) -> SimulationResult:
        """Simulate ``num_intervals`` intervals; returns the result trace."""
        if num_intervals < 0:
            raise ValueError(f"num_intervals must be >= 0, got {num_intervals}")
        timing = self.spec.timing
        for _ in range(num_intervals):
            interval_start = self._scheduler.now
            self._interval_end = interval_start + timing.interval_us
            busy_before = self._channel.total_busy_us
            self._start_interval()
            self._scheduler.run_until(self._interval_end)
            outcome = self._finish_interval()
            outcome.busy_time_us = self._channel.total_busy_us - busy_before
            assert self._arrivals is not None
            self.ledger.record_interval(outcome.deliveries)
            self.result.record(self._arrivals, outcome)
            self._interval_index += 1
        return self.result
