"""The interval-level network simulator.

Drives any :class:`~repro.core.policies.IntervalMac` over a
:class:`~repro.core.requirements.NetworkSpec`: samples arrivals, hands the
policy the positive debts, applies the outcome to the debt ledger
(Eq. (1)), and accumulates a :class:`~repro.sim.results.SimulationResult`.

This engine models each interval's timeline analytically (closed-form
backoff accounting — see DESIGN.md); the microsecond event-driven engine in
:mod:`repro.sim.event_sim` is the ns-3-style cross-check.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.debt import DebtLedger
from ..core.policies import IntervalMac
from ..core.requirements import NetworkSpec
from .results import SimulationResult
from .rng import RngBundle

__all__ = ["IntervalSimulator", "run_simulation"]


class IntervalSimulator:
    """Stateful simulator: step interval-by-interval or run in bulk."""

    def __init__(
        self,
        spec: NetworkSpec,
        policy: IntervalMac,
        seed: int = 0,
        record_priorities: bool = False,
        validate: bool = True,
    ):
        self.spec = spec
        self.policy = policy
        self.validate = bool(validate)
        self.rng = RngBundle(seed)
        # Stateful channels (Gilbert-Elliott, time-varying schedules)
        # evolve once per interval from a dedicated stream; memoryless
        # channels skip the hook entirely, so their draw streams are
        # untouched and runs stay bit-identical to the pre-state engine.
        self._channel_rng = (
            self.rng.stream("channel-state") if spec.channel.has_state else None
        )
        spec.channel.reset_state()
        # Stateful arrival processes (Markov-modulated, Pareto bursts)
        # likewise: reset so replications sharing one process instance stay
        # independent of run order, and evolve any out-of-band state from a
        # dedicated stream so the arrivals stream is untouched.
        self._arrival_state_rng = (
            self.rng.stream("arrival-state") if spec.arrivals.has_state else None
        )
        spec.arrivals.reset_state()
        self.ledger = DebtLedger(spec.requirements)
        self.result = SimulationResult(
            policy_name=policy.name,
            requirements=spec.requirement_vector,
            record_priorities=record_priorities,
        )
        policy.bind(spec)

    @property
    def interval(self) -> int:
        return self.ledger.interval

    def step(self) -> None:
        """Simulate one interval."""
        if self._channel_rng is not None:
            self.spec.channel.begin_interval(self._channel_rng)
        if self._arrival_state_rng is not None:
            self.spec.arrivals.begin_interval(self._arrival_state_rng)
        arrivals = self.spec.arrivals.sample(self.rng.arrivals)
        outcome = self.policy.run_interval(
            self.ledger.interval,
            arrivals,
            self.ledger.positive_debts,
            self.rng,
        )
        if self.validate and np.any(outcome.deliveries > arrivals):
            raise AssertionError(
                f"{self.policy.name} delivered more than arrived: "
                f"{outcome.deliveries} > {arrivals}"
            )
        self.ledger.record_interval(outcome.deliveries)
        self.result.record(arrivals, outcome)

    def run(
        self,
        num_intervals: int,
        progress: Optional[Callable[[int], None]] = None,
    ) -> SimulationResult:
        """Simulate ``num_intervals`` further intervals; return the result."""
        if num_intervals < 0:
            raise ValueError(f"num_intervals must be >= 0, got {num_intervals}")
        if progress is None:
            # Hot path: no per-step callback check inside the loop.
            for _ in range(num_intervals):
                self.step()
        else:
            for i in range(num_intervals):
                self.step()
                progress(i)
        return self.result


def run_simulation(
    spec: NetworkSpec,
    policy: IntervalMac,
    num_intervals: int,
    seed: int = 0,
    record_priorities: bool = False,
    validate: bool = True,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`IntervalSimulator`.

    ``validate=False`` skips the per-step deliveries-vs-arrivals sanity
    assertion; benchmarks use it to measure the engine, not the checks.
    """
    sim = IntervalSimulator(
        spec,
        policy,
        seed=seed,
        record_priorities=record_priorities,
        validate=validate,
    )
    return sim.run(num_intervals)
