"""Optional Numba-compiled inner loops for the workspace batch kernels.

The workspace NumPy path (``backend="numpy"`` in
:mod:`repro.sim.batch_kernels`) resolves each interval with closed-form
array passes; its remaining cost is a fixed number of small-array NumPy
calls per interval.  When Numba is installed, ``backend="jit"`` replaces
the two irreducibly sequential pieces — ordered service under a cap
staircase, and the DP interval timeline with empty-packet coupling — with
``nopython`` per-row loops over the *same* workspace arrays.  The loops
are verbatim transcriptions of the engine's exact sequential semantics
(``BatchDPKernel._resolve_row_sequential`` and the
``solve_ordered_service`` recursion), so their outputs are bit-identical
to the NumPy path: every accumulated quantity is a small exact integer
(stored in float32/float64 well below the mantissa limit), which makes
the arithmetic order-independent.

Numba is an *optional* dependency:

* ``HAS_NUMBA`` reports whether it imported; when absent, requesting the
  JIT backend falls back to the workspace NumPy path (the caller warns
  once — see ``batch_kernels.resolve_backend``).
* For testing the loop *semantics* without Numba, ``force_python = True``
  (or ``REPRO_JIT_FORCE_PY=1``) routes ``backend="jit"`` through the
  pure-Python bodies of the same functions.  That is slow but exercises
  exactly the code Numba would compile, so the cross-backend test-suite
  proves the JIT path correct even on hosts without numba; the CI leg
  that installs numba re-proves it compiled.
"""

from __future__ import annotations

import os
from time import perf_counter

import numpy as np

__all__ = [
    "HAS_NUMBA",
    "available",
    "force_python",
    "serve_rows",
    "dp_timeline_rows",
    "dp_incremental_rows",
    "warm_compile",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    HAS_NUMBA = True
except ImportError:  # pragma: no cover
    njit = None
    prange = range
    HAS_NUMBA = False


def _parallel_min_rows() -> int:
    """Batch-row threshold above which the ``prange`` variants are used.

    ``REPRO_JIT_PARALLEL=0`` disables the parallel variants entirely;
    any other integer overrides the default threshold.  Rows are fully
    independent (each writes a disjoint slice), so serial and parallel
    variants are bit-identical — the threshold only avoids paying thread
    fork/join overhead on small stacks.
    """
    raw = os.environ.get("REPRO_JIT_PARALLEL", "")
    if not raw:
        return 128
    try:
        thresh = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_JIT_PARALLEL must be an integer, got {raw!r}"
        ) from exc
    if thresh == 0:
        return 1 << 62  # effectively never
    return max(1, thresh)


_PARALLEL_MIN_ROWS = _parallel_min_rows()

#: Route ``backend="jit"`` through the pure-Python loop bodies even when
#: numba is missing (or present).  Test hook; also settable via the
#: ``REPRO_JIT_FORCE_PY=1`` environment variable.
force_python = os.environ.get("REPRO_JIT_FORCE_PY", "") == "1"


def available() -> bool:
    """Whether ``backend="jit"`` can run (compiled or forced-Python)."""
    return HAS_NUMBA or force_python


def _serve_rows_py(order, backlog, needed_cum, cap, delivered, att_pos):
    """Sequential in-order service with one constant attempt cap.

    Per replication row: walk links in service order, granting each link
    ``min(remaining budget, attempts needed to drain)`` attempts and
    counting delivered packets off its pre-drawn retry cumsums
    (``needed_cum[s, l, t]`` = attempts needed for the first ``t + 1``
    packets).  Writes ``delivered`` by link and ``att_pos`` by service
    position, exactly like
    :func:`repro.sim.batch_kernels.solve_ordered_service`.
    """
    S, N = order.shape
    for s in prange(S):
        used = 0
        for j in range(N):
            link = order[s, j]
            b = backlog[s, link]
            u = 0
            d = 0
            if b > 0:
                budget = cap - used
                if budget > 0:
                    tot = needed_cum[s, link, b - 1]
                    if tot <= budget:
                        u = int(tot)
                        d = b
                    else:
                        u = budget
                        for a in range(b):
                            if needed_cum[s, link, a] <= budget:
                                d += 1
                            else:
                                break
                    used += u
            delivered[s, link] = d
            att_pos[s, j] = u


def _dp_timeline_rows_py(
    order,
    backoff_pos,
    is_empty_pos,
    backlog,
    needed_cum,
    interval_us,
    data_air,
    slot,
    empty_air,
    delivered,
    att_pos,
    fits_pos,
    start_pos,
    att_totals,
):
    """The DP kernel's exact interval timeline, every row sequentially.

    A transcription of ``BatchDPKernel._resolve_row_sequential`` resumed
    from position 0 for every row: the attempt ceiling of each service
    position is the staircase set by its backoff slots and the empty
    claims already on air, and whether an empty claim fits depends on the
    service time used before it.  ``needed_cum`` is the cumulative draw
    block (attempts needed for the first ``t + 1`` packets).  Outputs
    feed the same downstream NumPy stages (busy/overhead/commit) as the
    closed-form path.
    """
    S, N = order.shape
    for s in prange(S):
        att_total = 0
        empties_fit = 0
        for j in range(N):
            link = order[s, j]
            b = backlog[s, link]
            dead = backoff_pos[s, j] * slot + empties_fit * empty_air
            start = att_total * data_air + dead
            fits = False
            used = 0
            served = 0
            if b > 0:
                cap = int((interval_us - dead) // data_air)
                budget = cap - att_total
                if budget > 0:
                    tot = needed_cum[s, link, b - 1]
                    if tot <= budget:
                        used = int(tot)
                        served = b
                    else:
                        used = budget
                        for a in range(b):
                            if needed_cum[s, link, a] <= budget:
                                served += 1
                            else:
                                break
                    att_total += used
            elif is_empty_pos[s, j]:
                if empty_air > 0:
                    fits = start + empty_air <= interval_us
                else:
                    fits = start < interval_us
                if fits:
                    empties_fit += 1
            delivered[s, link] = served
            att_pos[s, j] = used
            fits_pos[s, j] = fits
            start_pos[s, j] = start
        att_totals[s] = att_total


def _dp_incremental_rows_py(
    inv,
    cand,
    swap,
    wants_a,
    wants_b,
    bmin,
    bmax,
    backlog,
    needed_cum,
    interval_us,
    data_air,
    slot,
    empty_air,
    delivered,
    attempts,
    track_attempts,
    prev_links,
    att_totals,
    num_empties,
    idle_slots,
    tx_a,
    start_a,
):
    """The DP interval timeline on the *incremental* sparse state.

    The single-pair (``dp_state="incremental"``) analogue of
    :func:`_dp_timeline_rows_py`: instead of a materialized service
    order/backoff/empty triple, each row walks the persistent inverse
    permutation ``inv`` directly, deriving the position's link and backoff
    from the candidate index ``cand[s]`` and the commit-coin flag
    ``swap[s]`` (the only data-dependent positions are ``c - 1`` and
    ``c``, which hold the candidate pair with backoffs ``bmin``/``bmax``
    and may claim with empty packets per ``wants_a``/``wants_b``).

    Outcome planes are maintained sparsely: entries touched last interval
    (``prev_links[s, :]`` — padded with link 0, whose double-zeroing is
    harmless) are zeroed on entry, links that receive attempts this
    interval are written and recorded back into ``prev_links``.  At most
    ``cap_max < prev_links.shape[1]`` links can receive attempts, so the
    record never overflows.  The walk stops at the first position past
    the pair whose attempt ceiling (every later backoff is at least
    ``j + 3``) is exhausted — no later link can transmit and no claims
    remain.  Per-row outputs: total attempts, fitting empties, the idle
    backoff bound, and the position-``c - 1`` transmitted flag and start
    time the swap commit needs.
    """
    S, N = inv.shape
    K = prev_links.shape[1]
    for s in prange(S):
        for t in range(K):
            link = prev_links[s, t]
            delivered[s, link] = 0
            if track_attempts:
                attempts[s, link] = 0
        c = cand[s]
        sw = swap[s]
        att_total = 0
        empties_fit = 0
        idle = 0
        ne = 0
        txa = False
        sta = 0.0
        tc = 0
        for j in range(N):
            if j == c - 1:
                link = inv[s, c] if sw else inv[s, c - 1]
                b = bmin[s]
            elif j == c:
                link = inv[s, c - 1] if sw else inv[s, c]
                b = bmax[s]
            elif j > c:
                link = inv[s, j]
                b = j + 2
            else:
                link = inv[s, j]
                b = j
            bl = backlog[s, link]
            dead = b * slot + empties_fit * empty_air
            start = att_total * data_air + dead
            if j == c - 1:
                sta = start
            if bl > 0:
                cap = int((interval_us - dead) // data_air)
                budget = cap - att_total
                if budget > 0:
                    tot = needed_cum[s, link, bl - 1]
                    if tot <= budget:
                        used = int(tot)
                        served = bl
                    else:
                        used = budget
                        served = 0
                        for a in range(bl):
                            if needed_cum[s, link, a] <= budget:
                                served += 1
                            else:
                                break
                    att_total += used
                    delivered[s, link] = served
                    if track_attempts:
                        attempts[s, link] = used
                    prev_links[s, tc] = link
                    tc += 1
                    if b > idle:
                        idle = b
                    if j == c - 1:
                        txa = True
            elif (j == c - 1 and wants_a[s]) or (j == c and wants_b[s]):
                if empty_air > 0:
                    fits = start + empty_air <= interval_us
                else:
                    fits = start < interval_us
                if fits:
                    empties_fit += 1
                    ne += 1
                    if b > idle:
                        idle = b
                    if j == c - 1:
                        txa = True
            if j >= c and (
                int(
                    (interval_us - (j + 3) * slot - empties_fit * empty_air)
                    // data_air
                )
                <= att_total
            ):
                break
        for t in range(tc, K):
            prev_links[s, t] = 0
        att_totals[s] = att_total
        num_empties[s] = ne
        idle_slots[s] = idle
        tx_a[s] = txa
        start_a[s] = sta


if HAS_NUMBA:  # pragma: no cover - exercised in the numba CI leg
    # Two compilations of the same loop body: with ``parallel=False``
    # numba treats ``prange`` as ``range`` (sequential); with
    # ``parallel=True`` the independent rows fan out over threads.
    _serve_rows_jit = njit(cache=False)(_serve_rows_py)
    _dp_timeline_rows_jit = njit(cache=False)(_dp_timeline_rows_py)
    _dp_incremental_rows_jit = njit(cache=False)(_dp_incremental_rows_py)
    _serve_rows_par = njit(cache=False, parallel=True)(_serve_rows_py)
    _dp_timeline_rows_par = njit(cache=False, parallel=True)(
        _dp_timeline_rows_py
    )
    _dp_incremental_rows_par = njit(cache=False, parallel=True)(
        _dp_incremental_rows_py
    )
else:
    _serve_rows_jit = None
    _dp_timeline_rows_jit = None
    _dp_incremental_rows_jit = None
    _serve_rows_par = None
    _dp_timeline_rows_par = None
    _dp_incremental_rows_par = None


def _pick(serial, par, num_rows):
    if num_rows >= _PARALLEL_MIN_ROWS:
        return par
    return serial


def serve_rows(order, backlog, needed, cap, delivered, att_pos):
    if HAS_NUMBA and not force_python:
        impl = _pick(_serve_rows_jit, _serve_rows_par, order.shape[0])
        impl(order, backlog, needed, cap, delivered, att_pos)
    else:
        _serve_rows_py(order, backlog, needed, cap, delivered, att_pos)


def dp_timeline_rows(
    order,
    backoff_pos,
    is_empty_pos,
    backlog,
    needed,
    interval_us,
    data_air,
    slot,
    empty_air,
    delivered,
    att_pos,
    fits_pos,
    start_pos,
    att_totals,
):
    if HAS_NUMBA and not force_python:
        impl = _pick(
            _dp_timeline_rows_jit, _dp_timeline_rows_par, order.shape[0]
        )
    else:
        impl = _dp_timeline_rows_py
    impl(
        order,
        backoff_pos,
        is_empty_pos,
        backlog,
        needed,
        interval_us,
        data_air,
        slot,
        empty_air,
        delivered,
        att_pos,
        fits_pos,
        start_pos,
        att_totals,
    )


def dp_incremental_rows(
    inv,
    cand,
    swap,
    wants_a,
    wants_b,
    bmin,
    bmax,
    backlog,
    needed,
    interval_us,
    data_air,
    slot,
    empty_air,
    delivered,
    attempts,
    track_attempts,
    prev_links,
    att_totals,
    num_empties,
    idle_slots,
    tx_a,
    start_a,
):
    if HAS_NUMBA and not force_python:
        impl = _pick(
            _dp_incremental_rows_jit,
            _dp_incremental_rows_par,
            inv.shape[0],
        )
    else:
        impl = _dp_incremental_rows_py
    impl(
        inv,
        cand,
        swap,
        wants_a,
        wants_b,
        bmin,
        bmax,
        backlog,
        needed,
        interval_us,
        data_air,
        slot,
        empty_air,
        delivered,
        attempts,
        track_attempts,
        prev_links,
        att_totals,
        num_empties,
        idle_slots,
        tx_a,
        start_a,
    )


#: Signatures already compiled this process, keyed by
#: ``(stage, dtype strings)``; warm-compiling an already-warm signature
#: is free, so kernels can call :func:`warm_compile` at every bind.
_warmed: set = set()


def warm_compile(stage: str, *dtypes) -> float:
    """Force compilation of one jit stage for the given array dtypes.

    Numba compiles lazily on first call, which would otherwise land the
    multi-second compile cost inside the first measured interval.  The
    kernels call this at bind time with the exact dtypes their workspace
    arrays use, so steady-state timings never include compilation; the
    seconds spent compiling are returned for separate reporting (0.0 when
    numba is absent, forced-python is active, or the signature is warm).

    ``stage`` is ``"serve_rows"`` (dtypes: order, backlog, needed,
    delivered, att_pos), ``"dp_timeline_rows"`` (dtypes: order, backoff,
    is_empty, backlog, needed, delivered, att_pos, fits, start,
    att_totals) or ``"dp_incremental_rows"`` (dtypes: inv, cand, swap,
    wants_a, wants_b, bmin, bmax, backlog, needed, delivered, attempts,
    prev_links, att_totals, num_empties, idle_slots, tx_a, start_a).
    Both the serial and parallel variants are compiled.
    """
    if not HAS_NUMBA or force_python:
        return 0.0
    key = (stage,) + tuple(np.dtype(d).str for d in dtypes)
    if key in _warmed:
        return 0.0
    t0 = perf_counter()
    S, N, A = 2, 2, 1
    z = lambda dt, *shape: np.zeros(shape, dtype=dt)  # noqa: E731
    if stage == "serve_rows":
        order_dt, backlog_dt, needed_dt, delivered_dt, att_dt = dtypes
        args = (
            z(order_dt, S, N),
            z(backlog_dt, S, N),
            z(needed_dt, S, N, A),
            4,
            z(delivered_dt, S, N),
            z(att_dt, S, N),
        )
        _serve_rows_jit(*args)
        _serve_rows_par(*args)
    elif stage == "dp_timeline_rows":
        (
            order_dt, backoff_dt, empty_dt, backlog_dt, needed_dt,
            delivered_dt, att_dt, fits_dt, start_dt, tot_dt,
        ) = dtypes
        args = (
            z(order_dt, S, N),
            z(backoff_dt, S, N),
            z(empty_dt, S, N),
            z(backlog_dt, S, N),
            z(needed_dt, S, N, A),
            4000.0,
            400.0,
            60.0,
            100.0,
            z(delivered_dt, S, N),
            z(att_dt, S, N),
            z(fits_dt, S, N),
            z(start_dt, S, N),
            z(tot_dt, S),
        )
        _dp_timeline_rows_jit(*args)
        _dp_timeline_rows_par(*args)
    elif stage == "dp_incremental_rows":
        (
            inv_dt, cand_dt, swap_dt, wa_dt, wb_dt,
            bmin_dt, bmax_dt, backlog_dt, needed_dt,
            delivered_dt, att_dt, prev_dt, tot_dt, ne_dt,
            idle_dt, tx_dt, start_dt,
        ) = dtypes
        args = (
            z(inv_dt, S, N),
            z(cand_dt, S),
            z(swap_dt, S),
            z(wa_dt, S),
            z(wb_dt, S),
            z(bmin_dt, S),
            z(bmax_dt, S),
            z(backlog_dt, S, N),
            z(needed_dt, S, N, A),
            4000.0,
            400.0,
            60.0,
            100.0,
            z(delivered_dt, S, N),
            z(att_dt, S, N),
            True,
            z(prev_dt, S, N),
            z(tot_dt, S),
            z(ne_dt, S),
            z(idle_dt, S),
            z(tx_dt, S),
            z(start_dt, S),
        )
        _dp_incremental_rows_jit(*args)
        _dp_incremental_rows_par(*args)
    else:
        raise ValueError(f"unknown jit stage {stage!r}")
    _warmed.add(key)
    return perf_counter() - t0
