"""Lightweight per-stage performance counters for the simulation hot path.

The batch/fused engines are tuned by shaving tens of microseconds per
interval; validating such work needs a decomposition of where each interval
actually goes (arrival draws, channel-block refills, kernel body, ordered
service, debt update, stats fold) without perturbing the thing being
measured.  This module provides a process-global :class:`PerfCounters`
registry with two design constraints:

* **Near-zero cost when disabled.**  Hot-path call sites guard on the
  plain attribute ``counters.enabled`` and only then call
  :func:`time.perf_counter`; a disabled run pays one boolean attribute
  check per instrumented section (single-digit nanoseconds), which is
  orders of magnitude below the per-interval budget.  The acceptance test
  bounds the disabled-mode overhead below 2 % of a fused interval.
* **Stages, not call trees.**  A stage is a flat label
  (``"kernel.dp.interval"``, ``"draws.channel_refill"``); repeated
  sections accumulate wall seconds and call counts, and workspace code
  additionally reports *tracked array allocations* per stage so the
  zero-allocation claim of the workspace kernels is checkable rather than
  asserted.

Enable with :func:`enable` (or ``REPRO_PERF=1`` in the environment before
import), read results with :meth:`PerfCounters.snapshot` /
:meth:`PerfCounters.summary`, and reset between measurements with
:func:`reset`.  The registry is intentionally not thread-safe: the hot
loops it instruments are single-threaded, and the parallel sweep runner
runs one registry per worker process.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Dict, Optional

__all__ = [
    "PerfCounters",
    "StageStat",
    "KNOWN_STAGES",
    "counters",
    "clock",
    "enable",
    "disable",
    "reset",
    "stage",
]

#: Stage labels the built-in kernels report, for dashboards and bench
#: tooling (labels are open-ended — this tuple documents, it does not
#: gate).  The DP kernel reports ``kernel.dp.setup`` (candidate draw,
#: coins, backoff construction), ``kernel.dp.timeline`` (interval
#: timeline / ordered-service solve), ``kernel.dp.commit`` (swap commit
#: and outcome scatters) on both priority-state paths, and additionally
#: ``kernel.dp.incremental`` — the sparse-state maintenance work unique
#: to ``dp_state="incremental"`` (persistent-inverse upkeep, backlogged
#: serve-set selection, touched-entry zeroing).  Comparing the dense and
#: incremental paths therefore means comparing the *sum* of their
#: ``kernel.dp.*`` stages, not label by label.
KNOWN_STAGES = (
    "kernel.dp.setup",
    "kernel.dp.incremental",
    "kernel.dp.timeline",
    "kernel.dp.commit",
    "kernel.serve.interval",
    "draws.channel_refill",
    "draws.uniform_refill",
    "jit.warmup",
)

#: Re-exported so call sites read ``perf.clock()`` instead of importing
#: :mod:`time` separately; also the single place to swap the clock source.
clock = perf_counter


class StageStat:
    """Accumulated measurements for one stage label."""

    __slots__ = ("seconds", "calls", "allocs")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.calls = 0
        self.allocs = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "seconds": self.seconds,
            "calls": self.calls,
            "allocs": self.allocs,
        }


class PerfCounters:
    """Process-global stage accumulator (see module docstring)."""

    __slots__ = ("enabled", "_stages")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._stages: Dict[str, StageStat] = {}

    # -- control -------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all accumulated stages (the enabled flag is untouched)."""
        self._stages.clear()

    # -- recording (call sites guard on ``counters.enabled``) ----------
    def _stage(self, name: str) -> StageStat:
        stat = self._stages.get(name)
        if stat is None:
            stat = self._stages[name] = StageStat()
        return stat

    def add(self, name: str, seconds: float, allocs: int = 0) -> None:
        """Fold one timed section into ``name``."""
        stat = self._stage(name)
        stat.seconds += seconds
        stat.calls += 1
        stat.allocs += allocs

    def alloc(self, name: str, count: int = 1) -> None:
        """Record ``count`` tracked array allocations against ``name``
        without touching its timing (used at workspace (re)bind time and
        on slow-path fallbacks that genuinely allocate)."""
        self._stage(name).allocs += count

    # -- reporting -----------------------------------------------------
    @property
    def stages(self) -> Dict[str, StageStat]:
        return self._stages

    def seconds(self, name: str) -> float:
        stat = self._stages.get(name)
        return stat.seconds if stat is not None else 0.0

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """All stages as plain nested dicts (JSON-serializable), sorted by
        descending wall time."""
        items = sorted(
            self._stages.items(), key=lambda kv: -kv[1].seconds
        )
        return {name: stat.as_dict() for name, stat in items}

    def summary(self) -> str:
        """A fixed-width table of the snapshot for terminal output."""
        snap = self.snapshot()
        if not snap:
            return "(no perf stages recorded)"
        width = max(len(name) for name in snap)
        lines = [
            f"{'stage'.ljust(width)}  {'seconds':>10}  {'calls':>9}  {'allocs':>7}"
        ]
        for name, stat in snap.items():
            lines.append(
                f"{name.ljust(width)}  {stat['seconds']:>10.4f}  "
                f"{stat['calls']:>9d}  {stat['allocs']:>7d}"
            )
        return "\n".join(lines)


#: The registry every hot path reports into.
counters = PerfCounters(enabled=os.environ.get("REPRO_PERF", "") == "1")


def enable() -> None:
    counters.enable()


def disable() -> None:
    counters.disable()


def reset() -> None:
    counters.reset()


class stage:
    """Context manager for cold(er) sections: ``with perf.stage("name"):``.

    Hot loops should use the inline ``if counters.enabled`` pattern
    instead; this wrapper is for per-run/per-chunk granularity where the
    ~0.5 us of context-manager overhead is irrelevant.  It is a no-op when
    the registry is disabled.
    """

    __slots__ = ("_name", "_allocs", "_t0")

    def __init__(self, name: str, allocs: int = 0) -> None:
        self._name = name
        self._allocs = allocs
        self._t0: Optional[float] = None

    def __enter__(self) -> "stage":
        if counters.enabled:
            self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._t0 is not None:
            counters.add(self._name, perf_counter() - self._t0, self._allocs)
