"""Simulation results: per-interval traces, summaries, deficiency curves."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["SimulationResult", "SimulationSummary"]


@dataclass(frozen=True)
class SimulationSummary:
    """Headline numbers of one run."""

    policy: str
    num_links: int
    num_intervals: int
    total_deficiency: float
    per_link_deficiency: np.ndarray
    timely_throughput: np.ndarray
    requirements: np.ndarray
    total_collisions: int
    mean_overhead_us: float
    mean_busy_us: float
    fulfilled: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "num_links": self.num_links,
            "num_intervals": self.num_intervals,
            "total_deficiency": self.total_deficiency,
            "total_collisions": self.total_collisions,
            "mean_overhead_us": self.mean_overhead_us,
            "mean_busy_us": self.mean_busy_us,
            "fulfilled": self.fulfilled,
        }


class SimulationResult:
    """Accumulates per-interval data during a run; exposes analysis views.

    All arrays are ``(K, N)`` for ``K`` recorded intervals and ``N`` links,
    except scalar per-interval series which are ``(K,)``.
    """

    def __init__(
        self,
        policy_name: str,
        requirements: np.ndarray,
        record_priorities: bool = False,
    ):
        self.policy_name = policy_name
        self.requirements = np.asarray(requirements, dtype=float)
        self.record_priorities = record_priorities
        self._arrivals: List[np.ndarray] = []
        self._deliveries: List[np.ndarray] = []
        self._attempts: List[np.ndarray] = []
        self._busy: List[float] = []
        self._overhead: List[float] = []
        self._collisions: List[int] = []
        self._priorities: List[Optional[tuple]] = []

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        policy_name: str,
        requirements: np.ndarray,
        arrivals: np.ndarray,
        deliveries: np.ndarray,
        attempts: np.ndarray,
        busy_time_us: np.ndarray,
        overhead_time_us: np.ndarray,
        collisions: np.ndarray,
        priorities: Optional[np.ndarray] = None,
    ) -> "SimulationResult":
        """Build a result from pre-stacked per-interval arrays.

        Used by the batch engine to materialize one replication's trace as
        a scalar-compatible result: per-link arrays are ``(K, N)``,
        per-interval series are ``(K,)``, ``priorities`` is ``(K, N)`` or
        ``None``.
        """
        result = cls(
            policy_name,
            requirements,
            record_priorities=priorities is not None,
        )
        arrivals = np.asarray(arrivals, dtype=np.int64)
        deliveries = np.asarray(deliveries, dtype=np.int64)
        attempts = np.asarray(attempts, dtype=np.int64)
        expected = (arrivals.shape[0], result.num_links)
        for name, array in (
            ("arrivals", arrivals),
            ("deliveries", deliveries),
            ("attempts", attempts),
        ):
            if array.shape != expected:
                raise ValueError(
                    f"{name} has shape {array.shape}, expected {expected}"
                )
        result._arrivals = list(arrivals)
        result._deliveries = list(deliveries)
        result._attempts = list(attempts)
        result._busy = [float(v) for v in busy_time_us]
        result._overhead = [float(v) for v in overhead_time_us]
        result._collisions = [int(v) for v in collisions]
        if priorities is not None:
            result._priorities = [
                tuple(int(p) for p in row) for row in priorities
            ]
        lengths = {
            len(result._arrivals),
            len(result._busy),
            len(result._overhead),
            len(result._collisions),
        }
        if priorities is not None:
            lengths.add(len(result._priorities))
        if len(lengths) != 1:
            raise ValueError("per-interval series have mismatched lengths")
        return result

    # ------------------------------------------------------------------
    def record(self, arrivals: np.ndarray, outcome) -> None:
        self._arrivals.append(np.asarray(arrivals, dtype=np.int64))
        self._deliveries.append(np.asarray(outcome.deliveries, dtype=np.int64))
        self._attempts.append(np.asarray(outcome.attempts, dtype=np.int64))
        self._busy.append(float(outcome.busy_time_us))
        self._overhead.append(float(outcome.overhead_time_us))
        self._collisions.append(int(outcome.collisions))
        if self.record_priorities:
            self._priorities.append(outcome.priorities)

    # ------------------------------------------------------------------
    @property
    def num_intervals(self) -> int:
        return len(self._deliveries)

    @property
    def num_links(self) -> int:
        return self.requirements.size

    @property
    def arrivals(self) -> np.ndarray:
        return np.array(self._arrivals, dtype=np.int64).reshape(
            self.num_intervals, self.num_links
        )

    @property
    def deliveries(self) -> np.ndarray:
        return np.array(self._deliveries, dtype=np.int64).reshape(
            self.num_intervals, self.num_links
        )

    @property
    def attempts(self) -> np.ndarray:
        return np.array(self._attempts, dtype=np.int64).reshape(
            self.num_intervals, self.num_links
        )

    @property
    def busy_time_us(self) -> np.ndarray:
        return np.asarray(self._busy)

    @property
    def overhead_time_us(self) -> np.ndarray:
        return np.asarray(self._overhead)

    @property
    def collisions(self) -> np.ndarray:
        return np.asarray(self._collisions, dtype=np.int64)

    @property
    def priorities(self) -> List[Optional[tuple]]:
        if not self.record_priorities:
            raise RuntimeError("run was not configured to record priorities")
        return list(self._priorities)

    # ------------------------------------------------------------------
    # Definition 1 metrics
    # ------------------------------------------------------------------
    def per_link_deficiency(self, upto: Optional[int] = None) -> np.ndarray:
        """``(q_n - mean deliveries)^+`` over the first ``upto`` intervals."""
        k = self.num_intervals if upto is None else upto
        if k <= 0:
            return self.requirements.copy()
        mean = self.deliveries[:k].mean(axis=0)
        return np.maximum(self.requirements - mean, 0.0)

    def total_deficiency(self, upto: Optional[int] = None) -> float:
        return float(self.per_link_deficiency(upto).sum())

    def deficiency_trajectory(self, stride: int = 1) -> np.ndarray:
        """Total deficiency after each ``stride``-th interval (shape (K//stride,))."""
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        deliveries = self.deliveries
        cumulative = np.cumsum(deliveries, axis=0, dtype=float)
        ks = np.arange(1, self.num_intervals + 1)[:, None]
        deficiency = np.maximum(self.requirements[None, :] - cumulative / ks, 0.0)
        totals = deficiency.sum(axis=1)
        return totals[stride - 1 :: stride]

    def running_timely_throughput(self, link: int) -> np.ndarray:
        """Running mean deliveries/interval for one link (Fig. 5's series)."""
        deliveries = self.deliveries[:, link].astype(float)
        ks = np.arange(1, self.num_intervals + 1)
        return np.cumsum(deliveries) / ks

    def timely_throughput(self) -> np.ndarray:
        if self.num_intervals == 0:
            return np.zeros(self.num_links)
        return self.deliveries.mean(axis=0)

    # ------------------------------------------------------------------
    def summary(self, fulfilled_tolerance: float = 1e-3) -> SimulationSummary:
        deficiency = self.per_link_deficiency()
        total = float(deficiency.sum())
        return SimulationSummary(
            policy=self.policy_name,
            num_links=self.num_links,
            num_intervals=self.num_intervals,
            total_deficiency=total,
            per_link_deficiency=deficiency,
            timely_throughput=self.timely_throughput(),
            requirements=self.requirements.copy(),
            total_collisions=int(self.collisions.sum()),
            mean_overhead_us=float(self.overhead_time_us.mean())
            if self.num_intervals
            else 0.0,
            mean_busy_us=float(self.busy_time_us.mean())
            if self.num_intervals
            else 0.0,
            fulfilled=total <= fulfilled_tolerance,
        )
