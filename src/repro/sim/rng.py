"""Random-stream management for reproducible simulations.

The DP protocol needs one *shared* random stream (Step 1 of Algorithm 2:
every device derives the same candidate index ``C(k)`` from a common seed,
e.g. coarse-synchronized system time) plus *local* streams per component
(arrivals, channel outcomes, per-link coin flips).  :class:`RngBundle`
derives all of them from one master seed via ``numpy.random.SeedSequence``
spawning, so any simulation is reproducible from a single integer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = ["RngBundle"]


class RngBundle:
    """Named, independent ``numpy.random.Generator`` streams from one seed.

    Streams are created lazily and deterministically: the stream named
    ``"channel"`` is the same generator sequence for a given master seed no
    matter how many other streams exist or in what order they were first
    requested (each name hashes to a fixed spawn key).
    """

    def __init__(self, seed: int):
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        if name not in self._streams:
            # Derive a per-name child seed from the master seed and a stable
            # hash of the name; SeedSequence mixes both into a full-entropy
            # state, so distinct names give independent streams.
            name_key = [ord(c) for c in name]
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=name_key)
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    # Convenience accessors for the streams every simulation uses. ---------
    @property
    def arrivals(self) -> np.random.Generator:
        return self.stream("arrivals")

    @property
    def channel(self) -> np.random.Generator:
        return self.stream("channel")

    @property
    def policy(self) -> np.random.Generator:
        """Local policy randomness (per-link coin flips, backoff draws)."""
        return self.stream("policy")

    @property
    def shared(self) -> np.random.Generator:
        """The network-wide shared stream (candidate index ``C(k)``)."""
        return self.stream("shared")
