"""Random-stream management for reproducible simulations.

The DP protocol needs one *shared* random stream (Step 1 of Algorithm 2:
every device derives the same candidate index ``C(k)`` from a common seed,
e.g. coarse-synchronized system time) plus *local* streams per component
(arrivals, channel outcomes, per-link coin flips).  :class:`RngBundle`
derives all of them from one master seed via ``numpy.random.SeedSequence``
spawning, so any simulation is reproducible from a single integer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "RngBundle",
    "BatchRngBundle",
    "draw_chunk_depth",
    "RNG_MODES",
    "normalize_rng_mode",
]

#: The three RNG disciplines a batch simulation can run under:
#:
#: * ``"sync"``  — per-seed scalar clone streams; bit-identical to the
#:   scalar engine (debug / cross-validation mode).
#: * ``"batch"`` — one vectorized stream per name over the whole stack;
#:   reproducible from the seed tuple, draws in lockstep with the shared
#:   scalar draw schedule (every kernel consumes the same block shapes,
#:   which keeps all backends bit-identical to each other).
#: * ``"free"``  — independently-derived per-(seed-tuple, stream)
#:   substreams where each kernel draws only what it actually consumes.
#:   Statistical equivalence with the other modes is the contract, not
#:   bit-identity (production throughput mode).
RNG_MODES = ("sync", "batch", "free")


def normalize_rng_mode(rng: Optional[str] = None, sync_rng: bool = False) -> str:
    """Resolve an ``rng=`` argument plus legacy ``sync_rng`` flag to a mode.

    ``rng=None`` defers to ``sync_rng`` (``True`` → ``"sync"``, else
    ``"batch"`` — today's defaults).  An explicit ``rng="sync"`` is the
    same as ``sync_rng=True``; combining ``sync_rng=True`` with
    ``rng="batch"``/``rng="free"`` is contradictory and raises.
    """
    if rng is None:
        return "sync" if sync_rng else "batch"
    mode = str(rng).lower()
    if mode not in RNG_MODES:
        raise ValueError(
            f"unknown rng mode {rng!r}; expected one of {RNG_MODES}"
        )
    if sync_rng and mode != "sync":
        raise ValueError(
            f"rng={mode!r} contradicts sync_rng=True; pass one or the other"
        )
    return mode


def draw_chunk_depth(default: int = 64) -> int:
    """Chunk depth (intervals per Generator call) for batch draw caches.

    Reads ``REPRO_DRAW_CHUNK`` from the environment, falling back to
    ``default``.  Changing the depth is **value-preserving** for every
    stream that fills its whole chunk with a *single* Generator call
    (channel retry draws via ``standard_exponential``, policy/shared
    uniforms via ``random``): a chunk of depth ``D`` consumes exactly
    ``D`` intervals' worth of the stream in interval order, so interval
    ``k`` reads the same generator values at any depth.  It is *not*
    value-preserving for arrival blocks — ``sample_batch`` of the bursty
    process makes two generator calls (uniforms, then integers) whose
    interleaving depends on the block size — so the arrival cache in
    :mod:`repro.sim.batch_sim` keeps a fixed depth regardless of this
    setting.
    """
    raw = os.environ.get("REPRO_DRAW_CHUNK", "")
    if not raw:
        return int(default)
    try:
        depth = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_DRAW_CHUNK must be a positive integer, got {raw!r}"
        ) from exc
    if depth < 1:
        raise ValueError(
            f"REPRO_DRAW_CHUNK must be a positive integer, got {depth}"
        )
    return depth


class RngBundle:
    """Named, independent ``numpy.random.Generator`` streams from one seed.

    Streams are created lazily and deterministically: the stream named
    ``"channel"`` is the same generator sequence for a given master seed no
    matter how many other streams exist or in what order they were first
    requested (each name hashes to a fixed spawn key).
    """

    def __init__(self, seed: int):
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        if name not in self._streams:
            # Derive a per-name child seed from the master seed and a stable
            # hash of the name; SeedSequence mixes both into a full-entropy
            # state, so distinct names give independent streams.
            name_key = [ord(c) for c in name]
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=name_key)
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    # Convenience accessors for the streams every simulation uses. ---------
    @property
    def arrivals(self) -> np.random.Generator:
        return self.stream("arrivals")

    @property
    def channel(self) -> np.random.Generator:
        return self.stream("channel")

    @property
    def policy(self) -> np.random.Generator:
        """Local policy randomness (per-link coin flips, backoff draws)."""
        return self.stream("policy")

    @property
    def shared(self) -> np.random.Generator:
        """The network-wide shared stream (candidate index ``C(k)``)."""
        return self.stream("shared")


class BatchRngBundle:
    """Random streams for a stack of ``S`` independent replications.

    Two families of streams coexist:

    * **Per-seed streams** (:attr:`bundles`, :meth:`per_seed`) — one
      :class:`RngBundle` per seed, constructed exactly as the scalar engine
      would.  Stream ``"channel"`` of seed ``s`` here is bit-identical to
      ``RngBundle(s).channel``, which is what makes scalar/batch
      cross-validation exact (the batch engine's ``sync_rng`` mode draws
      from these in scalar consumption order).
    * **Batch streams** (:meth:`batch_stream`) — one generator per stream
      name that fills ``(S, ...)``-shaped arrays in single vectorized
      draws.  Its seed mixes the *whole* seed tuple, so a batch run is
      reproducible from the seed list, but individual slices are not meant
      to match any scalar stream.

    Batch stream names live in a ``"batch:"`` namespace so they can never
    collide with per-seed stream names.

    ``stream_tag`` shifts the whole batch-stream namespace: two bundles
    with the same seeds but different tags draw independent batch streams.
    The grid-fused sweep engine tags its mega-batches (``"fused"``) so a
    fused stack never replays the draws of a plain per-cell batch run that
    happens to share the same seed list — the two modes stay independent
    samples of the same distribution.  Per-seed bundles are unaffected by
    the tag (they must remain scalar-identical), and seeds may repeat: a
    fused stack has one row per (sweep cell, seed) pair, and each row gets
    its own scalar-identical :class:`RngBundle` exactly as the per-cell
    runner would construct it.
    """

    def __init__(self, seeds: Sequence[int], stream_tag: Optional[str] = None):
        seeds = tuple(int(s) for s in seeds)
        if not seeds:
            raise ValueError("need at least one seed")
        self._seeds = seeds
        self._stream_tag = stream_tag
        self._bundles = tuple(RngBundle(s) for s in seeds)
        self._batch_streams: Dict[str, np.random.Generator] = {}
        self._free_streams: Dict[str, np.random.Generator] = {}

    @property
    def seeds(self) -> Tuple[int, ...]:
        return self._seeds

    @property
    def num_seeds(self) -> int:
        return len(self._seeds)

    @property
    def bundles(self) -> Tuple[RngBundle, ...]:
        """The scalar-identical per-seed bundles (one per replication)."""
        return self._bundles

    def per_seed(self, name: str) -> Tuple[np.random.Generator, ...]:
        """The scalar-identical stream ``name`` of every seed, in order."""
        return tuple(b.stream(name) for b in self._bundles)

    @property
    def stream_tag(self) -> Optional[str]:
        return self._stream_tag

    def batch_stream(self, name: str) -> np.random.Generator:
        """One generator for vectorized ``(S, ...)`` draws of ``name``."""
        if name not in self._batch_streams:
            namespace = "batch:"
            if self._stream_tag is not None:
                namespace = f"batch[{self._stream_tag}]:"
            name_key = [ord(c) for c in namespace + name]
            seq = np.random.SeedSequence(
                entropy=list(self._seeds), spawn_key=name_key
            )
            self._batch_streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._batch_streams[name]

    def free_stream(self, name: str) -> np.random.Generator:
        """One generator per stream name for the ``rng="free"`` discipline.

        Free streams use the same spawn-key derivation as
        :meth:`batch_stream` but live in a disjoint ``"free:"`` namespace,
        so a free-mode run never replays (or partially replays) the draws
        of a batch-mode run over the same seeds.  Kernels running free
        draw *only what they consume* from these substreams — block
        shapes, chunk depths, and per-interval consumption may all differ
        from the lockstep batch schedule, which is why free mode promises
        statistical equivalence rather than bit-identity.  Determinism is
        still exact: the stream is a pure function of (seed tuple,
        stream tag, name).
        """
        if name not in self._free_streams:
            namespace = "free:"
            if self._stream_tag is not None:
                namespace = f"free[{self._stream_tag}]:"
            name_key = [ord(c) for c in namespace + name]
            seq = np.random.SeedSequence(
                entropy=list(self._seeds), spawn_key=name_key
            )
            self._free_streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._free_streams[name]

    # Convenience accessors mirroring :class:`RngBundle`. ------------------
    @property
    def arrivals(self) -> np.random.Generator:
        return self.batch_stream("arrivals")

    @property
    def channel(self) -> np.random.Generator:
        return self.batch_stream("channel")

    @property
    def policy(self) -> np.random.Generator:
        return self.batch_stream("policy")

    @property
    def shared(self) -> np.random.Generator:
        return self.batch_stream("shared")
