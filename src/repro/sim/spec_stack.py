"""Heterogeneous spec stacks for the grid-fused batch engine.

The batch engine (:mod:`repro.sim.batch_sim`) advances a stack of
replications as ``(S, N)`` arrays.  Originally every row shared one
:class:`~repro.core.requirements.NetworkSpec`; a whole figure sweep then
still paid one engine pass per (parameter value, policy) cell.
:class:`SpecStack` removes that restriction: each row carries its *own*
spec — its own channel reliabilities, arrival parameters, and requirement
vector — so rows from different sweep cells can share a single kernel
invocation, as long as the specs agree on what the kernels hard-code:

* the link count ``N`` (array width),
* the interval timing (attempt budgets and airtimes are scalars inside the
  kernels),
* one channel family (per-row channel parameters stack the way arrival
  parameters do: stationary reliabilities become an ``(R, N)`` matrix,
  and stateful families expose vectorized per-row state through
  :meth:`~repro.phy.channel.ChannelModel.stack_rows` — a fused grid can
  sweep Gilbert-Elliott burst lengths the way it sweeps arrival rates).

Everything per-link that used to be an ``(N,)`` vector — reliabilities,
requirements — is exposed here as an ``(R, N)`` matrix; arrival draws come
from :meth:`SpecStack.sample_arrival_block`, which groups rows by identical
arrival process so one vectorized draw covers every row using that process.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.requirements import NetworkSpec
from ..phy.timing import IntervalTiming

__all__ = ["SpecStack"]


class SpecStack:
    """An ordered stack of per-row network specs for one fused engine run.

    Parameters
    ----------
    specs:
        One :class:`NetworkSpec` per row.  All rows must share the link
        count, the interval timing, and the channel model class (kernels
        bind one draw pipeline per stack); a ``ValueError``/``TypeError``
        names the offending row otherwise.
    """

    def __init__(self, specs: Sequence[NetworkSpec]):
        specs = tuple(specs)
        if not specs:
            raise ValueError("need at least one spec")
        first = specs[0]
        n = first.num_links
        timing = first.timing
        for i, spec in enumerate(specs):
            if not isinstance(spec, NetworkSpec):
                raise TypeError(
                    f"row {i} is {type(spec).__name__}, expected NetworkSpec"
                )
            if spec.num_links != n:
                raise ValueError(
                    f"row {i} has {spec.num_links} links, row 0 has {n}; "
                    "a fused stack requires one common link count"
                )
            if spec.timing != timing:
                raise ValueError(
                    f"row {i} uses a different IntervalTiming than row 0; "
                    "kernels hold timing as scalars, so fused rows must "
                    "share it"
                )
            if type(spec.channel) is not type(first.channel):
                raise TypeError(
                    f"row {i} has {type(spec.channel).__name__} but row 0 "
                    f"has {type(first.channel).__name__}; a fused stack "
                    "requires one channel model class (kernels bind one "
                    "draw pipeline per stack)"
                )
        self._specs = specs
        self._n = n
        self._timing = timing

    # ------------------------------------------------------------------
    @classmethod
    def broadcast(cls, spec: NetworkSpec, num_rows: int) -> "SpecStack":
        """A homogeneous stack: ``num_rows`` rows of the same spec."""
        if num_rows < 1:
            raise ValueError(f"num_rows must be >= 1, got {num_rows}")
        return cls((spec,) * num_rows)

    # ------------------------------------------------------------------
    @property
    def specs(self) -> Tuple[NetworkSpec, ...]:
        return self._specs

    @property
    def num_rows(self) -> int:
        return len(self._specs)

    @property
    def num_links(self) -> int:
        return self._n

    @property
    def timing(self) -> IntervalTiming:
        return self._timing

    @property
    def homogeneous(self) -> bool:
        """Whether every row equals row 0 (plain batch-engine semantics)."""
        first = self._specs[0]
        return all(spec == first for spec in self._specs[1:])

    @property
    def channels(self) -> Tuple:
        """The per-row channel models, in row order."""
        return tuple(spec.channel for spec in self._specs)

    @property
    def reliability_matrix(self) -> np.ndarray:
        """Per-row *stationary* channel reliabilities — shape ``(R, N)``.

        For stateful channel families these are the long-run values the
        policies configure from; the instantaneous per-interval planes
        come from the channel-state rows the kernels evolve.
        """
        return np.stack([spec.reliabilities for spec in self._specs])

    @property
    def requirement_matrix(self) -> np.ndarray:
        """Per-row requirements ``q`` — shape ``(R, N)``."""
        return np.stack([spec.requirement_vector for spec in self._specs])

    @property
    def max_arrivals_per_link(self) -> int:
        """The stack-wide ``A_max`` (kernels size packet axes with it)."""
        return max(
            max(1, spec.arrivals.max_per_link) for spec in self._specs
        )

    @property
    def supports_batch_arrivals(self) -> bool:
        """Whether every row's arrival process is batch-samplable."""
        return all(
            spec.arrivals.supports_batch_sampling for spec in self._specs
        )

    @property
    def has_state_arrivals(self) -> bool:
        """Whether any row's arrival process carries per-interval state."""
        return any(spec.arrivals.has_state for spec in self._specs)

    @property
    def arrival_state_uses_rng(self) -> bool:
        """Whether any row's arrival state evolves stochastically."""
        return any(
            spec.arrivals.has_state and spec.arrivals.state_uses_rng
            for spec in self._specs
        )

    @property
    def supports_batch_state_arrivals(self) -> bool:
        """Whether every row can feed the batch engine's arrival pipeline:
        stateless rows must be batch-samplable, stateful rows must supply
        vectorized batch state (``stack_rows``)."""
        return all(
            spec.arrivals.supports_batch_state
            if spec.arrivals.has_state
            else spec.arrivals.supports_batch_sampling
            for spec in self._specs
        )

    # ------------------------------------------------------------------
    def _arrival_groups(self) -> List[Tuple[NetworkSpec, List[int]]]:
        """Rows grouped by identical arrival process (order-preserving).

        Computed once and cached: the stack is immutable, and the
        pairwise equality scan is quadratic in distinct processes — too
        slow to repeat on every chunk refill of a long run.
        """
        cached = getattr(self, "_arrival_groups_cache", None)
        if cached is None:
            groups: List[Tuple[NetworkSpec, List[int]]] = []
            for i, spec in enumerate(self._specs):
                for rep, rows in groups:
                    if spec.arrivals == rep.arrivals:
                        rows.append(i)
                        break
                else:
                    groups.append((spec, [i]))
            cached = self._arrival_groups_cache = groups
        return cached

    def sample_arrival_block(
        self, rng: np.random.Generator, depth: int
    ) -> np.ndarray:
        """Draw ``depth`` intervals of arrivals for every row at once.

        Returns a ``(depth, R, N)`` int64 array.  Rows sharing one arrival
        process are drawn in a single ``sample_batch`` call (i.i.d. across
        intervals and rows, so a flat oversized draw has the right joint
        distribution); a sweep with ``V`` distinct parameter values costs
        ``V`` generator calls per block instead of ``R``.
        """
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        out = np.empty((depth, self.num_rows, self._n), dtype=np.int64)
        for rep, rows in self._arrival_groups():
            flat = rep.arrivals.sample_batch(rng, depth * len(rows))
            out[:, rows] = flat.reshape(depth, len(rows), self._n)
        return out
