"""ASCII timeline rendering of an interval's channel occupancy.

Turns a traced event-simulator run into a human-readable Gantt strip —
useful in examples and when debugging protocol behaviour:

    interval 3 | sigma = (2, 1, 3)
    t(us)    0        500       1000      1500      2000
    link 0   ....XXXXXX✓.................................
    link 1   XXX✓......................................
    ...

Each rendered cell covers ``resolution_us`` of the interval; transmissions
are drawn as runs of ``X`` terminated by the attempt outcome (``✓``
delivered, ``x`` lost, ``o`` empty packet).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .tracing import TraceRecorder, TransmissionEvent

__all__ = ["render_interval", "render_intervals"]


def render_interval(
    trace: TraceRecorder,
    interval: int,
    interval_us: float,
    num_links: int,
    width: int = 72,
) -> str:
    """Render one interval as an ASCII strip (one row per link)."""
    if width < 10:
        raise ValueError(f"width must be at least 10, got {width}")
    if interval_us <= 0:
        raise ValueError(f"interval length must be positive, got {interval_us}")
    start_us = None
    priorities = None
    for event in trace.interval_events():
        if event.interval == interval:
            start_us = event.time_us
            priorities = event.priorities
            break
    if start_us is None:
        # Fall back to the tiling convention (intervals are contiguous).
        start_us = interval * interval_us

    resolution = interval_us / width
    rows = [["." for _ in range(width)] for _ in range(num_links)]
    for event in trace.transmissions():
        if event.interval != interval:
            continue
        begin = int((event.time_us - start_us) // resolution)
        end = int((event.end_us - start_us - 1e-9) // resolution)
        begin = max(0, min(width - 1, begin))
        end = max(0, min(width - 1, end))
        for cell in range(begin, end + 1):
            rows[event.link][cell] = "X"
        if event.kind == "empty":
            marker = "o"
        else:
            marker = "+" if event.delivered else "x"
        rows[event.link][end] = marker

    lines = [
        f"interval {interval}"
        + (f" | sigma = {tuple(priorities)}" if priorities else "")
    ]
    # Time ruler: ticks every width // 4 cells.
    ruler = [" "] * width
    labels: List[str] = []
    tick_step = max(1, width // 4)
    header = "t(us)".ljust(9)
    ruler_line = ""
    for cell in range(0, width, tick_step):
        t = cell * resolution
        ruler_line += f"{t:<{tick_step * 1}.0f}"[: tick_step]
    lines.append(header + ruler_line)
    for link, row in enumerate(rows):
        lines.append(f"link {link:<3d} " + "".join(row))
    return "\n".join(lines)


def render_intervals(
    trace: TraceRecorder,
    intervals: List[int],
    interval_us: float,
    num_links: int,
    width: int = 72,
) -> str:
    """Render several intervals separated by blank lines."""
    return "\n\n".join(
        render_interval(trace, k, interval_us, num_links, width)
        for k in intervals
    )
