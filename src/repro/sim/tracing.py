"""Structured event tracing for the event-driven simulator.

A :class:`TraceRecorder` captures a typed, queryable log of what happened
on the channel: transmission starts/ends, per-attempt outcomes, swap
handshakes, and interval boundaries.  Useful for debugging protocol
behaviour and for the examples that narrate the timeline; disabled by
default (tracing a 20 k-interval run would dominate memory).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import IO, Iterator, List, Optional, Tuple

__all__ = [
    "TraceEvent",
    "TransmissionEvent",
    "SwapEvent",
    "IntervalEvent",
    "TraceRecorder",
    "dump_jsonl",
    "load_jsonl",
]

#: JSONL type tags <-> event classes (populated below the definitions).
_EVENT_TYPES = {}


@dataclass(frozen=True)
class TraceEvent:
    """Base event: everything carries a timestamp and interval index."""

    time_us: float
    interval: int


@dataclass(frozen=True)
class TransmissionEvent(TraceEvent):
    """One channel occupancy by one link."""

    link: int
    duration_us: float
    kind: str  # "data" or "empty"
    delivered: Optional[bool] = None  # None for empty packets

    @property
    def end_us(self) -> float:
        return self.time_us + self.duration_us


@dataclass(frozen=True)
class SwapEvent(TraceEvent):
    """A committed (or refused) priority exchange at an interval boundary."""

    candidate_priority: int
    down_link: int
    up_link: int
    committed: bool


@dataclass(frozen=True)
class IntervalEvent(TraceEvent):
    """Interval boundary marker with the priority vector entering it."""

    priorities: Tuple[int, ...]


class TraceRecorder:
    """Appends events and answers simple queries over them."""

    def __init__(self, capacity: Optional[int] = None):
        """``capacity`` caps the stored events (oldest dropped) if set."""
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._events: List[TraceEvent] = []
        self._capacity = capacity
        self.dropped = 0

    def record(self, event: TraceEvent) -> None:
        if self._capacity is not None and len(self._events) >= self._capacity:
            self._events.pop(0)
            self.dropped += 1
        self._events.append(event)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, kind: Optional[type] = None) -> List[TraceEvent]:
        """All events, optionally filtered by event class."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if isinstance(e, kind)]

    def transmissions(self, link: Optional[int] = None) -> List[TransmissionEvent]:
        out = [e for e in self._events if isinstance(e, TransmissionEvent)]
        if link is not None:
            out = [e for e in out if e.link == link]
        return out

    def swaps(self, committed_only: bool = False) -> List[SwapEvent]:
        out = [e for e in self._events if isinstance(e, SwapEvent)]
        if committed_only:
            out = [e for e in out if e.committed]
        return out

    def interval_events(self) -> List[IntervalEvent]:
        return [e for e in self._events if isinstance(e, IntervalEvent)]

    # ------------------------------------------------------------------
    def channel_utilization(self, interval: int, interval_us: float) -> float:
        """Fraction of one interval's time the channel was busy."""
        if interval_us <= 0:
            raise ValueError(f"interval length must be positive, got {interval_us}")
        busy = sum(
            e.duration_us
            for e in self.transmissions()
            if e.interval == interval
        )
        return busy / interval_us

    def verify_no_overlap(self) -> None:
        """Assert no two transmissions overlap (collision-freedom audit)."""
        spans = sorted(
            ((e.time_us, e.end_us, e.link) for e in self.transmissions()),
        )
        for (s1, e1, l1), (s2, e2, l2) in zip(spans, spans[1:]):
            if s2 < e1 - 1e-9:
                raise AssertionError(
                    f"overlapping transmissions: link {l1} [{s1}, {e1}) and "
                    f"link {l2} [{s2}, {e2})"
                )


_EVENT_TYPES.update(
    {
        "transmission": TransmissionEvent,
        "swap": SwapEvent,
        "interval": IntervalEvent,
    }
)
_TYPE_TAGS = {cls: tag for tag, cls in _EVENT_TYPES.items()}


def _to_record(event: TraceEvent) -> dict:
    record = asdict(event)
    record["type"] = _TYPE_TAGS[type(event)]
    if isinstance(event, IntervalEvent):
        record["priorities"] = list(event.priorities)
    return record


def _from_record(record: dict) -> TraceEvent:
    data = dict(record)
    tag = data.pop("type")
    try:
        cls = _EVENT_TYPES[tag]
    except KeyError as exc:
        raise ValueError(f"unknown trace event type {tag!r}") from exc
    if cls is IntervalEvent:
        data["priorities"] = tuple(data["priorities"])
    return cls(**data)


def dump_jsonl(recorder: TraceRecorder, stream: IO[str]) -> int:
    """Write the recorder's events as JSON lines; returns the count."""
    count = 0
    for event in recorder:
        stream.write(json.dumps(_to_record(event)) + "\n")
        count += 1
    return count


def load_jsonl(stream: IO[str]) -> TraceRecorder:
    """Rebuild a recorder from :func:`dump_jsonl` output."""
    recorder = TraceRecorder()
    for line in stream:
        line = line.strip()
        if not line:
            continue
        recorder.record(_from_record(json.loads(line)))
    return recorder
