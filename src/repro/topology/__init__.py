"""Interference-graph topologies: many cells, one batch invocation.

Public surface of the multi-cell layer (see ``docs/topology.md``):

* :class:`~repro.topology.graph.CellTopology` plus the
  :func:`~repro.topology.graph.single_cell` /
  :func:`~repro.topology.graph.partition_cells` /
  :func:`~repro.topology.graph.grid_cells` builders;
* :class:`~repro.topology.engine.TopologySimulator` and
  :func:`~repro.topology.engine.run_topology_batch` — the numpy lowering
  onto the batch engine (bit-identical per cell, shard-invariant);
* :func:`~repro.topology.cellsim.compiled_available` and
  :func:`~repro.topology.cellsim.run_topology_compiled` — the optional
  C cell kernel (statistically equivalent, built on demand with the
  system compiler, no new dependencies).
"""
from .boundary import BoundaryMasker, BoundaryOwnerDraws
from .engine import TopologyResult, TopologySimulator, run_topology_batch
from .graph import (
    TOPOLOGY_STREAM_TAG,
    CellTopology,
    cell_stream_tag,
    grid_cells,
    partition_cells,
    single_cell,
)
from .pack import CellPacking

__all__ = [
    "BoundaryMasker",
    "BoundaryOwnerDraws",
    "CellPacking",
    "CellTopology",
    "TOPOLOGY_STREAM_TAG",
    "TopologyResult",
    "TopologySimulator",
    "cell_stream_tag",
    "grid_cells",
    "partition_cells",
    "run_topology_batch",
    "single_cell",
]
