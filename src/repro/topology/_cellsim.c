/* Compiled multi-cell DB-DP kernel.
 *
 * One call simulates every (cell, seed) row of a packed topology for a
 * whole run: rows are independent given the precomputed boundary owner
 * draws, so each row's full interval loop runs with its state (delivery
 * sums, priority permutation, RNG) resident in L1.  The interval
 * semantics mirror the batch engine's dense DP path (see
 * repro/sim/batch_kernels.py:_run_interval_ws, single-pair branch):
 *
 *   1. per-link arrivals (bursty-video / Bernoulli), boundary-masked;
 *   2. one candidate position c ~ U{1..n-1}; Glauber coins for the two
 *      candidate links with mu = 1 / (1 + R exp(-f(d+) p)),
 *      f(x) = log(max(1, coeff (x + 1))), clipped inside (0, 1);
 *   3. service in priority order with the candidates possibly swapped
 *      (both coins pointing "swap"), the backoff staircase, empty-claim
 *      slots for idle candidates, and the shared transmission budget
 *      floor((T - dead_j) / air) walked sequentially;
 *   4. commit of the priority swap iff the first-served candidate
 *      transmitted and its slot finished inside the interval;
 *   5. debts evolve as d_i(k) = q_i k - deliveries_so_far(i) — derived
 *      on demand for the two candidate links, never stored.
 *
 * Randomness: eight interleaved xoshiro256++ lanes per row, drained
 * into a uint32 buffer in bulk (the lane loops auto-vectorize; with the
 * buffer, the serve loop's critical path is a load + compare instead of
 * the generator's sequential dependency chain).  Lane states come from
 * numpy SeedSequence material keyed by (seed value, global cell index),
 * so results are a pure function of (topology, seeds): invariant under
 * packing order, sharding and the presence of other cells.
 * Statistically equivalent to the numpy engine's rng="free" discipline,
 * not bit-identical (different generator, same distributions).
 *
 * Integer-microsecond timing is required (the Python wrapper checks);
 * all timeline arithmetic below is exact int64.
 */
#include <stdint.h>
#include <stdlib.h>
#include <math.h>

#define LANES 8

typedef struct {
    uint64_t s0[LANES];
    uint64_t s1[LANES];
    uint64_t s2[LANES];
    uint64_t s3[LANES];
    uint32_t *buf;
    int64_t cap;   /* buffer length, multiple of 2 * LANES */
    int64_t pos;   /* next unread uint32 */
} rng8_t;

static inline uint64_t rotl64(const uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/* Discard the unread tail and refill the whole buffer.  The discard is
 * deterministic: identical inputs walk an identical consumption path.
 * Each round emits one 64-bit result per lane, stored as two
 * consecutive uint32 values (low word first — the buffer layout is
 * little-endian u64 stores, identical between the two variants below).
 * The refill dominated the whole kernel as scalar code (the per-lane
 * loops refused to auto-vectorize), hence the explicit AVX-512 path:
 * eight lanes are exactly one zmm register per xoshiro state word. */
#if defined(__AVX512F__)
#include <immintrin.h>
static void rng8_refill(rng8_t *g)
{
    __m512i s0 = _mm512_loadu_si512((const void *)g->s0);
    __m512i s1 = _mm512_loadu_si512((const void *)g->s1);
    __m512i s2 = _mm512_loadu_si512((const void *)g->s2);
    __m512i s3 = _mm512_loadu_si512((const void *)g->s3);
    uint32_t *out = g->buf;
    for (int64_t b = 0; b < g->cap; b += 2 * LANES) {
        const __m512i res = _mm512_add_epi64(
            _mm512_rol_epi64(_mm512_add_epi64(s0, s3), 23), s0);
        const __m512i t = _mm512_slli_epi64(s1, 17);
        s2 = _mm512_xor_si512(s2, s0);
        s3 = _mm512_xor_si512(s3, s1);
        s1 = _mm512_xor_si512(s1, s2);
        s0 = _mm512_xor_si512(s0, s3);
        s2 = _mm512_xor_si512(s2, t);
        s3 = _mm512_rol_epi64(s3, 45);
        _mm512_storeu_si512((void *)(out + b), res);
    }
    _mm512_storeu_si512((void *)g->s0, s0);
    _mm512_storeu_si512((void *)g->s1, s1);
    _mm512_storeu_si512((void *)g->s2, s2);
    _mm512_storeu_si512((void *)g->s3, s3);
    g->pos = 0;
}
#else
static void rng8_refill(rng8_t *g)
{
    for (int64_t b = 0; b < g->cap; b += 2 * LANES) {
        uint64_t *out64 = (uint64_t *)(g->buf + b);
        for (int l = 0; l < LANES; l++) {
            const uint64_t r0 = g->s0[l];
            const uint64_t r1 = g->s1[l];
            const uint64_t r2 = g->s2[l];
            const uint64_t r3 = g->s3[l];
            out64[l] = rotl64(r0 + r3, 23) + r0;
            const uint64_t t = r1 << 17;
            const uint64_t n2 = r2 ^ r0;
            const uint64_t n3 = r3 ^ r1;
            g->s1[l] = r1 ^ n2;
            g->s0[l] = r0 ^ n3;
            g->s2[l] = n2 ^ t;
            g->s3[l] = rotl64(n3, 45);
        }
    }
    g->pos = 0;
}
#endif

static inline double u32s_to_double(uint32_t hi, uint32_t lo)
{
    const uint64_t v = ((uint64_t)hi << 32) | lo;
    return (double)(v >> 11) * (1.0 / 9007199254740992.0);
}

static inline double glauber_mu(double debt, double p, double glauber_r,
                                double coeff)
{
    double dp = debt > 0.0 ? debt : 0.0;
    double f = log(fmax(1.0, coeff * (dp + 1.0)));
    double energy = f * p;
    if (energy > 700.0)
        energy = 700.0;
    double mu = 1.0 / (1.0 + glauber_r * exp(-energy));
    if (mu < 1e-12)
        mu = 1e-12;
    if (mu > 1.0 - 1e-12)
        mu = 1.0 - 1e-12;
    return mu;
}

/* Compare the next 64 channel draws against one shared threshold and
 * pack the outcomes into a bitmask (bit i = draw i succeeded).  With
 * the whole interval's attempt budget <= 64, every link's service then
 * reduces to branch-free bit arithmetic on this mask — the per-attempt
 * compare loop's data-dependent branches were the kernel's largest
 * remaining cost. */
static inline uint64_t channel_mask64(const uint32_t *rp, uint64_t thr)
{
#if defined(__AVX512F__) && defined(__AVX512BW__)
    const __m512i t = _mm512_set1_epi32((int32_t)(uint32_t)(thr > 0xFFFFFFFFULL
                                                            ? 0xFFFFFFFFULL
                                                            : thr));
    /* For thr == 2^32 (p == 1.0) every draw succeeds; cmplt against
     * 0xFFFFFFFF misses only draws equal to 0xFFFFFFFF, so patch that
     * case with cmple. */
    uint64_t m = 0;
    if (thr > 0xFFFFFFFFULL) {
        for (int q = 0; q < 4; q++) {
            const __m512i v =
                _mm512_loadu_si512((const void *)(rp + 16 * q));
            m |= (uint64_t)_mm512_cmple_epu32_mask(v, t) << (16 * q);
        }
    } else {
        for (int q = 0; q < 4; q++) {
            const __m512i v =
                _mm512_loadu_si512((const void *)(rp + 16 * q));
            m |= (uint64_t)_mm512_cmplt_epu32_mask(v, t) << (16 * q);
        }
    }
    return m;
#else
    uint64_t m = 0;
    for (int i = 0; i < 64; i++)
        m |= (uint64_t)((uint64_t)rp[i] < thr) << i;
    return m;
#endif
}

#if defined(__BMI2__) && defined(__POPCNT__)
#include <immintrin.h>
#define CELLSIM_HAVE_MASK_SERVE 1
#else
#define CELLSIM_HAVE_MASK_SERVE 0
#endif

#if CELLSIM_HAVE_MASK_SERVE
/* Bit j set iff the link at service position j has arrivals (n <= 64).
 * Off the walk's critical path: it decides which positions the walk
 * visits at all — idle positions contribute nothing to the interval
 * (no attempts, no empties, no idle time), so skipping them halves the
 * sequential budget chain at typical loads. */
static inline uint64_t active_positions(const int32_t *inv,
                                        const int32_t *arr, int64_t n)
{
    uint64_t amask = 0;
#if defined(__AVX512F__)
    for (int64_t j0 = 0; j0 < n; j0 += 16) {
        const int64_t rem = n - j0;
        const __mmask16 lane =
            rem >= 16 ? (__mmask16)0xFFFF : (__mmask16)((1u << rem) - 1);
        const __m512i vidx = _mm512_maskz_loadu_epi32(lane, inv + j0);
        const __m512i vals = _mm512_mask_i32gather_epi32(
            _mm512_setzero_si512(), lane, vidx, arr, 4);
        amask |= (uint64_t)_mm512_mask_cmpgt_epi32_mask(
                     lane, vals, _mm512_setzero_si512())
                 << j0;
    }
#else
    for (int64_t j = 0; j < n; j++)
        amask |= (uint64_t)(arr[inv[j]] > 0) << j;
#endif
    return amask;
}
#endif

void cellsim_run(
    int64_t num_rows,            /* C_packed * S, cell-major             */
    int64_t num_seeds,           /* S                                    */
    int64_t width,               /* padded links per cell                */
    int64_t num_intervals,       /* K                                    */
    int64_t burst_max,           /* >= 1; 1 == Bernoulli arrivals        */
    const uint64_t *athr,        /* (C*W) arrival thresholds (alpha<<32) */
    const uint64_t *pthr,        /* (C*W) channel thresholds (p<<32)     */
    const double *probs,         /* (C*W) reliabilities (for mu)         */
    const double *reqs,          /* (C*W) per-membership requirements    */
    int64_t T, int64_t air, int64_t empty, int64_t slot,
    double glauber_r, double coeff,
    int64_t num_boundary,        /* B over the whole topology            */
    const int64_t *bnd_offsets,  /* (C+1) slice bounds into bnd_*        */
    const int64_t *bnd_local,    /* per entry: local slot in the cell    */
    const int64_t *bnd_index,    /* per entry: boundary link index b     */
    const int64_t *bnd_member,   /* per entry: membership ordinal        */
    const uint8_t *owners,       /* (K*S*B) owner ordinals               */
    const int64_t *row_cells,    /* (num_rows) global cell id per row    */
    const uint64_t *row_states,  /* (num_rows * 4 * LANES) seed material */
    int64_t *delivery_sums,      /* out (num_rows*W)                     */
    double *overhead_sums,       /* out (num_rows)                       */
    int32_t *inv_out)            /* out (num_rows*W) final service order */
{
    const int64_t n = width;
    const int64_t att_cap = T / air;  /* shared budget bounds attempts  */
    /* Worst-case uint32 consumption of one interval: 2n arrival draws,
     * 1 candidate draw, 4 for the two coin doubles, and the channel
     * block (a fixed 64 draws on the mask-serve path, att_cap on the
     * scalar path) — rounded up so one refill check per interval
     * suffices and every draw inside the interval is a raw buffer
     * read. */
    const int64_t chan_need = att_cap > 64 ? att_cap : 64;
    const int64_t need = 2 * n + 5 + chan_need;
    int64_t cap = 2 * need;
    cap += (2 * LANES) - (cap % (2 * LANES));
    int32_t *inv = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    int32_t *arr = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    uint32_t *buf = (uint32_t *)malloc((size_t)cap * sizeof(uint32_t));
    /* captab[bp * 3 + e] = floor((T - bp*slot - e*empty) / air), i.e.
     * the attempt capacity of a timeline whose current link backed off
     * bp slots behind e claimed empties — all the integer divisions of
     * the interval, hoisted to one table per call (bp <= n + 1, and at
     * most two empties can ever be claimed). */
    int64_t *captab = (int64_t *)malloc((size_t)(n + 2) * 3 * sizeof(int64_t));
    if (!inv || !arr || !buf || !captab) {
        free(inv); free(arr); free(buf); free(captab);
        return;
    }
    for (int64_t bp = 0; bp <= n + 1; bp++)
        for (int64_t e = 0; e < 3; e++) {
            const int64_t rem = T - bp * slot - e * empty;
            captab[bp * 3 + e] = rem > 0 ? rem / air : 0;
        }

    for (int64_t r = 0; r < num_rows; r++) {
        const int64_t cell = row_cells[r / num_seeds];
        const int64_t s = r % num_seeds;
        const uint64_t *ath = athr + cell * n;
        const uint64_t *pth = pthr + cell * n;
        const double *p_row = probs + cell * n;
        const double *q_row = reqs + cell * n;
        const int64_t b_lo = bnd_offsets ? bnd_offsets[cell] : 0;
        const int64_t b_hi = bnd_offsets ? bnd_offsets[cell + 1] : 0;
        int64_t *dsum = delivery_sums + r * n;
        rng8_t g;
        g.buf = buf;
        g.cap = cap;
        g.pos = cap;  /* force a fill on first use */
        for (int l = 0; l < LANES; l++) {
            const uint64_t *st = row_states + (r * LANES + l) * 4;
            g.s0[l] = st[0];
            g.s1[l] = st[1];
            g.s2[l] = st[2];
            g.s3[l] = st[3];
            if (!(st[0] | st[1] | st[2] | st[3]))
                g.s0[l] = 0x9E3779B97F4A7C15ULL + (uint64_t)l;
        }
        double ovh_sum = 0.0;
        for (int64_t i = 0; i < n; i++)
            inv[i] = (int32_t)i;

        /* Mask-serve fast path: valid when the interval's attempt
         * budget and the cell width both fit in one 64-bit mask and
         * every link that can ever have traffic (arrival threshold > 0
         * — pads and dead links never transmit) shares one channel
         * threshold.  The scalar per-attempt loop remains the general
         * path. */
        int row_fast = 0;
        uint64_t thr_cell = 0;
#if CELLSIM_HAVE_MASK_SERVE
        if (att_cap <= 64 && n >= 2 && n <= 64) {
            row_fast = 1;
            int seen = 0;
            for (int64_t i = 0; i < n; i++) {
                if (ath[i] == 0)
                    continue;
                if (!seen) {
                    thr_cell = pth[i];
                    seen = 1;
                } else if (pth[i] != thr_cell) {
                    row_fast = 0;
                    break;
                }
            }
        }
#endif

        for (int64_t k = 0; k < num_intervals; k++) {
            if (g.pos > cap - need)
                rng8_refill(&g);
            const uint32_t *rp = buf + g.pos;  /* check-free reads */
            const double dk = (double)k;

            /* 1. arrivals.  One activation draw and one burst draw per
             * link regardless of the outcome: constant stream shape, no
             * data-dependent branch (the ~50/50 activation branch would
             * be the most mispredicted compare in the loop), and the
             * whole scan vectorizes over the draw buffer. */
            if (burst_max == 1) {
                for (int64_t i = 0; i < n; i++)
                    arr[i] = (uint64_t)rp[2 * i] < ath[i];
            } else {
                for (int64_t i = 0; i < n; i++) {
                    const int32_t act =
                        -(int32_t)((uint64_t)rp[2 * i] < ath[i]);
                    const int32_t burst = 1 + (int32_t)(
                        ((uint64_t)rp[2 * i + 1] * (uint64_t)burst_max)
                        >> 32);
                    arr[i] = burst & act;
                }
            }
            rp += 2 * n;
            /* boundary mask: non-owner memberships see no arrivals */
            for (int64_t e = b_lo; e < b_hi; e++) {
                const int64_t b = bnd_index[e];
                if (owners[(k * num_seeds + s) * num_boundary + b]
                    != (uint8_t)bnd_member[e])
                    arr[bnd_local[e]] = 0;
            }

            /* 2. candidate pair + Glauber coins */
            if (n >= 2) {
                const int64_t c = 1 + (int64_t)(
                    ((uint64_t)rp[0] * (uint64_t)(n - 1)) >> 32);
                const double u_d = u32s_to_double(rp[1], rp[2]);
                const double u_u = u32s_to_double(rp[3], rp[4]);
                rp += 5;
                const int32_t down = inv[c - 1];
                const int32_t up = inv[c];
                const double debt_d = q_row[down] * dk - (double)dsum[down];
                const double debt_u = q_row[up] * dk - (double)dsum[up];
                const int xib_d = u_d <
                    glauber_mu(debt_d, p_row[down], glauber_r, coeff);
                const int xib_u = u_u <
                    glauber_mu(debt_u, p_row[up], glauber_r, coeff);
                const int xi_d = 2 * xib_d - 1;
                const int xi_u = 2 * xib_u - 1;
                const int cc = (!xib_d) && xib_u;
                /* candidate backoffs: c - xi_down and c + 1 - xi_up,
                 * min at service position c-1, max at position c */
                const int64_t v1 = c - xi_d;
                const int64_t v2 = c + 1 - xi_u;
                const int64_t bmin = v1 < v2 ? v1 : v2;
                const int64_t bmax = v1 < v2 ? v2 : v1;

                /* 3. sequential timeline walk in service order. */
                int64_t empties = 0, idle = 0, ne = 0;
                int64_t start_cdm1 = 0;
                int tx_cdm1 = 0;
#if CELLSIM_HAVE_MASK_SERVE
                if (row_fast) {
                    /* Branch-free serve: one 64-draw success mask for
                     * the whole interval; each link's delivered/used
                     * attempts are bit arithmetic on it.  Semantics
                     * match the scalar loop exactly — link at position
                     * j consumes the next `used` mask bits, where
                     * used = min(index of a-th success, budget) and
                     * budget = captab[bp][empties] - attempts so far.
                     *
                     * The walk visits only *active* positions (links
                     * with arrivals, from the gathered bitmask) plus
                     * the two candidate positions; idle non-candidates
                     * contribute nothing to the timeline.  Splitting
                     * the iteration into below/candidates/above
                     * segments removes the position-classify branches
                     * from the hot body entirely. */
                    uint64_t chmask = channel_mask64(rp, thr_cell);
                    rp += 64;
                    int64_t att_used = 0;
                    const uint64_t am = active_positions(inv, arr, n);
                    /* bits 0..c-2 and bits c+1..n-1 (c <= 63 so the
                     * unsigned 2<<c wrap at c == 63 yields 0 above) */
                    uint64_t below = am & ((1ULL << (c - 1)) - 1);
                    uint64_t above = am & ~((2ULL << c) - 1);
                    while (below) {
                        const int64_t j =
                            (int64_t)__builtin_ctzll(below);
                        below &= below - 1;
                        const int32_t link = inv[j];
                        const int64_t bp = j;
                        const int64_t dcap = captab[bp * 3 + empties];
                        const int64_t m0 = dcap - att_used;
                        const int64_t m = m0 > 0 ? m0 : 0;
                        const int32_t a = arr[link];
                        const uint64_t abit =
                            1ULL << ((uint32_t)(a - 1) & 63);
                        const uint64_t x = _pdep_u64(abit, chmask);
                        const int64_t na =
                            x ? (int64_t)__builtin_ctzll(x) + 1 : 65;
                        const int comp = na <= m;
                        const int64_t used = comp ? na : m;
                        const uint64_t mm = used < 64
                            ? ((1ULL << used) - 1) : ~0ULL;
                        const int64_t del = comp
                            ? a
                            : (int64_t)__builtin_popcountll(chmask & mm);
                        dsum[link] += del;
                        chmask = used < 64 ? chmask >> used : 0;
                        att_used += used;
                        idle = (used > 0 && bp > idle) ? bp : idle;
                    }
                    for (int which = 0; which < 2; which++) {
                        const int32_t link = (which ^ cc) ? up : down;
                        const int64_t bp = which ? bmax : bmin;
                        const int64_t dead =
                            bp * slot + empties * empty;
                        const int64_t dcap = captab[bp * 3 + empties];
                        const int64_t m0 = dcap - att_used;
                        const int64_t m = m0 > 0 ? m0 : 0;
                        const int32_t a = arr[link];
                        const int64_t start = att_used * air + dead;
                        const uint64_t abit = ((uint64_t)(a > 0))
                            << ((uint32_t)(a - 1) & 63);
                        const uint64_t x = _pdep_u64(abit, chmask);
                        const int64_t na =
                            x ? (int64_t)__builtin_ctzll(x) + 1 : 65;
                        const int comp = na <= m;
                        const int64_t used =
                            a > 0 ? (comp ? na : m) : 0;
                        const uint64_t mm = used < 64
                            ? ((1ULL << used) - 1) : ~0ULL;
                        const int64_t del = comp
                            ? a
                            : (int64_t)__builtin_popcountll(chmask & mm);
                        dsum[link] += del;
                        chmask = used < 64 ? chmask >> used : 0;
                        att_used += used;
                        int tx = used > 0;
                        if (a == 0 && start + empty <= T) {
                            /* idle candidates claim one empty packet */
                            empties++;
                            ne++;
                            tx = 1;
                        }
                        idle = (tx && bp > idle) ? bp : idle;
                        if (!which) {
                            start_cdm1 = start;
                            tx_cdm1 = tx;
                        }
                    }
                    while (above) {
                        const int64_t j =
                            (int64_t)__builtin_ctzll(above);
                        above &= above - 1;
                        const int32_t link = inv[j];
                        const int64_t bp = j + 2;
                        const int64_t dcap = captab[bp * 3 + empties];
                        if (dcap <= att_used)
                            /* dead_j is nondecreasing in j and both
                             * candidates are behind us: nothing later
                             * can transmit or claim an empty. */
                            break;
                        const int64_t m = dcap - att_used;
                        const int32_t a = arr[link];
                        const uint64_t abit =
                            1ULL << ((uint32_t)(a - 1) & 63);
                        const uint64_t x = _pdep_u64(abit, chmask);
                        const int64_t na =
                            x ? (int64_t)__builtin_ctzll(x) + 1 : 65;
                        const int comp = na <= m;
                        const int64_t used = comp ? na : m;
                        const uint64_t mm = used < 64
                            ? ((1ULL << used) - 1) : ~0ULL;
                        const int64_t del = comp
                            ? a
                            : (int64_t)__builtin_popcountll(chmask & mm);
                        dsum[link] += del;
                        chmask = used < 64 ? chmask >> used : 0;
                        att_used += used;
                        idle = (used > 0 && bp > idle) ? bp : idle;
                    }
                } else
#endif
                {
                    /* Scalar serve: the transmission budget
                     * floor((T - dead_j)/air) is walked as accumulated
                     * data airtime ("busy"): attempt allowed iff
                     * busy + dead + air <= T — exactly the floor
                     * budget, no integer division. */
                    int64_t busy = 0;
                    for (int64_t j = 0; j < n; j++) {
                        int32_t link;
                        int64_t bp;
                        int is_cand = 0;
                        if (j == c - 1) {
                            link = cc ? up : down;
                            bp = bmin;
                            is_cand = 1;
                        } else if (j == c) {
                            link = cc ? down : up;
                            bp = bmax;
                            is_cand = 1;
                        } else {
                            link = inv[j];
                            bp = (j < c - 1) ? j : j + 2;
                        }
                        const int64_t dead = bp * slot + empties * empty;
                        const int64_t start = busy + dead;
                        const int32_t a = arr[link];
                        int tx = 0;
                        if (a > 0) {
                            int32_t delivered = 0;
                            const uint64_t thr = pth[link];
                            const int64_t fit = T - dead - air;
                            while (busy <= fit) {
                                busy += air;
                                tx = 1;
                                delivered +=
                                    (int32_t)((uint64_t)*rp++ < thr);
                                if (delivered >= a)
                                    break;
                            }
                            dsum[link] += delivered;
                        } else if (is_cand && start + empty <= T) {
                            /* idle candidates claim one empty packet */
                            empties++;
                            ne++;
                            tx = 1;
                        }
                        if (tx && bp > idle)
                            idle = bp;
                        if (j == c - 1) {
                            start_cdm1 = start;
                            tx_cdm1 = tx;
                        } else if (j > c && busy + dead + air > T) {
                            /* dead_j is nondecreasing in j and both
                             * candidates are behind us: no later
                             * position can transmit data or claim an
                             * empty — the outcome is final. */
                            break;
                        }
                    }
                }
                ovh_sum += (double)(idle * slot + ne * empty);

                /* 4. commit: swap iff both coins said swap and the
                 * first-served candidate's slot completed in time */
                if (cc && tx_cdm1 && start_cdm1 + air <= T) {
                    inv[c - 1] = up;
                    inv[c] = down;
                }
            } else {
                /* single-link cell: serve, no candidates, no swaps */
                const int32_t a = arr[0];
                if (a > 0) {
                    int32_t delivered = 0;
                    int64_t busy = 0;
                    const uint64_t thr = pth[0];
                    while (busy + air <= T) {
                        busy += air;
                        delivered += (int32_t)((uint64_t)*rp++ < thr);
                        if (delivered >= a)
                            break;
                    }
                    dsum[0] += delivered;
                }
            }
            g.pos = rp - buf;
        }
        overhead_sums[r] = ovh_sum;
        for (int64_t i = 0; i < n; i++)
            inv_out[r * n + i] = inv[i];
    }
    free(inv);
    free(arr);
    free(buf);
    free(captab);
}
