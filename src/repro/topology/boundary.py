"""Per-interval conflict resolution for boundary links.

A boundary link belongs to two or more cells and would otherwise be
scheduled independently in each — double-counting deliveries and letting
one radio transmit in two collision domains at once.  The resolver
assigns every boundary link one *owner* membership per (interval, seed):
only the owner cell sees the link's arrivals that interval, so every
other membership has nothing to serve (frames are per-interval, so a
deliveries <= arrivals bound per cell row makes conservation structural,
and the batch engine asserts that bound every interval).

Ownership is drawn uniformly over the link's memberships from a
dedicated substream of the topology-level RNG bundle
(``BatchRngBundle(seeds, stream_tag="topology").free_stream("boundary")``
— the free-substream scheme), which makes the tie-break a pure function
of (topology, seeds): independent of the simulation's own RNG
discipline, of how cells are packed into rows, and of how cells are
sharded across workers.  Cells therefore stay embarrassingly parallel:
no cross-cell communication happens during an interval.
"""
from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..sim.rng import BatchRngBundle
from .graph import TOPOLOGY_STREAM_TAG, CellTopology
from .pack import CellPacking

__all__ = ["BoundaryOwnerDraws", "BoundaryMasker"]

#: Owner draws per refill chunk.  The stream is consumed one block per
#: interval whatever the sim's draw discipline, so the depth affects only
#: amortization, never the trajectory (one ``random`` call per chunk).
OWNER_CHUNK = 256


class BoundaryOwnerDraws:
    """Chunked per-(interval, seed) owner draws for every boundary link.

    ``owners_at(k)`` must be called with consecutive ``k`` starting at 0
    (once per interval); the block for interval ``k`` is row ``k`` of the
    ``ceil`` chunk covering it.  Owners are uniform over each link's
    membership count via one ``floor(u * m)`` per draw.
    """

    def __init__(self, topology: CellTopology, seeds: Sequence[int]):
        self.topology = topology
        self._counts = np.array(
            [len(topology.memberships[l]) for l in topology.boundary_links],
            dtype=np.int64,
        )
        self._num_seeds = len(tuple(seeds))
        self._stream = BatchRngBundle(
            seeds, stream_tag=TOPOLOGY_STREAM_TAG
        ).free_stream("boundary")
        self._depth = OWNER_CHUNK
        self._cache: Optional[np.ndarray] = None
        self._pos = self._depth
        self._expect = 0

    def owners_at(self, k: int) -> np.ndarray:
        """Owner membership ordinal per (seed, boundary link) — ``(S, B)``."""
        if k != self._expect:
            raise RuntimeError(
                f"boundary owner draws consumed out of order: interval {k}, "
                f"expected {self._expect}"
            )
        self._expect = k + 1
        if self._pos >= self._depth:
            u = self._stream.random(
                (self._depth, self._num_seeds, len(self._counts))
            )
            owners = (u * self._counts).astype(np.int8)
            np.minimum(owners, (self._counts - 1).astype(np.int8), out=owners)
            self._cache = owners
            self._pos = 0
        block = self._cache[self._pos]
        self._pos += 1
        return block


class BoundaryMasker:
    """Zero non-owner memberships' arrivals in a packed ``(R, width)`` block.

    ``cells`` names the packed cells in row order (a shard may pack a
    subset); memberships outside the packing are skipped — their rows
    live in another shard, which consumes the *same* owner draws, so the
    global assignment stays consistent across shards.
    """

    def __init__(
        self,
        packing: CellPacking,
        seeds: Sequence[int],
        cells: Sequence[int],
    ):
        topology = packing.topology
        self.draws = BoundaryOwnerDraws(topology, seeds)
        self._num_seeds = len(tuple(seeds))
        row_base = {c: i * self._num_seeds for i, c in enumerate(cells)}
        # One entry per packed membership of each boundary link:
        # (boundary index, membership ordinal, packed row base, local slot).
        entries = []
        for b, link in enumerate(topology.boundary_links):
            for j, (c, i) in enumerate(topology.memberships[link]):
                if c in row_base:
                    entries.append((b, j, row_base[c], i))
        self._entries: Tuple[Tuple[int, int, int, int], ...] = tuple(entries)
        self._seed_idx = np.arange(self._num_seeds)

    def apply(self, k: int, arrivals: np.ndarray) -> np.ndarray:
        """Mask interval ``k``'s arrivals in place and return them."""
        owners = self.draws.owners_at(k)
        for b, j, base, local in self._entries:
            losers = self._seed_idx[owners[:, b] != j]
            arrivals[base + losers, local] = 0
        return arrivals
