"""On-demand compiled cell kernel for multi-cell DB-DP runs.

``_cellsim.c`` (next to this module) holds a sequential, per-row port of
the batch engine's single-pair DP interval semantics.  This wrapper
compiles it with the system C compiler the first time it is needed —
no new Python dependencies, no build step in the package — and drives
it through :mod:`ctypes`:

* the shared object is cached in the temp directory keyed by the SHA-256
  of the source plus the compiler flags, so edits recompile and repeat
  runs reuse the cache across processes (the final rename is atomic);
* if no compiler is present (or ``REPRO_CELLSIM=0``),
  :func:`compiled_available` is simply ``False`` and callers fall back
  to the numpy lowering in :mod:`repro.topology.engine`.

The compiled engine is *statistically equivalent* to the numpy engine's
``rng="free"`` discipline — same per-interval distributions, different
generator — not bit-identical to it.  It is, however, deterministic in
itself: per-row xoshiro streams are seeded from numpy ``SeedSequence``
material keyed by (seed value, global cell index), and boundary
ownership comes from the *same* :class:`BoundaryOwnerDraws` stream the
numpy engine uses, so results are a pure function of (spec, policy
parameters, topology, seeds) regardless of packing or host.
"""
from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core import registry
from ..core.policies import IntervalMac
from ..core.requirements import NetworkSpec
from ..traffic.arrivals import BernoulliArrivals, BurstyVideoArrivals
from .boundary import BoundaryOwnerDraws
from .engine import TopologyResult
from .graph import CellTopology
from .pack import CellPacking

__all__ = [
    "compiled_available",
    "compile_error",
    "run_topology_compiled",
]

_SOURCE = Path(__file__).with_name("_cellsim.c")
_BASE_FLAGS = ("-O3", "-fPIC", "-shared")
_SEED_SALT = 0xCE11  # namespaces compiled streams away from everything else

_lib: Optional[ctypes.CDLL] = None
_load_error: Optional[str] = None
_load_tried = False


def _compiler() -> Optional[str]:
    return (
        os.environ.get("CC")
        or shutil.which("cc")
        or shutil.which("gcc")
        or shutil.which("clang")
    )


def _build(cc: str) -> Path:
    source = _SOURCE.read_bytes()
    # -march=native is attempted first and dropped if the toolchain
    # rejects it; both flag sets get their own cache entry.
    for extra in (("-march=native",), ()):
        flags = _BASE_FLAGS + extra
        digest = hashlib.sha256(
            source + repr((cc, flags)).encode()
        ).hexdigest()[:20]
        lib_path = Path(tempfile.gettempdir()) / f"repro_cellsim_{digest}.so"
        if lib_path.exists():
            return lib_path
        tmp = lib_path.with_name(lib_path.name + f".tmp{os.getpid()}")
        cmd = [cc, *flags, str(_SOURCE), "-o", str(tmp), "-lm"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode == 0:
            os.replace(tmp, lib_path)  # atomic: concurrent builders race safely
            return lib_path
        tmp.unlink(missing_ok=True)
        last_err = proc.stderr.strip() or f"exit {proc.returncode}"
    raise RuntimeError(f"cellsim build failed: {last_err}")


def _i64p(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def _load() -> ctypes.CDLL:
    global _lib, _load_error, _load_tried
    if _lib is not None:
        return _lib
    if _load_tried and _load_error is not None:
        raise RuntimeError(_load_error)
    _load_tried = True
    try:
        if os.environ.get("REPRO_CELLSIM", "1") == "0":
            raise RuntimeError("disabled via REPRO_CELLSIM=0")
        cc = _compiler()
        if cc is None:
            raise RuntimeError("no C compiler on PATH (set CC to override)")
        lib = ctypes.CDLL(str(_build(cc)))
        lib.cellsim_run.restype = None
        _lib = lib
        return lib
    except Exception as exc:  # cache the reason; callers probe via compile_error
        _load_error = str(exc)
        raise RuntimeError(_load_error) from None


def compiled_available() -> bool:
    """True iff the C cell kernel can be (or already was) built and loaded."""
    try:
        _load()
        return True
    except RuntimeError:
        return False


def compile_error() -> Optional[str]:
    """Why :func:`compiled_available` is False (None when it is True)."""
    compiled_available()
    return _load_error


# ----------------------------------------------------------------------
def _policy_params(policy: IntervalMac) -> Tuple[float, float]:
    descriptor = registry.descriptor_for(policy)
    if descriptor is None or not descriptor.capabilities.supports_topology:
        raise TypeError(
            f"{type(policy).__name__}'s family does not declare "
            "supports_topology"
        )
    num_pairs = getattr(policy, "num_pairs", None)
    bias = getattr(policy, "bias", None)
    glauber_r = getattr(bias, "glauber_r", None)
    coeff = getattr(getattr(bias, "influence", None), "coefficient", None)
    if num_pairs != 1 or glauber_r is None or coeff is None:
        raise TypeError(
            "the compiled cell kernel implements the single-pair DB-DP "
            "family (num_pairs=1, Glauber bias with log influence); got "
            f"{type(policy).__name__} — use the numpy topology engine"
        )
    return float(glauber_r), float(coeff)


def _arrival_params(spec: NetworkSpec) -> Tuple[np.ndarray, int]:
    """Per-link activation probabilities plus the shared burst size."""
    arrivals = spec.arrivals
    if isinstance(arrivals, BurstyVideoArrivals):
        return np.asarray(arrivals.alphas, dtype=float), int(arrivals.burst_max)
    if isinstance(arrivals, BernoulliArrivals):
        return np.asarray(arrivals.rates, dtype=float), 1
    raise TypeError(
        f"{type(arrivals).__name__} is not supported by the compiled cell "
        "kernel (bursty-video or Bernoulli only); use the numpy engine"
    )


def _integer_us(timing) -> Tuple[int, int, int, int]:
    values = (
        timing.interval_us,
        timing.data_airtime_us,
        timing.empty_airtime_us,
        timing.backoff_slot_us,
    )
    if not all(float(v).is_integer() for v in values):
        raise TypeError(
            f"the compiled cell kernel needs integer-microsecond timing, "
            f"got {values}"
        )
    return tuple(int(v) for v in values)


def _row_states(seeds: Sequence[int], num_cells: int) -> np.ndarray:
    # 8 interleaved xoshiro lanes per row, 4 words of state each.
    states = np.empty((num_cells * len(seeds), 32), dtype=np.uint64)
    for c in range(num_cells):
        for i, s in enumerate(seeds):
            states[c * len(seeds) + i] = np.random.SeedSequence(
                (int(s), int(c), _SEED_SALT)
            ).generate_state(32, dtype=np.uint64)
    return states


def run_topology_compiled(
    spec: NetworkSpec,
    policy: IntervalMac,
    seeds: Sequence[int],
    topology: CellTopology,
    num_intervals: int,
) -> TopologyResult:
    """Run the whole multi-cell topology through the C cell kernel.

    Raises ``RuntimeError`` when no compiler is available and
    ``TypeError`` when the (policy, spec) pair falls outside the
    kernel's supported family — callers that want graceful degradation
    should check :func:`compiled_available` and catch ``TypeError``,
    then fall back to :func:`~repro.topology.engine.run_topology_batch`.
    """
    lib = _load()
    glauber_r, coeff = _policy_params(policy)
    _arrival_params(spec)  # validate the process family up front
    T, air, empty, slot = _integer_us(spec.timing)
    packing = CellPacking(spec, topology)
    seeds = tuple(int(s) for s in seeds)
    S, C, W = len(seeds), topology.num_cells, packing.width
    K = int(num_intervals)
    if S == 0 or K <= 0:
        raise ValueError("need at least one seed and one interval")

    two32 = float(2**32)
    athr = np.empty((C, W), dtype=np.uint64)
    pthr = np.empty((C, W), dtype=np.uint64)
    probs = np.empty((C, W), dtype=np.float64)
    reqs = np.empty((C, W), dtype=np.float64)
    burst_max = None
    for c, spec_c in enumerate(packing.cell_specs):
        alphas, bmax = _arrival_params(spec_c)
        burst_max = bmax if burst_max is None else burst_max
        athr[c] = np.rint(alphas * two32).astype(np.uint64)
        p = np.asarray(spec_c.reliabilities, dtype=float)
        pthr[c] = np.rint(p * two32).astype(np.uint64)
        probs[c] = p
        reqs[c] = np.asarray(spec_c.requirement_vector, dtype=float)

    # Boundary CSR over packed slots + the shared owner stream (uint8
    # ordinals, identical to what the numpy engine's masker consumes).
    B = len(topology.boundary_links)
    locs, bidx, bmem, offsets = [], [], [], [0]
    for c in range(C):
        slots = np.flatnonzero(packing.boundary_index_matrix[c] >= 0)
        locs.extend(int(j) for j in slots)
        bidx.extend(int(packing.boundary_index_matrix[c, j]) for j in slots)
        bmem.extend(int(packing.boundary_member_matrix[c, j]) for j in slots)
        offsets.append(len(locs))
    bnd_offsets = np.asarray(offsets, dtype=np.int64)
    bnd_local = np.asarray(locs or [0], dtype=np.int64)
    bnd_index = np.asarray(bidx or [0], dtype=np.int64)
    bnd_member = np.asarray(bmem or [0], dtype=np.int64)
    if B:
        owner_draws = BoundaryOwnerDraws(topology, seeds)
        owners = np.empty((K, S, B), dtype=np.uint8)
        for k in range(K):
            owners[k] = owner_draws.owners_at(k)
    else:
        owners = np.zeros(1, dtype=np.uint8)

    row_cells = np.arange(C, dtype=np.int64)
    row_states = _row_states(seeds, C)
    num_rows = C * S
    delivery_sums = np.zeros((num_rows, W), dtype=np.int64)
    overhead_sums = np.zeros(num_rows, dtype=np.float64)
    inv_out = np.zeros((num_rows, W), dtype=np.int32)

    u64p = ctypes.POINTER(ctypes.c_uint64)
    f64p = ctypes.POINTER(ctypes.c_double)
    lib.cellsim_run(
        ctypes.c_int64(num_rows),
        ctypes.c_int64(S),
        ctypes.c_int64(W),
        ctypes.c_int64(K),
        ctypes.c_int64(int(burst_max)),
        athr.ctypes.data_as(u64p),
        pthr.ctypes.data_as(u64p),
        probs.ctypes.data_as(f64p),
        reqs.ctypes.data_as(f64p),
        ctypes.c_int64(T),
        ctypes.c_int64(air),
        ctypes.c_int64(empty),
        ctypes.c_int64(slot),
        ctypes.c_double(glauber_r),
        ctypes.c_double(coeff),
        ctypes.c_int64(B),
        _i64p(bnd_offsets),
        _i64p(bnd_local),
        _i64p(bnd_index),
        _i64p(bnd_member),
        owners.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8)),
        _i64p(row_cells),
        row_states.ctypes.data_as(u64p),
        _i64p(delivery_sums),
        overhead_sums.ctypes.data_as(f64p),
        inv_out.ctypes.data_as(ctypes.POINTER(ctypes.c_int32)),
    )

    return TopologyResult(
        topology=topology,
        cells=tuple(range(C)),
        seeds=seeds,
        num_intervals=K,
        requirements=spec.requirement_vector,
        delivery_sums=packing.aggregate_rows(delivery_sums, S),
        collision_sums=np.zeros(S, dtype=np.int64),
        overhead_cell_rows=(overhead_sums / K).reshape(C, S),
    )
