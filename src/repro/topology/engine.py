"""Multi-cell simulation lowered onto the batch engine.

One :class:`TopologySimulator` advances *all* (seed, cell) pairs of a
:class:`~repro.topology.graph.CellTopology` as rows of a single
:class:`~repro.sim.batch_sim.BatchIntervalSimulator`: cell ``c``'s rows
sit contiguously at ``c * S .. (c + 1) * S - 1`` (cell-major order), each
bound to that cell's sliced spec.  The kernel never learns about the
topology — rows are just small independent networks.

**Per-cell draw injection.**  Under the vectorized disciplines
(``rng="batch"`` / ``"free"``), every random input of the batch engine
flows through swappable chunked draw objects (the same seam
:func:`~repro.sim.batch_sim.share_batch_draws` uses).  The topology
engine replaces them with cell-wise wrappers that draw each cell's row
block from that cell's own
``BatchRngBundle(seeds, stream_tag=cell_stream_tag(c))`` — the exact
streams an *independent* ``BatchIntervalSimulator(cell_spec, policy,
seeds, stream_tag=cell_stream_tag(c))`` would consume.  Every kernel
stage is row-local arithmetic on exact small integers (matmul
reductions included), so row (c, s) of the packed run computes
bit-identically to row s of the independent cell run.  That is the
disconnected-topology identity guarantee, and it also makes results
invariant under cell packing order and sharding.  Sync mode needs no
injection: its per-seed scalar bundles are keyed by seed value alone.

**Boundary resolution.**  Topologies with boundary links mask non-owner
memberships' arrivals before each interval (see
:mod:`repro.topology.boundary`); owner draws come from a dedicated
topology-level free substream, so cells never communicate mid-interval.
"""
from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core import registry
from ..core.policies import IntervalMac
from ..core.requirements import NetworkSpec
from ..sim.batch_kernels import (
    _ChunkedArgmaxUniforms,
    _ChunkedChannelDraws,
    _ChunkedIntegers,
    _ChunkedUniforms,
    drain_totals,
)
from ..sim.batch_sim import BatchIntervalSimulator, _BatchArrivalDraws
from ..sim.rng import BatchRngBundle, normalize_rng_mode
from ..sim.spec_stack import SpecStack
from .boundary import BoundaryMasker
from .graph import TOPOLOGY_STREAM_TAG, CellTopology, cell_stream_tag
from .pack import CellPacking

__all__ = ["TopologySimulator", "TopologyResult", "run_topology_batch"]


# ----------------------------------------------------------------------
# Cell-wise draw assembly: per-cell chunked inners feeding one (R, ...)
# block per interval.  Wrappers ignore the stream the kernel passes —
# each inner refills from its own cell's generator, which is the whole
# point: a cell's randomness must not depend on what else is packed.
# ----------------------------------------------------------------------
class _CellwiseBlocks:
    """Stack per-cell ``(S, ...)`` blocks into one ``(R, ...)`` buffer."""

    def __init__(self, inners, gens, out: np.ndarray, num_seeds: int):
        self._inners = list(inners)
        self._gens = list(gens)
        self._out = out
        self._S = int(num_seeds)

    def next(self, _rng, _state_rng=None) -> np.ndarray:
        S = self._S
        for c, (inner, gen) in enumerate(zip(self._inners, self._gens)):
            self._out[c * S : (c + 1) * S] = inner.next(gen)
        return self._out


class _CellwiseArgmax(_CellwiseBlocks):
    def __init__(self, inners, gens, num_seeds: int, next_shape, argmax_shape):
        super().__init__(inners, gens, np.empty(next_shape), num_seeds)
        self._am = np.empty(argmax_shape, dtype=np.intp)

    def next_argmax(self, _rng) -> np.ndarray:
        S = self._S
        for c, (inner, gen) in enumerate(zip(self._inners, self._gens)):
            self._am[c * S : (c + 1) * S] = inner.next_argmax(gen)
        return self._am


class _CellwiseChannelDraws(_CellwiseBlocks):
    """Cell-wise channel retry blocks with the fast drain-totals gather.

    ``state_gens`` supplies one channel-state evolution stream per cell
    when the cells carry stochastic channel state; each cell's state then
    evolves from its own stream, preserving the per-cell draw isolation
    that makes sharded topology runs exact.
    """

    def __init__(
        self,
        inners,
        gens,
        num_seeds: int,
        width: int,
        a_max: int,
        fast: bool,
        state_gens=None,
    ):
        dtypes = {inner.dtype for inner in inners}
        if len(dtypes) != 1:
            raise TypeError(
                f"cells disagree on the channel draw dtype ({dtypes}); "
                "mixed-precision cells cannot share one packed block"
            )
        rows = num_seeds * len(list(inners))
        out = np.empty((rows, width, a_max), dtype=dtypes.pop())
        super().__init__(inners, gens, out, num_seeds)
        self._state_gens = list(state_gens) if state_gens is not None else None
        self._fast = bool(fast)
        self._tot_base = (
            np.arange(rows * width, dtype=np.int64) * a_max
        ).reshape(rows, width)
        self._tot_idx = np.empty((rows, width), dtype=np.int64)
        self._tot_mask = np.empty((rows, width), dtype=bool)
        self._tot2 = np.empty((rows, width), dtype=out.dtype)

    def next(self, _rng, _state_rng=None) -> np.ndarray:
        S = self._S
        for c, (inner, gen) in enumerate(zip(self._inners, self._gens)):
            sg = self._state_gens[c] if self._state_gens is not None else None
            self._out[c * S : (c + 1) * S] = inner.next(gen, sg)
        return self._out

    @property
    def dtype(self) -> np.dtype:
        return self._out.dtype

    def totals(self, needed_cum: np.ndarray, backlog: np.ndarray) -> np.ndarray:
        # Same exact-integer gather as _ChunkedChannelDraws.totals, sized
        # for the packed (R, width) plane.
        if not self._fast:
            return drain_totals(needed_cum, backlog)
        np.subtract(backlog, 1, out=self._tot_idx)
        np.maximum(self._tot_idx, 0, out=self._tot_idx)
        np.add(self._tot_idx, self._tot_base, out=self._tot_idx)
        needed_cum.ravel().take(self._tot_idx.ravel(), out=self._tot2.ravel())
        np.greater(backlog, 0, out=self._tot_mask)
        np.multiply(self._tot2, self._tot_mask, out=self._tot2)
        return self._tot2


class _PackedBatchSim(BatchIntervalSimulator):
    """Batch sim whose arrivals pass through the boundary masker."""

    _mask: Optional[BoundaryMasker] = None

    def _sample_arrivals(self) -> np.ndarray:
        arrivals = super()._sample_arrivals()
        if self._mask is not None:
            arrivals = self._mask.apply(self._interval, arrivals)
        return arrivals


# ----------------------------------------------------------------------
@dataclass
class TopologyResult:
    """Aggregated outcome of a multi-cell run (possibly one shard).

    ``delivery_sums`` is ``(S, num_links)`` over *global* links — each
    link's deliveries summed over its packed memberships (the boundary
    masker guarantees at most one membership delivers per interval).  A
    shard over a cell subset reports partial sums; :meth:`merge` adds
    shards together.
    """

    topology: CellTopology
    cells: Tuple[int, ...]
    seeds: Tuple[int, ...]
    num_intervals: int
    requirements: np.ndarray
    delivery_sums: np.ndarray
    collision_sums: np.ndarray
    overhead_cell_rows: np.ndarray  # (C_packed, S) per-row interval means

    @property
    def num_seeds(self) -> int:
        return len(self.seeds)

    def mean_deliveries(self) -> np.ndarray:
        return self.delivery_sums / max(1, self.num_intervals)

    def total_deficiency(self) -> np.ndarray:
        """Per-seed summed timely-throughput deficiency over global links."""
        short = self.requirements[None, :] - self.mean_deliveries()
        return np.maximum(short, 0.0).sum(axis=1)

    def group_deficiency(self, groups: Sequence[Sequence[int]]) -> np.ndarray:
        """Per-seed deficiency summed within each global link group."""
        short = np.maximum(
            self.requirements[None, :] - self.mean_deliveries(), 0.0
        )
        return np.stack(
            [short[:, list(g)].sum(axis=1) for g in groups], axis=1
        )

    def mean_overhead_us(self) -> np.ndarray:
        """Per-seed protocol overhead, averaged across packed cells."""
        return self.overhead_cell_rows.mean(axis=0)

    @staticmethod
    def merge(parts: Sequence["TopologyResult"]) -> "TopologyResult":
        if not parts:
            raise ValueError("nothing to merge")
        first = parts[0]
        for p in parts[1:]:
            if (
                p.seeds != first.seeds
                or p.num_intervals != first.num_intervals
                or p.topology.fingerprint() != first.topology.fingerprint()
            ):
                raise ValueError("shards disagree on workload identity")
        cells = tuple(c for p in parts for c in p.cells)
        if len(set(cells)) != len(cells):
            raise ValueError("shards overlap on cells")
        return TopologyResult(
            topology=first.topology,
            cells=cells,
            seeds=first.seeds,
            num_intervals=first.num_intervals,
            requirements=first.requirements,
            delivery_sums=sum(p.delivery_sums for p in parts),
            collision_sums=sum(p.collision_sums for p in parts),
            overhead_cell_rows=np.concatenate(
                [p.overhead_cell_rows for p in parts], axis=0
            ),
        )


# ----------------------------------------------------------------------
class TopologySimulator:
    """Advance every (seed, cell) pair of a topology in one batch."""

    def __init__(
        self,
        spec: NetworkSpec,
        policy: IntervalMac,
        seeds: Sequence[int],
        topology: CellTopology,
        *,
        rng: Optional[str] = None,
        sync_rng: bool = False,
        backend: Optional[str] = None,
        dp_state: Optional[str] = None,
        validate: bool = True,
        record_traces: bool = False,
        cells_subset: Optional[Sequence[int]] = None,
    ):
        descriptor = registry.descriptor_for(policy)
        if descriptor is None or not descriptor.capabilities.supports_topology:
            raise TypeError(
                f"{type(policy).__name__}'s family does not declare "
                "supports_topology; run it single-domain instead (the "
                "experiment runner degrades automatically)"
            )
        self.rng_mode = normalize_rng_mode(rng, sync_rng)
        self.packing = CellPacking(spec, topology)
        self.topology = topology
        self.seeds = tuple(int(s) for s in seeds)
        if cells_subset is None:
            cells = tuple(range(topology.num_cells))
        else:
            cells = tuple(int(c) for c in cells_subset)
            if len(set(cells)) != len(cells) or not all(
                0 <= c < topology.num_cells for c in cells
            ):
                raise ValueError(f"bad cell subset {cells}")
        self.cells = cells
        S = len(self.seeds)
        specs_rows: List[NetworkSpec] = []
        row_seeds: List[int] = []
        for c in cells:
            specs_rows.extend([self.packing.cell_specs[c]] * S)
            row_seeds.extend(self.seeds)
        self.sim = _PackedBatchSim(
            SpecStack(specs_rows),
            policy,
            row_seeds,
            rng=self.rng_mode,
            backend=backend,
            dp_state=dp_state,
            validate=validate,
            record_traces=record_traces,
            stream_tag=TOPOLOGY_STREAM_TAG,
        )
        if self.rng_mode != "sync":
            self._inject_cell_draws()
        if topology.boundary_links:
            self.sim._mask = BoundaryMasker(self.packing, self.seeds, cells)

    # ------------------------------------------------------------------
    def _inject_cell_draws(self) -> None:
        kernel = self.sim.kernel
        S = len(self.seeds)
        width = self.packing.width
        a_max = kernel._a_max
        depth = kernel._depth
        free = kernel._free
        rows = S * len(self.cells)
        bundles = [
            BatchRngBundle(self.seeds, stream_tag=cell_stream_tag(c))
            for c in self.cells
        ]

        def streams(name: str):
            return [
                b.free_stream(name) if free else b.batch_stream(name)
                for b in bundles
            ]

        cell_specs = [self.packing.cell_specs[c] for c in self.cells]
        for spec_c in cell_specs:
            cell_a_max = max(1, spec_c.arrivals.max_per_link)
            if cell_a_max != a_max:
                raise TypeError(
                    f"cells must share one A_max for packed draws: got "
                    f"{cell_a_max} vs {a_max}"
                )
        kernel._channel_draws = _CellwiseChannelDraws(
            [
                _ChunkedChannelDraws(
                    spec_c.reliabilities,
                    S,
                    a_max,
                    depth=depth,
                    fast=kernel._use_ws,
                    # Per-cell channel state: S rows of this cell's own
                    # (take_links-sliced) channel, evolved from the
                    # cell's dedicated stream below.
                    state=(
                        spec_c.channel.init_state_batch(S)
                        if spec_c.channel.has_state
                        else None
                    ),
                )
                for spec_c in cell_specs
            ],
            streams("channel"),
            S,
            width,
            a_max,
            fast=kernel._use_ws,
            state_gens=(
                streams("channel-state")
                if getattr(kernel, "_chan_state_uses_rng", False)
                else None
            ),
        )
        coin = getattr(kernel, "_coin_draws", None)
        if coin is not None:
            two_p = coin._shape[-1]
            kernel._coin_draws = _CellwiseBlocks(
                [
                    _ChunkedUniforms(S, two_p, depth=depth)
                    for _ in cell_specs
                ],
                streams("policy"),
                np.empty((rows, two_p)),
                S,
            )
        cand_ints = getattr(kernel, "_cand_ints", None)
        if cand_ints is not None:
            kernel._cand_ints = _CellwiseBlocks(
                [
                    _ChunkedIntegers(1, width, S, depth=depth)
                    for _ in cell_specs
                ],
                streams("shared"),
                np.empty(rows, dtype=np.int64),
                S,
            )
        cand = getattr(kernel, "_cand_draws", None)
        if cand is not None:
            m = cand._shape[-1]
            kernel._cand_draws = _CellwiseArgmax(
                [
                    _ChunkedArgmaxUniforms(S, m, depth=depth)
                    for _ in cell_specs
                ],
                streams("shared"),
                S,
                next_shape=(rows, m),
                argmax_shape=(rows,),
            )
        arrival_depth = depth if free else None
        self.sim._arrival_draws = _CellwiseBlocks(
            [
                _BatchArrivalDraws(None, spec_c, S, depth=arrival_depth)
                for spec_c in cell_specs
            ],
            streams("arrivals"),
            np.empty((rows, width), dtype=np.int64),
            S,
        )

    # ------------------------------------------------------------------
    def step(self) -> None:
        self.sim.step()

    def run(self, num_intervals: int) -> TopologyResult:
        self.sim.run(num_intervals)
        return self.result()

    def result(self) -> TopologyResult:
        stats = self.sim.stats
        S = len(self.seeds)
        return TopologyResult(
            topology=self.topology,
            cells=self.cells,
            seeds=self.seeds,
            num_intervals=stats.num_intervals,
            requirements=self.packing.spec.requirement_vector,
            delivery_sums=self.packing.aggregate_rows(
                stats.delivery_sums, S, cells=self.cells
            ),
            collision_sums=stats.collision_sums.reshape(
                len(self.cells), S
            ).sum(axis=0),
            overhead_cell_rows=stats.mean_overhead_us().reshape(
                len(self.cells), S
            ),
        )


# ----------------------------------------------------------------------
def _split_cells(num_cells: int, shards: int) -> List[Tuple[int, ...]]:
    shards = max(1, min(int(shards), num_cells))
    base, extra = divmod(num_cells, shards)
    groups, start = [], 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        groups.append(tuple(range(start, start + size)))
        start += size
    return groups


def _run_shard_task(payload) -> TopologyResult:
    (
        spec,
        policy,
        seeds,
        topology,
        cells,
        num_intervals,
        options,
    ) = payload
    sim = TopologySimulator(
        spec, policy, seeds, topology, cells_subset=cells, **options
    )
    return sim.run(num_intervals)


def run_topology_batch(
    spec: NetworkSpec,
    policy: IntervalMac,
    seeds: Sequence[int],
    topology: CellTopology,
    num_intervals: int,
    *,
    rng: Optional[str] = None,
    sync_rng: bool = False,
    backend: Optional[str] = None,
    dp_state: Optional[str] = None,
    validate: bool = True,
    shards: Optional[int] = None,
    max_workers: Optional[int] = None,
) -> TopologyResult:
    """Run a multi-cell simulation, optionally sharded over cell groups.

    Sharding is bit-invariant: every cell's draws are keyed by its global
    index and the boundary owner stream spans the whole topology, so any
    shard count (including in-process fallback) merges to the same
    result.  Shard processes fork the current interpreter; if a pool
    cannot be used (pickling, platform), shards run sequentially in
    process — same answer, no parallelism.
    """
    options = dict(
        rng=rng,
        sync_rng=sync_rng,
        backend=backend,
        dp_state=dp_state,
        validate=validate,
    )
    if not shards or shards <= 1:
        sim = TopologySimulator(spec, policy, seeds, topology, **options)
        return sim.run(num_intervals)
    groups = _split_cells(topology.num_cells, shards)
    payloads = [
        (spec, policy, tuple(seeds), topology, cells, num_intervals, options)
        for cells in groups
    ]
    workers = max_workers or min(len(groups), os.cpu_count() or 1)
    parts: Optional[List[TopologyResult]] = None
    if workers > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                parts = list(pool.map(_run_shard_task, payloads))
        except Exception:
            parts = None  # fall through to the in-process path
    if parts is None:
        parts = [_run_shard_task(p) for p in payloads]
    return TopologyResult.merge(parts)
