"""Interference-graph topology model: links partitioned into cells.

The paper simulates one fully-interfering collision domain (every link
contends with every other).  Real deployments are many overlapping
domains: an interference *graph* whose cliques — "cells" here — each run
the protocol independently, with *boundary* links that belong to two or
more cells and contend in all of them (Singh–Kumar–Modiano's
interference-graph formulation, arXiv:1709.01672).

:class:`CellTopology` is the pure structural model: a link universe of
``num_links`` global link ids and a cover of cells, each cell a tuple of
global ids.  A link in exactly one cell is *interior*; a link in two or
more cells is a *boundary* link.  Topologies with no boundary links are
*disconnected* — every cell is an isolated collision domain, and the
multi-cell lowering is provably bit-identical to simulating each cell on
its own (see :mod:`repro.topology.engine`).

The model is deliberately simulator-agnostic: nothing here knows about
specs, kernels, or RNG.  Construction is validated eagerly so downstream
layers can trust the invariants.
"""
from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Sequence, Tuple

__all__ = [
    "CellTopology",
    "TOPOLOGY_STREAM_TAG",
    "cell_stream_tag",
    "single_cell",
    "partition_cells",
    "grid_cells",
]

#: Stream-tag namespace for topology-level randomness (boundary ownership
#: draws).  Cell-level simulation randomness uses :func:`cell_stream_tag`.
TOPOLOGY_STREAM_TAG = "topology"


def cell_stream_tag(cell_index: int) -> str:
    """The RNG stream tag for cell ``cell_index``'s simulation draws.

    Keyed by the cell's index in the topology — *not* by its position in
    any packed batch — so a cell's random trajectory is invariant under
    re-packing, sharding, and the presence of other cells.
    """
    return f"{TOPOLOGY_STREAM_TAG}:cell{int(cell_index)}"


@dataclass(frozen=True)
class CellTopology:
    """A cover of ``num_links`` global links by interfering cells.

    Parameters
    ----------
    num_links:
        Size of the global link universe; global ids are ``0..num_links-1``.
    cells:
        One tuple of global link ids per cell.  Every link must appear in
        at least one cell; within a cell ids must be unique.  Links in
        two or more cells are boundary links and contend in each of their
        cells (resolved per interval by the boundary layer).
    """

    num_links: int
    cells: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.num_links < 1:
            raise ValueError(f"num_links must be >= 1, got {self.num_links}")
        cells = tuple(tuple(int(l) for l in cell) for cell in self.cells)
        object.__setattr__(self, "cells", cells)
        if not cells:
            raise ValueError("a topology needs at least one cell")
        seen = [0] * self.num_links
        for c, cell in enumerate(cells):
            if not cell:
                raise ValueError(f"cell {c} is empty")
            if len(set(cell)) != len(cell):
                raise ValueError(f"cell {c} lists a link twice: {cell}")
            for l in cell:
                if not 0 <= l < self.num_links:
                    raise ValueError(
                        f"cell {c} references link {l}, universe has "
                        f"{self.num_links} links"
                    )
                seen[l] += 1
        missing = [l for l, k in enumerate(seen) if k == 0]
        if missing:
            raise ValueError(
                f"{len(missing)} links belong to no cell "
                f"(first: {missing[:5]})"
            )

    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @cached_property
    def max_cell_size(self) -> int:
        return max(len(cell) for cell in self.cells)

    @cached_property
    def memberships(self) -> Dict[int, Tuple[Tuple[int, int], ...]]:
        """Global link id -> ``((cell, local_index), ...)`` memberships."""
        out: Dict[int, list] = {}
        for c, cell in enumerate(self.cells):
            for i, l in enumerate(cell):
                out.setdefault(l, []).append((c, i))
        return {l: tuple(ms) for l, ms in out.items()}

    @cached_property
    def boundary_links(self) -> Tuple[int, ...]:
        """Global ids of links in two or more cells, ascending."""
        return tuple(
            sorted(l for l, ms in self.memberships.items() if len(ms) > 1)
        )

    @property
    def is_disconnected(self) -> bool:
        """True when no link spans cells (cells are isolated domains)."""
        return not self.boundary_links

    # ------------------------------------------------------------------
    def fingerprint(self) -> dict:
        """Compact canonical identity for cache keys.

        The full cell lists can run to tens of thousands of ids, so the
        cache payload carries a digest of the canonical JSON encoding
        instead of the lists themselves.
        """
        canon = json.dumps(
            {"num_links": self.num_links, "cells": [list(c) for c in self.cells]},
            separators=(",", ":"),
        )
        return {
            "num_links": self.num_links,
            "num_cells": self.num_cells,
            "num_boundary": len(self.boundary_links),
            "digest": hashlib.sha256(canon.encode()).hexdigest(),
        }


# ----------------------------------------------------------------------
# Builders.  All deterministic pure functions of their arguments — the
# same arguments always name the same topology, which is what makes the
# sweep cache's topology fingerprints meaningful.
# ----------------------------------------------------------------------
def single_cell(num_links: int) -> CellTopology:
    """The paper's model: one fully-interfering collision domain."""
    return CellTopology(num_links, (tuple(range(num_links)),))


def _contiguous_split(num_links: int, num_cells: int) -> list:
    if num_cells < 1:
        raise ValueError(f"num_cells must be >= 1, got {num_cells}")
    if num_cells > num_links:
        raise ValueError(
            f"{num_cells} cells need at least that many links, got {num_links}"
        )
    base, extra = divmod(num_links, num_cells)
    cells, start = [], 0
    for c in range(num_cells):
        size = base + (1 if c < extra else 0)
        cells.append(list(range(start, start + size)))
        start += size
    return cells


def partition_cells(num_links: int, num_cells: int) -> CellTopology:
    """Disjoint contiguous cells — a disconnected topology (no boundary)."""
    return CellTopology(
        num_links, tuple(tuple(c) for c in _contiguous_split(num_links, num_cells))
    )


def grid_cells(
    num_links: int,
    num_cells: int,
    cross_cell_fraction: float = 0.0,
) -> CellTopology:
    """Contiguous cells on a ring with a fraction of boundary links.

    Starts from :func:`partition_cells` and promotes
    ``round(cross_cell_fraction * num_links)`` links to boundary links:
    the first link of cell ``c+1`` (mod ``num_cells``) additionally joins
    cell ``c``, on evenly spaced borders around the ring.  At most one
    boundary link per border, so the count is capped at ``num_cells``
    (``num_cells - 1`` for two cells, where the ring's two borders meet
    the same pair).  ``cross_cell_fraction=0`` reproduces the disjoint
    partition exactly.
    """
    if not 0.0 <= cross_cell_fraction <= 1.0:
        raise ValueError(
            f"cross_cell_fraction must lie in [0, 1], got {cross_cell_fraction}"
        )
    cells = _contiguous_split(num_links, num_cells)
    want = int(round(cross_cell_fraction * num_links))
    if num_cells == 1:
        want = 0
    cap = num_cells if num_cells > 2 else max(0, num_cells - 1)
    count = min(want, cap)
    if count:
        # Evenly spaced borders: border j sits between cell j and j+1 (ring).
        for i in range(count):
            j = (i * num_cells) // count
            neighbour = (j + 1) % num_cells
            link = cells[neighbour][0]
            if link not in cells[j]:
                cells[j].append(link)
    return CellTopology(num_links, tuple(tuple(c) for c in cells))
