"""Lower a :class:`~repro.topology.graph.CellTopology` onto batch rows.

The multi-cell lowering turns one ``N``-link topology into ``C`` small
specs — one per cell — so every (seed, cell) pair becomes an independent
row of the existing batch engine.  :class:`CellPacking` owns that
translation:

* **slicing** — each cell's spec reuses the global spec's per-link
  parameters (arrival rates, reliabilities, requirements) at the cell's
  member links, rebuilt as the same process/channel classes so the cell
  spec is a first-class :class:`~repro.core.requirements.NetworkSpec`;
* **padding** — cells are padded to the topology's widest cell with
  zero-rate, zero-requirement links (reliability 1) so all rows share one
  width and stack into a single kernel invocation.  The protocol treats a
  pad exactly like a real link that never has traffic, which the paper's
  model already allows;
* **requirement splitting** — a boundary link's requirement is divided
  evenly across its memberships, so each cell's debt dynamics chase the
  share of the requirement that cell can actually serve (ownership
  rotates; see :mod:`repro.topology.boundary`).  Global deficiency is
  still measured against the full requirement via the summed deliveries.

Only cross-link-independent arrival processes can be sliced per cell;
correlated or stateful processes raise ``TypeError`` (their joint
distribution cannot be factored across cells).
"""
from __future__ import annotations

from functools import cached_property
from typing import List, Tuple

import numpy as np

from ..core.requirements import NetworkSpec
from ..traffic.arrivals import (
    ArrivalProcess,
    BernoulliArrivals,
    BurstyVideoArrivals,
    ConstantArrivals,
    TruncatedPoissonArrivals,
)
from .graph import CellTopology

__all__ = ["CellPacking", "slice_arrivals"]


def slice_arrivals(
    process: ArrivalProcess, links: Tuple[int, ...], pad: int
) -> ArrivalProcess:
    """Rebuild ``process`` restricted to ``links`` plus ``pad`` dead links.

    Works for processes whose links are mutually independent (the joint
    law factorizes, so the restriction is exact).  Pads get the process's
    natural "never arrives" parameter.
    """
    if isinstance(process, BurstyVideoArrivals):
        alphas = tuple(process.alphas[l] for l in links) + (0.0,) * pad
        return BurstyVideoArrivals(alphas=alphas, burst_max=process.burst_max)
    if isinstance(process, BernoulliArrivals):
        rates = tuple(process.rates[l] for l in links) + (0.0,) * pad
        return BernoulliArrivals(rates=rates)
    if isinstance(process, ConstantArrivals):
        counts = tuple(process.counts[l] for l in links) + (0,) * pad
        return ConstantArrivals(counts=counts)
    if isinstance(process, TruncatedPoissonArrivals):
        rates = tuple(process.poisson_rates[l] for l in links) + (0.0,) * pad
        return TruncatedPoissonArrivals(poisson_rates=rates, cap=process.cap)
    raise TypeError(
        f"{type(process).__name__} cannot be sliced per cell: the "
        "topology layer needs cross-link-independent arrivals (the joint "
        "law must factor across cells)"
    )


class CellPacking:
    """Per-cell specs plus the index maps between rows and global links."""

    def __init__(self, spec: NetworkSpec, topology: CellTopology):
        if topology.num_links != spec.num_links:
            raise ValueError(
                f"topology covers {topology.num_links} links but the spec "
                f"has {spec.num_links}"
            )
        self.spec = spec
        self.topology = topology
        self.width = topology.max_cell_size
        mships = topology.memberships
        qs = spec.requirement_vector
        boundary = topology.boundary_links
        b_index = {l: b for b, l in enumerate(boundary)}

        specs: List[NetworkSpec] = []
        member = np.full((topology.num_cells, self.width), -1, dtype=np.int64)
        b_idx = np.full((topology.num_cells, self.width), -1, dtype=np.int32)
        b_member = np.full((topology.num_cells, self.width), -1, dtype=np.int8)
        for c, cell in enumerate(topology.cells):
            pad = self.width - len(cell)
            arrivals = slice_arrivals(spec.arrivals, cell, pad)
            # Per-cell channel slice: pads become always-deliver links, so
            # they never consume airtime.  Channel families that cannot be
            # sliced per link raise a TypeError here (see
            # ChannelModel.take_links).
            channel = spec.channel.take_links(cell, pad)
            reqs = []
            for i, l in enumerate(cell):
                member[c, i] = l
                m = len(mships[l])
                reqs.append(float(qs[l]) / m)
                if m > 1:
                    b_idx[c, i] = b_index[l]
                    b_member[c, i] = mships[l].index((c, i))
            specs.append(
                NetworkSpec(
                    arrivals=arrivals,
                    channel=channel,
                    timing=spec.timing,
                    requirements=tuple(reqs) + (0.0,) * pad,
                )
            )
        self.cell_specs: Tuple[NetworkSpec, ...] = tuple(specs)
        #: ``(C, width)`` global link id per (cell, local), -1 for pads.
        self.member_matrix = member
        #: ``(C, width)`` boundary-link index per (cell, local), -1 if the
        #: slot is interior or a pad.
        self.boundary_index_matrix = b_idx
        #: ``(C, width)`` this membership's ordinal among the boundary
        #: link's memberships (matches the owner draw's range), -1 n/a.
        self.boundary_member_matrix = b_member

    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return self.topology.num_cells

    @cached_property
    def scatter_index(self) -> np.ndarray:
        """Flat ``(C * width,)`` global target per slot; pads -> num_links.

        Pads scatter into a sacrificial extra column so aggregation can
        run as one ``np.add.at`` without masking.
        """
        idx = self.member_matrix.ravel().copy()
        idx[idx < 0] = self.topology.num_links
        return idx

    def aggregate_rows(
        self, rows: np.ndarray, num_seeds: int, cells=None
    ) -> np.ndarray:
        """Sum per-row per-local values onto global links -> ``(S, N)``.

        ``rows`` is ``(C_packed * S, width)`` in cell-major row order for
        the packed ``cells`` (all cells when ``None``).  Each global link
        receives the sum over its packed memberships; the boundary layer
        guarantees at most one membership is nonzero per interval, so
        sums never double-count.  Pads scatter into a sacrificial extra
        column (see :attr:`scatter_index`).
        """
        cell_list = (
            list(range(self.num_cells)) if cells is None else list(cells)
        )
        C, W = len(cell_list), self.width
        S = int(num_seeds)
        if rows.shape != (C * S, W):
            raise ValueError(
                f"expected rows of shape {(C * S, W)}, got {rows.shape}"
            )
        if cells is None:
            idx = self.scatter_index
        else:
            idx = self.member_matrix[cell_list].ravel().copy()
            idx[idx < 0] = self.topology.num_links
        out = np.zeros((S, self.topology.num_links + 1), dtype=rows.dtype)
        per_seed = rows.reshape(C, S, W).transpose(1, 0, 2).reshape(S, C * W)
        np.add.at(out, (slice(None), idx), per_seed)
        return out[:, : self.topology.num_links]
