"""Arrival-process substrate (Section II-B of the paper)."""
