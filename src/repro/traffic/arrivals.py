"""Arrival processes (Section II-B).

Packets arrive at the beginning of each interval; the arrival vector
``A(k)`` is i.i.d. across intervals with per-link mean ``lambda_n`` and a
uniform bound ``A_max``.  Arrivals of different links *within* one interval
may be correlated (the model allows it; the paper's evaluation uses
independent links).

Processes used in the paper's evaluation:

* :class:`BurstyVideoArrivals` — ``A_n ~ Uniform{1..6}`` w.p. ``alpha_n``,
  else 0, so ``lambda_n = 3.5 * alpha_n`` (Section VI-A).
* :class:`BernoulliArrivals` — ``A_n ~ Bernoulli(lambda_n)``
  (Section VI-B).

Additional processes (:class:`ConstantArrivals`,
:class:`TruncatedPoissonArrivals`, :class:`CorrelatedBurstArrivals`,
:class:`MarkovModulatedArrivals`, :class:`ParetoBurstArrivals`) exercise
the general model — bounded support, possibly cross-link-correlated —
beyond the paper's two workloads.  Note :class:`MarkovModulatedArrivals`
and :class:`ParetoBurstArrivals` deliberately violate temporal
independence (for robustness experiments); their docstrings say so.

Stateful processes mirror the channel layer's capability surface
(:mod:`repro.phy.channel`): ``has_state`` / ``state_uses_rng`` /
``supports_batch_state`` answer the engines' dispatch questions,
``reset_state`` returns a process to its run-construction state (every
scalar/sync run calls it, so shared instances never leak chain state
between replications), and :meth:`ArrivalProcess.stack_rows` /
:class:`ArrivalStateRows` evolve the per-(seed, link) state vectorized
for the batch engines.  Batched state draws come from the dedicated
``"arrival-state"`` substream, so enabling it never perturbs the
Bernoulli/bursty draw schedules on the plain ``"arrivals"`` streams.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ArrivalProcess",
    "ArrivalStateRows",
    "BernoulliArrivals",
    "BurstyVideoArrivals",
    "ConstantArrivals",
    "TruncatedPoissonArrivals",
    "CorrelatedBurstArrivals",
    "MarkovModulatedArrivals",
    "ParetoBurstArrivals",
    "arrivals_from_spec",
]


class ArrivalStateRows(ABC):
    """Vectorized arrival state for a stack of replication rows.

    Built by :meth:`ArrivalProcess.stack_rows` (one process per row, all
    of one family); owned by the batch engine's arrival draw pipeline.
    Unlike channel-state rows (which return probability planes consumed
    by the kernels' retry draws), arrival-state rows return the interval's
    ``(rows, links)`` int64 arrival counts directly: :meth:`evolve`
    advances every row's modulating state by **one interval** and samples
    that interval's arrivals; :meth:`evolve_block` amortizes the
    per-call generator overhead over a whole draw chunk.
    """

    #: Whether evolution consumes random draws (Markov/burst state) or is
    #: a deterministic function of the interval index.
    uses_rng: bool = True

    @abstractmethod
    def evolve(self, rng: Optional[np.random.Generator]) -> np.ndarray:
        """Advance one interval; return ``(rows, links)`` int64 arrivals."""

    def evolve_block(
        self,
        depth: int,
        rng: Optional[np.random.Generator],
        out: np.ndarray,
    ) -> np.ndarray:
        """Advance ``depth`` intervals, filling ``out`` (depth, rows, links)."""
        for d in range(depth):
            out[d] = self.evolve(rng)
        return out


class ArrivalProcess(ABC):
    """Per-network arrival process: one ``sample`` per interval.

    Implementations must guarantee ``0 <= A_n <= max_per_link`` and expose
    the mean vector ``lambda`` for requirement bookkeeping.
    """

    @property
    @abstractmethod
    def num_links(self) -> int:
        """Number of links this process feeds."""

    @property
    @abstractmethod
    def mean_rates(self) -> np.ndarray:
        """``lambda_n`` — expected packets per interval per link."""

    @property
    @abstractmethod
    def max_per_link(self) -> int:
        """The uniform bound ``A_max`` on any single link's arrivals."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one interval's arrival vector ``A(k)`` (integer array)."""

    @property
    def supports_batch_sampling(self) -> bool:
        """Whether :meth:`sample_batch` yields independent replications.

        True for processes that are i.i.d. across intervals (everything the
        paper's model allows).  Stateful extensions whose ``sample`` mutates
        shared state (e.g. :class:`MarkovModulatedArrivals`) return False:
        a single generator cannot advance ``S`` independent copies of their
        modulating chains.  Such processes may still run vectorized through
        the batch-state plane when they declare
        :attr:`supports_batch_state`.
        """
        return True

    # -- capability surface (engines dispatch on these, never on types) ----
    @property
    def has_state(self) -> bool:
        """Whether the process carries per-interval state to reset/evolve."""
        return False

    @property
    def state_uses_rng(self) -> bool:
        """Whether the state evolution consumes random draws.

        Stochastic state restricts the batch engines to the ``rng="free"``
        discipline: lockstep batch streams cannot host the extra
        evolution draws without shifting every stateless schedule.
        """
        return False

    @property
    def supports_batch_state(self) -> bool:
        """Whether :meth:`stack_rows` can evolve this process vectorized.

        ``False`` degrades honestly to the scalar engine (or sync-mode
        per-row clones).
        """
        return False

    # -- per-interval state (no-ops for stateless processes) ---------------
    def reset_state(self) -> None:
        """Return the process to its initial state (run construction).

        Every scalar/sync-mode run calls this before its first interval,
        so a process instance shared across runs (or across replication
        rows) never leaks modulating-chain state from one run into the
        next.  Stateless processes inherit the no-op.
        """

    def begin_interval(self, rng: np.random.Generator) -> None:
        """Optional hook evolving state decoupled from sampling.

        The built-in stateful processes evolve inside :meth:`sample`
        (keeping every draw on the single per-seed ``"arrivals"`` stream,
        which is what makes sync-mode batch rows scalar-identical), so
        this is a no-op for them; it exists for extensions whose state
        advances even on intervals they do not sample.
        """

    # -- batch-state construction ------------------------------------------
    @classmethod
    def stack_rows(
        cls, processes: Sequence["ArrivalProcess"]
    ) -> Optional[ArrivalStateRows]:
        """Vectorized state for one process per replication row.

        ``None`` for stateless families: their batched draws go through
        :meth:`sample_batch`, bit-identical to the pre-state-layer
        behavior.
        """
        return None

    def init_state_batch(self, num_rows: int) -> Optional[ArrivalStateRows]:
        """:meth:`stack_rows` over ``num_rows`` copies of this process."""
        return type(self).stack_rows((self,) * int(num_rows))

    def evolve_batch(
        self, state: ArrivalStateRows, rng: Optional[np.random.Generator]
    ) -> np.ndarray:
        """Advance ``state`` one interval; the ``(rows, links)`` arrivals."""
        if state is None:
            raise TypeError(
                f"{type(self).__name__} is stateless and has no batch "
                "state to evolve"
            )
        return state.evolve(rng)

    def sample_batch(self, rng: np.random.Generator, num_seeds: int) -> np.ndarray:
        """Draw one interval's arrivals for ``num_seeds`` replications.

        Returns an ``(S, N)`` integer array of independent draws.  The
        generic implementation stacks ``S`` scalar draws; stateless
        processes override it with a single vectorized draw.  Either way
        the stacked result goes through :meth:`_check_batch`, so a
        subclass whose ``sample`` strays outside ``[0, max_per_link]``
        (or the ``(N,)`` shape) fails loudly here too.
        """
        if num_seeds < 1:
            raise ValueError(f"num_seeds must be >= 1, got {num_seeds}")
        if not self.supports_batch_sampling:
            raise TypeError(
                f"{type(self).__name__} is stateful across intervals and "
                "cannot produce independent batched replications"
            )
        return self._check_batch(
            np.stack([self.sample(rng) for _ in range(num_seeds)]), num_seeds
        )

    def _check(self, arrivals: np.ndarray) -> np.ndarray:
        if arrivals.shape != (self.num_links,):
            raise AssertionError(
                f"arrival vector shape {arrivals.shape} != ({self.num_links},)"
            )
        if np.any(arrivals < 0) or np.any(arrivals > self.max_per_link):
            raise AssertionError(
                f"arrivals {arrivals} outside [0, {self.max_per_link}]"
            )
        return arrivals

    def _check_batch(self, arrivals: np.ndarray, num_seeds: int) -> np.ndarray:
        if arrivals.shape != (num_seeds, self.num_links):
            raise AssertionError(
                f"batch arrival shape {arrivals.shape} != "
                f"({num_seeds}, {self.num_links})"
            )
        if np.any(arrivals < 0) or np.any(arrivals > self.max_per_link):
            raise AssertionError(
                f"batch arrivals outside [0, {self.max_per_link}]"
            )
        return arrivals


@dataclass(frozen=True)
class BernoulliArrivals(ArrivalProcess):
    """Independent ``A_n ~ Bernoulli(rate_n)`` per interval (Section VI-B)."""

    rates: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.rates:
            raise ValueError("need at least one link")
        for r in self.rates:
            if not 0.0 <= r <= 1.0:
                raise ValueError(f"Bernoulli rate must lie in [0, 1], got {r}")

    @classmethod
    def symmetric(cls, num_links: int, rate: float) -> "BernoulliArrivals":
        return cls(rates=(rate,) * num_links)

    @property
    def num_links(self) -> int:
        return len(self.rates)

    @property
    def mean_rates(self) -> np.ndarray:
        return np.asarray(self.rates, dtype=float)

    @property
    def max_per_link(self) -> int:
        return 1

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        draws = rng.random(self.num_links) < np.asarray(self.rates)
        return self._check(draws.astype(np.int64))

    def sample_batch(self, rng: np.random.Generator, num_seeds: int) -> np.ndarray:
        draws = rng.random((num_seeds, self.num_links)) < np.asarray(self.rates)
        return self._check_batch(draws.astype(np.int64), num_seeds)


@dataclass(frozen=True)
class BurstyVideoArrivals(ArrivalProcess):
    """The paper's bursty video model (Section VI-A).

    With probability ``alpha_n`` link ``n`` receives a burst uniform on
    ``{1, ..., burst_max}`` (6 in the paper), else 0 packets; so
    ``lambda_n = alpha_n * (burst_max + 1) / 2 = 3.5 alpha_n``.
    """

    alphas: Tuple[float, ...]
    burst_max: int = 6

    def __post_init__(self) -> None:
        if not self.alphas:
            raise ValueError("need at least one link")
        for a in self.alphas:
            if not 0.0 <= a <= 1.0:
                raise ValueError(f"alpha must lie in [0, 1], got {a}")
        if self.burst_max < 1:
            raise ValueError(f"burst_max must be >= 1, got {self.burst_max}")

    @classmethod
    def symmetric(cls, num_links: int, alpha: float, burst_max: int = 6):
        return cls(alphas=(alpha,) * num_links, burst_max=burst_max)

    @property
    def num_links(self) -> int:
        return len(self.alphas)

    @property
    def mean_rates(self) -> np.ndarray:
        return np.asarray(self.alphas) * (self.burst_max + 1) / 2.0

    @property
    def max_per_link(self) -> int:
        return self.burst_max

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        active = rng.random(self.num_links) < np.asarray(self.alphas)
        bursts = rng.integers(1, self.burst_max + 1, size=self.num_links)
        return self._check(np.where(active, bursts, 0).astype(np.int64))

    def sample_batch(self, rng: np.random.Generator, num_seeds: int) -> np.ndarray:
        shape = (num_seeds, self.num_links)
        active = rng.random(shape) < np.asarray(self.alphas)
        bursts = rng.integers(1, self.burst_max + 1, size=shape)
        return self._check_batch(np.where(active, bursts, 0).astype(np.int64), num_seeds)


@dataclass(frozen=True)
class ConstantArrivals(ArrivalProcess):
    """Deterministic ``A_n = counts_n`` every interval.

    The classical Hou-Borkar-Kumar setting (exactly one packet per client
    per interval) is ``ConstantArrivals.symmetric(n, 1)``; with it,
    timely-throughput equals delivery ratio (Section II-C).
    """

    counts: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.counts:
            raise ValueError("need at least one link")
        for c in self.counts:
            if c < 0:
                raise ValueError(f"counts must be nonnegative, got {c}")

    @classmethod
    def symmetric(cls, num_links: int, count: int = 1) -> "ConstantArrivals":
        return cls(counts=(count,) * num_links)

    @property
    def num_links(self) -> int:
        return len(self.counts)

    @property
    def mean_rates(self) -> np.ndarray:
        return np.asarray(self.counts, dtype=float)

    @property
    def max_per_link(self) -> int:
        return max(self.counts) if self.counts else 0

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return self._check(np.asarray(self.counts, dtype=np.int64))

    def sample_batch(self, rng: np.random.Generator, num_seeds: int) -> np.ndarray:
        row = np.asarray(self.counts, dtype=np.int64)
        return self._check_batch(np.tile(row, (num_seeds, 1)), num_seeds)


@dataclass(frozen=True)
class TruncatedPoissonArrivals(ArrivalProcess):
    """Poisson arrivals truncated at ``cap`` to respect the ``A_max`` bound.

    The mean rates are computed exactly for the truncated distribution, not
    approximated by the raw Poisson rate.
    """

    poisson_rates: Tuple[float, ...]
    cap: int = 8

    def __post_init__(self) -> None:
        if not self.poisson_rates:
            raise ValueError("need at least one link")
        for r in self.poisson_rates:
            if r < 0:
                raise ValueError(f"rates must be nonnegative, got {r}")
        if self.cap < 1:
            raise ValueError(f"cap must be >= 1, got {self.cap}")

    @property
    def num_links(self) -> int:
        return len(self.poisson_rates)

    @property
    def mean_rates(self) -> np.ndarray:
        from scipy import stats

        means = []
        for lam in self.poisson_rates:
            ks = np.arange(self.cap + 1)
            pmf = stats.poisson.pmf(ks, lam)
            # All mass above the cap collapses onto the cap.
            pmf[-1] += stats.poisson.sf(self.cap, lam)
            means.append(float(np.dot(ks, pmf)))
        return np.asarray(means)

    @property
    def max_per_link(self) -> int:
        return self.cap

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        raw = rng.poisson(np.asarray(self.poisson_rates))
        return self._check(np.minimum(raw, self.cap).astype(np.int64))

    def sample_batch(self, rng: np.random.Generator, num_seeds: int) -> np.ndarray:
        rates = np.asarray(self.poisson_rates)
        raw = rng.poisson(rates, size=(num_seeds, self.num_links))
        return self._check_batch(np.minimum(raw, self.cap).astype(np.int64), num_seeds)


@dataclass(frozen=True)
class CorrelatedBurstArrivals(ArrivalProcess):
    """Cross-link-correlated arrivals (allowed by the model, Section II-B).

    A single network-wide Bernoulli(``event_prob``) event decides whether
    *every* link receives a burst this interval; burst sizes are then drawn
    independently per link uniform on ``{1, ..., burst_max}``.  Temporally
    i.i.d., spatially fully correlated — the adversarial extreme of the
    paper's "arrivals of different links might still be correlated".
    """

    num_links_: int
    event_prob: float
    burst_max: int = 3

    def __post_init__(self) -> None:
        if self.num_links_ < 1:
            raise ValueError("need at least one link")
        if not 0.0 <= self.event_prob <= 1.0:
            raise ValueError(f"event_prob must lie in [0, 1], got {self.event_prob}")
        if self.burst_max < 1:
            raise ValueError(f"burst_max must be >= 1, got {self.burst_max}")

    @property
    def num_links(self) -> int:
        return self.num_links_

    @property
    def mean_rates(self) -> np.ndarray:
        mean_burst = (self.burst_max + 1) / 2.0
        return np.full(self.num_links_, self.event_prob * mean_burst)

    @property
    def max_per_link(self) -> int:
        return self.burst_max

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        if rng.random() >= self.event_prob:
            return self._check(np.zeros(self.num_links_, dtype=np.int64))
        bursts = rng.integers(1, self.burst_max + 1, size=self.num_links_)
        return self._check(bursts.astype(np.int64))

    def sample_batch(self, rng: np.random.Generator, num_seeds: int) -> np.ndarray:
        events = rng.random(num_seeds) < self.event_prob
        bursts = rng.integers(
            1, self.burst_max + 1, size=(num_seeds, self.num_links_)
        )
        out = np.where(events[:, None], bursts, 0).astype(np.int64)
        return self._check_batch(out, num_seeds)


#: Start-state choices for :class:`MarkovModulatedArrivals`.
MMPP_INITIAL_STATES = ("on", "off", "stationary")


class _MarkovModulatedRows(ArrivalStateRows):
    """Per-row ON/OFF modulating chains, evolved as ``(R, N)`` planes.

    Each interval consumes two uniform planes per row in the scalar
    ``sample`` order (stay-flip uniforms, then Bernoulli uniforms), so
    the vectorized chain has exactly the scalar law.
    """

    uses_rng = True

    def __init__(self, processes: Sequence["MarkovModulatedArrivals"]):
        self._on_rate = np.stack([p._rate_vec(True) for p in processes])
        self._off_rate = np.stack([p._rate_vec(False) for p in processes])
        self._stay_on = np.stack(
            [np.full(p.num_links, p.p_stay_on) for p in processes]
        )
        self._stay_off = np.stack(
            [np.full(p.num_links, p.p_stay_off) for p in processes]
        )
        # Every row starts in its process's initial state, matching the
        # scalar reset_state: the first evolve happens before interval 0
        # on every engine, so distributions line up exactly.
        self._on = np.stack([p._initial_state_vector() for p in processes])
        self._stay = np.empty(self._on.shape)
        self._rates = np.empty(self._on.shape)

    def _step(self, flip_u: np.ndarray, draw_u: np.ndarray) -> np.ndarray:
        np.copyto(self._stay, self._stay_off)
        np.copyto(self._stay, self._stay_on, where=self._on)
        self._on ^= flip_u >= self._stay
        np.copyto(self._rates, self._off_rate)
        np.copyto(self._rates, self._on_rate, where=self._on)
        return (draw_u < self._rates).astype(np.int64)

    def evolve(self, rng: Optional[np.random.Generator]) -> np.ndarray:
        u = rng.random((2,) + self._on.shape)
        return self._step(u[0], u[1])

    def evolve_block(
        self,
        depth: int,
        rng: Optional[np.random.Generator],
        out: np.ndarray,
    ) -> np.ndarray:
        # One generator call per chunk: (depth, 2, R, N) uniforms consumed
        # in interval order, then depth cheap (R, N) vector steps.
        u = rng.random((depth, 2) + self._on.shape)
        for d in range(depth):
            out[d] = self._step(u[d, 0], u[d, 1])
        return out


class MarkovModulatedArrivals(ArrivalProcess):
    """Two-state (ON/OFF) Markov-modulated Bernoulli arrivals.

    **Deliberately violates the paper's temporal-independence assumption** —
    used only in robustness experiments to probe DB-DP's behaviour outside
    its analyzed regime.  ``mean_rates`` reports the stationary mean.

    ``initial_state`` picks where each link's modulating chain starts:

    * ``"on"`` (default, the historical behavior) — every chain starts
      ON.  Short-horizon runs are then biased high relative to
      ``mean_rates``, which reports the *stationary* mean; the bias
      decays on the chain's mixing timescale ``1 / (2 - p_stay_on -
      p_stay_off)``.
    * ``"off"`` — every chain starts OFF (biased low symmetrically).
    * ``"stationary"`` — per-link start states drawn once from the
      stationary distribution, seeded deterministically from the process
      parameters (the same vector on every reset and on every
      replication row, so results stay reproducible and engines stay
      comparable); unbiased in expectation across links.

    The chain itself is mutable per-interval state, not a parameter:
    :meth:`reset_state` restores the initial state, equality and the
    config codec (:meth:`to_config` / :meth:`from_config`) cover
    parameters only.
    """

    def __init__(
        self,
        num_links: int,
        on_rate: float,
        off_rate: float = 0.0,
        p_stay_on: float = 0.9,
        p_stay_off: float = 0.9,
        initial_state: str = "on",
    ):
        if num_links < 1:
            raise ValueError("need at least one link")
        for name, value in [
            ("on_rate", on_rate),
            ("off_rate", off_rate),
            ("p_stay_on", p_stay_on),
            ("p_stay_off", p_stay_off),
        ]:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        if initial_state not in MMPP_INITIAL_STATES:
            raise ValueError(
                f"initial_state must be one of {MMPP_INITIAL_STATES}, "
                f"got {initial_state!r}"
            )
        self._n = int(num_links)
        self._on_rate = float(on_rate)
        self._off_rate = float(off_rate)
        self._p_stay_on = float(p_stay_on)
        self._p_stay_off = float(p_stay_off)
        self._initial_state = str(initial_state)
        self._state_on = self._initial_state_vector()

    # -- parameter accessors (read-only; the chain is the only mutable) ----
    @property
    def on_rate(self) -> float:
        return self._on_rate

    @property
    def off_rate(self) -> float:
        return self._off_rate

    @property
    def p_stay_on(self) -> float:
        return self._p_stay_on

    @property
    def p_stay_off(self) -> float:
        return self._p_stay_off

    @property
    def initial_state(self) -> str:
        return self._initial_state

    def _rate_vec(self, on: bool) -> np.ndarray:
        return np.full(self._n, self._on_rate if on else self._off_rate)

    @property
    def _pi_on(self) -> float:
        """Stationary probability of the ON state."""
        leave_on = 1.0 - self._p_stay_on
        leave_off = 1.0 - self._p_stay_off
        if leave_on + leave_off == 0:
            # Both states absorbing: the chain freezes where it starts.
            return 1.0 if self._initial_state != "off" else 0.0
        return leave_off / (leave_on + leave_off)

    def _initial_state_vector(self) -> np.ndarray:
        """The per-link start states :meth:`reset_state` restores."""
        if self._initial_state == "on":
            return np.ones(self._n, dtype=bool)
        if self._initial_state == "off":
            return np.zeros(self._n, dtype=bool)
        # "stationary": one seeded draw, a pure function of the process
        # parameters — every reset (and every batch row) restores the
        # same vector, keeping runs reproducible and engines comparable.
        key = repr((
            "mmpp-stationary", self._n, self._on_rate, self._off_rate,
            self._p_stay_on, self._p_stay_off,
        ))
        digest = hashlib.sha256(key.encode()).digest()
        seq = np.random.SeedSequence(int.from_bytes(digest[:8], "little"))
        gen = np.random.Generator(np.random.PCG64(seq))
        return gen.random(self._n) < self._pi_on

    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        return self._n

    @property
    def mean_rates(self) -> np.ndarray:
        pi_on = self._pi_on
        mean = pi_on * self._on_rate + (1.0 - pi_on) * self._off_rate
        return np.full(self._n, mean)

    @property
    def max_per_link(self) -> int:
        return 1

    @property
    def supports_batch_sampling(self) -> bool:
        # The modulating chain is per-process state: one generator cannot
        # advance S independent copies of it, so lockstep batching is
        # refused; the batch-state plane (stack_rows) is the vectorized
        # path instead.
        return False

    @property
    def has_state(self) -> bool:
        return True

    @property
    def state_uses_rng(self) -> bool:
        return True

    @property
    def supports_batch_state(self) -> bool:
        return True

    def reset_state(self) -> None:
        self._state_on = self._initial_state_vector()

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        stay = np.where(self._state_on, self._p_stay_on, self._p_stay_off)
        flip = rng.random(self._n) >= stay
        self._state_on = np.where(flip, ~self._state_on, self._state_on)
        rates = np.where(self._state_on, self._on_rate, self._off_rate)
        draws = rng.random(self._n) < rates
        return self._check(draws.astype(np.int64))

    # ------------------------------------------------------------------
    @classmethod
    def stack_rows(
        cls, processes: Sequence["ArrivalProcess"]
    ) -> ArrivalStateRows:
        for p in processes:
            if not p.supports_batch_state:
                raise TypeError(
                    f"{type(p).__name__} declines batch state; run it on "
                    "the scalar engine or under sync_rng=True"
                )
        return _MarkovModulatedRows(processes)

    # -- value semantics & config codec (parameters only, never the chain) -
    def _params(self) -> Tuple:
        return (
            self._n, self._on_rate, self._off_rate,
            self._p_stay_on, self._p_stay_off, self._initial_state,
        )

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self._params() == other._params()

    def __hash__(self) -> int:
        return hash((type(self).__name__,) + self._params())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_links={self._n}, "
            f"on_rate={self._on_rate}, off_rate={self._off_rate}, "
            f"p_stay_on={self._p_stay_on}, p_stay_off={self._p_stay_off}, "
            f"initial_state={self._initial_state!r})"
        )

    def to_config(self) -> Dict[str, object]:
        """Parameter dict for the registry's config codec (cache keys,
        scenario round-trips); the mutable chain is excluded."""
        return {
            "num_links": self._n,
            "on_rate": self._on_rate,
            "off_rate": self._off_rate,
            "p_stay_on": self._p_stay_on,
            "p_stay_off": self._p_stay_off,
            "initial_state": self._initial_state,
        }

    @classmethod
    def from_config(cls, config: Dict[str, object]) -> "MarkovModulatedArrivals":
        return cls(**config)


class _ParetoBurstRows(ArrivalStateRows):
    """Per-row heavy-tailed burst state, evolved as ``(R, N)`` planes.

    Each interval consumes two uniform planes per row in the scalar
    ``sample`` order (burst-start uniforms, then duration uniforms);
    the row-wise inverse-CDF lookup replaces the scalar searchsorted.
    """

    uses_rng = True

    def __init__(self, processes: Sequence["ParetoBurstArrivals"]):
        self._start_prob = np.stack(
            [np.full(p.num_links, p.start_prob) for p in processes]
        )
        self._peak = np.stack(
            [np.full(p.num_links, p.peak, dtype=np.int64) for p in processes]
        )
        # Per-row duration CDF tables, right-padded with 1.0 so rows with
        # shorter dur_max never draw past their own support.
        width = max(p.dur_max for p in processes)
        self._cdf = np.ones((len(processes), width))
        for i, p in enumerate(processes):
            self._cdf[i, : p.dur_max] = p._dur_cdf
        # Every row starts idle, matching the scalar reset_state.
        self._remaining = np.zeros(self._start_prob.shape, dtype=np.int64)

    def _step(self, start_u: np.ndarray, dur_u: np.ndarray) -> np.ndarray:
        rem = self._remaining
        start = (rem == 0) & (start_u < self._start_prob)
        # Row-wise searchsorted(side="right"): count cdf entries <= u.
        durations = (dur_u[:, :, None] >= self._cdf[:, None, :]).sum(axis=-1) + 1
        np.copyto(rem, durations, where=start)
        active = rem > 0
        out = np.where(active, self._peak, 0)
        rem[active] -= 1
        return out

    def evolve(self, rng: Optional[np.random.Generator]) -> np.ndarray:
        u = rng.random((2,) + self._start_prob.shape)
        return self._step(u[0], u[1])

    def evolve_block(
        self,
        depth: int,
        rng: Optional[np.random.Generator],
        out: np.ndarray,
    ) -> np.ndarray:
        u = rng.random((depth, 2) + self._start_prob.shape)
        for d in range(depth):
            out[d] = self._step(u[d, 0], u[d, 1])
        return out


@dataclass(frozen=True)
class ParetoBurstArrivals(ArrivalProcess):
    """Heavy-tailed ON-period bursts: truncated discrete Pareto durations.

    Each idle link starts a burst with probability ``start_prob`` per
    interval; a burst delivers ``peak`` packets per interval for ``L``
    consecutive intervals, with ``P(L = l) ∝ l**-tail`` on ``{1, ...,
    dur_max}`` — the heavy-tailed ON/OFF workload of the stability-
    boundary literature (Shneer–Stolyar, arXiv:1810.08711), truncated at
    ``dur_max`` so ``max_per_link`` stays bounded and means stay exact.

    **Deliberately violates the paper's temporal-independence
    assumption** (like :class:`MarkovModulatedArrivals`) — robustness
    experiments only.  The per-link remaining-burst counter is mutable
    state: :meth:`reset_state` returns every link to idle; equality and
    fingerprints cover the parameters only (dataclass fields).
    """

    num_links_: int
    start_prob: float
    tail: float = 1.5
    dur_max: int = 64
    peak: int = 1

    def __post_init__(self) -> None:
        if self.num_links_ < 1:
            raise ValueError("need at least one link")
        if not 0.0 < self.start_prob <= 1.0:
            raise ValueError(
                f"start_prob must lie in (0, 1], got {self.start_prob}"
            )
        if self.tail <= 0.0:
            raise ValueError(f"tail must be positive, got {self.tail}")
        if self.dur_max < 1:
            raise ValueError(f"dur_max must be >= 1, got {self.dur_max}")
        if self.peak < 1:
            raise ValueError(f"peak must be >= 1, got {self.peak}")
        lengths = np.arange(1, self.dur_max + 1, dtype=float)
        pmf = lengths ** -float(self.tail)
        pmf /= pmf.sum()
        cdf = np.cumsum(pmf)
        cdf[-1] = 1.0  # exact top end: uniforms in [0, 1) never overflow
        # Mutable per-interval state and the precomputed lookup table are
        # NOT dataclass fields: equality/hash/fingerprints skip them.
        object.__setattr__(self, "_dur_cdf", cdf)
        object.__setattr__(self, "_mean_duration", float(pmf @ lengths))
        object.__setattr__(
            self, "_remaining", np.zeros(self.num_links_, dtype=np.int64)
        )

    @property
    def num_links(self) -> int:
        return self.num_links_

    @property
    def mean_rates(self) -> np.ndarray:
        # Renewal cycle: mean (1 - q)/q idle intervals (geometric failures
        # before a start), then E[L] active intervals at `peak` packets.
        idle = (1.0 - self.start_prob) / self.start_prob
        mean = self.peak * self._mean_duration / (self._mean_duration + idle)
        return np.full(self.num_links_, mean)

    @property
    def max_per_link(self) -> int:
        return self.peak

    @property
    def supports_batch_sampling(self) -> bool:
        # Remaining-burst counters are per-process state: one generator
        # cannot advance S independent copies in lockstep; the batch-state
        # plane (stack_rows) is the vectorized path instead.
        return False

    @property
    def has_state(self) -> bool:
        return True

    @property
    def state_uses_rng(self) -> bool:
        return True

    @property
    def supports_batch_state(self) -> bool:
        return True

    def reset_state(self) -> None:
        self._remaining[:] = 0

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        rem = self._remaining
        start_u = rng.random(self.num_links_)
        dur_u = rng.random(self.num_links_)
        start = (rem == 0) & (start_u < self.start_prob)
        durations = np.searchsorted(self._dur_cdf, dur_u, side="right") + 1
        np.copyto(rem, durations, where=start)
        active = rem > 0
        out = np.where(active, self.peak, 0).astype(np.int64)
        rem[active] -= 1
        return self._check(out)

    @classmethod
    def stack_rows(
        cls, processes: Sequence["ArrivalProcess"]
    ) -> ArrivalStateRows:
        for p in processes:
            if not p.supports_batch_state:
                raise TypeError(
                    f"{type(p).__name__} declines batch state; run it on "
                    "the scalar engine or under sync_rng=True"
                )
        return _ParetoBurstRows(processes)


def arrivals_from_spec(text: str, num_links: int) -> ArrivalProcess:
    """Build an arrival process from a CLI-style spec string.

    Formats (fields are colon-separated)::

        bernoulli:RATE               i.i.d. Bernoulli(RATE) on every link
        bursty:ALPHA[:BURST_MAX]     the paper's bursty video model
                                     (burst uniform on {1..BURST_MAX},
                                     default 6)
        constant:COUNT               COUNT packets per link per interval
        mmpp:ON[:OFF[:P_ON[:P_OFF[:INITIAL]]]]
                                     Markov-modulated Bernoulli; OFF
                                     defaults to 0, stay probabilities to
                                     0.9, INITIAL (on/off/stationary)
                                     to "on"
        pareto:START[:TAIL[:DUR_MAX[:PEAK]]]
                                     heavy-tailed bursts: start prob
                                     START, Pareto tail TAIL (default
                                     1.5), durations truncated at
                                     DUR_MAX (default 64), PEAK packets
                                     per burst interval (default 1)

    MMPP and Pareto carry stochastic per-interval state, so on the
    batch/fused engines they need ``rng="free"`` (statistically
    equivalent) or ``sync_rng=True`` (bit-identical, scalar-speed).
    """
    parts = str(text).split(":")
    kind, args = parts[0].lower(), parts[1:]
    try:
        if kind == "bernoulli":
            (rate,) = args
            return BernoulliArrivals.symmetric(num_links, float(rate))
        if kind == "bursty":
            if len(args) == 1:
                (alpha,), burst_max = args, 6
            else:
                alpha, burst_max = args
            return BurstyVideoArrivals.symmetric(
                num_links, float(alpha), burst_max=int(burst_max)
            )
        if kind == "constant":
            (count,) = args
            return ConstantArrivals.symmetric(num_links, int(count))
        if kind == "mmpp":
            if not 1 <= len(args) <= 5:
                raise ValueError("expected 1-5 fields after 'mmpp'")
            on = float(args[0])
            off = float(args[1]) if len(args) > 1 else 0.0
            p_on = float(args[2]) if len(args) > 2 else 0.9
            p_off = float(args[3]) if len(args) > 3 else 0.9
            initial = args[4] if len(args) > 4 else "on"
            return MarkovModulatedArrivals(
                num_links,
                on_rate=on,
                off_rate=off,
                p_stay_on=p_on,
                p_stay_off=p_off,
                initial_state=initial,
            )
        if kind == "pareto":
            if not 1 <= len(args) <= 4:
                raise ValueError("expected 1-4 fields after 'pareto'")
            start = float(args[0])
            tail = float(args[1]) if len(args) > 1 else 1.5
            dur_max = int(args[2]) if len(args) > 2 else 64
            peak = int(args[3]) if len(args) > 3 else 1
            return ParetoBurstArrivals(
                num_links,
                start_prob=start,
                tail=tail,
                dur_max=dur_max,
                peak=peak,
            )
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad arrivals spec {text!r}: {exc}") from exc
    raise ValueError(
        f"unknown arrivals kind {kind!r} in {text!r}; expected "
        "'bernoulli:rate', 'bursty:alpha[:burst_max]', 'constant:count', "
        "'mmpp:on[:off[:p_on[:p_off[:initial]]]]' or "
        "'pareto:start[:tail[:dur_max[:peak]]]'"
    )
