"""Arrival processes (Section II-B).

Packets arrive at the beginning of each interval; the arrival vector
``A(k)`` is i.i.d. across intervals with per-link mean ``lambda_n`` and a
uniform bound ``A_max``.  Arrivals of different links *within* one interval
may be correlated (the model allows it; the paper's evaluation uses
independent links).

Processes used in the paper's evaluation:

* :class:`BurstyVideoArrivals` — ``A_n ~ Uniform{1..6}`` w.p. ``alpha_n``,
  else 0, so ``lambda_n = 3.5 * alpha_n`` (Section VI-A).
* :class:`BernoulliArrivals` — ``A_n ~ Bernoulli(lambda_n)``
  (Section VI-B).

Additional processes (:class:`ConstantArrivals`,
:class:`TruncatedPoissonArrivals`, :class:`CorrelatedBurstArrivals`,
:class:`MarkovModulatedArrivals`) exercise the general model — bounded
support, possibly cross-link-correlated — beyond the paper's two workloads.
Note :class:`MarkovModulatedArrivals` deliberately violates temporal
independence (for robustness experiments); its docstring says so.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "ArrivalProcess",
    "BernoulliArrivals",
    "BurstyVideoArrivals",
    "ConstantArrivals",
    "TruncatedPoissonArrivals",
    "CorrelatedBurstArrivals",
    "MarkovModulatedArrivals",
]


class ArrivalProcess(ABC):
    """Per-network arrival process: one ``sample`` per interval.

    Implementations must guarantee ``0 <= A_n <= max_per_link`` and expose
    the mean vector ``lambda`` for requirement bookkeeping.
    """

    @property
    @abstractmethod
    def num_links(self) -> int:
        """Number of links this process feeds."""

    @property
    @abstractmethod
    def mean_rates(self) -> np.ndarray:
        """``lambda_n`` — expected packets per interval per link."""

    @property
    @abstractmethod
    def max_per_link(self) -> int:
        """The uniform bound ``A_max`` on any single link's arrivals."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one interval's arrival vector ``A(k)`` (integer array)."""

    @property
    def supports_batch_sampling(self) -> bool:
        """Whether :meth:`sample_batch` yields independent replications.

        True for processes that are i.i.d. across intervals (everything the
        paper's model allows).  Stateful extensions whose ``sample`` mutates
        shared state (e.g. :class:`MarkovModulatedArrivals`) return False:
        a single generator cannot advance ``S`` independent copies of their
        modulating chains.
        """
        return True

    def sample_batch(self, rng: np.random.Generator, num_seeds: int) -> np.ndarray:
        """Draw one interval's arrivals for ``num_seeds`` replications.

        Returns an ``(S, N)`` integer array of independent draws.  The
        generic implementation stacks ``S`` scalar draws; stateless
        processes override it with a single vectorized draw.
        """
        if num_seeds < 1:
            raise ValueError(f"num_seeds must be >= 1, got {num_seeds}")
        if not self.supports_batch_sampling:
            raise TypeError(
                f"{type(self).__name__} is stateful across intervals and "
                "cannot produce independent batched replications"
            )
        return np.stack([self.sample(rng) for _ in range(num_seeds)])

    def _check(self, arrivals: np.ndarray) -> np.ndarray:
        if arrivals.shape != (self.num_links,):
            raise AssertionError(
                f"arrival vector shape {arrivals.shape} != ({self.num_links},)"
            )
        if np.any(arrivals < 0) or np.any(arrivals > self.max_per_link):
            raise AssertionError(
                f"arrivals {arrivals} outside [0, {self.max_per_link}]"
            )
        return arrivals

    def _check_batch(self, arrivals: np.ndarray, num_seeds: int) -> np.ndarray:
        if arrivals.shape != (num_seeds, self.num_links):
            raise AssertionError(
                f"batch arrival shape {arrivals.shape} != "
                f"({num_seeds}, {self.num_links})"
            )
        if np.any(arrivals < 0) or np.any(arrivals > self.max_per_link):
            raise AssertionError(
                f"batch arrivals outside [0, {self.max_per_link}]"
            )
        return arrivals


@dataclass(frozen=True)
class BernoulliArrivals(ArrivalProcess):
    """Independent ``A_n ~ Bernoulli(rate_n)`` per interval (Section VI-B)."""

    rates: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.rates:
            raise ValueError("need at least one link")
        for r in self.rates:
            if not 0.0 <= r <= 1.0:
                raise ValueError(f"Bernoulli rate must lie in [0, 1], got {r}")

    @classmethod
    def symmetric(cls, num_links: int, rate: float) -> "BernoulliArrivals":
        return cls(rates=(rate,) * num_links)

    @property
    def num_links(self) -> int:
        return len(self.rates)

    @property
    def mean_rates(self) -> np.ndarray:
        return np.asarray(self.rates, dtype=float)

    @property
    def max_per_link(self) -> int:
        return 1

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        draws = rng.random(self.num_links) < np.asarray(self.rates)
        return self._check(draws.astype(np.int64))

    def sample_batch(self, rng: np.random.Generator, num_seeds: int) -> np.ndarray:
        draws = rng.random((num_seeds, self.num_links)) < np.asarray(self.rates)
        return self._check_batch(draws.astype(np.int64), num_seeds)


@dataclass(frozen=True)
class BurstyVideoArrivals(ArrivalProcess):
    """The paper's bursty video model (Section VI-A).

    With probability ``alpha_n`` link ``n`` receives a burst uniform on
    ``{1, ..., burst_max}`` (6 in the paper), else 0 packets; so
    ``lambda_n = alpha_n * (burst_max + 1) / 2 = 3.5 alpha_n``.
    """

    alphas: Tuple[float, ...]
    burst_max: int = 6

    def __post_init__(self) -> None:
        if not self.alphas:
            raise ValueError("need at least one link")
        for a in self.alphas:
            if not 0.0 <= a <= 1.0:
                raise ValueError(f"alpha must lie in [0, 1], got {a}")
        if self.burst_max < 1:
            raise ValueError(f"burst_max must be >= 1, got {self.burst_max}")

    @classmethod
    def symmetric(cls, num_links: int, alpha: float, burst_max: int = 6):
        return cls(alphas=(alpha,) * num_links, burst_max=burst_max)

    @property
    def num_links(self) -> int:
        return len(self.alphas)

    @property
    def mean_rates(self) -> np.ndarray:
        return np.asarray(self.alphas) * (self.burst_max + 1) / 2.0

    @property
    def max_per_link(self) -> int:
        return self.burst_max

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        active = rng.random(self.num_links) < np.asarray(self.alphas)
        bursts = rng.integers(1, self.burst_max + 1, size=self.num_links)
        return self._check(np.where(active, bursts, 0).astype(np.int64))

    def sample_batch(self, rng: np.random.Generator, num_seeds: int) -> np.ndarray:
        shape = (num_seeds, self.num_links)
        active = rng.random(shape) < np.asarray(self.alphas)
        bursts = rng.integers(1, self.burst_max + 1, size=shape)
        return self._check_batch(np.where(active, bursts, 0).astype(np.int64), num_seeds)


@dataclass(frozen=True)
class ConstantArrivals(ArrivalProcess):
    """Deterministic ``A_n = counts_n`` every interval.

    The classical Hou-Borkar-Kumar setting (exactly one packet per client
    per interval) is ``ConstantArrivals.symmetric(n, 1)``; with it,
    timely-throughput equals delivery ratio (Section II-C).
    """

    counts: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.counts:
            raise ValueError("need at least one link")
        for c in self.counts:
            if c < 0:
                raise ValueError(f"counts must be nonnegative, got {c}")

    @classmethod
    def symmetric(cls, num_links: int, count: int = 1) -> "ConstantArrivals":
        return cls(counts=(count,) * num_links)

    @property
    def num_links(self) -> int:
        return len(self.counts)

    @property
    def mean_rates(self) -> np.ndarray:
        return np.asarray(self.counts, dtype=float)

    @property
    def max_per_link(self) -> int:
        return max(self.counts) if self.counts else 0

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return self._check(np.asarray(self.counts, dtype=np.int64))

    def sample_batch(self, rng: np.random.Generator, num_seeds: int) -> np.ndarray:
        row = np.asarray(self.counts, dtype=np.int64)
        return self._check_batch(np.tile(row, (num_seeds, 1)), num_seeds)


@dataclass(frozen=True)
class TruncatedPoissonArrivals(ArrivalProcess):
    """Poisson arrivals truncated at ``cap`` to respect the ``A_max`` bound.

    The mean rates are computed exactly for the truncated distribution, not
    approximated by the raw Poisson rate.
    """

    poisson_rates: Tuple[float, ...]
    cap: int = 8

    def __post_init__(self) -> None:
        if not self.poisson_rates:
            raise ValueError("need at least one link")
        for r in self.poisson_rates:
            if r < 0:
                raise ValueError(f"rates must be nonnegative, got {r}")
        if self.cap < 1:
            raise ValueError(f"cap must be >= 1, got {self.cap}")

    @property
    def num_links(self) -> int:
        return len(self.poisson_rates)

    @property
    def mean_rates(self) -> np.ndarray:
        from scipy import stats

        means = []
        for lam in self.poisson_rates:
            ks = np.arange(self.cap + 1)
            pmf = stats.poisson.pmf(ks, lam)
            # All mass above the cap collapses onto the cap.
            pmf[-1] += stats.poisson.sf(self.cap, lam)
            means.append(float(np.dot(ks, pmf)))
        return np.asarray(means)

    @property
    def max_per_link(self) -> int:
        return self.cap

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        raw = rng.poisson(np.asarray(self.poisson_rates))
        return self._check(np.minimum(raw, self.cap).astype(np.int64))

    def sample_batch(self, rng: np.random.Generator, num_seeds: int) -> np.ndarray:
        rates = np.asarray(self.poisson_rates)
        raw = rng.poisson(rates, size=(num_seeds, self.num_links))
        return self._check_batch(np.minimum(raw, self.cap).astype(np.int64), num_seeds)


@dataclass(frozen=True)
class CorrelatedBurstArrivals(ArrivalProcess):
    """Cross-link-correlated arrivals (allowed by the model, Section II-B).

    A single network-wide Bernoulli(``event_prob``) event decides whether
    *every* link receives a burst this interval; burst sizes are then drawn
    independently per link uniform on ``{1, ..., burst_max}``.  Temporally
    i.i.d., spatially fully correlated — the adversarial extreme of the
    paper's "arrivals of different links might still be correlated".
    """

    num_links_: int
    event_prob: float
    burst_max: int = 3

    def __post_init__(self) -> None:
        if self.num_links_ < 1:
            raise ValueError("need at least one link")
        if not 0.0 <= self.event_prob <= 1.0:
            raise ValueError(f"event_prob must lie in [0, 1], got {self.event_prob}")
        if self.burst_max < 1:
            raise ValueError(f"burst_max must be >= 1, got {self.burst_max}")

    @property
    def num_links(self) -> int:
        return self.num_links_

    @property
    def mean_rates(self) -> np.ndarray:
        mean_burst = (self.burst_max + 1) / 2.0
        return np.full(self.num_links_, self.event_prob * mean_burst)

    @property
    def max_per_link(self) -> int:
        return self.burst_max

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        if rng.random() >= self.event_prob:
            return self._check(np.zeros(self.num_links_, dtype=np.int64))
        bursts = rng.integers(1, self.burst_max + 1, size=self.num_links_)
        return self._check(bursts.astype(np.int64))

    def sample_batch(self, rng: np.random.Generator, num_seeds: int) -> np.ndarray:
        events = rng.random(num_seeds) < self.event_prob
        bursts = rng.integers(
            1, self.burst_max + 1, size=(num_seeds, self.num_links_)
        )
        out = np.where(events[:, None], bursts, 0).astype(np.int64)
        return self._check_batch(out, num_seeds)


class MarkovModulatedArrivals(ArrivalProcess):
    """Two-state (ON/OFF) Markov-modulated Bernoulli arrivals.

    **Deliberately violates the paper's temporal-independence assumption** —
    used only in robustness experiments to probe DB-DP's behaviour outside
    its analyzed regime.  ``mean_rates`` reports the stationary mean.
    """

    def __init__(
        self,
        num_links: int,
        on_rate: float,
        off_rate: float = 0.0,
        p_stay_on: float = 0.9,
        p_stay_off: float = 0.9,
    ):
        if num_links < 1:
            raise ValueError("need at least one link")
        for name, value in [
            ("on_rate", on_rate),
            ("off_rate", off_rate),
            ("p_stay_on", p_stay_on),
            ("p_stay_off", p_stay_off),
        ]:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        self._n = num_links
        self._on_rate = on_rate
        self._off_rate = off_rate
        self._p_stay_on = p_stay_on
        self._p_stay_off = p_stay_off
        # Per-link modulating state; starts ON.
        self._state_on = np.ones(num_links, dtype=bool)

    @property
    def num_links(self) -> int:
        return self._n

    @property
    def mean_rates(self) -> np.ndarray:
        leave_on = 1.0 - self._p_stay_on
        leave_off = 1.0 - self._p_stay_off
        if leave_on + leave_off == 0:
            pi_on = 1.0  # chain frozen in its start state (ON)
        else:
            pi_on = leave_off / (leave_on + leave_off)
        mean = pi_on * self._on_rate + (1.0 - pi_on) * self._off_rate
        return np.full(self._n, mean)

    @property
    def max_per_link(self) -> int:
        return 1

    @property
    def supports_batch_sampling(self) -> bool:
        # The modulating chain is per-process state: one generator cannot
        # advance S independent copies of it, so batching is refused.
        return False

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        stay = np.where(self._state_on, self._p_stay_on, self._p_stay_off)
        flip = rng.random(self._n) >= stay
        self._state_on = np.where(flip, ~self._state_on, self._state_on)
        rates = np.where(self._state_on, self._on_rate, self._off_rate)
        draws = rng.random(self._n) < rates
        return self._check(draws.astype(np.int64))
