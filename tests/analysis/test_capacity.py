"""Tests for admissible-boundary estimation."""

from __future__ import annotations

import pytest

from repro import BernoulliChannel, ConstantArrivals, LDFPolicy, NetworkSpec, idealized_timing
from repro.analysis.capacity import (
    CapacityEstimate,
    admissible_boundary,
    relative_capacity,
)


def spec_builder(rho: float) -> NetworkSpec:
    """One-packet, 2-link network stressed through the delivery ratio."""
    return NetworkSpec.from_delivery_ratios(
        arrivals=ConstantArrivals.symmetric(2, 1),
        channel=BernoulliChannel.symmetric(2, 0.5),
        timing=idealized_timing(3),
        delivery_ratios=min(rho, 1.0),
    )


class TestBisection:
    def test_finds_a_boundary_between_endpoints(self):
        estimate = admissible_boundary(
            spec_builder,
            LDFPolicy,
            low=0.3,
            high=0.99,
            num_intervals=800,
            tolerance=0.02,
        )
        assert 0.3 < estimate.boundary < 0.99
        assert estimate.lower <= estimate.boundary <= estimate.upper
        assert estimate.iterations > 0

    def test_boundary_is_consistent_with_workload_math(self):
        """2 links, p = 0.5, 3 slots: the usable attempts per interval are
        E[min(G1 + G2, 3)] = 2.75 (a quarter of the time both packets land
        in two attempts), so the true boundary is 2 rho / 0.5 <= 2.75, i.e.
        rho ~ 0.69; a tight threshold should bisect near it, and certainly
        below the naive 3-attempt bound's 0.75."""
        estimate = admissible_boundary(
            spec_builder,
            LDFPolicy,
            low=0.3,
            high=0.99,
            num_intervals=2500,
            threshold=0.05,
            tolerance=0.02,
        )
        assert 0.6 < estimate.boundary < 0.76

    def test_degenerate_low_endpoint(self):
        estimate = admissible_boundary(
            spec_builder, LDFPolicy, low=0.98, high=0.99, num_intervals=400
        )
        assert estimate.boundary == 0.98  # low already deficient

    def test_degenerate_high_endpoint(self):
        estimate = admissible_boundary(
            spec_builder, LDFPolicy, low=0.05, high=0.10, num_intervals=400
        )
        assert estimate.boundary == 0.10  # high still sustained

    def test_validation(self):
        with pytest.raises(ValueError):
            admissible_boundary(spec_builder, LDFPolicy, low=0.9, high=0.5)
        with pytest.raises(ValueError):
            admissible_boundary(
                spec_builder, LDFPolicy, low=0.1, high=0.9, threshold=0.0
            )


class TestRelativeCapacity:
    def test_ratio(self):
        a = CapacityEstimate(0.42, 0.4, 0.44, 5, 0.25)
        b = CapacityEstimate(0.60, 0.58, 0.62, 5, 0.25)
        assert relative_capacity(a, b) == pytest.approx(0.7)

    def test_zero_reference_rejected(self):
        a = CapacityEstimate(0.42, 0.4, 0.44, 5, 0.25)
        z = CapacityEstimate(0.0, 0.0, 0.0, 0, 0.25)
        with pytest.raises(ValueError):
            relative_capacity(a, z)
