"""Tests for convergence-time helpers (Fig. 5 analysis)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.convergence import (
    relative_convergence_time,
    running_mean,
    time_to_neighborhood,
)


class TestRunningMean:
    def test_values(self):
        np.testing.assert_allclose(
            running_mean([1.0, 0.0, 2.0]), [1.0, 0.5, 1.0]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            running_mean([])


class TestTimeToNeighborhood:
    def test_immediately_inside(self):
        series = [1.0] * 20
        assert time_to_neighborhood(series, 1.0) == 0

    def test_settles_after_transient(self):
        # First 10 intervals deliver 0, then 1.0 forever: the running mean
        # (k - 10)/k crosses into the 5% band around 1.0 at k = 200.
        series = [0.0] * 10 + [1.0] * 400
        settle = time_to_neighborhood(series, 1.0, relative_tolerance=0.05)
        assert settle is not None
        mean = running_mean(series)
        assert np.all(np.abs(mean[settle:] - 1.0) <= 0.05)
        # And the point just before is outside the band.
        assert abs(mean[settle - 1] - 1.0) > 0.05
        assert settle == pytest.approx(200, abs=2)

    def test_never_settles(self):
        series = [0.0] * 50
        assert time_to_neighborhood(series, 1.0) is None

    def test_excursion_resets_settle_point(self):
        """'Stays' means stays: a late excursion pushes the time out.

        A burst of 3 at interval 100 lifts the running mean to (k + 2)/k,
        which re-enters the 1% band only at k = 200.
        """
        stable = [1.0] * 100
        settle_stable = time_to_neighborhood(stable, 1.0)
        spiky = [1.0] * 99 + [3.0] + [1.0] * 900
        settle_spiky = time_to_neighborhood(spiky, 1.0)
        assert settle_stable == 0
        assert settle_spiky is not None and settle_spiky >= 100

    def test_validation(self):
        with pytest.raises(ValueError):
            time_to_neighborhood([1.0], 0.0)
        with pytest.raises(ValueError):
            time_to_neighborhood([1.0], 1.0, relative_tolerance=0.0)


class TestRelativeConvergence:
    def test_ratio(self):
        fast = [1.0] * 400
        slow = [0.0] * 20 + [1.0] * 380
        ratio = relative_convergence_time(
            slow, fast, target=1.0, relative_tolerance=0.1
        )
        # fast settles at 0, slow at (k - 20)/k >= 0.9 -> k = 200.
        assert ratio == float("inf")

    def test_none_when_either_fails(self):
        assert relative_convergence_time([0.0] * 10, [1.0] * 10, 1.0) is None

    def test_equal_traces(self):
        series = [0.0] * 5 + [1.0] * 200
        ratio = relative_convergence_time(series, series, target=0.97)
        assert ratio == pytest.approx(1.0)
