"""Tests for the Lyapunov-drift machinery (Lemma 2, numerically)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliArrivals,
    BernoulliChannel,
    DBDPPolicy,
    LDFPolicy,
    LinearInfluence,
    LogInfluence,
    NetworkSpec,
    StaticPriorityPolicy,
    idealized_timing,
)
from repro.analysis.drift import (
    estimate_one_interval_drift,
    lyapunov_value,
)


def feasible_spec():
    """3 links, ample capacity: q is strictly feasible with a wide margin."""
    return NetworkSpec.from_delivery_ratios(
        arrivals=BernoulliArrivals.symmetric(3, 0.9),
        channel=BernoulliChannel.symmetric(3, 0.8),
        timing=idealized_timing(8),
        delivery_ratios=0.8,
    )


class TestLyapunovValue:
    def test_linear_is_half_square(self):
        assert lyapunov_value([3.0], LinearInfluence()) == pytest.approx(4.5, rel=1e-3)
        assert lyapunov_value([3.0, 4.0], LinearInfluence()) == pytest.approx(
            12.5, rel=1e-3
        )

    def test_negative_debts_contribute_nothing(self):
        assert lyapunov_value([-5.0, -1.0]) == 0.0

    def test_monotone_in_debt(self):
        f = LogInfluence()
        assert lyapunov_value([10.0], f) > lyapunov_value([5.0], f) > 0.0

    def test_zero_state(self):
        assert lyapunov_value([0.0, 0.0]) == 0.0


class TestDriftEstimates:
    def test_ldf_negative_drift_at_large_debt(self):
        """Lemma 2's conclusion: strictly feasible q + (near-)max-weight
        policy => negative drift outside a ball."""
        spec = feasible_spec()
        estimate = estimate_one_interval_drift(
            spec, LDFPolicy, debts=[30.0, 30.0, 30.0], num_samples=300
        )
        assert estimate.is_negative

    def test_dbdp_negative_drift_at_large_debt(self):
        spec = feasible_spec()
        estimate = estimate_one_interval_drift(
            spec, DBDPPolicy, debts=[30.0, 25.0, 35.0], num_samples=300
        )
        assert estimate.is_negative

    def test_drift_positive_when_infeasible(self):
        """q beyond capacity: even LDF's drift is positive — debts diverge."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals.symmetric(4, 1.0),
            channel=BernoulliChannel.symmetric(4, 0.4),
            timing=idealized_timing(4),
            delivery_ratios=0.95,
        )
        estimate = estimate_one_interval_drift(
            spec, LDFPolicy, debts=[20.0] * 4, num_samples=300
        )
        assert estimate.mean_drift > 0.0

    def test_starving_policy_has_worse_drift_than_ldf(self):
        """A fixed ordering ignores who is behind: planting all the debt on
        the bottom-priority link shows a strictly worse drift than LDF's."""
        spec = NetworkSpec.from_delivery_ratios(
            arrivals=BernoulliArrivals.symmetric(3, 1.0),
            channel=BernoulliChannel.symmetric(3, 0.9),
            timing=idealized_timing(2),  # capacity for ~2 of 3 links
            delivery_ratios=0.6,
        )
        debts = [0.0, 0.0, 40.0]  # all debt on the statically-last link
        static = estimate_one_interval_drift(
            spec, StaticPriorityPolicy, debts=debts, num_samples=400
        )
        ldf = estimate_one_interval_drift(
            spec, LDFPolicy, debts=debts, num_samples=400
        )
        assert ldf.mean_drift < static.mean_drift
        assert ldf.is_negative
        assert not static.is_negative

    def test_validation(self):
        spec = feasible_spec()
        with pytest.raises(ValueError):
            estimate_one_interval_drift(spec, LDFPolicy, debts=[1.0])
        with pytest.raises(ValueError):
            estimate_one_interval_drift(
                spec, LDFPolicy, debts=[1.0, 1.0, 1.0], num_samples=1
            )
