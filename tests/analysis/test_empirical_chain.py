"""Tests for empirical chain estimation against Eq. (9) / Prop. 2."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BernoulliChannel,
    ConstantArrivals,
    DPProtocol,
    IntervalSimulator,
    NetworkSpec,
    PerLinkSwapBias,
    idealized_timing,
)
from repro.analysis.empirical_chain import (
    estimate_chain,
    occupancy_distribution,
    total_variation_distance,
)
from repro.analysis.markov import build_sigma_chain
from repro.analysis.stationary import stationary_distribution

MUS = (0.7, 0.5, 0.3)


@pytest.fixture(scope="module")
def trace():
    spec = NetworkSpec.from_delivery_ratios(
        arrivals=ConstantArrivals.symmetric(3, 1),
        channel=BernoulliChannel.symmetric(3, 1.0),
        timing=idealized_timing(6),
        delivery_ratios=1.0,
    )
    sim = IntervalSimulator(
        spec,
        DPProtocol(bias=PerLinkSwapBias(MUS)),
        seed=17,
        record_priorities=True,
    )
    sim.run(40000)
    return sim.result.priorities


class TestEstimation:
    def test_counts_structure(self, trace):
        chain = estimate_chain(trace)
        assert chain.counts.sum() == len(trace) - 1
        assert chain.visits.sum() == len(trace) - 1

    def test_matrix_rows_normalized(self, trace):
        chain = estimate_chain(trace)
        matrix = chain.matrix
        visited = chain.visits > 0
        np.testing.assert_allclose(matrix[visited].sum(axis=1), 1.0)

    def test_transitions_match_equation_9(self, trace):
        """Empirical transition frequencies approach Eq. (9) with the
        handshake always completing (light load, perfect channels)."""
        empirical = estimate_chain(trace)
        exact = build_sigma_chain(MUS)
        checked = 0
        for s, sigma in enumerate(exact.states):
            if empirical.visits[empirical.states.index(sigma)] < 3000:
                continue  # rarely-visited rows are too noisy to pin down
            for t, target in enumerate(exact.states):
                theory = exact.matrix[s, t]
                measured = empirical.transition_probability(sigma, target)
                assert measured == pytest.approx(theory, abs=0.03)
                checked += 1
        assert checked >= 12  # the frequent states cover many transitions

    def test_occupancy_matches_proposition_2(self, trace):
        empirical = occupancy_distribution(trace)
        theory = stationary_distribution(MUS)
        assert total_variation_distance(empirical, theory) < 0.03

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_chain([(1, 2, 3)])
        with pytest.raises(ValueError):
            occupancy_distribution([])
        with pytest.raises(ValueError):
            estimate_chain([tuple(range(1, 8))] * 3)


class TestTotalVariation:
    def test_identical_distributions(self):
        d = {(1, 2): 0.5, (2, 1): 0.5}
        assert total_variation_distance(d, d) == 0.0

    def test_disjoint_supports(self):
        a = {(1, 2): 1.0}
        b = {(2, 1): 1.0}
        assert total_variation_distance(a, b) == 1.0

    def test_symmetry(self):
        a = {(1, 2): 0.7, (2, 1): 0.3}
        b = {(1, 2): 0.4, (2, 1): 0.6}
        assert total_variation_distance(a, b) == total_variation_distance(b, a)
